#!/usr/bin/env python3
"""Custom synthesized topologies vs. an optimised mesh (Fig. 23) and the
full 2-D vs 3-D comparison (Table I).

Run:  python examples/mesh_vs_custom.py [--quick]

With --quick only two benchmarks are swept; the full run covers all six
Table I designs plus D_26_media.
"""

import sys

from repro.bench.registry import TABLE1_BENCHMARKS
from repro.experiments.mesh_comparison import run_mesh_comparison
from repro.experiments.table1_2d_vs_3d import run_table1


def main() -> None:
    quick = "--quick" in sys.argv
    benchmarks = ("d36_4", "d35_bot") if quick else TABLE1_BENCHMARKS

    print("Table I: 2-D vs. 3-D NoC comparison")
    run_table1(benchmarks).print_table()
    print()

    print("Fig. 23: custom topology vs. power-optimised mesh")
    run_mesh_comparison(benchmarks + ("d26_media",)).print_table()


if __name__ == "__main__":
    main()
