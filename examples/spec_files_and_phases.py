#!/usr/bin/env python3
"""Working with specification files, and Phase 1 vs Phase 2 trade-offs.

Shows the on-disk input formats of the tool (Sec. IV: the core specification
and communication specification files), then synthesizes the same design
with Phase 1 (cores may attach to switches in any layer) and Phase 2
(layer-by-layer), reproducing the Fig. 13-vs-14 trade-off: Phase 2 needs far
fewer inter-layer links but pays power and latency for the restriction.

Run:  python examples/spec_files_and_phases.py
"""

import tempfile
from pathlib import Path

from repro import SunFloor3D, SynthesisConfig
from repro.bench.registry import get_benchmark
from repro.spec.io import (
    load_comm_spec_text,
    load_core_spec_text,
    save_comm_spec_text,
    save_core_spec_text,
)


def main() -> None:
    bench = get_benchmark("d26_media")

    # Round-trip the benchmark through the text file format.
    with tempfile.TemporaryDirectory() as tmp:
        cores_path = Path(tmp) / "d26_cores.txt"
        comm_path = Path(tmp) / "d26_comm.txt"
        save_core_spec_text(bench.core_spec_3d, cores_path)
        save_comm_spec_text(bench.comm_spec, comm_path)

        print(f"core spec ({cores_path.name}), first lines:")
        for line in cores_path.read_text().splitlines()[:5]:
            print("   " + line)
        print(f"communication spec ({comm_path.name}), first lines:")
        for line in comm_path.read_text().splitlines()[:5]:
            print("   " + line)
        print()

        core_spec = load_core_spec_text(cores_path)
        comm_spec = load_comm_spec_text(comm_path)

    for phase in ("phase1", "phase2"):
        config = SynthesisConfig(
            max_ill=25, phase=phase, switch_count_range=(3, 12)
        )
        result = SunFloor3D(core_spec, comm_spec, config=config).synthesize()
        if result.is_empty:
            print(f"{phase}: no valid design points")
            continue
        best = result.best_power()
        print(f"{phase}: best {best.summary()}")

    print(
        "\nPhase 2 restricts cores to same-layer switches: fewer vertical\n"
        "links (tight TSV budgets become feasible) at the price of extra\n"
        "switch traversals for every inter-layer flow (Sec. VIII-A)."
    )


if __name__ == "__main__":
    main()
