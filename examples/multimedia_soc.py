#!/usr/bin/env python3
"""The D_26_media case study (paper Sec. VIII-A, Figs. 9-16).

Synthesizes the 26-core multimedia & wireless SoC in both its 3-D (3-layer)
and 2-D implementations, reproducing the case-study artefacts:

* power vs. switch count, split by component (Figs. 10-11);
* wire-length distributions (Fig. 12);
* the best Phase 1 and Phase 2 topologies (Figs. 13-14);
* the resulting floorplan (Fig. 15).

Run:  python examples/multimedia_soc.py
"""

from repro.core.config import SynthesisConfig
from repro.experiments.power_curves import run_2d_vs_3d_best, run_power_vs_switches
from repro.experiments.topology_report import run_floorplan_report, run_topology_report
from repro.experiments.wirelength import run_wirelength_distribution


def main() -> None:
    config = SynthesisConfig(max_ill=25, switch_count_range=(3, 14))

    print("Synthesizing D_26_media, 2-D flow (Murali et al. [16]) ...")
    run_power_vs_switches("d26_media", "2d", config).print_table()
    print()

    print("Synthesizing D_26_media, 3-D flow (SunFloor 3D) ...")
    run_power_vs_switches("d26_media", "3d", config).print_table()
    print()

    run_2d_vs_3d_best("d26_media", config).print_table()
    print()

    run_wirelength_distribution("d26_media", config=config).print_table()
    print()

    run_topology_report("d26_media", "phase1", config).print_table()
    print()
    run_topology_report("d26_media", "phase2", config).print_table()
    print()
    run_floorplan_report("d26_media", config).print_table()


if __name__ == "__main__":
    main()
