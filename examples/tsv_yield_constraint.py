#!/usr/bin/env python3
"""From manufacturing yield to the max_ill constraint, and its impact.

Walks the paper's motivation chain end to end:

1. Fig. 1 — yield vs. TSV count for three manufacturing processes;
2. pick a process and a target yield, derive the TSV budget and from it the
   ``max_ill`` constraint for 32-bit links (Sec. IV);
3. Figs. 21-22 — synthesize D_36_4 under a sweep of max_ill values and show
   the power/latency cost of tight TSV budgets, the infeasibility floor, and
   the saturation point.

Run:  python examples/tsv_yield_constraint.py
"""

from repro.core.config import SynthesisConfig
from repro.experiments.fig01_yield import run_budget_table, run_yield_curves
from repro.experiments.max_ill_sweep import run_max_ill_sweep
from repro.models.tsv_model import TsvModel, max_tsvs_for_yield


def main() -> None:
    run_yield_curves().print_table()
    print()
    run_budget_table().print_table()
    print()

    # Chain for one concrete choice: mainstream process, 85% yield target.
    process = "wafer-level-b"
    target = 0.85
    budget = max_tsvs_for_yield(process, target)
    model = TsvModel()
    max_ill = model.max_ill_for_budget(budget, width_bits=32)
    print(f"process {process!r} at >= {target:.0%} yield -> "
          f"{budget} TSVs per boundary -> max_ill = {max_ill} "
          f"({model.tsvs_per_link(32)} TSVs per 32-bit link)\n")

    config = SynthesisConfig(switch_count_range=(3, 14))
    table = run_max_ill_sweep(
        "d36_4", (1, 2, 3, 4, 6, 10, 14, 18, 22, 25, 30), config
    )
    table.print_table()

    feasible = [r for r in table.rows if r["power_mw"] is not None]
    infeasible = [r["max_ill"] for r in table.rows if r["power_mw"] is None]
    if infeasible:
        print(f"\ninfeasible below max_ill = {max(infeasible) + 1} "
              "(the Fig. 21 floor)")
    if feasible:
        tight, loose = feasible[0], feasible[-1]
        print(f"tightest feasible ({tight['max_ill']}): "
              f"{tight['power_mw']:.1f} mW / {tight['latency_cyc']:.2f} cyc; "
              f"loosest ({loose['max_ill']}): "
              f"{loose['power_mw']:.1f} mW / {loose['latency_cyc']:.2f} cyc")


if __name__ == "__main__":
    main()
