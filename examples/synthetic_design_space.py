#!/usr/bin/env python3
"""Design-space exploration on generated SoCs + a Markdown design report.

Uses the parametric benchmark generator to create SoCs of each traffic
archetype (distributed / pipeline / bottleneck / random), explores every
archetype's 3-D design space on the **parallel engine** (one task per
archetype, fanned across a worker pool — see docs/engine.md), compares
against the serial 2-D baseline, and writes a full Markdown report for one
design.

Run:  python examples/synthetic_design_space.py [report.md] [--jobs N]
"""

import dataclasses
import sys

from repro.bench.synthetic import PATTERNS, synthetic_benchmark
from repro.core.config import SynthesisConfig
from repro.core.synthesis2d import synthesize_2d
from repro.engine import ParameterGrid, build_tasks, run_tasks
from repro.graphs.comm_graph import build_comm_graph
from repro.reports import save_report


def main() -> None:
    jobs = 0  # one worker per CPU; --jobs 1 forces serial
    argv = [a for a in sys.argv[1:]]
    if "--jobs" in argv:
        at = argv.index("--jobs")
        try:
            jobs = int(argv[at + 1])
        except (IndexError, ValueError):
            sys.exit("usage: synthetic_design_space.py [report.md] [--jobs N]")
        del argv[at:at + 2]

    config = SynthesisConfig(max_ill=12, switch_count_range=(2, 6))
    benches = {
        pattern: synthetic_benchmark(
            12, pattern, num_layers=2, seed=7,
            total_bandwidth=6000.0, floorplan_moves=1500,
        )
        for pattern in PATTERNS
    }

    # One engine task per archetype: the whole exploration fans out at once.
    tasks = [
        dataclasses.replace(task, key=pattern)
        for pattern, bench in benches.items()
        for task in build_tasks(
            bench.core_spec_3d, bench.comm_spec, ParameterGrid(), config
        )
    ]
    results = {
        r.key: r.result
        for r in run_tasks(
            tasks, jobs=jobs,
            progress=lambda d, t, k: print(f"  [{d}/{t}] {k} synthesized"),
        )
    }

    print(f"\n{'pattern':12s} {'2-D mW':>8s} {'3-D mW':>8s} {'saving':>7s} "
          f"{'lat 2D':>7s} {'lat 3D':>7s}")
    last_pattern, last_result = None, None
    for pattern, bench in benches.items():
        r3 = results[pattern]
        r2 = synthesize_2d(bench.core_spec_2d, bench.comm_spec, config=config)
        if r3.is_empty or r2.is_empty:
            print(f"{pattern:12s}  (no valid design points)")
            continue
        p3, p2 = r3.best_power(), r2.best_power()
        saving = 100.0 * (1.0 - p3.total_power_mw / p2.total_power_mw)
        print(f"{pattern:12s} {p2.total_power_mw:8.1f} {p3.total_power_mw:8.1f} "
              f"{saving:6.1f}% {p2.avg_latency_cycles:7.2f} "
              f"{p3.avg_latency_cycles:7.2f}")
        last_pattern, last_result = pattern, r3

    if last_result is not None:
        bench = benches[last_pattern]
        graph = build_comm_graph(bench.core_spec_3d, bench.comm_spec)
        path = argv[0] if argv else "synthetic_report.md"
        save_report(last_result, path, graph,
                    title="Synthetic SoC design report")
        print(f"\nwrote the full design report to {path}")


if __name__ == "__main__":
    main()
