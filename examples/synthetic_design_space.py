#!/usr/bin/env python3
"""Design-space exploration on generated SoCs + a Markdown design report.

Uses the parametric benchmark generator to create SoCs of each traffic
archetype (distributed / pipeline / bottleneck / random), synthesizes them
in 2-D and 3-D, compares the archetypes' 3-D gains, and writes a full
Markdown report for one design.

Run:  python examples/synthetic_design_space.py [report.md]
"""

import sys

from repro.bench.synthetic import PATTERNS, synthetic_benchmark
from repro.core.config import SynthesisConfig
from repro.core.synthesis import SunFloor3D
from repro.core.synthesis2d import synthesize_2d
from repro.reports import save_report


def main() -> None:
    config = SynthesisConfig(max_ill=12, switch_count_range=(2, 6))

    print(f"{'pattern':12s} {'2-D mW':>8s} {'3-D mW':>8s} {'saving':>7s} "
          f"{'lat 2D':>7s} {'lat 3D':>7s}")
    last_tool, last_result = None, None
    for pattern in PATTERNS:
        bench = synthetic_benchmark(
            12, pattern, num_layers=2, seed=7,
            total_bandwidth=6000.0, floorplan_moves=1500,
        )
        tool = SunFloor3D(bench.core_spec_3d, bench.comm_spec, config=config)
        r3 = tool.synthesize()
        r2 = synthesize_2d(bench.core_spec_2d, bench.comm_spec, config=config)
        if r3.is_empty or r2.is_empty:
            print(f"{pattern:12s}  (no valid design points)")
            continue
        p3, p2 = r3.best_power(), r2.best_power()
        saving = 100.0 * (1.0 - p3.total_power_mw / p2.total_power_mw)
        print(f"{pattern:12s} {p2.total_power_mw:8.1f} {p3.total_power_mw:8.1f} "
              f"{saving:6.1f}% {p2.avg_latency_cycles:7.2f} "
              f"{p3.avg_latency_cycles:7.2f}")
        last_tool, last_result = tool, r3

    if last_result is not None:
        path = sys.argv[1] if len(sys.argv) > 1 else "synthetic_report.md"
        save_report(last_result, path, last_tool.graph,
                    title="Synthetic SoC design report")
        print(f"\nwrote the full design report to {path}")


if __name__ == "__main__":
    main()
