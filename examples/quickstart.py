#!/usr/bin/env python3
"""Quickstart: synthesize a custom 3-D NoC for a small hand-written SoC.

Builds an 8-core, 2-layer system-on-chip specification, runs the SunFloor 3D
flow, prints the trade-off points, and validates the chosen design with the
flit-level wormhole simulator.

Run:  python examples/quickstart.py
"""

from repro import (
    CommSpec,
    Core,
    CoreSpec,
    SunFloor3D,
    SynthesisConfig,
    TrafficFlow,
)
from repro.noc.simulator import WormholeSimulator
from repro.spec import MessageType


def build_specs():
    """A small media SoC: CPU + DSP + memories + peripherals on 2 layers."""
    cores = CoreSpec(cores=[
        #    name     w    h     x    y   layer
        Core("CPU", 1.4, 1.2, 0.0, 0.0, 0),
        Core("DSP", 1.2, 1.0, 1.6, 0.0, 0),
        Core("DMA", 0.8, 0.8, 0.0, 1.4, 0),
        Core("DISP", 0.9, 0.7, 1.6, 1.2, 0),
        Core("MEM0", 1.6, 1.4, 0.0, 0.0, 1),   # stacked above CPU
        Core("MEM1", 1.6, 1.4, 1.8, 0.0, 1),   # stacked above DSP
        Core("SDRAM", 1.4, 1.2, 0.0, 1.6, 1),
        Core("ACC", 1.0, 0.9, 1.8, 1.6, 1),
    ])
    flows = CommSpec(flows=[
        TrafficFlow("CPU", "MEM0", 400, 8),
        TrafficFlow("MEM0", "CPU", 320, 8, MessageType.RESPONSE),
        TrafficFlow("DSP", "MEM1", 350, 8),
        TrafficFlow("MEM1", "DSP", 500, 8, MessageType.RESPONSE),
        TrafficFlow("DSP", "ACC", 450, 6),
        TrafficFlow("ACC", "DISP", 380, 6),
        TrafficFlow("DMA", "SDRAM", 250, 12),
        TrafficFlow("CPU", "SDRAM", 180, 10),
        TrafficFlow("CPU", "DSP", 90, 10),
        TrafficFlow("DMA", "MEM0", 120, 12),
    ])
    return cores, flows


def main() -> None:
    core_spec, comm_spec = build_specs()

    config = SynthesisConfig(
        frequency_mhz=400.0,   # NoC clock
        max_ill=10,            # TSV budget: at most 10 links per boundary
        objective="power",
    )
    tool = SunFloor3D(core_spec, comm_spec, config=config)
    result = tool.synthesize()

    print(f"valid design points: {len(result.points)} "
          f"(unmet switch counts: {result.unmet_switch_counts})")
    for point in sorted(result.points, key=lambda p: p.switch_count):
        print("  " + point.summary())

    best = result.best_power()
    print("\nchosen design (best power):")
    print(f"  switches: {best.switch_count}, "
          f"vertical links: {best.metrics.num_vertical_links}, "
          f"die area: {best.die_area_mm2:.2f} mm^2")
    for sw in best.topology.switches:
        cores = [core_spec.names[c] for c, s in
                 best.topology.core_to_switch.items() if s == sw.id]
        print(f"  sw{sw.id} (layer {sw.layer}) <- {', '.join(cores)}")

    # Validate with the wormhole simulator at 50% of the specified load
    # (at 100% offered load a wormhole network with shallow buffers sits at
    # its saturation point and queueing dominates).
    sim = WormholeSimulator(best.topology, seed=0)
    stats = sim.run(cycles=20_000, warmup=2_000, injection_scale=0.5)
    print(f"\nsimulation at 50% load: "
          f"{stats.packets_delivered}/{stats.packets_injected} packets "
          f"delivered, avg latency {stats.avg_packet_latency:.2f} cycles "
          f"(zero-load analytic avg: {best.avg_latency_cycles:.2f}; the gap "
          "is serialisation + link pipeline registers + queueing)")


if __name__ == "__main__":
    main()
