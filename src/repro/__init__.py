"""SunFloor 3D reproduction — application-specific NoC topology synthesis
for 3-D systems on chips.

Reproduces: C. Seiculescu, S. Murali, L. Benini, G. De Micheli,
"SunFloor 3D: A Tool for Networks on Chip Topology Synthesis for 3-D Systems
on Chips", IEEE TCAD 29(12), 2010 (journal version of the DATE 2009 paper).

Quickstart::

    from repro import SunFloor3D, SynthesisConfig
    from repro.bench import get_benchmark

    bench = get_benchmark("d26_media")
    tool = SunFloor3D(bench.core_spec_3d, bench.comm_spec,
                      config=SynthesisConfig(max_ill=25))
    result = tool.synthesize()
    print(result.best_power().summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core import (
    DesignPoint,
    FlowContext,
    Pipeline,
    Stage,
    StageTimings,
    SunFloor3D,
    SynthesisConfig,
    SynthesisResult,
    build_pipeline,
    register_stage,
    run_synthesis,
    synthesize,
    synthesize_2d,
    synthesize_mesh,
)
from repro.core.frequency_sweep import sweep_alpha, sweep_frequencies
from repro.core.verification import verify_design_point
from repro.engine import GridPoint, ParameterGrid, build_tasks, run_tasks
from repro.errors import (
    EngineError,
    FloorplanError,
    LPError,
    PathComputationError,
    ReproError,
    SpecError,
    SynthesisError,
)
from repro.models import NocLibrary, default_library
from repro.spec import CommSpec, Core, CoreSpec, MessageType, TrafficFlow

__version__ = "1.0.0"

__all__ = [
    "SunFloor3D",
    "SynthesisConfig",
    "SynthesisResult",
    "DesignPoint",
    "FlowContext",
    "Pipeline",
    "Stage",
    "StageTimings",
    "build_pipeline",
    "register_stage",
    "run_synthesis",
    "synthesize",
    "synthesize_2d",
    "synthesize_mesh",
    "sweep_frequencies",
    "sweep_alpha",
    "verify_design_point",
    "GridPoint",
    "ParameterGrid",
    "build_tasks",
    "run_tasks",
    "EngineError",
    "NocLibrary",
    "default_library",
    "Core",
    "CoreSpec",
    "CommSpec",
    "TrafficFlow",
    "MessageType",
    "ReproError",
    "SpecError",
    "SynthesisError",
    "PathComputationError",
    "LPError",
    "FloorplanError",
    "__version__",
]
