"""A small linear-program modelling layer.

Supports named variables with box bounds, linear constraints with <=, >= or
== sense, and a linear minimisation objective. Problems are solved either by
scipy's HiGHS (default) or by the built-in simplex fallback.

Example::

    lp = LinearProgram()
    x = lp.add_variable("x")                  # x >= 0
    d = lp.add_variable("d")
    lp.add_constraint({d: 1, x: -1}, ">=", -3)   # d >= x - 3  ... d >= |x-3|
    lp.add_constraint({d: 1, x: 1}, ">=", 3)     # d >= 3 - x
    lp.set_objective({d: 1.0})
    sol = lp.solve()
    sol.value(x)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import LPError

SENSES = ("<=", ">=", "==")


@dataclass(frozen=True)
class Variable:
    """Handle for an LP variable (hashable; identity by index)."""

    index: int
    name: str

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Variable({self.name})"


@dataclass
class Constraint:
    coeffs: Dict[int, float]
    sense: str
    rhs: float
    name: str = ""


@dataclass
class Solution:
    """Result of an LP solve."""

    objective: float
    values: List[float]
    status: str = "optimal"

    def value(self, var: Variable) -> float:
        return self.values[var.index]


class LinearProgram:
    """A minimisation LP assembled incrementally."""

    def __init__(self) -> None:
        self._names: List[str] = []
        self._lower: List[Optional[float]] = []
        self._upper: List[Optional[float]] = []
        self._constraints: List[Constraint] = []
        self._objective: Dict[int, float] = {}

    # -- construction ------------------------------------------------------

    def add_variable(
        self,
        name: str = "",
        low: Optional[float] = 0.0,
        high: Optional[float] = None,
    ) -> Variable:
        """Add a variable with bounds ``low <= v <= high``.

        ``low=None`` means unbounded below; ``high=None`` unbounded above.
        Default is a standard non-negative variable.
        """
        if low is not None and high is not None and low > high:
            raise LPError(f"variable {name!r}: lower bound {low} > upper {high}")
        index = len(self._names)
        self._names.append(name or f"v{index}")
        self._lower.append(low)
        self._upper.append(high)
        return Variable(index=index, name=self._names[-1])

    def add_constraint(
        self,
        coeffs: Mapping[Variable, float],
        sense: str,
        rhs: float,
        name: str = "",
    ) -> None:
        """Add ``sum(c * v) <sense> rhs`` with sense one of <=, >=, ==."""
        if sense not in SENSES:
            raise LPError(f"unknown constraint sense {sense!r}")
        flat: Dict[int, float] = {}
        for var, c in coeffs.items():
            self._check_var(var)
            if c:
                flat[var.index] = flat.get(var.index, 0.0) + float(c)
        self._constraints.append(Constraint(flat, sense, float(rhs), name))

    def set_objective(self, coeffs: Mapping[Variable, float]) -> None:
        """Set the minimisation objective ``sum(c * v)``."""
        self._objective = {}
        for var, c in coeffs.items():
            self._check_var(var)
            if c:
                self._objective[var.index] = (
                    self._objective.get(var.index, 0.0) + float(c)
                )

    def add_objective_term(self, var: Variable, coeff: float) -> None:
        """Accumulate ``coeff * var`` into the objective."""
        self._check_var(var)
        if coeff:
            self._objective[var.index] = (
                self._objective.get(var.index, 0.0) + float(coeff)
            )

    # -- introspection -----------------------------------------------------

    @property
    def num_variables(self) -> int:
        return len(self._names)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    def as_arrays(self) -> Tuple[
        List[float],
        List[Tuple[Dict[int, float], str, float]],
        List[Tuple[Optional[float], Optional[float]]],
    ]:
        """Objective vector, constraint triples, and bounds — for backends."""
        c = [0.0] * len(self._names)
        for idx, coeff in self._objective.items():
            c[idx] = coeff
        rows = [(ct.coeffs, ct.sense, ct.rhs) for ct in self._constraints]
        bounds = list(zip(self._lower, self._upper))
        return c, rows, bounds

    # -- solving -----------------------------------------------------------

    def solve(self, backend: str = "scipy") -> Solution:
        """Solve the LP. ``backend`` is 'scipy' (HiGHS) or 'simplex'."""
        if backend == "scipy":
            from repro.lp.scipy_backend import solve_with_scipy

            return solve_with_scipy(self)
        if backend == "simplex":
            from repro.lp.scipy_backend import solve_with_simplex

            return solve_with_simplex(self)
        raise LPError(f"unknown LP backend {backend!r}")

    def _check_var(self, var: Variable) -> None:
        if not isinstance(var, Variable):
            raise LPError(f"expected a Variable, got {type(var).__name__}")
        if not (0 <= var.index < len(self._names)):
            raise LPError(f"variable {var!r} does not belong to this program")
        if self._names[var.index] != var.name:
            raise LPError(f"variable {var!r} does not belong to this program")
