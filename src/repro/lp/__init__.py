"""Linear-programming substrate.

Section VII of the paper formulates switch-position computation as an LP
(Eqs. 2-5) and solves it with the external ``lp_solve`` package [37]. This
package replaces it with:

* :mod:`repro.lp.model` — a small modelling layer (named variables with
  bounds, <=/>=/== constraints, linear objective);
* :mod:`repro.lp.scipy_backend` — lowering to ``scipy.optimize.linprog``
  (HiGHS), the default solver;
* :mod:`repro.lp.simplex` — a self-contained dense two-phase simplex with
  Bland's rule, used as a dependency-free fallback and as a cross-check in
  the test suite.
"""

from repro.lp.model import LinearProgram, Solution
from repro.lp.simplex import SimplexResult, solve_simplex

__all__ = ["LinearProgram", "Solution", "solve_simplex", "SimplexResult"]
