"""Self-contained dense two-phase simplex solver.

Solves ``min c^T x  s.t.  A_i x (<=|>=|==) b_i,  x >= 0`` using the classic
tableau method with Bland's anti-cycling rule. Used as a dependency-free
fallback backend for :class:`repro.lp.model.LinearProgram` and as an
independent cross-check of the scipy/HiGHS results in the test suite.

The solver expects non-negative variables; the backend layer
(:mod:`repro.lp.scipy_backend`) performs the bound substitutions needed to
reduce general box bounds to this form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import InfeasibleLPError, LPError, UnboundedLPError

_EPS = 1e-9


@dataclass
class SimplexResult:
    objective: float
    x: np.ndarray
    iterations: int


def solve_simplex(
    c: Sequence[float],
    rows: Sequence[Tuple[Sequence[float], str, float]],
    max_iterations: int = 50_000,
) -> SimplexResult:
    """Solve ``min c.x`` subject to ``rows`` with all variables >= 0.

    Args:
        c: Objective coefficients, length n.
        rows: Triples ``(coeffs, sense, rhs)`` with sense <=, >= or ==.
        max_iterations: Pivot budget before giving up.

    Raises:
        InfeasibleLPError: No feasible point exists.
        UnboundedLPError: The objective is unbounded below.
        LPError: Malformed input or iteration budget exhausted.
    """
    n = len(c)
    m = len(rows)
    if m == 0:
        # Feasible at the origin; with x >= 0 and min c.x, any negative cost
        # coordinate is unbounded.
        if any(ci < -_EPS for ci in c):
            raise UnboundedLPError("unconstrained negative-cost variable")
        return SimplexResult(objective=0.0, x=np.zeros(n), iterations=0)

    a = np.zeros((m, n), dtype=float)
    b = np.zeros(m, dtype=float)
    senses: List[str] = []
    for i, (coeffs, sense, rhs) in enumerate(rows):
        if len(coeffs) != n:
            raise LPError(f"row {i} has {len(coeffs)} coefficients, expected {n}")
        if sense not in ("<=", ">=", "=="):
            raise LPError(f"row {i}: unknown sense {sense!r}")
        a[i, :] = coeffs
        b[i] = rhs
        senses.append(sense)

    # Normalise to b >= 0.
    for i in range(m):
        if b[i] < 0:
            a[i, :] = -a[i, :]
            b[i] = -b[i]
            if senses[i] == "<=":
                senses[i] = ">="
            elif senses[i] == ">=":
                senses[i] = "<="

    # Count auxiliary columns: slack for <=, surplus+artificial for >=,
    # artificial for ==.
    n_slack = sum(1 for s in senses if s == "<=")
    n_surplus = sum(1 for s in senses if s == ">=")
    n_art = sum(1 for s in senses if s in (">=", "=="))
    total = n + n_slack + n_surplus + n_art

    tableau = np.zeros((m, total), dtype=float)
    tableau[:, :n] = a
    basis = [-1] * m
    slack_at = n
    surplus_at = n + n_slack
    art_at = n + n_slack + n_surplus
    artificial_cols: List[int] = []
    for i, sense in enumerate(senses):
        if sense == "<=":
            tableau[i, slack_at] = 1.0
            basis[i] = slack_at
            slack_at += 1
        elif sense == ">=":
            tableau[i, surplus_at] = -1.0
            surplus_at += 1
            tableau[i, art_at] = 1.0
            basis[i] = art_at
            artificial_cols.append(art_at)
            art_at += 1
        else:  # ==
            tableau[i, art_at] = 1.0
            basis[i] = art_at
            artificial_cols.append(art_at)
            art_at += 1

    rhs_col = b.copy()
    iterations = 0

    if artificial_cols:
        # Phase 1: minimise the sum of artificials.
        phase1_cost = np.zeros(total)
        for col in artificial_cols:
            phase1_cost[col] = 1.0
        iterations += _run_phase(
            tableau, rhs_col, basis, phase1_cost, max_iterations
        )
        phase1_obj = sum(
            rhs_col[i] for i in range(m) if basis[i] in set(artificial_cols)
        )
        if phase1_obj > 1e-7:
            raise InfeasibleLPError("phase-1 objective positive: no feasible point")
        _drive_out_artificials(tableau, rhs_col, basis, set(artificial_cols), n)

    # Phase 2.
    phase2_cost = np.zeros(total)
    phase2_cost[:n] = np.asarray(c, dtype=float)
    # Forbid artificials from re-entering.
    forbidden = set(artificial_cols)
    iterations += _run_phase(
        tableau, rhs_col, basis, phase2_cost, max_iterations, forbidden
    )

    x = np.zeros(n)
    for i, col in enumerate(basis):
        if col < n:
            x[col] = rhs_col[i]
    objective = float(np.dot(np.asarray(c, dtype=float), x))
    return SimplexResult(objective=objective, x=x, iterations=iterations)


def _reduced_costs(
    tableau: np.ndarray, basis: List[int], cost: np.ndarray
) -> np.ndarray:
    cb = cost[basis]
    return cost - cb @ tableau


def _run_phase(
    tableau: np.ndarray,
    rhs: np.ndarray,
    basis: List[int],
    cost: np.ndarray,
    max_iterations: int,
    forbidden: set = frozenset(),
) -> int:
    m, total = tableau.shape
    iterations = 0
    while True:
        reduced = _reduced_costs(tableau, basis, cost)
        entering = -1
        for j in range(total):  # Bland's rule: smallest eligible index.
            if j in forbidden:
                continue
            if reduced[j] < -_EPS:
                entering = j
                break
        if entering < 0:
            return iterations

        # Ratio test.
        leaving = -1
        best_ratio = None
        for i in range(m):
            coef = tableau[i, entering]
            if coef > _EPS:
                ratio = rhs[i] / coef
                if (
                    best_ratio is None
                    or ratio < best_ratio - _EPS
                    or (abs(ratio - best_ratio) <= _EPS and basis[i] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = i
        if leaving < 0:
            raise UnboundedLPError("no leaving row: objective unbounded below")

        _pivot(tableau, rhs, basis, leaving, entering)
        iterations += 1
        if iterations > max_iterations:
            raise LPError(f"simplex exceeded {max_iterations} pivots")


def _pivot(
    tableau: np.ndarray,
    rhs: np.ndarray,
    basis: List[int],
    row: int,
    col: int,
) -> None:
    pivot_val = tableau[row, col]
    tableau[row, :] /= pivot_val
    rhs[row] /= pivot_val
    for i in range(tableau.shape[0]):
        if i != row and abs(tableau[i, col]) > 0:
            factor = tableau[i, col]
            tableau[i, :] -= factor * tableau[row, :]
            rhs[i] -= factor * rhs[row]
    basis[row] = col


def _drive_out_artificials(
    tableau: np.ndarray,
    rhs: np.ndarray,
    basis: List[int],
    artificial_cols: set,
    n_real: int,
) -> None:
    """Pivot basic artificials (at value 0) out of the basis when possible."""
    m, total = tableau.shape
    for i in range(m):
        if basis[i] in artificial_cols:
            entering = -1
            for j in range(total):
                if j not in artificial_cols and abs(tableau[i, j]) > _EPS:
                    entering = j
                    break
            if entering >= 0:
                _pivot(tableau, rhs, basis, i, entering)
            # Otherwise the row is all zeros over real columns: redundant
            # constraint; the artificial stays basic at value 0, harmless.
