"""Backends lowering :class:`~repro.lp.model.LinearProgram` to solvers.

``solve_with_scipy`` uses ``scipy.optimize.linprog`` (HiGHS). It handles box
bounds natively.

``solve_with_simplex`` lowers to the built-in two-phase simplex of
:mod:`repro.lp.simplex`, which expects non-negative variables: bounded-below
variables are shifted (``x = lo + x'``), free variables are split
(``x = x+ - x-``), and finite upper bounds become extra rows.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.errors import InfeasibleLPError, LPError, UnboundedLPError
from repro.lp.model import LinearProgram, Solution
from repro.lp.simplex import solve_simplex


def solve_with_scipy(lp: LinearProgram) -> Solution:
    """Solve with scipy's HiGHS solver."""
    c, rows, bounds = lp.as_arrays()
    n = len(c)

    a_ub: List[List[float]] = []
    b_ub: List[float] = []
    a_eq: List[List[float]] = []
    b_eq: List[float] = []
    for coeffs, sense, rhs in rows:
        dense = [0.0] * n
        for idx, coef in coeffs.items():
            dense[idx] = coef
        if sense == "<=":
            a_ub.append(dense)
            b_ub.append(rhs)
        elif sense == ">=":
            a_ub.append([-v for v in dense])
            b_ub.append(-rhs)
        else:
            a_eq.append(dense)
            b_eq.append(rhs)

    result = linprog(
        c=np.asarray(c, dtype=float),
        A_ub=np.asarray(a_ub) if a_ub else None,
        b_ub=np.asarray(b_ub) if b_ub else None,
        A_eq=np.asarray(a_eq) if a_eq else None,
        b_eq=np.asarray(b_eq) if b_eq else None,
        bounds=bounds,
        method="highs",
    )
    if result.status == 2:
        raise InfeasibleLPError(result.message)
    if result.status == 3:
        raise UnboundedLPError(result.message)
    if not result.success:
        raise LPError(f"linprog failed: {result.message}")
    return Solution(objective=float(result.fun), values=list(result.x))


def solve_with_simplex(lp: LinearProgram) -> Solution:
    """Solve with the built-in dense simplex (after bound reduction)."""
    c, rows, bounds = lp.as_arrays()
    n = len(c)

    # Build the substitution x_orig = shift + (pos - neg); neg column only
    # for free variables.
    pos_col: List[int] = [0] * n
    neg_col: List[Optional[int]] = [None] * n
    shift: List[float] = [0.0] * n
    next_col = 0
    upper_rows: List[Tuple[int, float]] = []  # (orig var, residual upper)
    for i, (lo, hi) in enumerate(bounds):
        pos_col[i] = next_col
        next_col += 1
        if lo is None:
            neg_col[i] = next_col
            next_col += 1
            shift[i] = 0.0
            if hi is not None:
                upper_rows.append((i, hi))
        else:
            shift[i] = lo
            if hi is not None:
                if hi < lo:
                    raise LPError(f"variable {i}: upper bound below lower bound")
                upper_rows.append((i, hi))

    total = next_col

    def expand(coeffs_dense_pairs) -> List[float]:
        dense = [0.0] * total
        for idx, coef in coeffs_dense_pairs:
            dense[pos_col[idx]] += coef
            if neg_col[idx] is not None:
                dense[neg_col[idx]] -= coef
        return dense

    sim_rows: List[Tuple[List[float], str, float]] = []
    for coeffs, sense, rhs in rows:
        pairs = list(coeffs.items())
        dense = expand(pairs)
        adj_rhs = rhs - sum(coef * shift[idx] for idx, coef in pairs)
        sim_rows.append((dense, sense, adj_rhs))
    for idx, hi in upper_rows:
        dense = expand([(idx, 1.0)])
        sim_rows.append((dense, "<=", hi - shift[idx]))

    sim_c = expand(list(enumerate(c)))
    const_term = sum(ci * si for ci, si in zip(c, shift))

    result = solve_simplex(sim_c, sim_rows)

    values = [0.0] * n
    for i in range(n):
        v = result.x[pos_col[i]]
        if neg_col[i] is not None:
            v -= result.x[neg_col[i]]
        values[i] = shift[i] + v
    return Solution(objective=result.objective + const_term, values=values)
