"""Markdown report generation for synthesis results.

A real release of the tool ships a human-readable design report: this module
renders a :class:`~repro.core.design_point.SynthesisResult` (or a single
:class:`~repro.core.design_point.DesignPoint`) into Markdown — trade-off
table, chosen-point deep dive (per-switch composition, vertical links, power
breakdown, per-flow latency slack), and the ASCII floorplan.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

from repro.core.design_point import DesignPoint, SynthesisResult
from repro.floorplan.ascii_art import render_floorplan
from repro.graphs.comm_graph import CommGraph

PathLike = Union[str, Path]


def render_result_markdown(
    result: SynthesisResult,
    graph: Optional[CommGraph] = None,
    title: str = "SunFloor 3D synthesis report",
) -> str:
    """Full report: trade-off table plus a deep dive on the best point."""
    lines: List[str] = [f"# {title}", ""]
    if result.is_empty:
        lines.append("**No valid design points.**")
        if result.unmet_switch_counts:
            lines.append(
                f"Unmet switch counts: {result.unmet_switch_counts}."
            )
        return "\n".join(lines)

    lines.append("## Trade-off points")
    lines.append("")
    lines.append(
        "| switches | phase | θ | power (mW) | latency (cyc) | "
        "die area (mm²) | vertical links | max ill |"
    )
    lines.append("|---|---|---|---|---|---|---|---|")
    for p in sorted(result.points, key=lambda p: (p.switch_count, p.total_power_mw)):
        theta = f"{p.assignment.theta:g}" if p.assignment.theta else "-"
        lines.append(
            f"| {p.switch_count} | {p.phase} | {theta} "
            f"| {p.total_power_mw:.1f} | {p.avg_latency_cycles:.2f} "
            f"| {p.die_area_mm2:.2f} | {p.metrics.num_vertical_links} "
            f"| {p.metrics.max_ill_used} |"
        )
    if result.unmet_switch_counts:
        lines.append("")
        lines.append(
            f"Unmet switch counts: {result.unmet_switch_counts}."
        )

    best = result.best_power()
    lines.append("")
    lines.append("## Chosen design point (best power)")
    lines.append("")
    lines.extend(render_point_markdown(best, graph).splitlines()[2:])
    return "\n".join(lines)


def render_point_markdown(
    point: DesignPoint,
    graph: Optional[CommGraph] = None,
) -> str:
    """Deep dive on a single design point."""
    m = point.metrics
    lines: List[str] = [
        f"# Design point: {point.phase}, {point.switch_count} switches", "",
        f"- **Power**: {m.total_power_mw:.1f} mW "
        f"(switches {m.switch_power_mw:.1f}, "
        f"switch-to-switch links {m.sw2sw_link_power_mw:.1f}, "
        f"core-to-switch links {m.core2sw_link_power_mw:.1f})",
        f"- **Latency**: avg {m.avg_latency_cycles:.2f} / "
        f"max {m.max_latency_cycles:.2f} cycles (zero load)",
        f"- **Die area**: {point.die_area_mm2:.2f} mm² "
        f"(NoC components {m.noc_area_mm2:.3f} mm²)",
        f"- **Vertical links**: {m.num_vertical_links} "
        f"(max per boundary {m.max_ill_used}, "
        f"TSV macro area {m.tsv_macro_area_mm2:.4f} mm²)",
        "",
        "## Switches",
        "",
        "| switch | layer | in | out | position (mm) | cores |",
        "|---|---|---|---|---|---|",
    ]
    names = graph.names if graph is not None else None
    core_lists: dict = {sw.id: [] for sw in point.topology.switches}
    for core, sw in sorted(point.topology.core_to_switch.items()):
        label = names[core] if names else f"core{core}"
        core_lists[sw].append(label)
    for sw in point.topology.switches:
        cores = ", ".join(core_lists[sw.id]) or "*(indirect)*"
        lines.append(
            f"| sw{sw.id} | {sw.layer} | {sw.in_ports} | {sw.out_ports} "
            f"| ({sw.x:.2f}, {sw.y:.2f}) | {cores} |"
        )

    if graph is not None:
        lines.append("")
        lines.append("## Latency slack per flow")
        lines.append("")
        lines.append("| flow | constraint (cyc) | achieved (cyc) | slack |")
        lines.append("|---|---|---|---|")
        for (src, dst), flow in sorted(graph.edges.items()):
            achieved = m.per_flow_latency.get((src, dst))
            if achieved is None:
                continue
            slack = flow.latency - achieved
            lines.append(
                f"| {graph.names[src]} → {graph.names[dst]} "
                f"| {flow.latency:g} | {achieved:.2f} | {slack:.2f} |"
            )

    lines.append("")
    lines.append("## Floorplan")
    lines.append("")
    lines.append("```")
    lines.append(render_floorplan(point.floorplan))
    lines.append("```")
    return "\n".join(lines)


def save_report(
    result: SynthesisResult,
    path: PathLike,
    graph: Optional[CommGraph] = None,
    title: str = "SunFloor 3D synthesis report",
) -> None:
    Path(path).write_text(render_result_markdown(result, graph, title))
