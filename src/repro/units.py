"""Units and physical constants used throughout the library.

Conventions (kept consistent across all modules):

* bandwidth     — MB/s (as in the paper's communication specifications)
* frequency    — MHz
* length       — millimetres (floorplan coordinates, wire lengths)
* area         — mm^2
* energy       — picojoules (pJ)
* power        — milliwatts (mW)
* latency      — NoC clock cycles
* data width   — bits

Helper conversions live here so that model code never hand-rolls unit
arithmetic.
"""

from __future__ import annotations

# Bits per byte, spelled out so bandwidth/width conversions read clearly.
BITS_PER_BYTE = 8

# Default NoC link data width used in every experiment in the paper (Sec.
# VIII-A: "we set the data width of the NoC links to 32 bits").
DEFAULT_LINK_WIDTH_BITS = 32

# Default operating frequency found best for D_26_media (Sec. VIII-A).
DEFAULT_FREQUENCY_MHZ = 400.0

# Maximum unrepeated planar link length at 65 nm (Sec. VIII, from [34]).
MAX_UNREPEATED_LINK_MM = 1.5


def mbps_to_bits_per_cycle(bandwidth_mbps: float, frequency_mhz: float) -> float:
    """Convert a bandwidth in MB/s to bits transferred per NoC clock cycle."""
    if frequency_mhz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_mhz}")
    bits_per_us = bandwidth_mbps * BITS_PER_BYTE  # MB/s == B/us -> bits/us
    cycles_per_us = frequency_mhz
    return bits_per_us / cycles_per_us


def link_capacity_mbps(width_bits: int, frequency_mhz: float) -> float:
    """Peak bandwidth of a link of ``width_bits`` clocked at ``frequency_mhz``.

    One word of ``width_bits`` moves per cycle, so capacity in MB/s is
    ``width_bits / 8 * f_MHz`` (MHz == Mcycles/s, bytes/cycle * Mcycles/s ==
    MB/s).
    """
    if width_bits <= 0:
        raise ValueError(f"link width must be positive, got {width_bits}")
    return (width_bits / BITS_PER_BYTE) * frequency_mhz


def flits_per_second(bandwidth_mbps: float, width_bits: int) -> float:
    """Number of flits per second needed to carry ``bandwidth_mbps``.

    A flit is one link word (``width_bits`` wide). Returned in units of
    mega-flits/s to stay in the MB/s-MHz regime.
    """
    if width_bits <= 0:
        raise ValueError(f"link width must be positive, got {width_bits}")
    bytes_per_flit = width_bits / BITS_PER_BYTE
    return bandwidth_mbps / bytes_per_flit


def pj_per_s_to_mw(energy_pj_per_s: float) -> float:
    """Convert an energy rate in pJ/s to milliwatts."""
    return energy_pj_per_s * 1e-9


def mega_ops_energy_to_mw(mega_ops_per_s: float, energy_pj: float) -> float:
    """Power in mW of an event occurring ``mega_ops_per_s`` million times per
    second, each consuming ``energy_pj`` picojoules.

    1e6 events/s * 1 pJ = 1e6 pJ/s = 1e-6 W = 1e-3 mW.
    """
    return mega_ops_per_s * energy_pj * 1e-3
