"""Vectorized K-replication wormhole simulation: one array program, K runs.

:func:`simulate_batch` advances K independent replications of **one
topology** (same scenario at K seeds, or K scenarios at matched shapes) in
lockstep. Where :mod:`repro.noc.simengine` walks python sets and deques for
a single run, this engine keys every piece of per-link / per-flow / per-flit
state by a flat ``(replication, entity)`` integer —

* link entity ``e = k * n_links + lid``,
* source-flow entity ``s = k * n_flows + fi``,
* packet ``p = k * P_max + pid`` and flit ``fid = p * L + j``

— and performs each simulation phase as a handful of numpy gather/scatter
operations over *active lists* (index arrays of the entities that can act
this cycle), so the per-cycle python overhead is a fixed number of array
ops regardless of K. Replications that finish early (network drained, or
their ``drain_limit`` hit) are masked out of every active list rather than
resimulated.

Bit-exactness
-------------

The contract is absolute and inherited from the PR 1/3/4 playbook: every
replication's :class:`~repro.noc.simulator.SimulationStats` **and** its
per-cycle ``("deliver"|"eject", cycle, link, pid)`` trace are byte-identical
to a solo :func:`repro.noc.simengine.simulate` run with the same seed, and
therefore to the frozen :mod:`repro.noc.reference` loop. The argument,
phase by phase:

1. **Schedules** are built per replication from the very same seeded
   stream a solo run consumes (``make_rng(seed, "wormhole")``). Memoryless
   scenarios (Bernoulli / hotspot / scaled — they declare themselves via
   :meth:`~repro.noc.scenarios.TrafficScenario.bernoulli_probs`) go through
   a vectorized geometric-gap sampler that draws the identical MT19937
   stream through :class:`numpy.random.RandomState` (CPython's
   ``random.Random`` and numpy's legacy generator share ``init_by_array``
   seeding and the 53-bit ``genrand_res53`` output path, so the raw draws
   are bit-equal); only the *integer* gap floors matter downstream, and any
   draw within 1e-9 (relative) of an integer or of the horizon — the only
   place a ≤2-ulp ``np.log`` vs ``math.log`` discrepancy could flip a floor
   — is recomputed with ``math.log``. Stateful scenarios fall back to the
   scalar :func:`~repro.noc.scenarios.build_schedule`. Either way all
   entropy is consumed here, at schedule-build time — the cycle loop is
   RNG-free.
2. **Link delivery** (phase 2) touches only each link's own pipeline and
   its own downstream buffer, so the solo engine's ascending-link-id
   iteration order affects nothing but the trace order; the batch engine
   applies all deliveries as independent scatter ops and sorts the cycle's
   trace events by link id afterwards.
3. **Source injection** (phase 3) processes flows in a cycle-rotated order;
   flows interact only when they share a first link, and the first ordered
   flow that passes the wormhole test wins while every later one is refused
   by the pipeline-slot test. Failed attempts mutate nothing, so the winner
   is exactly the minimum-rotation-rank candidate that passes the tests
   against phase-start state — a vectorized scatter-min.
4. **Switch arbitration** (phase 4) is the one phase with genuine
   sequential coupling: outputs of a switch are arbitrated in ascending
   link-id order, and a winner's buffer pop can reveal a successor head
   that a *later* output of the same switch is allowed to consider. The
   batch engine computes all winners optimistically from phase-start heads
   (output-side state — pipeline, allocation, round-robin pointer — is
   per-output and mutated only at that output's own turn, so phase-start
   values are exact for it), then detects the single hazard: a winner's
   pop revealing a new head whose requested output has a strictly greater
   within-switch rank. Any ``(replication, switch)`` pair that trips the
   detector has its vectorized winners suppressed and is re-arbitrated by
   an exact scalar replica of the solo loop from untouched phase-start
   state. Cross-switch and cross-replication pairs share no state, so the
   repair is local and the common hazard-free case stays fully vectorized.
5. **Event skip** fires only when *every* unfinished replication has empty
   source queues and empty input buffers; the jump target is the minimum
   over replications of the solo engine's own target (next scheduled
   injection or drain bound, clamped by the earliest pipeline-ready head).
   Cycles the solo engine would skip but the batch engine crawls are
   no-ops for the idle replication by construction, so per-replication
   finish cycles — and therefore ``drain_cycles`` — are identical.

Latency statistics accumulate as int64 sums and are divided as python
integers at the end, reproducing the solo engine's floats bit for bit.

Memory model
------------

State scales as ``K × (links + flows + packets × L)`` — for a few hundred
replications of a ~60-link design a few tens of MB — plus transient
active-list arrays bounded by the number of simultaneously in-flight flits.
Index arrays are word-sized (numpy re-converts narrower dtypes on every
fancy-indexing call, which costs more than the memory saved); per-flit
value arrays are int32, and a batch is rejected if ``K × P_max × L``
reaches 2^31 flits. Link pipelines and input buffers are power-of-two
ring buffers addressed flat (``entity × capacity + (counter & mask)``)
and grown geometrically, and
phase 2 is event-driven off two wake-up calendars (eject links / internal
links) keyed by head-ready cycle, so idle pipelines cost nothing.
"""

from __future__ import annotations

import math
from itertools import chain
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import SynthesisError
from repro.noc.scenarios import ScenarioSpec, build_schedule, make_scenario
from repro.rng import make_np_rng, make_rng

#: Dtype for entity / flit index arrays. Everything that is *used as an
#: index* is kept at the platform word size: numpy converts any other
#: integer dtype to ``intp`` on every fancy-indexing call, and at this
#: engine's array sizes that hidden copy costs more than the memory the
#: narrower dtype would save. Bulk per-flit *value* arrays (hop counters,
#: ready cycles) stay int32 — see the memory-model notes above.
_I = np.int64

#: Diagnostic: total (replication, switch) pairs re-arbitrated by the exact
#: scalar fallback because the optimistic vectorized pass detected the
#: revealed-successor hazard. The differential suite reads this to prove the
#: repair path is actually exercised by its workloads.
DIRTY_REDOS = 0


def _mt_state(seed: int, *salt: object) -> np.random.RandomState:
    """A numpy RandomState whose ``random_sample`` stream bit-equals
    ``make_rng(seed, *salt).random()`` draw for draw — the property the
    vectorized schedule sampler rests on (and that
    ``tests/test_batchengine.py`` pins directly). The seed derivation
    itself lives in :func:`repro.rng.make_np_rng`, the one module allowed
    to construct generators.
    """
    return make_np_rng(seed, *salt)


def _bernoulli_events(probs, cycles: int, rs) -> tuple:
    """Flow-major arrival events of a memoryless scenario, vectorized.

    Consumes ``rs`` exactly as :func:`repro.noc.scenarios._bernoulli_schedule`
    consumes its ``random.Random`` — same draw count per flow, same order —
    and returns ``(fi, cycle)`` int arrays of every arrival in flow-major
    order. Gap floors are computed with ``np.log`` and re-derived with
    ``math.log`` wherever the value sits within 1e-9 (relative) of an
    integer or of the horizon, the only window where a ulp-level libm
    difference could change ``int(g)`` or the ``g < cycles`` clamp.
    """
    exp_total = sum(p for p in probs if 0.0 < p < 1.0) * cycles
    n0 = int(exp_total + 10.0 * math.sqrt(exp_total + 1.0)) + 64
    u = rs.random_sample(n0)
    lg = np.log(1.0 - u)
    pos = 0
    fis: List[np.ndarray] = []
    cycs: List[np.ndarray] = []
    for fi, p in enumerate(probs):
        if p <= 0.0:
            continue
        if p >= 1.0:
            fis.append(np.full(cycles, fi, dtype=np.int64))
            cycs.append(np.arange(cycles, dtype=np.int64))
            continue
        inv = 1.0 / math.log1p(-p)
        if not math.isfinite(inv):
            continue
        window = int(cycles * p + 10.0 * math.sqrt(cycles * p + 1.0)) + 16
        J = 0  # draws consumed by this flow
        S = 0  # sum of consumed gaps
        parts: List[np.ndarray] = []
        while True:
            end = pos + J + window
            if end > u.size:
                extra = max(end - u.size, 4096)
                u2 = rs.random_sample(extra)
                u = np.concatenate((u, u2))
                lg = np.concatenate((lg, np.log(1.0 - u2)))
            sl = slice(pos + J, end)
            x = lg[sl] * inv  # >= 0; may overflow to inf for tiny p
            g = np.full(window, cycles, dtype=np.int64)
            safe = x < cycles
            xs = x[safe]
            gi = xs.astype(np.int64)
            g[safe] = gi
            # ulp guard: a floor can only flip where np.log and math.log
            # straddle an integer (or the horizon clamp).
            frac = xs - gi
            tol = 1e-9 * (xs + 1.0)
            sus = np.zeros(window, dtype=bool)
            sus[safe] = (frac <= tol) | (frac >= 1.0 - tol)
            with np.errstate(invalid="ignore"):
                sus |= np.abs(x - cycles) <= 1e-9 * (cycles + 1.0)
            if sus.any():
                uu = u[sl]
                for i in np.nonzero(sus)[0].tolist():
                    gg = math.log(1.0 - float(uu[i])) * inv
                    g[i] = int(gg) if gg < cycles else cycles
            # arrival cycles: c_j = sum(g_0..j) + j, strictly increasing
            c = S + J + np.cumsum(g) + np.arange(window, dtype=np.int64)
            t = int(np.searchsorted(c, cycles))
            if t < window:
                if t:
                    parts.append(c[:t])
                J += t + 1
                break
            parts.append(c)
            J += window
            S = int(c[-1]) - (J - 1)
        pos += J
        if parts:
            arr = np.concatenate(parts) if len(parts) > 1 else parts[0]
            fis.append(np.full(arr.size, fi, dtype=np.int64))
            cycs.append(arr)
    if not fis:
        z = np.zeros(0, dtype=np.int64)
        return z, z
    return np.concatenate(fis), np.concatenate(cycs)


def _bernoulli_events_all(probs, cycles: int, states) -> tuple:
    """All K replications' arrivals for one shared probability vector.

    The cross-replication variant of :func:`_bernoulli_events`: each
    replication's stream is drawn into one row of a ``(K, n)`` matrix up
    front, and every flow's geometric-gap walk then runs over all K rows at
    once — same draws, same order, same guarded floors, ~K× fewer python
    dispatches. Returns ``(k, fi, cycle)`` arrival arrays (replication-
    major, flow-major within a replication) plus a boolean mask of
    replications that exhausted their pre-drawn row or failed to terminate
    inside a window (vanishingly rare); their rows carry garbage and the
    caller rebuilds them through the per-replication path.
    """
    K = len(states)
    exp_total = sum(p for p in probs if 0.0 < p < 1.0) * cycles
    n0 = int(exp_total + 10.0 * math.sqrt(exp_total + 1.0)) + 64
    U = np.empty((K, n0))
    for k, rs in enumerate(states):
        U[k] = rs.random_sample(n0)
    LG = np.log(1.0 - U)
    rows = np.arange(K)
    pos = np.zeros(K, dtype=np.int64)
    bad = np.zeros(K, dtype=bool)
    ks: List[np.ndarray] = []
    fis: List[np.ndarray] = []
    cycs: List[np.ndarray] = []
    for fi, p in enumerate(probs):
        if p <= 0.0:
            continue
        if p >= 1.0:
            ks.append(np.repeat(rows, cycles))
            fis.append(np.full(K * cycles, fi, dtype=np.int64))
            cycs.append(np.tile(np.arange(cycles, dtype=np.int64), K))
            continue
        inv = 1.0 / math.log1p(-p)
        if not math.isfinite(inv):
            continue
        w = int(cycles * p + 10.0 * math.sqrt(cycles * p + 1.0)) + 16
        idx = pos[:, None] + np.arange(w)
        over = idx[:, -1] >= n0
        if over.any():
            bad |= over
            np.clip(idx, 0, n0 - 1, out=idx)
        x = LG[rows[:, None], idx] * inv
        safe_x = np.where(x < cycles, x, 0.0)  # inf/overdraws clamp below
        g = safe_x.astype(np.int64)
        unsafe = ~(x < cycles)
        if unsafe.any():
            g[unsafe] = cycles
        # ulp guard, as in _bernoulli_events (matrix form): floor check on
        # in-range draws, horizon check on every draw (a clamped value a
        # whisker above the horizon may fall below it under math.log).
        frac = safe_x - g
        tol = 1e-9 * (safe_x + 1.0)
        sus = ((frac <= tol) | (frac >= 1.0 - tol)) & ~unsafe
        with np.errstate(invalid="ignore"):
            sus |= np.abs(x - cycles) <= 1e-9 * (cycles + 1.0)
        if sus.any():
            for r, i in zip(*(a.tolist() for a in np.nonzero(sus))):
                uu = float(U[r, idx[r, i]])
                gg = math.log(1.0 - uu) * inv
                g[r, i] = int(gg) if gg < cycles else cycles
        c = np.cumsum(g, axis=1) + np.arange(w)
        live = c < cycles
        t = live.sum(axis=1)  # per-row first index with c >= cycles
        unterminated = t >= w
        if unterminated.any():
            bad |= unterminated
        if bad.any():
            live[bad] = False
            t = np.where(bad, 0, t)
        cnt = live.sum(axis=1)
        ks.append(np.repeat(rows, cnt))
        cycs.append(c[live])
        fis.append(np.full(int(cnt.sum()), fi, dtype=np.int64))
        pos += t + 1
    if not ks:
        z = np.zeros(0, dtype=np.int64)
        return z, z, z, bad
    return (
        np.concatenate(ks), np.concatenate(fis), np.concatenate(cycs), bad,
    )


def simulate_batch(
    sim,
    *,
    cycles: int,
    warmup: int,
    injection_scale: float,
    seeds: Sequence[int],
    scenario: object = None,
    drain_limit: Optional[int] = None,
    traces: Optional[Sequence[list]] = None,
):
    """Run K lockstep replications; returns one stats object per seed.

    ``sim`` is a validated :class:`~repro.noc.simulator.WormholeSimulator`.
    ``scenario`` is either one :data:`~repro.noc.scenarios.ScenarioSpec`
    applied to every replication or a sequence of ``len(seeds)`` specs
    (one per replication, matched shapes). ``traces``, when given, is a
    sequence of ``len(seeds)`` lists each collecting that replication's
    ``("deliver"|"eject", cycle, link_id, packet_id)`` events exactly as a
    solo run's ``trace`` argument would.
    """
    from repro.noc.simulator import SimulationStats  # circular at import time

    if drain_limit is None:
        drain_limit = cycles
    if drain_limit < 0:
        raise SynthesisError("drain limit must be >= 0")
    seeds = list(seeds)
    K = len(seeds)
    scenarios = _per_replication_scenarios(scenario, K)
    if traces is not None and len(traces) != K:
        raise SynthesisError(
            f"got {len(traces)} trace sinks for {K} replications"
        )
    if K == 0:
        return []

    topo = sim.topology
    L = sim.packet_length
    tail_k = L - 1
    depth = sim.buffer_depth

    flows = sorted(topo.routes)
    F = len(flows)
    probs = [sim._inject_prob[f] * injection_scale for f in flows]

    links = topo.links
    nl = len(links)
    delay_py = list(sim._link_delay)
    routes = [topo.routes[f] for f in flows]
    route_len = [len(r) for r in routes]

    delay = np.asarray(delay_py, dtype=_I)
    first_link = np.asarray([r[0] for r in routes], dtype=_I)
    is_eject = np.asarray([l.dst[0] == "core" for l in links], dtype=bool)
    route_len_arr = np.asarray(route_len, dtype=_I)
    route_off = np.zeros(F + 1, dtype=_I)
    np.cumsum(route_len_arr, out=route_off[1:])
    route_flat = np.asarray(list(chain.from_iterable(routes)), dtype=_I)

    # Switch arbitration structure, in the solo iteration order: out_ids is
    # ascending output link id, and every output of a switch shares the
    # switch's sorted incoming-link list, so a link's scan position is a
    # per-switch constant.
    inputs_map = sim._inputs_per_link()
    out_ids = [o for o, inputs in inputs_map.items() if inputs]
    n_out = len(out_ids)
    switch_ids = sorted({links[o].src[1] for o in out_ids})
    sw_index = {sw: i for i, sw in enumerate(switch_ids)}
    n_sw = len(switch_ids)
    switch_outputs: List[List[int]] = [[] for _ in range(n_sw)]
    out_oi = np.full(nl, -1, dtype=_I)       # lid -> index into rr
    out_rank = np.full(nl, -1, dtype=_I)     # lid -> rank in switch
    out_sw = np.full(nl, -1, dtype=_I)       # lid -> switch index
    n_inputs_of = np.zeros(nl, dtype=_I)     # lid -> len(inputs)
    pos_of_input = np.full(nl, -1, dtype=_I)  # input lid -> scan pos
    for oi, out in enumerate(out_ids):
        sw = sw_index[links[out].src[1]]
        out_oi[out] = oi
        out_sw[out] = sw
        out_rank[out] = len(switch_outputs[sw])
        switch_outputs[sw].append(out)
        n_inputs_of[out] = len(inputs_map[out])
    switch_inputs: List[List[int]] = [[] for _ in range(n_sw)]
    for sw, outs in enumerate(switch_outputs):
        switch_inputs[sw] = inputs_map[outs[0]]
        for pos, lid in enumerate(switch_inputs[sw]):
            pos_of_input[lid] = pos
    # Fused hop -> within-switch rank table for the hazard detector.
    route_rank_flat = out_rank[route_flat]

    # ---------------------------------------------------------------------
    # Schedule building — the only entropy sink, one solo-identical stream
    # per replication — and its flattening into injection-event arrays.
    # Memoryless scenarios take the vectorized sampler; stateful ones the
    # scalar builder (see the module docstring's bit-exactness argument).
    sched_fi: List[np.ndarray] = []    # per k: flow index per packet, pid order
    sched_cycle: List[np.ndarray] = []  # per k: injection cycle per packet
    if F != len(probs):  # pragma: no cover - same construction, same length
        raise SynthesisError(f"got {F} flows but {len(probs)} probabilities")
    shared_eff = None
    if K > 1 and all(s is scenarios[0] for s in scenarios):
        shared_eff = make_scenario(scenarios[0]).bernoulli_probs(flows, probs)
    if shared_eff is not None:
        # One memoryless spec across the batch: sample every replication's
        # stream in one matrix pass, then lexsort once globally — the
        # (k, cycle, flow) order *is* replication-major pid order.
        states = [_mt_state(s, "wormhole") for s in seeds]
        k_all, fi_all, cyc_all, bad = _bernoulli_events_all(
            shared_eff, cycles, states
        )
        if bad.any():
            keep = ~bad[k_all]
            k_all, fi_all, cyc_all = k_all[keep], fi_all[keep], cyc_all[keep]
        order = np.lexsort((fi_all, cyc_all, k_all))
        k_all = k_all[order]
        fi_all = fi_all[order]
        cyc_all = cyc_all[order]
        offs = np.zeros(K + 1, dtype=np.int64)
        np.cumsum(np.bincount(k_all, minlength=K), out=offs[1:])
        for k in range(K):
            if bad[k]:  # overdrew its pre-sized row: solo-path rebuild
                fi_k, cyc_k = _bernoulli_events(
                    shared_eff, cycles, _mt_state(seeds[k], "wormhole")
                )
                o2 = np.lexsort((fi_k, cyc_k))
                fi_k = fi_k[o2]
                cyc_k = cyc_k[o2]
            else:
                fi_k = fi_all[offs[k]:offs[k + 1]]
                cyc_k = cyc_all[offs[k]:offs[k + 1]]
            sched_fi.append(fi_k)
            sched_cycle.append(cyc_k)
    else:
        for k in range(K):
            scen = make_scenario(scenarios[k])
            eff = scen.bernoulli_probs(flows, probs)
            if eff is not None:
                fi_k, cyc_k = _bernoulli_events(eff, cycles, _mt_state(
                    seeds[k], "wormhole"
                ))
                order = np.lexsort((fi_k, cyc_k))
                fi_k = fi_k[order]
                cyc_k = cyc_k[order]
            else:
                rng = make_rng(seeds[k], "wormhole")
                sched = build_schedule(scen, flows, probs, cycles, rng)
                tot = sum(map(len, sched))
                fi_k = np.fromiter(
                    chain.from_iterable(sched), dtype=np.int64, count=tot
                )
                cyc_k = np.repeat(
                    np.arange(cycles, dtype=np.int64),
                    np.fromiter(map(len, sched), np.int64, count=cycles),
                )
            sched_fi.append(fi_k)
            sched_cycle.append(cyc_k)

    tot_k = np.asarray([a.size for a in sched_fi], dtype=np.int64)
    k_cat = np.repeat(np.arange(K, dtype=np.int64), tot_k)
    cyc_cat = (
        np.concatenate(sched_cycle) if sched_cycle else np.zeros(0, np.int64)
    )
    lens2d = np.bincount(
        k_cat * cycles + cyc_cat, minlength=K * cycles
    ).reshape(K, cycles)
    Pmax = max(1, int(tot_k.max()))
    NP = K * Pmax          # packet-slot count (flat packet index space)
    if NP * L >= 2**31:
        raise SynthesisError(
            f"batch of {K} x {Pmax} packets x {L} flits exceeds the 2^31 "
            "flit-state bound; split the batch"
        )

    # pkt_flow / pkt_cycle, flat over p = k * Pmax + pid.
    pkt_flow = np.zeros(NP, dtype=_I)
    pkt_cycle = np.full(NP, cycles, dtype=_I)
    # Source-queue packet order: pids of each (k, flow), injection order.
    fp_off = np.zeros(K * F + 1, dtype=_I)
    fp_chunks: List[np.ndarray] = []
    for k in range(K):
        base = k * Pmax
        n = int(tot_k[k])
        pkt_flow[base:base + n] = sched_fi[k]
        pkt_cycle[base:base + n] = sched_cycle[k]
        order = np.argsort(sched_fi[k], kind="stable")
        fp_chunks.append(order.astype(_I))
        fp_off[k * F + 1:(k + 1) * F + 1] = (
            fp_off[k * F]
            + np.cumsum(np.bincount(sched_fi[k], minlength=F))
        ).astype(_I)
    flow_pid = (
        np.concatenate(fp_chunks) if fp_chunks else np.zeros(0, _I)
    )

    # Global injection events sorted by cycle, with per-cycle offsets.
    inj_k = k_cat.astype(_I)
    inj_fi = (
        np.concatenate(sched_fi) if sched_fi else np.zeros(0, np.int64)
    ).astype(_I)
    inj_cycle = cyc_cat.astype(_I)
    order = np.argsort(inj_cycle, kind="stable")
    inj_k = inj_k[order]
    inj_fi = inj_fi[order]
    inj_cycle = inj_cycle[order]
    inj_off = np.searchsorted(
        inj_cycle, np.arange(cycles + 1, dtype=np.int64)
    ).tolist()

    # next_inj[k, c]: first cycle >= c with a scheduled injection for k (or
    # the horizon) — the per-replication event-skip target.
    arange_c = np.arange(cycles, dtype=_I)
    next_inj = np.full((K, cycles + 1), cycles, dtype=_I)
    marked = np.where(lens2d > 0, arange_c[None, :], _I(cycles))
    next_inj[:, :cycles] = np.minimum.accumulate(
        marked[:, ::-1], axis=1
    )[:, ::-1]
    drain_end = cycles + drain_limit

    # Packets injected at/after warmup — a schedule property, countable now.
    injected = np.asarray(
        [int((c >= warmup).sum()) for c in sched_cycle], dtype=np.int64
    )

    # ---------------------------------------------------------------------
    # Dynamic state, flat over e = k * nl + lid / s = k * F + fi. Ring
    # cursors are monotonic counters (length = tail - head, slot = counter
    # mod capacity), saving a wrap pass on every pop/push.
    E = K * nl
    S = K * F
    cap = 16
    pmask = cap - 1
    bcap = 1 << (depth - 1).bit_length()  # ring capacity >= depth, pow2
    bmask = bcap - 1
    pipe_buf = np.zeros((E, cap), dtype=_I)
    pipe_flat = pipe_buf.reshape(-1)
    pipe_head = np.zeros(E, dtype=_I)
    pipe_tail = np.zeros(E, dtype=_I)
    pipe_last = np.zeros(E, dtype=_I)
    buf_buf = np.zeros((E, bcap), dtype=_I)
    buf_flat = buf_buf.reshape(-1)
    buf_head = np.zeros(E, dtype=_I)
    buf_tail = np.zeros(E, dtype=_I)
    alloc = np.full(E, -1, dtype=_I)
    q_sent = np.zeros(S, dtype=_I)
    q_avail = np.zeros(S, dtype=_I)
    rr = np.zeros(K * n_out, dtype=_I)
    flit_hop = np.zeros(NP * L, dtype=np.int32)
    flit_ready = np.zeros(NP * L, dtype=np.int32)
    is_tail = np.zeros(NP * L, dtype=bool)
    is_tail[tail_k::L] = True
    is_eject_e = np.tile(is_eject, K)

    empty = np.zeros(0, dtype=_I)
    act_buf = empty    # link entities with a non-empty input buffer
    in_src = np.zeros(S, dtype=bool)
    in_buf = np.zeros(E, dtype=bool)

    # Active sources plus cached per-entity constants (replication, flow,
    # first-link entity, link delay, queue-order base) — recomputing these
    # from ``s`` every cycle costs more than filtering them alongside.
    act_src = empty
    as_kv = empty
    as_fi = empty
    as_e = empty
    as_dly = empty
    as_fpo = empty

    # Phase 2 is event-driven: a pipeline is touched only on the cycle its
    # head flit ripens. Two calendars — eject links and internal links, so
    # the wake-up sets need no is_eject partitioning — map cycle ->
    # [(entities, head fids)] scheduled when a flit lands on an empty
    # pipeline or a pop reveals a successor; the head fid is recorded at
    # schedule time (a head changes only by being popped, which reschedules
    # its successor, so the recorded value is exact at wake). ``blocked``
    # holds heads that found their downstream buffer full and must retry
    # every cycle until credit frees, exactly like the solo per-cycle
    # re-test.
    cal_ej: dict = {}
    cal_mv: dict = {}
    blocked_e = empty
    blocked_f = empty

    outstanding = np.zeros(K, dtype=np.int64)
    flits_delivered = np.zeros(K, dtype=np.int64)
    drain_rec = np.zeros(K, dtype=np.int64)
    done = np.zeros(K, dtype=bool)
    n_done = 0

    # Latency bookkeeping is append-only inside the loop — nothing reads
    # it until the stats assembly — so ejected tails are only *recorded*
    # per cycle (packet, replication, eject cycle) and every latency
    # reduction runs once, vectorized, after the loop.
    ej_pk: List[np.ndarray] = []   # packet index per ejected tail
    ej_kk: List[np.ndarray] = []   # replication per ejected tail
    ej_cyc: List[int] = []         # eject cycle per chunk
    ej_n: List[int] = []           # chunk length

    # Persistent scratch, reset sparsely after every use. The ``posv_*``
    # claim boards need no reset at all: each cycle re-scatters fresh
    # positions before reading, so stale entries are never observed.
    dirty_sw = np.zeros(K * n_sw, dtype=bool)    # phase-4 hazard marks
    posv_e = np.zeros(E, dtype=_I)               # phase-3 claim board
    flag_e = np.zeros(E, dtype=bool)             # phase-3 contested links
    posv_o = np.zeros(K * n_out, dtype=_I)       # phase-4 claim board
    flag_o = np.zeros(K * n_out, dtype=bool)     # phase-4 contested outputs

    def sched_into(cal: dict, e_arr, f_arr, t_arr) -> None:
        """Wake the pipelines ``e_arr`` (heads ``f_arr``) at ``t_arr``."""
        lo = int(t_arr.min())
        hi = int(t_arr.max())
        if lo == hi:  # common case: one shared link delay
            cal.setdefault(lo, []).append((e_arr, f_arr))
            return
        if hi - lo <= 8:  # few distinct wake cycles: skip the sort
            for t in range(lo, hi + 1):
                m = t_arr == t
                if m.any():
                    cal.setdefault(t, []).append((e_arr[m], f_arr[m]))
            return
        for t in np.unique(t_arr).tolist():
            m = t_arr == t
            cal.setdefault(t, []).append((e_arr[m], f_arr[m]))

    def grow_pipes(need: int) -> None:
        nonlocal cap, pmask, pipe_buf, pipe_flat
        new_cap = cap
        while new_cap < need:
            new_cap *= 2
        # Re-layout every ring contiguously from slot 0 and rebase cursors.
        length = pipe_tail - pipe_head
        idx = (pipe_head[:, None] + np.arange(cap, dtype=_I)) & pmask
        new_buf = np.zeros((E, new_cap), dtype=_I)
        new_buf[:, :cap] = pipe_buf[np.arange(E)[:, None], idx]
        pipe_buf = new_buf
        pipe_flat = new_buf.reshape(-1)
        pipe_head[:] = 0
        pipe_tail[:] = length
        cap = new_cap
        pmask = new_cap - 1

    def push_pipe(e_idx: np.ndarray, fids: np.ndarray, ready) -> None:
        """Append ``fids`` to the pipelines ``e_idx`` (unique entities)."""
        if e_idx.size == 0:
            return
        lens = pipe_tail[e_idx] - pipe_head[e_idx]
        if int(lens.max()) >= cap:
            grow_pipes(int(lens.max()) + 1)  # rebases the ring cursors
        t = pipe_tail[e_idx]
        flit_ready[fids] = ready
        pipe_last[e_idx] = ready
        pipe_flat[e_idx * cap + (t & pmask)] = fids
        pipe_tail[e_idx] = t + 1
        was_empty = lens == 0
        if was_empty.any():
            # ready >= cycle + 1 always (link delays are >= 1).
            ew = e_idx[was_empty]
            fw = fids[was_empty]
            tw = ready[was_empty]
            ejm = is_eject_e[ew]
            if ejm.any():
                sched_into(cal_ej, ew[ejm], fw[ejm], tw[ejm])
            if not ejm.all():
                mv = ~ejm
                sched_into(cal_mv, ew[mv], fw[mv], tw[mv])

    def arbitrate_switch_scalar(k: int, sw: int, cycle: int) -> None:
        """Exact solo-order arbitration of one (replication, switch) pair.

        The vectorized pass suppressed this pair's winners before applying
        anything, so the state seen here is untouched phase-start state and
        the scalar walk reproduces the solo loop verbatim.
        """
        inputs = switch_inputs[sw]
        n = len(inputs)
        kb_l = k * nl
        for out in switch_outputs[sw]:
            roi = k * n_out + int(out_oi[out])
            start = int(rr[roi])
            oe = kb_l + out
            dly = delay_py[out]
            for k2 in range(n):
                pos = start + k2
                if pos >= n:
                    pos -= n
                ie = kb_l + inputs[pos]
                if buf_tail[ie] == buf_head[ie]:
                    continue
                fid = int(buf_buf[ie, buf_head[ie] & bmask])
                p = fid // L
                j = fid - p * L
                fi = int(pkt_flow[p])
                hop_next = int(flit_hop[fid]) + 1
                if hop_next >= route_len[fi]:
                    continue
                if routes[fi][hop_next] != out:
                    continue
                plen = int(pipe_tail[oe] - pipe_head[oe])
                if plen and pipe_last[oe] >= cycle + dly:
                    continue
                if j == 0:
                    if alloc[oe] != -1:
                        continue
                    alloc[oe] = p
                elif alloc[oe] != p:
                    continue
                ready = cycle + dly
                flit_ready[fid] = ready
                pipe_last[oe] = ready
                if plen >= cap:
                    grow_pipes(plen + 1)
                pipe_buf[oe, pipe_tail[oe] & pmask] = fid
                pipe_tail[oe] += 1
                if plen == 0:
                    cal = cal_ej if is_eject_e[oe] else cal_mv
                    cal.setdefault(ready, []).append((
                        np.asarray([oe], dtype=_I),
                        np.asarray([fid], dtype=_I),
                    ))
                if j == tail_k:
                    alloc[oe] = -1
                flit_hop[fid] = hop_next
                buf_head[ie] += 1
                rr[roi] = pos + 1 if pos + 1 < n else 0
                break  # one flit per output per cycle

    def wake(cal: dict, cycle: int):
        """Pop and merge this cycle's wake-ups from one calendar."""
        due = cal.pop(cycle, None)
        if due is None:
            return empty, empty
        if len(due) == 1:
            e2, f2 = due[0]
        else:
            e2 = np.concatenate([d[0] for d in due])
            f2 = np.concatenate([d[1] for d in due])
        if n_done and e2.size:
            live = ~done[e2 // nl]
            if not live.all():
                e2, f2 = e2[live], f2[live]
        return e2, f2

    # ---------------------------------------------------------------------
    cycle = 0
    while True:
        # 1a. Per-replication completion, exactly the solo loop's top-of-
        # cycle break test; finished replications leave every active list.
        if cycle >= cycles:
            fin = ~done & (
                (outstanding == 0) | (cycle - cycles >= drain_limit)
            )
            if fin.any():
                idx = np.nonzero(fin)[0]
                done[idx] = True
                drain_rec[idx] = cycle - cycles if cycle > cycles else 0
                n_done += idx.size
                if blocked_e.size:
                    live = ~done[blocked_e // nl]
                    blocked_e = blocked_e[live]
                    blocked_f = blocked_f[live]
                if act_buf.size:
                    gone = done[act_buf // nl]
                    in_buf[act_buf[gone]] = False
                    act_buf = act_buf[~gone]
                if act_src.size:
                    gone = done[as_kv]
                    in_src[act_src[gone]] = False
                    keep = ~gone
                    act_src = act_src[keep]
                    as_kv = as_kv[keep]
                    as_fi = as_fi[keep]
                    as_e = as_e[keep]
                    as_dly = as_dly[keep]
                    as_fpo = as_fpo[keep]
            if n_done == K:
                break

        # 1b. Packet generation from the pre-drawn schedules.
        if cycle < cycles and inj_off[cycle + 1] > inj_off[cycle]:
            sl = slice(inj_off[cycle], inj_off[cycle + 1])
            kk = inj_k[sl]
            fi_new = inj_fi[sl]
            s_idx = kk * F + fi_new
            q_avail[s_idx] += L  # each (k, flow) appears at most once/cycle
            np.add.at(outstanding, kk, L)
            fresh = ~in_src[s_idx]
            if fresh.any():
                sf = s_idx[fresh]
                in_src[sf] = True
                kf = kk[fresh]
                ff = fi_new[fresh]
                lf = first_link[ff]
                act_src = np.concatenate((act_src, sf))
                as_kv = np.concatenate((as_kv, kf))
                as_fi = np.concatenate((as_fi, ff))
                as_e = np.concatenate((as_e, kf * nl + lf))
                as_dly = np.concatenate((as_dly, delay[lf]))
                as_fpo = np.concatenate((as_fpo, fp_off[sf]))

        ev_k = ev_lid = ev_pid = ev_ej = None  # this cycle's trace events

        # 2. Link delivery: at most one ready head flit leaves each
        # pipeline — ejected at a core, or moved into the downstream input
        # buffer if credit allows. Per-link independent, so one scatter,
        # and event-driven: only pipelines woken by a calendar (head
        # ripens this cycle) or retrying after back-pressure are touched;
        # every such head is ready by construction.
        ee, he = wake(cal_ej, cycle)
        en, hn = wake(cal_mv, cycle)
        if blocked_e.size:
            en = np.concatenate((blocked_e, en))
            hn = np.concatenate((blocked_f, hn))
            blocked_e = blocked_f = empty
        if ee.size:
            hh = pipe_head[ee] + 1
            pipe_head[ee] = hh
            ke = ee // nl
            cnt = np.bincount(ke, minlength=K)
            flits_delivered += cnt
            outstanding -= cnt
            tail = is_tail[he]
            ht = he[tail]
            if ht.size:
                pt = ht // L
                et = ee[tail]
                ej_pk.append(pt)
                ej_kk.append(ke[tail])
                ej_cyc.append(cycle)
                ej_n.append(pt.size)
                freed = alloc[et] == pt
                alloc[et[freed]] = -1
            more = pipe_tail[ee] > hh
            pr = ee[more]
            if pr.size:
                nh = pipe_flat[pr * cap + (hh[more] & pmask)]
                sched_into(
                    cal_ej, pr, nh, np.maximum(flit_ready[nh], cycle + 1)
                )
        if en.size:
            bt = buf_tail[en]
            room = bt - buf_head[en] < depth
            if not room.all():
                # Back-pressure: the flit waits at the link tail and
                # re-tests its downstream buffer every cycle.
                blocked_e = en[~room]
                blocked_f = hn[~room]
                en, hn, bt = en[room], hn[room], bt[room]
        if en.size:
            hh = pipe_head[en] + 1
            pipe_head[en] = hh
            buf_flat[en * bcap + (bt & bmask)] = hn
            buf_tail[en] = bt + 1
            fresh = en[~in_buf[en]]
            if fresh.size:
                in_buf[fresh] = True
                act_buf = np.concatenate((act_buf, fresh))
            more = pipe_tail[en] > hh
            pr = en[more]
            if pr.size:
                nh = pipe_flat[pr * cap + (hh[more] & pmask)]
                sched_into(
                    cal_mv, pr, nh, np.maximum(flit_ready[nh], cycle + 1)
                )
        if traces is not None and (ee.size or en.size):
            ev_e = np.concatenate((ee, en))
            ev_k = ev_e // nl
            ev_lid = ev_e - ev_k * nl
            ev_pid = np.concatenate((he, hn)) // L - ev_k * Pmax
            ev_ej = np.zeros(ev_e.size, dtype=bool)
            ev_ej[:ee.size] = True

        p3_push = None  # deferred phase-3 pipeline push (merged into 4)

        # 3. Source injection: queue head -> first link of the route, in
        # the cycle-rotated flow order. Flows interact only through a
        # shared first link; the ordered winner is the minimum-rank
        # candidate passing the phase-start wormhole test (losers are
        # refused by the pipeline-slot test and mutate nothing).
        if act_src.size:
            pos = q_sent[act_src]
            live = pos < q_avail[act_src]
            if not live.all():
                in_src[act_src[~live]] = False
                act_src = act_src[live]
                as_kv = as_kv[live]
                as_fi = as_fi[live]
                as_e = as_e[live]
                as_dly = as_dly[live]
                as_fpo = as_fpo[live]
                pos = pos[live]
            if act_src.size:
                e = as_e
                pk_i, j = np.divmod(pos, L)
                open_pipe = ~(
                    (pipe_tail[e] != pipe_head[e])
                    & (pipe_last[e] >= cycle + as_dly)
                )
                # Body flits (j > 0) hold their first link's wormhole by
                # construction — only a head needs the allocation free.
                ok = (j != 0) | (alloc[e] == -1)
                cand = open_pipe & ok
                if cand.any():
                    # Winner per contended first link = the minimum-rank
                    # candidate. Contention is rare, so first detect it
                    # with a scatter claim board (last writer per link
                    # sees its own position back) and sort only the
                    # contested links' candidates by (link, rank); ranks
                    # are distinct per link, so ties cannot arise.
                    ci = np.nonzero(cand)[0]
                    ec = e[ci]
                    ar = np.arange(ci.size)
                    posv_e[ec] = ar
                    sole = posv_e[ec] == ar
                    if sole.all():
                        wi = ci
                    else:
                        flagged = ec[~sole]
                        flag_e[flagged] = True
                        contested = flag_e[ec]
                        cc = ci[contested]
                        ecc = e[cc]
                        rank = (as_fi[cc] - (cycle % F)) % F
                        o2 = np.lexsort((rank, ecc))
                        ec_s = ecc[o2]
                        firstw = np.empty(o2.size, dtype=bool)
                        firstw[0] = True
                        np.not_equal(ec_s[1:], ec_s[:-1], out=firstw[1:])
                        wi = np.concatenate(
                            (ci[~contested], cc[o2[firstw]])
                        )
                        flag_e[flagged] = False
                    ew = e[wi]
                    jw = j[wi]
                    pw = as_kv[wi] * Pmax + flow_pid[as_fpo[wi] + pk_i[wi]]
                    # Source links (core outputs) and phase-4 switch
                    # outputs are disjoint, so the actual pipeline push
                    # is deferred and merged with phase 4's — one
                    # push_pipe call instead of two.
                    p3_push = (ew, pw * L + jw, cycle + as_dly[wi])
                    hw = jw == 0
                    alloc[ew[hw]] = pw[hw]
                    tw = jw == tail_k
                    alloc[ew[tw]] = -1
                    q_sent[act_src[wi]] += 1

        # 4. Switch arbitration: optimistic vectorized winners from
        # phase-start buffer heads, with the revealed-successor hazard
        # repaired by an exact scalar redo of the affected switch.
        if act_buf.size:
            e = act_buf
            bh = buf_head[e]
            head = buf_flat[e * bcap + (bh & bmask)]
            p = head // L
            j = head - p * L
            fiv = pkt_flow[p]
            hop1 = flit_hop[head] + 1
            valid = hop1 < route_len_arr[fiv]
            if not valid.all():
                e, bh, head, p, j, fiv, hop1 = (
                    a[valid] for a in (e, bh, head, p, j, fiv, hop1)
                )
            if e.size:
                kv = e // nl
                out = route_flat[route_off[fiv] + hop1]
                oe = kv * nl + out
                dly = delay[out]
                open_pipe = ~(
                    (pipe_tail[oe] != pipe_head[oe])
                    & (pipe_last[oe] >= cycle + dly)
                )
                ok = alloc[oe] == np.where(j == 0, _I(-1), p)
                cand = open_pipe & ok
                if cand.any():
                    # Winner per contended output = minimum round-robin
                    # scan rank. As in phase 3: scatter claim board to
                    # find contested outputs, sort only their candidates
                    # by (output, rank); input scan positions are
                    # distinct, so ranks are tie-free per output.
                    ci = np.nonzero(cand)[0]
                    croi = kv[ci] * n_out + out_oi[out[ci]]
                    ar = np.arange(ci.size)
                    posv_o[croi] = ar
                    sole = posv_o[croi] == ar
                    if sole.all():
                        wi = ci
                        wroi = croi
                    else:
                        flagged = croi[~sole]
                        flag_o[flagged] = True
                        contested = flag_o[croi]
                        cidx = np.nonzero(contested)[0]
                        cc = ci[cidx]
                        ccroi = croi[cidx]
                        poss = pos_of_input[e[cc] - kv[cc] * nl]
                        rank = (poss - rr[ccroi]) % n_inputs_of[out[cc]]
                        o2 = np.lexsort((rank, ccroi))
                        roi_s = ccroi[o2]
                        firstw = np.empty(o2.size, dtype=bool)
                        firstw[0] = True
                        np.not_equal(roi_s[1:], roi_s[:-1], out=firstw[1:])
                        sel = o2[firstw]
                        uncont = ~contested
                        wi = np.concatenate((ci[uncont], cc[sel]))
                        wroi = np.concatenate((croi[uncont], ccroi[sel]))
                        flag_o[flagged] = False
                    we = e[wi]
                    wbh = bh[wi]
                    wout = out[wi]
                    wkv = kv[wi]
                    wpos = pos_of_input[we - wkv * nl]
                    # Hazard: pop reveals a successor head bound for a
                    # strictly later output of the same switch.
                    revealed = buf_tail[we] - wbh > 1
                    dirty_ids = None
                    if revealed.any():
                        er = we[revealed]
                        nxt = buf_flat[
                            er * bcap + ((wbh[revealed] + 1) & bmask)
                        ]
                        np_ = nxt // L
                        nfi = pkt_flow[np_]
                        nhop = flit_hop[nxt] + 1
                        nvalid = nhop < route_len_arr[nfi]
                        later = np.zeros(er.size, dtype=bool)
                        if nvalid.any():
                            later[nvalid] = (
                                route_rank_flat[
                                    route_off[nfi[nvalid]] + nhop[nvalid]
                                ]
                                > out_rank[wout[revealed][nvalid]]
                            )
                        if later.any():
                            dk = wkv[revealed][later]
                            ds = out_sw[wout[revealed][later]]
                            dirty_ids = np.unique(dk * n_sw + ds)
                            dirty_sw[dirty_ids] = True
                            keep = ~dirty_sw[wkv * n_sw + out_sw[wout]]
                            dirty_sw[dirty_ids] = False
                            wi, we, wbh, wout, wroi, wpos = (
                                a[keep] for a in (
                                    wi, we, wbh, wout, wroi, wpos,
                                )
                            )
                    if wi.size:
                        whead = head[wi]
                        wj = j[wi]
                        wp = p[wi]
                        woe_h = oe[wi]
                        ready4 = cycle + delay[wout]
                        if p3_push is None:
                            push_pipe(woe_h, whead, ready4)
                        else:
                            push_pipe(
                                np.concatenate((woe_h, p3_push[0])),
                                np.concatenate((whead, p3_push[1])),
                                np.concatenate((ready4, p3_push[2])),
                            )
                            p3_push = None
                        hw = wj == 0
                        alloc[woe_h[hw]] = wp[hw]
                        tw = wj == tail_k
                        alloc[woe_h[tw]] = -1
                        flit_hop[whead] = hop1[wi]
                        buf_head[we] = wbh + 1
                        rr[wroi] = (wpos + 1) % n_inputs_of[wout]
                    if dirty_ids is not None:
                        global DIRTY_REDOS
                        DIRTY_REDOS += dirty_ids.size
                        for pair in dirty_ids.tolist():
                            arbitrate_switch_scalar(
                                pair // n_sw, pair % n_sw, cycle
                            )
        if p3_push is not None:  # phase 4 idle: flush the deferred push
            push_pipe(*p3_push)

        # Trace assembly: phase-2 events in the solo order (ascending link
        # id; at most one event per link per cycle).
        if ev_k is not None:
            for i in np.lexsort((ev_lid, ev_k)).tolist():
                traces[int(ev_k[i])].append((
                    "eject" if ev_ej[i] else "deliver",
                    cycle, int(ev_lid[i]), int(ev_pid[i]),
                ))

        # End-of-cycle compaction: drained buffers leave their active list
        # (sources compact inside phase 3; pipelines are calendar-driven).
        if act_buf.size:
            keep = buf_tail[act_buf] != buf_head[act_buf]
            if not keep.all():
                in_buf[act_buf[~keep]] = False
                act_buf = act_buf[keep]

        cycle += 1

        # Event skip: only when every unfinished replication has empty
        # source queues and empty input buffers (a blocked link tail
        # implies a full — hence non-empty — buffer, so none is retrying).
        # Jump to the minimum of the per-replication solo targets, clamped
        # by the next calendar wake-up; crawled cycles the solo engine
        # would have skipped are no-ops for the idle replication.
        if act_src.size == 0 and act_buf.size == 0:
            unfin = np.nonzero(~done)[0]
            if unfin.size:
                live = outstanding[unfin] > 0
                if cycle < cycles:
                    tgt = next_inj[unfin, cycle]
                elif not live.all():
                    tgt = None  # a replication finishes at this very cycle
                else:
                    tgt = np.full(unfin.size, drain_end, dtype=np.int64)
                if tgt is not None:
                    target = int(tgt.min())
                    for cal in (cal_ej, cal_mv):
                        if cal:
                            target = min(target, min(cal))
                    if target > cycle:
                        cycle = target

    # ---------------------------------------------------------------------
    # Deferred latency reductions: one vectorized pass over every recorded
    # tail ejection (bincount sums are float64 but exact — integer values
    # far below 2^53).
    lat_sum = np.zeros(K, dtype=np.int64)
    lat_n = np.zeros(K, dtype=np.int64)
    lat_max = np.zeros(K, dtype=np.int64)
    pf_sum = np.zeros(S, dtype=np.int64)
    pf_n = np.zeros(S, dtype=np.int64)
    if ej_pk:
        pk = np.concatenate(ej_pk)
        kk2 = np.concatenate(ej_kk)
        ecyc = np.repeat(
            np.asarray(ej_cyc, dtype=np.int64),
            np.asarray(ej_n, dtype=np.int64),
        )
        ic = pkt_cycle[pk]
        counted = ic >= warmup
        if counted.any():
            pk = pk[counted]
            kk2 = kk2[counted]
            lat = ecyc[counted] - ic[counted]
            lat_sum = np.bincount(
                kk2, weights=lat, minlength=K
            ).astype(np.int64)
            lat_n = np.bincount(kk2, minlength=K)
            np.maximum.at(lat_max, kk2, lat)
            sf = kk2 * F + pkt_flow[pk]
            pf_sum = np.bincount(
                sf, weights=lat, minlength=S
            ).astype(np.int64)
            pf_n = np.bincount(sf, minlength=S)

    results = []
    for k in range(K):
        n = int(lat_n[k])  # == the solo engine's ``delivered`` counter
        stats = SimulationStats(
            cycles=cycles,
            packets_injected=int(injected[k]),
            packets_delivered=n,
            flits_delivered=int(flits_delivered[k]),
            avg_packet_latency=int(lat_sum[k]) / n if n else 0.0,
            max_packet_latency=int(lat_max[k]) if n else 0,
            drain_cycles=int(drain_rec[k]),
        )
        base = k * F
        for fi, flow in enumerate(flows):
            m = int(pf_n[base + fi])
            stats.per_flow_delivered[flow] = m
            if m:
                stats.per_flow_latency[flow] = int(pf_sum[base + fi]) / m
        results.append(stats)
    return results


def _per_replication_scenarios(scenario, K: int) -> List[ScenarioSpec]:
    """Resolve the scenario argument to one spec per replication."""
    from repro.noc.scenarios import TrafficScenario

    if (
        isinstance(scenario, (list, tuple))
        and not isinstance(scenario, str)
    ):
        if len(scenario) != K:
            raise SynthesisError(
                f"got {len(scenario)} scenarios for {K} replications"
            )
        return list(scenario)
    if scenario is None or isinstance(scenario, (str, TrafficScenario)):
        return [scenario] * K
    raise SynthesisError(
        f"scenario must be a spec or a sequence of specs, got {scenario!r}"
    )
