"""Flit-level wormhole NoC simulator.

A validation substrate for the analytic zero-load latency model used in the
paper's tables: packets are injected per flow at the specified bandwidth
(shaped by a :mod:`repro.noc.scenarios` traffic scenario), traverse their
static synthesized route flit by flit under wormhole flow control
(per-input-link FIFO buffers, credit back-pressure, round-robin output
arbitration, one-cycle switch traversal, multi-cycle pipelined links), and
per-packet latency is recorded.

At low utilisation the measured average latency converges to the analytic
zero-load value plus the packet serialisation time; under load it grows with
contention — behaviour the analytic model deliberately ignores.

Model invariants:

* a link accepts at most one flit per cycle at its head *and* delivers at
  most one flit per cycle at its tail — back-pressure can delay a flit but
  never lets the pipeline dump its backlog in a burst;
* after the injection horizon the network *drains*: in-flight packets keep
  moving (no new injections) until the network empties or a drain bound is
  hit, so at light load the delivery ratio is exactly 1.0 rather than
  structurally undercounting packets injected near the horizon.

:meth:`WormholeSimulator.run` executes on the array-based engine of
:mod:`repro.noc.simengine`; the frozen pre-optimisation baseline lives in
:mod:`repro.noc.reference` and the regression suite asserts both produce
bit-identical trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SynthesisError
from repro.models.library import NocLibrary, default_library
from repro.noc import simengine
from repro.noc.scenarios import ScenarioSpec
from repro.noc.topology import Topology

Flow = Tuple[int, int]


@dataclass
class SimulationStats:
    """Results of one simulation run.

    ``cycles`` is the injection horizon; ``drain_cycles`` counts the extra
    post-horizon cycles simulated to flush in-flight packets.
    """

    cycles: int
    packets_injected: int
    packets_delivered: int
    flits_delivered: int
    avg_packet_latency: float
    max_packet_latency: int
    per_flow_latency: Dict[Flow, float] = field(default_factory=dict)
    per_flow_delivered: Dict[Flow, int] = field(default_factory=dict)
    drain_cycles: int = 0

    @property
    def delivery_ratio(self) -> float:
        if self.packets_injected == 0:
            return 1.0
        return self.packets_delivered / self.packets_injected


class WormholeSimulator:
    """Cycle-based wormhole simulation over a routed :class:`Topology`."""

    def __init__(
        self,
        topology: Topology,
        library: Optional[NocLibrary] = None,
        *,
        buffer_depth: int = 4,
        packet_length_flits: int = 4,
        seed: int = 0,
    ) -> None:
        if not topology.routes:
            raise SynthesisError("topology has no routed flows to simulate")
        if buffer_depth < 1:
            raise SynthesisError("buffer depth must be >= 1")
        if packet_length_flits < 1:
            raise SynthesisError("packet length must be >= 1 flit")
        self.topology = topology
        self.library = library if library is not None else default_library()
        self.buffer_depth = buffer_depth
        self.packet_length = packet_length_flits
        self.seed = seed

        freq = topology.frequency_mhz
        # Per-link pipeline delay in cycles (>= 1 to model the register at
        # the link's tail).
        self._link_delay: List[int] = []
        for link in topology.links:
            delay = self.library.link.pipeline_stages(link.length_mm, freq)
            delay += self.library.tsv.delay_cycles(link.layers_crossed, freq)
            self._link_delay.append(max(1, delay))

        # Injection probability per cycle per flow: a flow of bandwidth B on
        # links of capacity C occupies B/C of the cycles; a packet covers
        # packet_length flit-cycles.
        cap = topology.capacity_mbps
        self._inject_prob: Dict[Flow, float] = {}
        for flow, bw in topology.flow_bandwidth.items():
            self._inject_prob[flow] = min(1.0, bw / cap / self.packet_length)

    # -- simulation ---------------------------------------------------------

    def run(
        self,
        cycles: int = 20_000,
        warmup: int = 2_000,
        injection_scale: float = 1.0,
        *,
        scenario: ScenarioSpec = None,
        drain_limit: Optional[int] = None,
        trace: Optional[List[tuple]] = None,
    ) -> SimulationStats:
        """Inject for ``cycles`` cycles, then drain; stats skip the warmup.

        Args:
            cycles: Injection horizon (must exceed ``warmup``).
            warmup: Packets injected before this cycle are simulated but not
                counted in the statistics.
            injection_scale: Multiplier on every flow's specification rate.
            scenario: Traffic scenario (name, spec string or
                :class:`~repro.noc.scenarios.TrafficScenario`); ``None`` is
                the per-flow Bernoulli process.
            drain_limit: Maximum post-horizon cycles to flush in-flight
                packets (``None`` = ``cycles``; ``0`` = stop at the horizon,
                the pre-drain behaviour).
            trace: Optional list collecting per-cycle link-delivery events
                ``("deliver"|"eject", cycle, link_id, packet_id)`` — the
                trajectory the regression suite compares between this engine
                and the frozen reference.
        """
        if cycles <= warmup:
            raise SynthesisError("cycles must exceed warmup")
        return simengine.simulate(
            self,
            cycles=cycles,
            warmup=warmup,
            injection_scale=injection_scale,
            scenario=scenario,
            drain_limit=drain_limit,
            trace=trace,
        )

    def run_batch(
        self,
        seeds,
        cycles: int = 20_000,
        warmup: int = 2_000,
        injection_scale: float = 1.0,
        *,
        scenario: object = None,
        drain_limit: Optional[int] = None,
        traces: Optional[List[list]] = None,
    ) -> List[SimulationStats]:
        """Run K lockstep replications on :mod:`repro.noc.batchengine`.

        ``seeds`` are the K replication seeds (the simulator's own ``seed``
        attribute is ignored for the batch path); ``scenario`` is one
        :data:`~repro.noc.scenarios.ScenarioSpec` for every replication or a
        sequence of K specs. Each returned stats object — and, with
        ``traces`` given, each replication's per-cycle event list — is
        bit-identical to a solo :meth:`run` at that seed.
        """
        from repro.noc import batchengine  # numpy import deferred

        if cycles <= warmup:
            raise SynthesisError("cycles must exceed warmup")
        return batchengine.simulate_batch(
            self,
            cycles=cycles,
            warmup=warmup,
            injection_scale=injection_scale,
            seeds=seeds,
            scenario=scenario,
            drain_limit=drain_limit,
            traces=traces,
        )

    # -- helpers -------------------------------------------------------------

    def _inputs_per_link(self) -> Dict[int, List[int]]:
        """For each output link of a switch, the input links of that switch."""
        topo = self.topology
        incoming: Dict[int, List[int]] = {}
        for link in topo.links:
            if link.dst[0] == "switch":
                incoming.setdefault(link.dst[1], []).append(link.id)
        outputs: Dict[int, List[int]] = {}
        for link in topo.links:
            if link.src[0] == "switch":
                outputs[link.id] = sorted(incoming.get(link.src[1], []))
        return outputs


def simulate_design_point(
    point,
    *,
    cycles: int = 20_000,
    warmup: int = 2_000,
    injection_scale: float = 1.0,
    seed: int = 0,
    library: Optional[NocLibrary] = None,
    buffer_depth: int = 4,
    packet_length_flits: int = 4,
    scenario: ScenarioSpec = None,
    drain_limit: Optional[int] = None,
) -> SimulationStats:
    """Convenience wrapper: simulate a :class:`DesignPoint`'s topology."""
    sim = WormholeSimulator(
        point.topology, library,
        buffer_depth=buffer_depth,
        packet_length_flits=packet_length_flits,
        seed=seed,
    )
    return sim.run(
        cycles=cycles, warmup=warmup, injection_scale=injection_scale,
        scenario=scenario, drain_limit=drain_limit,
    )
