"""Zero-load latency, power and area evaluation of a synthesized NoC.

This is the measurement code behind every table and figure of the paper's
evaluation: power is split into switch power, switch-to-switch link power and
core-to-switch link power (the three series of Figs. 10-11 and the columns of
Table I); latency is the zero-load flow latency averaged over all flows.

Latency accounting follows the paper's convention (Sec. VIII-A: a flow whose
cores share a switch has "a zero load latency of just one cycle"): each
switch traversal costs one cycle, a link costs extra cycles only when it is
pipelined beyond a single stage, and TSV crossings add their (negligible)
propagation delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from repro.errors import SynthesisError
from repro.models.library import NocLibrary
from repro.noc.topology import Topology
from repro.units import flits_per_second


@dataclass
class NocMetrics:
    """Evaluation results for one design point."""

    switch_power_mw: float
    sw2sw_link_power_mw: float
    core2sw_link_power_mw: float
    avg_latency_cycles: float
    max_latency_cycles: float
    switch_area_mm2: float
    ni_area_mm2: float
    tsv_macro_area_mm2: float
    num_switches: int
    num_links: int
    num_vertical_links: int
    max_ill_used: int
    wire_lengths_mm: List[float] = field(default_factory=list)
    per_flow_latency: Dict[Tuple[int, int], float] = field(default_factory=dict)

    @property
    def link_power_mw(self) -> float:
        return self.sw2sw_link_power_mw + self.core2sw_link_power_mw

    @property
    def total_power_mw(self) -> float:
        return self.switch_power_mw + self.link_power_mw

    @property
    def noc_area_mm2(self) -> float:
        return self.switch_area_mm2 + self.ni_area_mm2 + self.tsv_macro_area_mm2


def link_lengths_from_positions(
    topology: Topology,
    core_centers: Mapping[int, Tuple[float, float]],
) -> None:
    """Fill each link's planar length from endpoint positions (in place).

    Core positions come from the floorplan; switch positions must already be
    set (by the placement LP and insertion routine). The planar length is the
    Manhattan distance of the (x, y) projections; the vertical portion is
    modelled separately through ``layers_crossed``.
    """
    for link in topology.links:
        src_xy = _endpoint_xy(topology, link.src, core_centers)
        dst_xy = _endpoint_xy(topology, link.dst, core_centers)
        link.length_mm = abs(src_xy[0] - dst_xy[0]) + abs(src_xy[1] - dst_xy[1])


def _endpoint_xy(
    topology: Topology,
    endpoint,
    core_centers: Mapping[int, Tuple[float, float]],
) -> Tuple[float, float]:
    kind, index = endpoint
    if kind == "core":
        try:
            return core_centers[index]
        except KeyError as exc:
            raise SynthesisError(f"no position for core {index}") from exc
    return topology.switches[index].center


def flow_latency_cycles(
    topology: Topology,
    flow: Tuple[int, int],
    library: NocLibrary,
) -> float:
    """Zero-load latency of one routed flow, in cycles."""
    try:
        link_ids = topology.routes[flow]
    except KeyError as exc:
        raise SynthesisError(f"flow {flow} has no route") from exc

    freq = topology.frequency_mhz
    latency = 0.0
    latency += library.switch.delay_cycles() * len(topology.switch_routes[flow])
    for lid in link_ids:
        link = topology.links[lid]
        stages = library.link.pipeline_stages(link.length_mm, freq)
        latency += max(0, stages - 1)
        if link.is_vertical:
            latency += library.tsv.delay_cycles(link.layers_crossed, freq)
    return latency


def compute_metrics(
    topology: Topology,
    core_centers: Mapping[int, Tuple[float, float]],
    library: NocLibrary,
) -> NocMetrics:
    """Evaluate power, latency and area of a routed, placed topology.

    ``link_lengths_from_positions`` must have been called (or lengths set
    otherwise) before this.
    """
    freq = topology.frequency_mhz
    width = topology.width_bits
    # Model energies are calibrated per 32-bit flit; wider flits toggle
    # proportionally more wires and crossbar bits.
    width_factor = width / 32.0

    # --- switch power ------------------------------------------------------
    switch_load: Dict[int, float] = {sw.id: 0.0 for sw in topology.switches}
    for flow, switch_ids in topology.switch_routes.items():
        bw = _flow_bandwidth(topology, flow)
        rate = flits_per_second(bw, width)
        for sid in switch_ids:
            switch_load[sid] += rate

    switch_power = 0.0
    switch_area = 0.0
    for sw in topology.switches:
        size = max(sw.size, library.switch.min_ports)
        switch_power += library.switch.power_mw(
            size, freq, switch_load[sw.id] * width_factor
        )
        switch_area += library.switch.area_mm2(size)

    # --- link power ---------------------------------------------------------
    sw2sw_power = 0.0
    core2sw_power = 0.0
    wire_lengths: List[float] = []
    for link in topology.links:
        rate = flits_per_second(link.load_mbps, width) * width_factor
        power = (
            library.link.static_power_mw(link.length_mm) * width_factor
            + library.link.traffic_power_mw(link.length_mm, rate)
        )
        if link.is_vertical:
            power += library.tsv.traffic_power_mw(link.layers_crossed, rate)
            power += library.tsv.static_mw_per_link * link.layers_crossed * width_factor
        if link.is_core_link:
            core2sw_power += power
        else:
            sw2sw_power += power
        wire_lengths.append(link.length_mm)

    # NI power: one NI per attached core; traffic through it is the core's
    # injected + ejected bandwidth. Accounted to the core-to-switch category.
    # One pass over the routes accumulates both directions per core; the
    # per-core partial sums add in route order, exactly like the former
    # per-core rescans, so the totals are bit-identical.
    ni_count = len(topology.core_to_switch)
    in_bw: Dict[int, float] = {core: 0.0 for core in topology.core_to_switch}
    out_bw: Dict[int, float] = {core: 0.0 for core in topology.core_to_switch}
    for flow in topology.routes:
        bw = _flow_bandwidth(topology, flow)
        src, dst = flow
        if src in out_bw:
            out_bw[src] += bw
        if dst in in_bw:
            in_bw[dst] += bw
    for core in topology.core_to_switch:
        rate = flits_per_second(in_bw[core] + out_bw[core], width) * width_factor
        core2sw_power += rate * library.link.ni_energy_pj * 1e-3

    # --- latency -------------------------------------------------------------
    per_flow: Dict[Tuple[int, int], float] = {}
    for flow in topology.routes:
        per_flow[flow] = flow_latency_cycles(topology, flow, library)
    if per_flow:
        avg_latency = sum(per_flow.values()) / len(per_flow)
        max_latency = max(per_flow.values())
    else:
        avg_latency = 0.0
        max_latency = 0.0

    # --- area ---------------------------------------------------------------
    macro_area = library.tsv.macro_area_mm2(width)
    tsv_area = sum(link.layers_crossed * macro_area for link in topology.links)

    return NocMetrics(
        switch_power_mw=switch_power,
        sw2sw_link_power_mw=sw2sw_power,
        core2sw_link_power_mw=core2sw_power,
        avg_latency_cycles=avg_latency,
        max_latency_cycles=max_latency,
        switch_area_mm2=switch_area,
        ni_area_mm2=ni_count * library.link.ni_area_mm2,
        tsv_macro_area_mm2=tsv_area,
        num_switches=len(topology.switches),
        num_links=len(topology.links),
        num_vertical_links=topology.num_vertical_links,
        max_ill_used=topology.max_ill_used,
        wire_lengths_mm=wire_lengths,
        per_flow_latency=per_flow,
    )


def _flow_bandwidth(topology: Topology, flow: Tuple[int, int]) -> float:
    """Bandwidth of a routed flow, recorded at routing time."""
    try:
        return topology.flow_bandwidth[flow]
    except KeyError as exc:
        raise SynthesisError(f"flow {flow} has no recorded bandwidth") from exc
