"""Export synthesized designs: JSON and Graphviz DOT.

A downstream user of the tool needs the synthesized topology in a
machine-readable form (to feed an RTL generator or a simulator) and in a
drawable form (the paper's Figs. 13-15 are such drawings). This module
serialises a :class:`~repro.core.design_point.DesignPoint` both ways; the
JSON form round-trips enough information to rebuild the topology object.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Union

from repro.core.design_point import DesignPoint
from repro.noc.topology import Topology

PathLike = Union[str, Path]


def topology_to_dict(topology: Topology) -> dict:
    """Serialise a routed topology to plain data."""
    return {
        "frequency_mhz": topology.frequency_mhz,
        "width_bits": topology.width_bits,
        "switches": [
            {
                "id": sw.id, "layer": sw.layer, "x": sw.x, "y": sw.y,
                "in_ports": sw.in_ports, "out_ports": sw.out_ports,
                "is_indirect": sw.is_indirect,
            }
            for sw in topology.switches
        ],
        "links": [
            {
                "id": l.id,
                "src": list(l.src), "dst": list(l.dst),
                "src_layer": l.src_layer, "dst_layer": l.dst_layer,
                "load_mbps": l.load_mbps, "length_mm": l.length_mm,
                "flows": [list(f) for f in l.flows],
            }
            for l in topology.links
        ],
        "core_to_switch": {
            str(core): sw for core, sw in sorted(topology.core_to_switch.items())
        },
        "routes": {
            f"{src}->{dst}": link_ids
            for (src, dst), link_ids in sorted(topology.routes.items())
        },
        "switch_routes": {
            f"{src}->{dst}": sw_ids
            for (src, dst), sw_ids in sorted(topology.switch_routes.items())
        },
        "flow_bandwidth": {
            f"{src}->{dst}": bw
            for (src, dst), bw in sorted(topology.flow_bandwidth.items())
        },
        "ill": {f"{a}-{b}": c for (a, b), c in sorted(topology.ill.items())},
    }


def design_point_to_dict(point: DesignPoint) -> dict:
    """Serialise a full design point (topology + floorplan + metrics)."""
    m = point.metrics
    return {
        "phase": point.phase,
        "switch_count": point.switch_count,
        "theta": point.assignment.theta,
        "topology": topology_to_dict(point.topology),
        "floorplan": [
            {
                "name": c.name, "kind": c.kind, "layer": c.layer,
                "x": c.rect.x, "y": c.rect.y,
                "width": c.rect.width, "height": c.rect.height,
            }
            for c in point.floorplan
        ],
        "metrics": {
            "switch_power_mw": m.switch_power_mw,
            "sw2sw_link_power_mw": m.sw2sw_link_power_mw,
            "core2sw_link_power_mw": m.core2sw_link_power_mw,
            "total_power_mw": m.total_power_mw,
            "avg_latency_cycles": m.avg_latency_cycles,
            "max_latency_cycles": m.max_latency_cycles,
            "die_area_mm2": point.die_area_mm2,
            "noc_area_mm2": m.noc_area_mm2,
            "num_switches": m.num_switches,
            "num_links": m.num_links,
            "num_vertical_links": m.num_vertical_links,
            "max_ill_used": m.max_ill_used,
        },
    }


def save_design_point_json(point: DesignPoint, path: PathLike) -> None:
    Path(path).write_text(json.dumps(design_point_to_dict(point), indent=2))


def topology_to_dot(
    topology: Topology,
    core_names: Optional[List[str]] = None,
) -> str:
    """Render the topology as a Graphviz DOT digraph.

    Cores are boxes, switches are circles, layers become clusters; vertical
    links are drawn bold. Paste into ``dot -Tpng`` to obtain a Fig. 13-style
    drawing.
    """
    def core_label(index: int) -> str:
        if core_names is not None and 0 <= index < len(core_names):
            return core_names[index]
        return f"core{index}"

    lines = ["digraph topology {", "  rankdir=LR;"]
    layers = sorted({sw.layer for sw in topology.switches})
    for layer in layers:
        lines.append(f"  subgraph cluster_layer{layer} {{")
        lines.append(f'    label="layer {layer}";')
        for sw in topology.switches:
            if sw.layer == layer:
                shape = "doublecircle" if sw.is_indirect else "circle"
                lines.append(
                    f'    sw{sw.id} [shape={shape}, label="sw{sw.id}"];'
                )
        for core, sw_id in sorted(topology.core_to_switch.items()):
            # Draw the core in its switch's cluster for compactness.
            if topology.switches[sw_id].layer == layer:
                lines.append(
                    f'    c{core} [shape=box, label="{core_label(core)}"];'
                )
        lines.append("  }")

    drawn = set()
    for link in topology.links:
        skind, sidx = link.src
        dkind, didx = link.dst
        src = f"sw{sidx}" if skind == "switch" else f"c{sidx}"
        dst = f"sw{didx}" if dkind == "switch" else f"c{didx}"
        key = (src, dst)
        if key in drawn:
            continue
        drawn.add(key)
        style = ' [style=bold, color=red]' if link.is_vertical else ""
        lines.append(f"  {src} -> {dst}{style};")
    lines.append("}")
    return "\n".join(lines)


def save_topology_dot(
    topology: Topology,
    path: PathLike,
    core_names: Optional[List[str]] = None,
) -> None:
    Path(path).write_text(topology_to_dot(topology, core_names))
