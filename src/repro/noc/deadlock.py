"""Channel-dependency-graph (CDG) deadlock avoidance.

The paper (Sec. VI) reuses the methods of [14]/[16] "to remove both routing
and message-dependent deadlocks when computing the paths". This module
implements the classic Dally-Seitz criterion: wormhole routing is
deadlock-free iff the channel dependency graph — one vertex per physical
link, one edge per (incoming link -> outgoing link) turn used by any route —
is acyclic.

Message-dependent deadlocks are removed by keeping a *separate* CDG per
message class (request / response): dependencies between classes are broken
at the network interfaces (consumption-assumption per class), so acyclicity
per class suffices.

The tentative-cycle query is the routing hot path (it runs once per flow,
plus once per deadlock retry), so the CDG is *indexed*: alongside the
adjacency it maintains a topological order of every link vertex, updated
incrementally on :meth:`add_path` (Pearce-Kelly style region reordering).
:meth:`creates_cycle` then answers most queries with order comparisons
alone — a route's dependency chain can only close a cycle if the existing
graph reaches *backwards* along the chain, which the order rules out — and
falls back to an order-bounded DFS otherwise. The pre-optimisation
rebuild-and-search variant is preserved verbatim in
:mod:`repro.engine.reference` for regression benchmarks.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence, Set, Tuple


class ChannelDependencyGraph:
    """Incrementally grown CDG with indexed tentative-cycle queries."""

    def __init__(self) -> None:
        # message class -> adjacency: link id -> set of successor link ids.
        self._succ: Dict[Hashable, Dict[int, Set[int]]] = {}
        # message class -> reverse adjacency (needed by the order maintenance).
        self._pred: Dict[Hashable, Dict[int, Set[int]]] = {}
        # message class -> topological index of every known link vertex.
        # Invariant (while the class is acyclic): every edge (u, v) of
        # ``_succ`` has ``_order[u] < _order[v]``.
        self._order: Dict[Hashable, Dict[int, int]] = {}
        # message classes whose graph is (through misuse of add_path)
        # cyclic: the order invariant is abandoned and queries fall back to
        # a full search.
        self._cyclic: Set[Hashable] = set()

    def classes(self) -> List[Hashable]:
        return sorted(self._succ, key=str)

    def edges(self, message_class: Hashable) -> List[Tuple[int, int]]:
        adj = self._succ.get(message_class, {})
        return sorted((u, v) for u, vs in adj.items() for v in vs)

    @staticmethod
    def _path_edges(link_ids: Sequence[int]) -> List[Tuple[int, int]]:
        return [(a, b) for a, b in zip(link_ids, link_ids[1:])]

    def add_path(self, link_ids: Sequence[int], message_class: Hashable) -> None:
        """Record the dependencies of a route. Caller must have verified
        acyclicity (see :meth:`creates_cycle`)."""
        adj = self._succ.setdefault(message_class, {})
        pred = self._pred.setdefault(message_class, {})
        order = self._order.setdefault(message_class, {})
        for u, v in self._path_edges(link_ids):
            if v in adj.get(u, ()):
                continue  # dependency already present
            adj.setdefault(u, set()).add(v)
            pred.setdefault(v, set()).add(u)
            if message_class not in self._cyclic:
                self._insert_ordered(message_class, order, adj, pred, u, v)

    def creates_cycle(
        self, link_ids: Sequence[int], message_class: Hashable
    ) -> bool:
        """Would adding this route's dependencies close a cycle?

        The check is tentative: the CDG is left unchanged. A route
        contributes a *chain* of dependencies ``u0 -> u1 -> ... -> uk``; the
        combined graph is cyclic iff the chain revisits a vertex, or the
        existing graph has a path from a later chain vertex back to an
        earlier one. The topological order bounds that backwards search.
        """
        nodes = list(link_ids)
        if len(nodes) < 2:
            return False
        if message_class in self._cyclic:
            # The invariant is gone; any addition keeps the graph cyclic,
            # but stay faithful to the legacy semantics: a cycle counts only
            # if reachable from the new edges' sources.
            return self._legacy_creates_cycle(nodes, message_class)

        adj = self._succ.get(message_class, {})
        order = self._order.get(message_class, {})
        targets: Set[int] = {nodes[0]}
        max_target_order = order.get(nodes[0], -1)
        for node in nodes[1:]:
            if node in targets:
                return True  # the chain itself revisits a vertex
            # An existing path node -> t implies order[node] < order[t]:
            # skip the search when the order already rules it out.
            node_order = order.get(node)
            if (
                node_order is not None
                and node_order < max_target_order
                and self._reaches(adj, order, node, targets, max_target_order)
            ):
                return True
            targets.add(node)
            node_order = -1 if node_order is None else node_order
            if node_order > max_target_order:
                max_target_order = node_order
        return False

    def has_cycle(self, message_class: Hashable) -> bool:
        if message_class in self._cyclic:
            return True
        # While the order invariant holds the graph is acyclic by
        # construction; double-checking would rebuild the legacy search.
        return False

    def is_deadlock_free(self) -> bool:
        """True if every message class's CDG is acyclic."""
        return not any(self.has_cycle(cls) for cls in self._succ)

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _reaches(
        adj: Dict[int, Set[int]],
        order: Dict[int, int],
        start: int,
        targets: Set[int],
        max_target_order: int,
    ) -> bool:
        """Is any vertex of ``targets`` reachable from ``start``?

        Only vertices with topological index <= ``max_target_order`` can lie
        on such a path, which keeps the search inside the affected region.
        """
        stack = [start]
        seen = {start}
        while stack:
            node = stack.pop()
            for nxt in adj.get(node, ()):
                if nxt in targets:
                    return True
                if nxt in seen:
                    continue
                if order.get(nxt, -1) >= max_target_order:
                    continue  # past every target in topological order
                seen.add(nxt)
                stack.append(nxt)
        return False

    def _insert_ordered(
        self,
        message_class: Hashable,
        order: Dict[int, int],
        adj: Dict[int, Set[int]],
        pred: Dict[int, Set[int]],
        u: int,
        v: int,
    ) -> None:
        """Restore the topological order after inserting edge (u, v)."""
        if u not in order:
            order[u] = len(order)
        if v not in order:
            order[v] = len(order)
        lb, ub = order[v], order[u]
        if ub < lb:
            return  # order already consistent
        if u == v:
            self._cyclic.add(message_class)
            return
        # Affected region (Pearce-Kelly): vertices reachable forward from v
        # with index <= order[u], and backward from u with index >= order[v].
        forward = self._bounded_dfs(adj, order, v, ub, upper=True)
        if u in forward:
            self._cyclic.add(message_class)
            return
        backward = self._bounded_dfs(pred, order, u, lb, upper=False)
        # Reassign the region's indices: backward block first, then forward.
        affected = sorted(backward, key=order.__getitem__) + sorted(
            forward, key=order.__getitem__
        )
        slots = sorted(order[node] for node in affected)
        for node, slot in zip(affected, slots):
            order[node] = slot

    @staticmethod
    def _bounded_dfs(
        adj: Dict[int, Set[int]],
        order: Dict[int, int],
        start: int,
        bound: int,
        *,
        upper: bool,
    ) -> Set[int]:
        """Vertices reachable from ``start`` with index <= / >= ``bound``."""
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for nxt in adj.get(node, ()):
                if nxt in seen:
                    continue
                idx = order.get(nxt)
                if idx is None or (idx > bound if upper else idx < bound):
                    continue
                seen.add(nxt)
                stack.append(nxt)
        return seen

    def _legacy_creates_cycle(
        self, link_ids: Sequence[int], message_class: Hashable
    ) -> bool:
        new_edges = self._path_edges(link_ids)
        adj = self._succ.get(message_class, {})
        combined: Dict[int, Set[int]] = {x: set(vs) for x, vs in adj.items()}
        for a, b in new_edges:
            combined.setdefault(a, set()).add(b)
        return _has_cycle(combined, {a for a, _ in new_edges})


def _has_cycle(adj: Dict[int, Set[int]], start_nodes: Iterable[int]) -> bool:
    """Iterative DFS cycle detection over the nodes reachable from starts."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[int, int] = {}

    for start in sorted(start_nodes):
        if color.get(start, WHITE) != WHITE:
            continue
        stack: List[Tuple[int, Iterable[int]]] = [(start, iter(sorted(adj.get(start, ()))))]
        color[start] = GRAY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                state = color.get(nxt, WHITE)
                if state == GRAY:
                    return True
                if state == WHITE:
                    color[nxt] = GRAY
                    stack.append((nxt, iter(sorted(adj.get(nxt, ())))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return False
