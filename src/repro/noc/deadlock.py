"""Channel-dependency-graph (CDG) deadlock avoidance.

The paper (Sec. VI) reuses the methods of [14]/[16] "to remove both routing
and message-dependent deadlocks when computing the paths". This module
implements the classic Dally-Seitz criterion: wormhole routing is
deadlock-free iff the channel dependency graph — one vertex per physical
link, one edge per (incoming link -> outgoing link) turn used by any route —
is acyclic.

Message-dependent deadlocks are removed by keeping a *separate* CDG per
message class (request / response): dependencies between classes are broken
at the network interfaces (consumption-assumption per class), so acyclicity
per class suffices.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence, Set, Tuple


class ChannelDependencyGraph:
    """Incrementally grown CDG with tentative-cycle queries."""

    def __init__(self) -> None:
        # message class -> adjacency: link id -> set of successor link ids.
        self._succ: Dict[Hashable, Dict[int, Set[int]]] = {}

    def classes(self) -> List[Hashable]:
        return sorted(self._succ, key=str)

    def edges(self, message_class: Hashable) -> List[Tuple[int, int]]:
        adj = self._succ.get(message_class, {})
        return sorted((u, v) for u, vs in adj.items() for v in vs)

    @staticmethod
    def _path_edges(link_ids: Sequence[int]) -> List[Tuple[int, int]]:
        return [(a, b) for a, b in zip(link_ids, link_ids[1:])]

    def add_path(self, link_ids: Sequence[int], message_class: Hashable) -> None:
        """Record the dependencies of a route. Caller must have verified
        acyclicity (see :meth:`creates_cycle`)."""
        adj = self._succ.setdefault(message_class, {})
        for u, v in self._path_edges(link_ids):
            adj.setdefault(u, set()).add(v)

    def creates_cycle(
        self, link_ids: Sequence[int], message_class: Hashable
    ) -> bool:
        """Would adding this route's dependencies close a cycle?

        The check is tentative: the CDG is left unchanged.
        """
        new_edges = self._path_edges(link_ids)
        if not new_edges:
            return False
        adj = self._succ.get(message_class, {})
        combined: Dict[int, Set[int]] = {u: set(vs) for u, vs in adj.items()}
        for u, v in new_edges:
            combined.setdefault(u, set()).add(v)
        start_nodes = {u for u, _ in new_edges}
        return _has_cycle(combined, start_nodes)

    def has_cycle(self, message_class: Hashable) -> bool:
        adj = self._succ.get(message_class, {})
        return _has_cycle(adj, set(adj))

    def is_deadlock_free(self) -> bool:
        """True if every message class's CDG is acyclic."""
        return not any(self.has_cycle(cls) for cls in self._succ)


def _has_cycle(adj: Dict[int, Set[int]], start_nodes: Iterable[int]) -> bool:
    """Iterative DFS cycle detection over the nodes reachable from starts."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[int, int] = {}

    for start in sorted(start_nodes):
        if color.get(start, WHITE) != WHITE:
            continue
        stack: List[Tuple[int, Iterable[int]]] = [(start, iter(sorted(adj.get(start, ()))))]
        color[start] = GRAY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                state = color.get(nxt, WHITE)
                if state == GRAY:
                    return True
                if state == WHITE:
                    color[nxt] = GRAY
                    stack.append((nxt, iter(sorted(adj.get(nxt, ())))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return False
