"""NoC substrate: topology data model, deadlock checks, metrics, simulator.

The synthesis core (:mod:`repro.core`) builds :class:`~repro.noc.topology.Topology`
objects; this package owns everything downstream of that structure —
channel-dependency-graph deadlock freedom, zero-load latency / power / area
evaluation, wire-length statistics, and a flit-level wormhole simulator used
to validate the analytic latency model.
"""

from repro.noc.topology import Endpoint, Link, Switch, Topology
from repro.noc.deadlock import ChannelDependencyGraph
from repro.noc.metrics import NocMetrics, compute_metrics
from repro.noc.scenarios import (
    BernoulliScenario,
    BurstyScenario,
    HotspotScenario,
    ScaledScenario,
    TrafficScenario,
    make_scenario,
)
from repro.noc.batchengine import simulate_batch
from repro.noc.simulator import (
    SimulationStats,
    WormholeSimulator,
    simulate_design_point,
)
from repro.noc.wire_stats import wire_length_histogram

__all__ = [
    "Endpoint",
    "Link",
    "Switch",
    "Topology",
    "ChannelDependencyGraph",
    "NocMetrics",
    "compute_metrics",
    "wire_length_histogram",
    "BernoulliScenario",
    "BurstyScenario",
    "HotspotScenario",
    "ScaledScenario",
    "TrafficScenario",
    "make_scenario",
    "SimulationStats",
    "WormholeSimulator",
    "simulate_batch",
    "simulate_design_point",
]
