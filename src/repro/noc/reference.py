"""Frozen fixed naive wormhole simulator: the per-cycle-scan baseline.

This module preserves, verbatim, the flit-level wormhole simulator as it
existed before the :mod:`repro.noc.simengine` overhaul — per-flit ``_Flit``
dataclass allocation, a full scan of every link, every flow and every
switch output on every cycle — with the two model fixes applied (a link
delivers at most one flit per cycle; the run drains in-flight packets after
the injection horizon). It exists for two reasons (the
:mod:`repro.engine.reference` / :mod:`repro.floorplan.reference` pattern):

* **regression** — tests assert :class:`~repro.noc.simulator.WormholeSimulator`
  (running on the array-based engine) produces *bit-identical* trajectories
  and :class:`~repro.noc.simulator.SimulationStats` for identical seeds,
  scenarios and parameters;
* **benchmarking** — ``BENCH_engine.json``'s ``simulator`` section reports
  the engine/naive cycles-per-second speedup, and the claim only means
  something against the genuine old code.

The unchanged substrate (:class:`~repro.noc.topology.Topology`, the model
library, :mod:`repro.noc.scenarios` and :mod:`repro.rng`) is shared with the
optimised module — injection schedules are pre-built by the scenario library
in both, which is exactly what keeps the random streams aligned.

Do not "optimise" this module.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import SynthesisError
from repro.models.library import NocLibrary, default_library
from repro.noc.scenarios import ScenarioSpec, build_schedule
from repro.noc.simulator import SimulationStats
from repro.noc.topology import Topology
from repro.rng import make_rng

Flow = Tuple[int, int]


@dataclass
class _Flit:
    flow: Flow
    packet_id: int
    is_head: bool
    is_tail: bool
    inject_cycle: int
    hop: int  # index into the flow's route (which link it is ON/entering)


class ReferenceWormholeSimulator:
    """The naive cycle-based wormhole simulation (frozen baseline)."""

    def __init__(
        self,
        topology: Topology,
        library: Optional[NocLibrary] = None,
        *,
        buffer_depth: int = 4,
        packet_length_flits: int = 4,
        seed: int = 0,
    ) -> None:
        if not topology.routes:
            raise SynthesisError("topology has no routed flows to simulate")
        if buffer_depth < 1:
            raise SynthesisError("buffer depth must be >= 1")
        if packet_length_flits < 1:
            raise SynthesisError("packet length must be >= 1 flit")
        self.topology = topology
        self.library = library if library is not None else default_library()
        self.buffer_depth = buffer_depth
        self.packet_length = packet_length_flits
        self.seed = seed

        freq = topology.frequency_mhz
        # Per-link pipeline delay in cycles (>= 1 to model the register at
        # the link's tail).
        self._link_delay: List[int] = []
        for link in topology.links:
            delay = self.library.link.pipeline_stages(link.length_mm, freq)
            delay += self.library.tsv.delay_cycles(link.layers_crossed, freq)
            self._link_delay.append(max(1, delay))

        # Injection probability per cycle per flow: a flow of bandwidth B on
        # links of capacity C occupies B/C of the cycles; a packet covers
        # packet_length flit-cycles.
        cap = topology.capacity_mbps
        self._inject_prob: Dict[Flow, float] = {}
        for flow, bw in topology.flow_bandwidth.items():
            self._inject_prob[flow] = min(1.0, bw / cap / self.packet_length)

    # -- simulation ---------------------------------------------------------

    def run(
        self,
        cycles: int = 20_000,
        warmup: int = 2_000,
        injection_scale: float = 1.0,
        *,
        scenario: ScenarioSpec = None,
        drain_limit: Optional[int] = None,
        trace: Optional[List[tuple]] = None,
    ) -> SimulationStats:
        """Inject for ``cycles`` cycles, then drain; stats skip the warmup."""
        if cycles <= warmup:
            raise SynthesisError("cycles must exceed warmup")
        if drain_limit is None:
            drain_limit = cycles
        if drain_limit < 0:
            raise SynthesisError("drain limit must be >= 0")
        rng = make_rng(self.seed, "wormhole")
        topo = self.topology

        flows = sorted(topo.routes)
        probs = [self._inject_prob[f] * injection_scale for f in flows]
        schedule = build_schedule(scenario, flows, probs, cycles, rng)

        # Per-link FIFO of (ready_cycle, flit) modelling wire pipeline, plus
        # an occupancy counter modelling the downstream input buffer credit.
        in_flight: List[Deque[Tuple[int, _Flit]]] = [deque() for _ in topo.links]
        buffers: List[Deque[_Flit]] = [deque() for _ in topo.links]
        # Wormhole allocation: output link id -> (flow, packet_id) currently
        # holding it, or None.
        allocation: Dict[int, Optional[Tuple[Flow, int]]] = {
            l.id: None for l in topo.links
        }
        rr_pointer: Dict[int, int] = {l.id: 0 for l in topo.links}

        # Source queues (unbounded) per flow.
        src_queues: Dict[Flow, Deque[_Flit]] = {f: deque() for f in topo.routes}
        next_packet_id = 0

        injected = 0
        delivered = 0
        flits_delivered = 0
        outstanding = 0  # flits injected but not yet ejected
        latencies: List[int] = []
        per_flow_lat: Dict[Flow, List[int]] = {f: [] for f in topo.routes}

        link_inputs = self._inputs_per_link()

        cycle = 0
        while True:
            # 1. Packet generation (pre-drawn schedule; nothing past the
            # horizon — the drain phase only flushes in-flight packets).
            if cycle < cycles:
                for fi in schedule[cycle]:
                    flow = flows[fi]
                    pid = next_packet_id
                    next_packet_id += 1
                    for k in range(self.packet_length):
                        src_queues[flow].append(_Flit(
                            flow=flow, packet_id=pid,
                            is_head=(k == 0),
                            is_tail=(k == self.packet_length - 1),
                            inject_cycle=cycle, hop=0,
                        ))
                    outstanding += self.packet_length
                    if cycle >= warmup:
                        injected += 1
            elif outstanding == 0 or cycle - cycles >= drain_limit:
                break

            # 2. Link delivery: a flit whose pipeline delay elapsed enters
            # the downstream buffer (or is ejected at a core). At most ONE
            # flit leaves a link per cycle — the link's bandwidth — even
            # when back-pressure left several flits ready at its tail.
            for lid, pipe in enumerate(in_flight):
                if not pipe or pipe[0][0] > cycle:
                    continue
                flit = pipe[0][1]
                route = topo.routes[flit.flow]
                if flit.hop == len(route) - 1:
                    # Final link: ejection into the destination core.
                    pipe.popleft()
                    flits_delivered += 1
                    outstanding -= 1
                    if trace is not None:
                        trace.append(("eject", cycle, lid, flit.packet_id))
                    if flit.is_tail:
                        lat = cycle - flit.inject_cycle
                        if flit.inject_cycle >= warmup:
                            delivered += 1
                            latencies.append(lat)
                            per_flow_lat[flit.flow].append(lat)
                        if allocation[lid] == (flit.flow, flit.packet_id):
                            allocation[lid] = None
                else:
                    if len(buffers[lid]) < self.buffer_depth:
                        pipe.popleft()
                        buffers[lid].append(flit)
                        if trace is not None:
                            trace.append(("deliver", cycle, lid, flit.packet_id))
                    # else: back-pressure — the flit waits at the link tail.

            # 3. Injection links: source queue -> first link of the route.
            # Rotate the service order cycle by cycle so flows sharing an
            # injection link get fair access under saturation.
            offset = cycle % len(flows)
            for flow in flows[offset:] + flows[:offset]:
                queue = src_queues[flow]
                if not queue:
                    continue
                first_link = topo.routes[flow][0]
                flit = queue[0]
                if self._try_send(flit, first_link, allocation, in_flight, cycle):
                    queue.popleft()

            # 4. Switch arbitration: for every output link pick one input
            # buffer (round-robin) whose head flit goes that way.
            for out_id, inputs in link_inputs.items():
                if not inputs:
                    continue
                n = len(inputs)
                start = rr_pointer[out_id]
                for k in range(n):
                    in_id = inputs[(start + k) % n]
                    buf = buffers[in_id]
                    if not buf:
                        continue
                    flit = buf[0]
                    route = topo.routes[flit.flow]
                    if flit.hop + 1 >= len(route):
                        continue
                    if route[flit.hop + 1] != out_id:
                        continue
                    advanced = _Flit(
                        flow=flit.flow, packet_id=flit.packet_id,
                        is_head=flit.is_head, is_tail=flit.is_tail,
                        inject_cycle=flit.inject_cycle, hop=flit.hop + 1,
                    )
                    if self._try_send(advanced, out_id, allocation, in_flight, cycle):
                        buf.popleft()
                        rr_pointer[out_id] = (inputs.index(in_id) + 1) % n
                        break  # one flit per output per cycle
                    # Send refused (output allocated to another packet or
                    # pipeline slot taken): keep scanning — a different
                    # input may hold the packet that owns this output.
                    continue

            cycle += 1

        avg = sum(latencies) / len(latencies) if latencies else 0.0
        stats = SimulationStats(
            cycles=cycles,
            packets_injected=injected,
            packets_delivered=delivered,
            flits_delivered=flits_delivered,
            avg_packet_latency=avg,
            max_packet_latency=max(latencies) if latencies else 0,
            drain_cycles=cycle - cycles if cycle > cycles else 0,
        )
        for flow, vals in per_flow_lat.items():
            stats.per_flow_delivered[flow] = len(vals)
            if vals:
                stats.per_flow_latency[flow] = sum(vals) / len(vals)
        return stats

    # -- helpers -------------------------------------------------------------

    def _try_send(
        self,
        flit: _Flit,
        link_id: int,
        allocation: Dict[int, Optional[Tuple[Flow, int]]],
        in_flight: List[Deque[Tuple[int, _Flit]]],
        cycle: int,
    ) -> bool:
        """Wormhole-aware send of a flit onto a link (one per cycle)."""
        # One flit enters a link per cycle: model by checking the last
        # scheduled entry time.
        pipe = in_flight[link_id]
        if pipe and pipe[-1][0] >= cycle + self._link_delay[link_id]:
            return False
        holder = allocation[link_id]
        key = (flit.flow, flit.packet_id)
        if flit.is_head:
            if holder is not None:
                return False
            allocation[link_id] = key
        else:
            if holder != key:
                return False
        pipe.append((cycle + self._link_delay[link_id], flit))
        if flit.is_tail:
            allocation[link_id] = None
        return True

    def _inputs_per_link(self) -> Dict[int, List[int]]:
        """For each output link of a switch, the input links of that switch."""
        topo = self.topology
        incoming: Dict[int, List[int]] = {}
        for link in topo.links:
            if link.dst[0] == "switch":
                incoming.setdefault(link.dst[1], []).append(link.id)
        outputs: Dict[int, List[int]] = {}
        for link in topo.links:
            if link.src[0] == "switch":
                outputs[link.id] = sorted(incoming.get(link.src[1], []))
        return outputs
