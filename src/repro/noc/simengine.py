"""Array-based, occupancy-driven wormhole simulation engine.

The naive simulator (frozen in :mod:`repro.noc.reference`) pays for every
entity on every cycle: it allocates a ``_Flit`` dataclass per flit, scans
every link's pipeline deque, rebuilds a rotated flow list and walks every
switch output's full input list even when the network is idle. This engine
replaces all of that with flat state keyed by small integers:

* **integer flits** — flit ``pid * L + k`` of packet ``pid`` carries its
  packet id, head/tail role and serial position in one int; per-flit
  mutable state (current hop, pipeline-ready cycle) lives in parallel
  lists indexed by that int, so moving a flit is a couple of list writes
  instead of a dataclass allocation;
* **pre-drawn injection schedule** — all randomness is consumed up front
  through the shared :mod:`repro.noc.scenarios` contract, so the cycle
  loop itself is branch-predictable and RNG-free;
* **occupancy-driven scanning** — only links with flits in their pipeline
  (``active_pipes``), flows with queued flits (``active_src``) and
  switch outputs some buffered head flit actually requests (per-output
  ``want`` counters, updated whenever a buffer's head changes) are
  visited; idle entities cost nothing;
* **event skipping** — when no source queue or input buffer holds a flit,
  nothing can happen before the earliest pipeline-ready cycle or the next
  scheduled injection, so the clock jumps straight there instead of
  idling one cycle at a time.

Bit-exactness
-------------

The regression suite asserts this engine reproduces the frozen naive
baseline *bit for bit* — identical :class:`~repro.noc.simulator.SimulationStats`
and identical per-cycle delivery traces. That guarantee rests on three
observations:

1. the injection schedule is built by the same scenario code from the same
   freshly-seeded generator, so both simulators inject the same packets on
   the same cycles;
2. every phase visits its entities in the naive loop's order — links in
   ascending id (sorting the active-pipe set), source flows in the same
   rotated order restricted to non-empty queues, switch outputs in the
   naive dict's insertion order with the same round-robin scan — and
   skipped entities are exactly those for which the naive loop's body is a
   no-op (empty deque, empty queue, no buffered head flit routed to the
   output, so the naive scan would refuse every input and leave the
   round-robin pointer untouched);
3. the wormhole send test performs the same comparisons in the same order
   (pipeline slot, then allocation), with packet ids standing in for the
   naive ``(flow, packet_id)`` keys — unique because packet ids are;
4. a skipped cycle is one on which the naive loop performs no state
   change at all: with every source queue and input buffer empty, only a
   ready pipeline head can act, and the skip never jumps past the next
   ready cycle, the next scheduled injection, the injection horizon, or
   the drain bound (so even ``drain_cycles`` matches a cycle-by-cycle
   crawl).

Latency statistics are accumulated as running integer sums; the final
averages divide the same integer totals the naive lists sum to, so the
floats match bit for bit.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from repro.errors import SynthesisError
from repro.noc.scenarios import ScenarioSpec, build_schedule
from repro.rng import make_rng


def simulate(
    sim,
    *,
    cycles: int,
    warmup: int,
    injection_scale: float,
    scenario: ScenarioSpec = None,
    drain_limit: Optional[int] = None,
    trace: Optional[List[tuple]] = None,
):
    """Run one simulation on the array-based core.

    ``sim`` is a :class:`~repro.noc.simulator.WormholeSimulator` (already
    validated); returns its :class:`~repro.noc.simulator.SimulationStats`.
    """
    from repro.noc.simulator import SimulationStats  # circular at import time

    if drain_limit is None:
        drain_limit = cycles
    if drain_limit < 0:
        raise SynthesisError("drain limit must be >= 0")

    topo = sim.topology
    L = sim.packet_length
    tail_k = L - 1
    depth = sim.buffer_depth

    flows = sorted(topo.routes)
    F = len(flows)
    rng = make_rng(sim.seed, "wormhole")
    probs = [sim._inject_prob[f] * injection_scale for f in flows]
    schedule = build_schedule(scenario, flows, probs, cycles, rng)

    links = topo.links
    n_links = len(links)
    delay = list(sim._link_delay)
    routes = [topo.routes[f] for f in flows]
    route_len = [len(r) for r in routes]
    first_link = [r[0] for r in routes]
    is_eject = [l.dst[0] == "core" for l in links]

    # Switch arbitration table, in the naive iteration order (ascending
    # output link id — dict insertion order of _inputs_per_link).
    inputs_map = sim._inputs_per_link()
    out_ids = [o for o, inputs in inputs_map.items() if inputs]
    out_inputs = [inputs_map[o] for o in out_ids]
    n_out = len(out_ids)
    rr = [0] * n_out

    # Per-link state: pipeline FIFO of flit ints, ready cycle of the last
    # pipeline entry (valid while the pipe is non-empty), downstream input
    # buffer, and the packet id holding the wormhole allocation (-1 free).
    pipes = [deque() for _ in range(n_links)]
    pipe_last = [0] * n_links
    buffers = [deque() for _ in range(n_links)]
    alloc = [-1] * n_links
    src_q = [deque() for _ in range(F)]
    active_src = set()
    active_pipes = set()
    # want[out_id]: how many input-buffer head flits are routed to out_id.
    # Maintained on every buffer-head change, so arbitration can skip
    # outputs nobody requests without consulting any buffer.
    want = [0] * n_links

    # Per-packet / per-flit state, grown at injection time.
    pkt_flow: List[int] = []    # pid -> flow index
    pkt_cycle: List[int] = []   # pid -> injection cycle
    flit_hop: List[int] = []    # fid -> route hop of the link it is on
    flit_ready: List[int] = []  # fid -> cycle its pipeline delay elapses

    injected = delivered = flits_delivered = 0
    outstanding = 0             # flits injected but not yet ejected
    buffered = 0                # flits currently in input buffers
    lat_sum = lat_n = lat_max = 0
    pf_sum = [0] * F
    pf_n = [0] * F

    # next_inj[c]: first cycle >= c with a scheduled injection (or the
    # horizon) — the event-skip target while the network is empty.
    next_inj = [0] * (cycles + 1)
    next_inj[cycles] = cycles
    for c in range(cycles - 1, -1, -1):
        next_inj[c] = c if schedule[c] else next_inj[c + 1]
    drain_end = cycles + drain_limit

    zeros = [0] * L
    cycle = 0
    while True:
        # 1. Packet generation from the pre-drawn schedule.
        if cycle < cycles:
            row = schedule[cycle]
            if row:
                for fi in row:
                    pid = len(pkt_flow)
                    pkt_flow.append(fi)
                    pkt_cycle.append(cycle)
                    base = pid * L
                    src_q[fi].extend(range(base, base + L))
                    flit_hop += zeros
                    flit_ready += zeros
                    active_src.add(fi)
                outstanding += L * len(row)
                if cycle >= warmup:
                    injected += len(row)
        elif outstanding == 0 or cycle - cycles >= drain_limit:
            break

        # 2. Link delivery: at most one ready flit leaves each link's
        # pipeline per cycle — ejected at a core or moved into the
        # downstream input buffer if credit allows.
        if active_pipes:
            for lid in sorted(active_pipes):
                pipe = pipes[lid]
                fid = pipe[0]
                if flit_ready[fid] > cycle:
                    continue
                if is_eject[lid]:
                    pipe.popleft()
                    if not pipe:
                        active_pipes.discard(lid)
                    flits_delivered += 1
                    outstanding -= 1
                    pid = fid // L
                    if trace is not None:
                        trace.append(("eject", cycle, lid, pid))
                    if fid - pid * L == tail_k:
                        ic = pkt_cycle[pid]
                        if ic >= warmup:
                            lat = cycle - ic
                            delivered += 1
                            lat_sum += lat
                            lat_n += 1
                            if lat > lat_max:
                                lat_max = lat
                            fi = pkt_flow[pid]
                            pf_sum[fi] += lat
                            pf_n[fi] += 1
                        if alloc[lid] == pid:
                            alloc[lid] = -1
                else:
                    buf = buffers[lid]
                    if len(buf) < depth:
                        pipe.popleft()
                        if not pipe:
                            active_pipes.discard(lid)
                        if not buf:
                            # New buffer head: register its requested output.
                            fi = pkt_flow[fid // L]
                            hop_next = flit_hop[fid] + 1
                            if hop_next < route_len[fi]:
                                want[routes[fi][hop_next]] += 1
                        buf.append(fid)
                        buffered += 1
                        if trace is not None:
                            trace.append(("deliver", cycle, lid, fid // L))
                    # else: back-pressure — the flit waits at the link tail.

        # 3. Injection links: source queue -> first link of the route, in
        # the cycle-rotated flow order, visiting only non-empty queues.
        if active_src:
            if len(active_src) == 1:
                order = tuple(active_src)
            else:
                # flows[offset:] + flows[:offset], restricted to active.
                offset = cycle % F
                order = sorted(fi for fi in active_src if fi >= offset)
                order += sorted(fi for fi in active_src if fi < offset)
            for fi in order:
                q = src_q[fi]
                fid = q[0]
                lid = first_link[fi]
                pipe = pipes[lid]
                if pipe and pipe_last[lid] >= cycle + delay[lid]:
                    continue
                pid = fid // L
                k = fid - pid * L
                if k == 0:
                    if alloc[lid] != -1:
                        continue
                    alloc[lid] = pid
                elif alloc[lid] != pid:
                    continue
                ready = cycle + delay[lid]
                flit_ready[fid] = ready
                pipe_last[lid] = ready
                pipe.append(fid)
                active_pipes.add(lid)
                if k == tail_k:
                    alloc[lid] = -1
                q.popleft()
                if not q:
                    active_src.discard(fi)

        # 4. Switch arbitration: for every output link some buffered head
        # flit requests, pick one input buffer (round-robin) whose head
        # flit goes that way.
        for oi in range(n_out):
            out_id = out_ids[oi]
            if not want[out_id]:
                continue
            inputs = out_inputs[oi]
            n = len(inputs)
            start = rr[oi]
            for k2 in range(n):
                pos = start + k2
                if pos >= n:
                    pos -= n
                buf = buffers[inputs[pos]]
                if not buf:
                    continue
                fid = buf[0]
                pid = fid // L
                fi = pkt_flow[pid]
                hop_next = flit_hop[fid] + 1
                if hop_next >= route_len[fi]:
                    continue
                if routes[fi][hop_next] != out_id:
                    continue
                # Wormhole send onto out_id (same test order as the naive
                # _try_send: pipeline slot, then allocation).
                pipe = pipes[out_id]
                if pipe and pipe_last[out_id] >= cycle + delay[out_id]:
                    continue
                k = fid - pid * L
                if k == 0:
                    if alloc[out_id] != -1:
                        continue
                    alloc[out_id] = pid
                elif alloc[out_id] != pid:
                    continue
                ready = cycle + delay[out_id]
                flit_ready[fid] = ready
                pipe_last[out_id] = ready
                pipe.append(fid)
                active_pipes.add(out_id)
                if k == tail_k:
                    alloc[out_id] = -1
                flit_hop[fid] = hop_next
                want[out_id] -= 1
                buf.popleft()
                buffered -= 1
                if buf:
                    # Next flit surfaces: register what it requests.
                    nfid = buf[0]
                    nfi = pkt_flow[nfid // L]
                    nhop = flit_hop[nfid] + 1
                    if nhop < route_len[nfi]:
                        want[routes[nfi][nhop]] += 1
                rr[oi] = pos + 1 if pos + 1 < n else 0
                break  # one flit per output per cycle

        cycle += 1

        # Event skip: with no queued or buffered flit, the naive loop is a
        # no-op until a pipeline head ripens or the schedule injects (a
        # ready head is never back-pressured here — every buffer is
        # empty). Jump there, clamped to horizon and drain bound so the
        # break conditions fire on the same cycle a crawl would reach.
        if not active_src and not buffered and (outstanding or cycle < cycles):
            target = next_inj[cycle] if cycle < cycles else drain_end
            if active_pipes:
                ripe = min(flit_ready[pipes[lid][0]] for lid in active_pipes)
                if ripe < target:
                    target = ripe
            if target > cycle:
                cycle = target

    stats = SimulationStats(
        cycles=cycles,
        packets_injected=injected,
        packets_delivered=delivered,
        flits_delivered=flits_delivered,
        avg_packet_latency=lat_sum / lat_n if lat_n else 0.0,
        max_packet_latency=lat_max if lat_n else 0,
        drain_cycles=cycle - cycles if cycle > cycles else 0,
    )
    for fi, flow in enumerate(flows):
        stats.per_flow_delivered[flow] = pf_n[fi]
        if pf_n[fi]:
            stats.per_flow_latency[flow] = pf_sum[fi] / pf_n[fi]
    return stats
