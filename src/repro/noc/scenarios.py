"""Traffic-scenario library for the wormhole simulator.

A *scenario* decides, cycle by cycle and flow by flow, whether a new packet
enters the network. Scenarios are pure injection processes: they never touch
routing, arbitration or flow control, so the same synthesized topology can be
stressed under several traffic shapes:

* :class:`BernoulliScenario` — the classic per-flow Bernoulli process used by
  the original simulator: every cycle each flow independently injects with
  its specification-derived probability.
* :class:`HotspotScenario` — flows destined to one "hot" core inject at a
  boosted rate while the rest keep their specification rate, concentrating
  contention on the hot core's switch and ejection link.
* :class:`BurstyScenario` — a per-flow Markov on–off (Gilbert) process: the
  same mean offered load as Bernoulli, delivered in bursts. Burstiness grows
  queueing latency even at identical average load — exactly the behaviour the
  analytic zero-load model cannot see.
* :class:`ScaledScenario` — the whole specification uniformly scaled by a
  factor (an offered-load knob orthogonal to the simulator's
  ``injection_scale`` argument).

Determinism contract
--------------------

All randomness is consumed while *building the injection schedule*, before
the first simulated cycle, in one well-defined order per scenario class:
Bernoulli-style scenarios sample geometric inter-arrival gaps flow-major
(one draw per *arrival*, not per cycle — the same process, far fewer
draws); the bursty chain draws cycle-major per active flow. Both the
array-based engine (:mod:`repro.noc.simengine`) and the frozen naive
reference (:mod:`repro.noc.reference`) build their schedule through the
same :meth:`TrafficScenario.schedule` call on the same freshly-seeded
generator, which is what keeps their trajectories bit-identical across
every scenario.

Scenario objects are frozen dataclasses built from plain numbers, so they
pickle untouched across the :class:`~repro.engine.tasks.SimulationTask`
process boundary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import SynthesisError

Flow = Tuple[int, int]
#: One row per cycle; each row lists the indices (into the sorted flow list)
#: of the flows injecting a packet that cycle, in ascending order.
Schedule = List[List[int]]


class TrafficScenario:
    """Base class: a deterministic injection-schedule builder."""

    name = "scenario"

    def schedule(
        self,
        flows: Sequence[Flow],
        probs: Sequence[float],
        cycles: int,
        rng,
    ) -> Schedule:
        """Build the per-cycle injection schedule.

        Args:
            flows: The sorted ``(src_core, dst_core)`` flow list.
            probs: Per-flow injection probability per cycle (specification
                rate times the caller's ``injection_scale``), aligned with
                ``flows``.
            cycles: Number of injection cycles.
            rng: A freshly seeded :class:`random.Random`; every draw the
                scenario makes comes from here, in a fixed order.
        """
        raise NotImplementedError

    def label(self) -> str:
        """Short human-readable tag for tables and reports."""
        return self.name

    def bernoulli_probs(self, flows, probs):
        """Effective per-flow rates if this scenario is memoryless.

        Scenarios that reduce to :func:`_bernoulli_schedule` over a
        transformed probability vector (no draws of their own) return that
        vector here, letting :mod:`repro.noc.batchengine` rebuild their
        schedules through its vectorized sampler — which consumes the
        seeded generator's stream draw for draw like the scalar builder.
        Stateful scenarios return ``None`` and keep the scalar path.
        """
        return None


def _bernoulli_schedule(probs: Sequence[float], cycles: int, rng) -> Schedule:
    """Independent per-cycle, per-flow injections, sampled per arrival.

    Equivalent to drawing ``rng.random() < p`` for every (cycle, flow)
    pair, but via geometric inter-arrival gaps (inverse transform), so the
    draw count scales with the number of *packets* instead of
    ``cycles × flows``. Flow-major sampling appends ascending flow indices
    to each row, preserving the within-cycle injection order.
    """
    sched: Schedule = [[] for _ in range(cycles)]
    rand = rng.random
    log = math.log
    for fi, p in enumerate(probs):
        if p <= 0.0:
            continue
        if p >= 1.0:
            for row in sched:
                row.append(fi)
            continue
        # log1p keeps the denominator non-zero even when p is so small
        # that 1.0 - p rounds to 1.0 (log(1.0 - p) would underflow to 0).
        inv = 1.0 / math.log1p(-p)  # ~ -1/p for small p
        if not math.isfinite(inv):
            # p below ~1e-308 (denormal): the reciprocal overflows and the
            # expected inter-arrival gap exceeds any representable horizon.
            continue

        def gap() -> int:
            # Failures before the first success are geometric on {0, 1,
            # ...}; 1 - rand() lies in (0, 1], keeping log() finite. For
            # tiny (but normal) p the product can still overflow to inf —
            # or hit 0 * inf = nan — so anything not provably inside the
            # horizon clamps to `cycles`: "no arrival on this schedule".
            g = log(1.0 - rand()) * inv
            return int(g) if g < cycles else cycles

        c = gap()
        while c < cycles:
            sched[c].append(fi)
            c += 1 + gap()
    return sched


@dataclass(frozen=True)
class BernoulliScenario(TrafficScenario):
    """The specification-rate Bernoulli process (the historical default)."""

    name = "bernoulli"

    def schedule(self, flows, probs, cycles, rng) -> Schedule:
        return _bernoulli_schedule(probs, cycles, rng)

    def bernoulli_probs(self, flows, probs):
        return list(probs)


@dataclass(frozen=True)
class HotspotScenario(TrafficScenario):
    """Flows into one hot core inject at ``boost`` times their spec rate.

    Attributes:
        hotspot_core: Destination core to overload; ``None`` picks the core
            receiving the most flows (ties break to the lowest core id).
        boost: Multiplier on the hot flows' injection probability.
    """

    name = "hotspot"
    hotspot_core: Optional[int] = None
    boost: float = 4.0

    def __post_init__(self):
        if self.boost <= 0:
            raise SynthesisError(
                f"hotspot boost must be positive, got {self.boost}"
            )

    def pick_hotspot(self, flows: Sequence[Flow]) -> int:
        """The hot destination core (explicit, or busiest by flow count)."""
        if self.hotspot_core is not None:
            return self.hotspot_core
        counts: Dict[int, int] = {}
        for _src, dst in flows:
            counts[dst] = counts.get(dst, 0) + 1
        if not counts:
            raise SynthesisError("no flows to pick a hotspot from")
        return max(sorted(counts), key=lambda core: counts[core])

    def schedule(self, flows, probs, cycles, rng) -> Schedule:
        return _bernoulli_schedule(
            self.bernoulli_probs(flows, probs), cycles, rng
        )

    def bernoulli_probs(self, flows, probs):
        hot = self.pick_hotspot(flows)
        return [
            p * self.boost if flows[fi][1] == hot else p
            for fi, p in enumerate(probs)
        ]

    def label(self) -> str:
        core = "auto" if self.hotspot_core is None else self.hotspot_core
        return f"hotspot({core},x{self.boost:g})"


@dataclass(frozen=True)
class BurstyScenario(TrafficScenario):
    """Markov on–off injection with the same mean load as Bernoulli.

    Each flow is an independent two-state chain. In the ON state it injects
    with probability ``min(1, peak * p)`` per cycle; in OFF it is silent.
    The ON-dwell time is geometric with mean ``mean_burst_cycles``, and the
    OFF→ON rate is chosen so the stationary ON fraction restores the flow's
    mean rate ``p`` — so bursty and Bernoulli offer the *same* average load,
    differently clumped. When the chain cannot refill fast enough (the
    required OFF→ON probability would exceed 1 — a flow near link
    capacity), the ON-state rate is raised, degenerating to an always-ON
    flow at rate ``min(1, p)`` in the limit: near-saturated flows have no
    room to burst, but the offered mean load is preserved in every case.

    Draw order per flow ``fi`` (after one initial-state draw per flow): each
    cycle one state-transition draw, then — only when ON — one injection
    draw. Flows with zero probability make no draws at all.
    """

    name = "bursty"
    mean_burst_cycles: float = 8.0
    peak: float = 4.0

    def __post_init__(self):
        if self.mean_burst_cycles < 1.0:
            raise SynthesisError(
                f"mean burst length must be >= 1 cycle, got "
                f"{self.mean_burst_cycles}"
            )
        if self.peak <= 0:
            raise SynthesisError(f"peak must be positive, got {self.peak}")

    def schedule(self, flows, probs, cycles, rng) -> Schedule:
        n = len(probs)
        rand = rng.random
        beta = 1.0 / self.mean_burst_cycles  # ON -> OFF
        p_on: List[float] = [0.0] * n
        stationary: List[float] = [0.0] * n  # stationary ON fraction
        alpha: List[float] = [0.0] * n       # OFF -> ON
        always_on = [False] * n
        active = [False] * n                 # p > 0: participates in draws
        for fi, p in enumerate(probs):
            if p <= 0.0:
                continue
            active[fi] = True
            on = min(1.0, self.peak * p)
            if on <= p:
                # No room above the mean rate: the flow stays ON.
                always_on[fi] = True
                p_on[fi] = min(1.0, p)
                stationary[fi] = 1.0
                continue
            pi_on = p / on  # < 1 here
            alpha_req = beta * pi_on / (1.0 - pi_on)
            if alpha_req > 1.0:
                # OFF->ON probability cannot exceed 1: raise the ON rate
                # instead, so the alpha = 1 chain (stationary ON fraction
                # 1 / (1 + beta)) still offers exactly mean load p.
                on = p * (1.0 + beta)
                if on >= 1.0:
                    always_on[fi] = True
                    p_on[fi] = min(1.0, p)
                    stationary[fi] = 1.0
                    continue
                alpha_req = 1.0
                pi_on = 1.0 / (1.0 + beta)
            p_on[fi] = on
            stationary[fi] = pi_on
            alpha[fi] = alpha_req

        # Initial states: one stationary draw per active flow, flow order.
        state = [False] * n
        for fi in range(n):
            if not active[fi]:
                continue
            if always_on[fi]:
                state[fi] = True
            else:
                state[fi] = rand() < stationary[fi]

        sched: Schedule = []
        for _ in range(cycles):
            row: List[int] = []
            for fi in range(n):
                if not active[fi]:
                    continue
                if not always_on[fi]:
                    if state[fi]:
                        if rand() < beta:
                            state[fi] = False
                    elif rand() < alpha[fi]:
                        state[fi] = True
                if state[fi] and rand() < p_on[fi]:
                    row.append(fi)
            sched.append(row)
        return sched

    def label(self) -> str:
        return f"bursty(b{self.mean_burst_cycles:g},x{self.peak:g})"


@dataclass(frozen=True)
class ScaledScenario(TrafficScenario):
    """Every flow's specification rate uniformly scaled by ``factor``."""

    name = "scaled"
    factor: float = 1.0

    def __post_init__(self):
        if self.factor < 0:
            raise SynthesisError(
                f"scale factor must be non-negative, got {self.factor}"
            )

    def schedule(self, flows, probs, cycles, rng) -> Schedule:
        return _bernoulli_schedule(
            self.bernoulli_probs(flows, probs), cycles, rng
        )

    def bernoulli_probs(self, flows, probs):
        return [p * self.factor for p in probs]

    def label(self) -> str:
        return f"scaled(x{self.factor:g})"


#: Registry used by :func:`make_scenario` and the CLI ``sim`` subcommand.
SCENARIOS = {
    "bernoulli": BernoulliScenario,
    "hotspot": HotspotScenario,
    "bursty": BurstyScenario,
    "scaled": ScaledScenario,
}

ScenarioSpec = Union[None, str, TrafficScenario]


def make_scenario(spec: ScenarioSpec) -> TrafficScenario:
    """Resolve a scenario argument to a :class:`TrafficScenario` instance.

    Accepts ``None`` (the Bernoulli default), an existing scenario object,
    a bare name (``"hotspot"``), or a name with one numeric argument
    separated by a colon: ``"hotspot:3"`` (hot core id), ``"bursty:16"``
    (mean burst cycles), ``"scaled:1.5"`` (scale factor).
    """
    if spec is None:
        return BernoulliScenario()
    if isinstance(spec, TrafficScenario):
        return spec
    if not isinstance(spec, str):
        raise SynthesisError(
            f"scenario must be a name or TrafficScenario, got {spec!r}"
        )
    name, _, arg = spec.partition(":")
    name = name.strip().lower()
    if name not in SCENARIOS:
        known = ", ".join(sorted(SCENARIOS))
        raise SynthesisError(f"unknown scenario {name!r}; known: {known}")
    if not arg:
        return SCENARIOS[name]()
    try:
        if name == "hotspot":
            return HotspotScenario(hotspot_core=int(arg))
        if name == "bursty":
            return BurstyScenario(mean_burst_cycles=float(arg))
        if name == "scaled":
            return ScaledScenario(factor=float(arg))
    except ValueError:
        raise SynthesisError(f"could not parse scenario argument in {spec!r}")
    raise SynthesisError(f"scenario {name!r} takes no argument, got {spec!r}")


def build_schedule(
    scenario: ScenarioSpec,
    flows: Sequence[Flow],
    probs: Sequence[float],
    cycles: int,
    rng,
) -> Schedule:
    """Resolve ``scenario`` and build its injection schedule (validated)."""
    if len(flows) != len(probs):
        raise SynthesisError(
            f"got {len(flows)} flows but {len(probs)} probabilities"
        )
    sched = make_scenario(scenario).schedule(flows, probs, cycles, rng)
    if len(sched) != cycles:
        raise SynthesisError(
            f"scenario produced {len(sched)} rows for {cycles} cycles"
        )
    return sched
