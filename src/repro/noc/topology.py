"""The synthesized-NoC data model.

A :class:`Topology` holds switches, unidirectional physical links and the
route (link sequence) of every traffic flow. It also maintains the two
resources the paper's constraints police:

* **switch port counts** (``switch_size_inp`` / ``switch_size_out`` of
  Def. 6) — grown as cores are attached and inter-switch links created;
* **inter-layer link counts** ``ill(l, l+1)`` (Def. 6) — one count per
  adjacent-layer boundary, incremented for every boundary a link crosses.

Links are unidirectional: a core attached to a switch gets one injection and
one ejection link; an inter-switch connection in each traffic direction is a
separate physical link. Inter-layer link counting is therefore per direction,
matching one TSV bundle per unidirectional link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SynthesisError
from repro.units import link_capacity_mbps

#: An endpoint is ("core", core_index) or ("switch", switch_id).
Endpoint = Tuple[str, int]


def core_ep(index: int) -> Endpoint:
    return ("core", index)


def switch_ep(switch_id: int) -> Endpoint:
    return ("switch", switch_id)


@dataclass
class Switch:
    """A network switch assigned to one 3-D layer.

    Position (x, y) is filled in by the placement LP (Sec. VII); until then
    an estimated position (core centroid) is stored by the synthesis code.
    """

    id: int
    layer: int
    x: float = 0.0
    y: float = 0.0
    in_ports: int = 0
    out_ports: int = 0
    is_indirect: bool = False

    @property
    def size(self) -> int:
        """Switch size: the crossbar radix, max(input ports, output ports)."""
        return max(self.in_ports, self.out_ports)

    @property
    def center(self) -> Tuple[float, float]:
        return (self.x, self.y)


@dataclass
class Link:
    """A unidirectional physical link.

    Attributes:
        id: Dense link id (index into ``Topology.links``).
        src / dst: Endpoints.
        src_layer / dst_layer: 3-D layers of the endpoints.
        load_mbps: Total bandwidth of the flows mapped to the link.
        flows: The (src_core, dst_core) flow ids using the link.
        length_mm: Planar (intra-layer metal) length; set after placement.
    """

    id: int
    src: Endpoint
    dst: Endpoint
    src_layer: int
    dst_layer: int
    load_mbps: float = 0.0
    flows: List[Tuple[int, int]] = field(default_factory=list)
    length_mm: float = 0.0

    @property
    def layers_crossed(self) -> int:
        return abs(self.src_layer - self.dst_layer)

    @property
    def is_vertical(self) -> bool:
        return self.layers_crossed > 0

    @property
    def lo_layer(self) -> int:
        return min(self.src_layer, self.dst_layer)

    @property
    def hi_layer(self) -> int:
        return max(self.src_layer, self.dst_layer)

    @property
    def is_core_link(self) -> bool:
        return self.src[0] == "core" or self.dst[0] == "core"


@dataclass
class Topology:
    """A synthesized NoC for one design point."""

    frequency_mhz: float
    width_bits: int
    switches: List[Switch] = field(default_factory=list)
    links: List[Link] = field(default_factory=list)
    core_to_switch: Dict[int, int] = field(default_factory=dict)
    #: flow (src_core, dst_core) -> list of link ids, injection to ejection.
    routes: Dict[Tuple[int, int], List[int]] = field(default_factory=dict)
    #: flow -> list of switch ids traversed (derived, kept for reporting).
    switch_routes: Dict[Tuple[int, int], List[int]] = field(default_factory=dict)
    #: flow -> bandwidth demand in MB/s (recorded at routing time).
    flow_bandwidth: Dict[Tuple[int, int], float] = field(default_factory=dict)
    #: boundary (l, l+1) -> number of links crossing it.
    ill: Dict[Tuple[int, int], int] = field(default_factory=dict)
    #: (src endpoint, dst endpoint) -> link ids, kept in sync by _new_link.
    _link_index: Dict[Tuple[Endpoint, Endpoint], List[int]] = field(
        default_factory=dict, repr=False
    )

    # -- construction ------------------------------------------------------

    def add_switch(self, layer: int, *, is_indirect: bool = False) -> Switch:
        sw = Switch(id=len(self.switches), layer=layer, is_indirect=is_indirect)
        self.switches.append(sw)
        return sw

    def attach_core(
        self, core_index: int, switch_id: int, core_layer: int
    ) -> Tuple[Link, Link]:
        """Connect a core to a switch with an injection + an ejection link."""
        if core_index in self.core_to_switch:
            raise SynthesisError(f"core {core_index} already attached")
        sw = self.switches[switch_id]
        inj = self._new_link(core_ep(core_index), switch_ep(switch_id),
                             core_layer, sw.layer)
        ej = self._new_link(switch_ep(switch_id), core_ep(core_index),
                            sw.layer, core_layer)
        sw.in_ports += 1
        sw.out_ports += 1
        self.core_to_switch[core_index] = switch_id
        return inj, ej

    def add_switch_link(self, src_switch: int, dst_switch: int) -> Link:
        """Open a new physical link between two switches (one direction)."""
        if src_switch == dst_switch:
            raise SynthesisError("switch self-links are not allowed")
        a = self.switches[src_switch]
        b = self.switches[dst_switch]
        link = self._new_link(
            switch_ep(src_switch), switch_ep(dst_switch), a.layer, b.layer
        )
        a.out_ports += 1
        b.in_ports += 1
        return link

    def _new_link(
        self, src: Endpoint, dst: Endpoint, src_layer: int, dst_layer: int
    ) -> Link:
        link = Link(
            id=len(self.links), src=src, dst=dst,
            src_layer=src_layer, dst_layer=dst_layer,
        )
        self.links.append(link)
        self._link_index.setdefault((src, dst), []).append(link.id)
        for boundary in range(link.lo_layer, link.hi_layer):
            key = (boundary, boundary + 1)
            self.ill[key] = self.ill.get(key, 0) + 1
        return link

    # -- queries -----------------------------------------------------------

    @property
    def capacity_mbps(self) -> float:
        return link_capacity_mbps(self.width_bits, self.frequency_mhz)

    def links_between(self, src: Endpoint, dst: Endpoint) -> List[Link]:
        return [self.links[i] for i in self._link_index.get((src, dst), [])]

    def injection_link(self, core_index: int) -> Link:
        sw = self.core_to_switch[core_index]
        candidates = self.links_between(core_ep(core_index), switch_ep(sw))
        if not candidates:
            raise SynthesisError(f"core {core_index} has no injection link")
        return candidates[0]

    def ejection_link(self, core_index: int) -> Link:
        sw = self.core_to_switch[core_index]
        candidates = self.links_between(switch_ep(sw), core_ep(core_index))
        if not candidates:
            raise SynthesisError(f"core {core_index} has no ejection link")
        return candidates[0]

    def ill_between(self, layer_a: int, layer_b: int) -> int:
        """Current inter-layer link count across the (a, b) boundary."""
        lo, hi = min(layer_a, layer_b), max(layer_a, layer_b)
        total = 0
        for boundary in range(lo, hi):
            total += self.ill.get((boundary, boundary + 1), 0)
        return total

    @property
    def max_ill_used(self) -> int:
        return max(self.ill.values()) if self.ill else 0

    @property
    def num_vertical_links(self) -> int:
        return sum(1 for l in self.links if l.is_vertical)

    @property
    def num_switch_links(self) -> int:
        return sum(1 for l in self.links if not l.is_core_link)

    @property
    def max_switch_size(self) -> int:
        return max((s.size for s in self.switches), default=0)

    def vertical_links(self) -> List[Link]:
        return [l for l in self.links if l.is_vertical]

    # -- route bookkeeping ---------------------------------------------------

    def record_route(
        self,
        flow: Tuple[int, int],
        link_ids: List[int],
        switch_ids: List[int],
        bandwidth_mbps: float,
    ) -> None:
        """Store a flow's route and account its bandwidth on every link."""
        if flow in self.routes:
            raise SynthesisError(f"flow {flow} already routed")
        self.routes[flow] = list(link_ids)
        self.switch_routes[flow] = list(switch_ids)
        self.flow_bandwidth[flow] = bandwidth_mbps
        for lid in link_ids:
            link = self.links[lid]
            link.load_mbps += bandwidth_mbps
            link.flows.append(flow)

    def validate_routes(self) -> None:
        """Check that every stored route is a connected src->dst chain."""
        for (src, dst), link_ids in self.routes.items():
            if not link_ids:
                raise SynthesisError(f"flow ({src}, {dst}) has an empty route")
            chain = [self.links[l] for l in link_ids]
            if chain[0].src != core_ep(src):
                raise SynthesisError(f"flow ({src}, {dst}): route does not start at source core")
            if chain[-1].dst != core_ep(dst):
                raise SynthesisError(f"flow ({src}, {dst}): route does not end at destination core")
            for a, b in zip(chain, chain[1:]):
                if a.dst != b.src:
                    raise SynthesisError(
                        f"flow ({src}, {dst}): route breaks between links {a.id} and {b.id}"
                    )

    def check_capacity(self, utilisation_cap: float = 1.0) -> List[int]:
        """Link ids whose load exceeds ``utilisation_cap * capacity``."""
        limit = self.capacity_mbps * utilisation_cap
        return [l.id for l in self.links if l.load_mbps > limit + 1e-9]
