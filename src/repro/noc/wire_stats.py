"""Wire-length distribution statistics (Fig. 12 of the paper).

Fig. 12 compares the distribution of link lengths of the 2-D and 3-D
implementations of D_26_media: the 2-D design has a long tail of multi-mm
wires that the 3-D design removes. This module computes the histogram rows
the experiment harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class WireLengthBin:
    """One histogram bin: lengths in [lo, hi) mm."""

    lo_mm: float
    hi_mm: float
    count: int

    @property
    def label(self) -> str:
        return f"[{self.lo_mm:.2f}, {self.hi_mm:.2f})"


def wire_length_histogram(
    lengths_mm: Sequence[float],
    bin_width_mm: float = 0.5,
    max_mm: Optional[float] = None,
) -> List[WireLengthBin]:
    """Histogram of wire lengths with fixed-width bins.

    Args:
        lengths_mm: Link lengths (vertical links contribute their planar
            portion, usually ~0 — which is the point of Fig. 12).
        bin_width_mm: Bin width.
        max_mm: Upper edge of the last bin (default: covers the max length).

    Returns:
        Bins from 0 to ``max_mm``; every length is counted in exactly one
        bin (the final bin is closed on the right).
    """
    if bin_width_mm <= 0:
        raise ValueError(f"bin width must be positive, got {bin_width_mm}")
    if max_mm is not None and max_mm <= 0:
        raise ValueError(f"max_mm must be positive, got {max_mm}")
    if any(l < 0 for l in lengths_mm):
        raise ValueError("wire lengths must be non-negative")

    if max_mm is None:
        max_mm = max(lengths_mm, default=0.0)
    n_bins = max(1, int(-(-max_mm // bin_width_mm))) if max_mm > 0 else 1

    counts = [0] * n_bins
    for length in lengths_mm:
        idx = min(int(length // bin_width_mm), n_bins - 1)
        counts[idx] += 1

    return [
        WireLengthBin(lo_mm=i * bin_width_mm, hi_mm=(i + 1) * bin_width_mm, count=c)
        for i, c in enumerate(counts)
    ]


def length_stats(lengths_mm: Sequence[float]) -> Tuple[float, float, float]:
    """(mean, max, total) of the wire lengths; zeros for an empty input."""
    if not lengths_mm:
        return (0.0, 0.0, 0.0)
    total = sum(lengths_mm)
    return (total / len(lengths_mm), max(lengths_mm), total)
