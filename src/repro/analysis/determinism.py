"""Checker: all nondeterminism flows through ``repro.rng.make_rng``.

The warm/cold bit-identity guarantee (stage cache, campaign resume,
frozen references) holds only if every random draw is derived from the
config-fingerprinted seed path. A stray ``random.random()`` or a
seedless ``numpy.random.default_rng()`` makes results depend on process
history; a ``time.time()`` or ``datetime.now()`` in a fingerprinted
value leaks wall-clock into content hashes. This checker bans those at
the import/call level, tree-wide:

* the ``random`` module may only be imported by ``repro/rng.py`` (the
  one place allowed to build generators — everything else asks
  :func:`~repro.rng.make_rng` for one);
* ``numpy.random`` global-state draws (``np.random.rand``,
  ``np.random.seed`` …) are banned everywhere — they mutate an ambient
  generator no fingerprint covers;
* constructing numpy generators (``default_rng``, ``RandomState``)
  outside ``repro/rng.py`` is banned even *with* a seed, so seed
  derivation stays in one audited module;
* wall-clock / entropy reads (``time.time``, ``datetime.now``,
  ``os.urandom``) are banned; ``time.perf_counter`` and
  ``time.monotonic`` stay legal because timing *metadata* never enters
  a fingerprint. The store's eviction clock is the one sanctioned
  ``time.time`` user, carried as ``# repro: noqa[RPL202]``.

The scope is deliberately the whole of ``src/repro`` rather than a
computed "fingerprinted call graph": the wider invariant is barely more
restrictive in practice and immune to call-graph blind spots.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from repro.analysis.framework import (
    Checker,
    Finding,
    LintContext,
    ModuleSource,
    dotted_name,
    register_checker,
)

#: The one module allowed to import ``random`` and construct generators.
_RNG_MODULE_SUFFIX = "repro/rng.py"

#: ``numpy.random`` attributes that touch the ambient global generator.
_NUMPY_GLOBAL_FNS = frozenset({
    "seed", "rand", "randn", "random", "random_sample", "ranf", "sample",
    "randint", "random_integers", "choice", "shuffle", "permutation",
    "normal", "uniform", "poisson", "exponential", "binomial", "geometric",
    "standard_normal", "bytes", "get_state", "set_state",
})

#: ``numpy.random`` generator constructors (banned outside repro/rng.py).
_NUMPY_CONSTRUCTORS = frozenset({
    "default_rng", "RandomState", "Generator", "PCG64", "PCG64DXSM",
    "MT19937", "Philox", "SFC64", "SeedSequence",
})

#: Wall-clock / entropy calls, by canonical dotted name.
_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom",
})


def _is_rng_module(module: ModuleSource) -> bool:
    return module.relpath.endswith(_RNG_MODULE_SUFFIX) \
        or module.relpath == "rng.py"


@register_checker
class DeterminismChecker(Checker):
    """Prove randomness and wall-clock stay out of fingerprinted values."""

    name = "determinism"
    codes = {
        "RPL201": "the random module imported outside repro/rng.py",
        "RPL202": "wall-clock or entropy read (time.time, datetime.now, "
                  "os.urandom) in fingerprinted code",
        "RPL203": "numpy.random global-state draw (ambient generator, "
                  "never fingerprinted)",
        "RPL204": "RNG constructed outside repro.rng.make_rng",
    }

    def check(self, context: LintContext) -> List[Finding]:
        findings: List[Finding] = []
        for module in context.modules:
            if _is_rng_module(module):
                continue
            findings.extend(self._check_module(module))
        return findings

    def _check_module(self, module: ModuleSource) -> List[Finding]:
        findings: List[Finding] = []
        #: local name -> canonical dotted path it is bound to.
        aliases: Dict[str, str] = {}

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".", 1)[0]
                    if alias.name == "random" or alias.name.startswith("random."):
                        findings.append(self.finding(
                            "RPL201",
                            f"import of {alias.name!r}: only repro/rng.py "
                            "may build stdlib generators — take an rng from "
                            "make_rng instead",
                            module, node,
                        ))
                    target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    aliases[bound] = target
            elif isinstance(node, ast.ImportFrom):
                if node.module is None:
                    continue
                if node.module == "random" or node.module.startswith("random."):
                    findings.append(self.finding(
                        "RPL201",
                        f"import from {node.module!r}: only repro/rng.py "
                        "may build stdlib generators — take an rng from "
                        "make_rng instead",
                        module, node,
                    ))
                for alias in node.names:
                    bound = alias.asname or alias.name
                    aliases[bound] = f"{node.module}.{alias.name}"

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = self._canonical(node.func, aliases)
            if canonical is None:
                continue
            finding = self._classify_call(canonical, module, node)
            if finding is not None:
                findings.append(finding)
        return findings

    @staticmethod
    def _canonical(func: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
        """The call target as a canonical dotted path (aliases resolved)."""
        name = dotted_name(func)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        resolved = aliases.get(head, head)
        return f"{resolved}.{rest}" if rest else resolved

    def _classify_call(
        self, canonical: str, module: ModuleSource, node: ast.Call
    ) -> Optional[Finding]:
        if canonical in _CLOCK_CALLS:
            return self.finding(
                "RPL202",
                f"{canonical}() reads the wall clock / OS entropy — a "
                "fingerprinted value derived from it breaks warm/cold "
                "bit-identity (use time.perf_counter for timing metadata)",
                module, node,
            )
        if canonical.startswith("numpy.random."):
            attr = canonical.rsplit(".", 1)[-1]
            if attr in _NUMPY_GLOBAL_FNS:
                return self.finding(
                    "RPL203",
                    f"{canonical}() draws from numpy's ambient global "
                    "generator, which no fingerprint covers — use a "
                    "generator from make_rng",
                    module, node,
                )
            if attr in _NUMPY_CONSTRUCTORS:
                return self.finding(
                    "RPL204",
                    f"{canonical}() constructs an RNG outside "
                    "repro.rng.make_rng — seed derivation must stay in "
                    "the one audited module",
                    module, node,
                )
        if canonical in ("random.Random", "random.SystemRandom"):
            return self.finding(
                "RPL204",
                f"{canonical}() constructs an RNG outside "
                "repro.rng.make_rng — seed derivation must stay in the "
                "one audited module",
                module, node,
            )
        return None
