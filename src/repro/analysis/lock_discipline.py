"""Checker: lock-requiring internals are only reached from lock-holding sites.

The store and the journal both follow the same shape: public mutators
acquire a :class:`~repro.engine.locks.FileLock`, then call ``_locked``
internals that assume the lock is held. Nothing at runtime enforces that
assumption — calling ``_evict_locked`` without the store lock silently
races a concurrent process's directory walk. The contract is made
checkable with three zero-cost markers from :mod:`repro.engine.locks`:

* ``@requires_lock("store")`` — the function **assumes** the named lock
  is already held by its caller;
* ``@acquires_lock("store")`` — calling the function takes (or returns a
  holder of) the named lock;
* ``@asserts_lock("journal")`` — the function verifies lock ownership
  and raises if absent (the journal's ``_require_writer`` guard).

A call to a ``requires_lock(L)``-marked function is **satisfied** when
any of these holds at the call site:

1. the enclosing function is itself marked ``requires_lock(L)`` or
   ``acquires_lock(L)`` (the obligation moves up / is met internally);
2. a call to an ``acquires_lock(L)``- or ``asserts_lock(L)``-marked
   function appears lexically before it in the same enclosing function;
3. a ``FileLock(...)`` is constructed lexically before it in the same
   enclosing function (satisfies any lock name — the lock's identity is
   a runtime path the AST cannot resolve).

This is a lexical, not a path-sensitive, analysis: it will not notice a
``lock = self._mutation_lock(wait=False)`` whose ``None`` (not-acquired)
arm falls through — but that shape already raises at runtime in this
codebase, and lexical discipline is exactly the property that survives
refactors: you cannot *reach* a ``_locked`` internal without writing the
acquisition into the same function first.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.framework import (
    Checker,
    Finding,
    LintContext,
    ModuleSource,
    decorator_marker,
    dotted_name,
    register_checker,
)

_MARKERS = ("requires_lock", "acquires_lock", "asserts_lock")


@dataclass(frozen=True)
class _Marked:
    """One marker on one function, keyed by the function's bare name."""

    marker: str     # "requires_lock" | "acquires_lock" | "asserts_lock"
    lock: str


@register_checker
class LockDisciplineChecker(Checker):
    """Prove ``@requires_lock`` internals are called with the lock held."""

    name = "lock-discipline"
    codes = {
        "RPL401": "lock-requiring function called from a site that does "
                  "not hold the lock",
        "RPL402": "lock marker without a lock name",
    }

    def check(self, context: LintContext) -> List[Finding]:
        findings: List[Finding] = []
        #: bare function name -> markers on it, across the whole corpus
        #: (call sites use bare names: ``self._evict_locked``, ``_guard()``).
        marked: Dict[str, List[_Marked]] = {}

        for module in context.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                for deco in node.decorator_list:
                    hit = decorator_marker(deco, _MARKERS)
                    if hit is None:
                        continue
                    marker, lock = hit
                    if lock is None:
                        findings.append(self.finding(
                            "RPL402",
                            f"@{marker} on {node.name!r} names no lock — "
                            "write @"
                            f"{marker}(\"<lock-name>\")",
                            module, deco,
                        ))
                        continue
                    marked.setdefault(node.name, []).append(
                        _Marked(marker=marker, lock=lock)
                    )

        requires: Dict[str, Set[str]] = {}
        satisfiers: Dict[str, Set[str]] = {}
        for name, marks in marked.items():
            for mark in marks:
                if mark.marker == "requires_lock":
                    requires.setdefault(name, set()).add(mark.lock)
                else:
                    satisfiers.setdefault(name, set()).add(mark.lock)

        if not requires:
            return findings

        for module in context.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    findings.extend(self._check_function(
                        module, node, requires, satisfiers, marked,
                    ))
        return findings

    def _check_function(
        self,
        module: ModuleSource,
        fn: ast.FunctionDef,
        requires: Dict[str, Set[str]],
        satisfiers: Dict[str, Set[str]],
        marked: Dict[str, List[_Marked]],
    ) -> List[Finding]:
        held: Set[str] = set()
        for deco in fn.decorator_list:
            hit = decorator_marker(deco, _MARKERS)
            if hit is not None and hit[1] is not None:
                # requires: caller provides it; acquires: taken internally.
                held.add(hit[1])

        findings: List[Finding] = []
        wildcard = False
        for call in _calls_in_order(fn):
            tail = _call_tail(call)
            if tail is None:
                continue
            if tail == "FileLock":
                wildcard = True
            needed = requires.get(tail)
            if needed:
                for lock in sorted(needed):
                    if lock in held or wildcard:
                        continue
                    findings.append(self.finding(
                        "RPL401",
                        f"call to {tail!r} requires lock {lock!r}, but "
                        f"{fn.name!r} neither holds it (no "
                        f"@requires_lock/@acquires_lock marker) nor "
                        "acquires it earlier in the function",
                        module, call,
                    ))
            for lock in satisfiers.get(tail, ()):
                held.add(lock)
        return findings


def _calls_in_order(fn: ast.FunctionDef) -> List[ast.Call]:
    """Call nodes in ``fn``, in source order, excluding nested defs.

    Nested functions are separate lexical scopes — a lock acquired in the
    enclosing body is *not* assumed held inside a nested def (it may run
    later, e.g. as a callback), and they are checked independently.
    """
    calls: List[ast.Call] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            if isinstance(child, ast.Call):
                calls.append(child)
            visit(child)

    for stmt in fn.body:
        if isinstance(stmt, ast.Call):
            calls.append(stmt)
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            visit(stmt)
    calls.sort(key=lambda c: (c.lineno, c.col_offset))
    return calls


def _call_tail(call: ast.Call) -> Optional[str]:
    name = dotted_name(call.func)
    if name is None:
        return None
    return name.rsplit(".", 1)[-1]
