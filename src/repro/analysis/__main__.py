"""``python -m repro.analysis`` — alias for ``python -m repro.cli lint``."""

from __future__ import annotations

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["lint", *sys.argv[1:]]))
