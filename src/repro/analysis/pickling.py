"""Checker: engine task payloads must survive a round trip through pickle.

Everything the process pool ships — ``SynthesisTask``, ``CandidateTask``,
``FloorplanTask``, ``FaultyTask`` … — crosses a fork/spawn boundary as a
pickle. A lambda, nested function, generator, lock, or open file handle
bound into such a payload does not fail at construction time; it fails
**inside the pool**, mid-campaign, as an opaque ``PicklingError`` from a
worker — the single worst place in this codebase to debug. This checker
moves that failure to lint time.

Scope: every class whose name ends in ``Task`` (the payload naming
convention; ``*Result`` classes are produced *by* workers and excluded).
Within such a class, three binding sites are examined:

* class-level attribute / dataclass field defaults,
* ``field(default=...)`` / ``field(default_factory=...)`` arguments,
* ``self.<attr> = ...`` assignments in any method.

and four value shapes are banned: lambdas and references to functions
defined in an enclosing local scope (pickle stores them by qualified
name, which the worker cannot resolve), generator expressions /
generator-function calls (a paused frame has no pickle form), lock
constructions (``threading.Lock`` and friends, ``FileLock``), and file
handles (``open``, ``Path.open``, ``NamedTemporaryFile``).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.framework import (
    Checker,
    Finding,
    LintContext,
    ModuleSource,
    dotted_name,
    register_checker,
)

#: Constructors whose result holds OS lock state.
_LOCK_CONSTRUCTORS = frozenset({
    "Lock", "RLock", "Semaphore", "BoundedSemaphore", "Condition",
    "Event", "Barrier", "FileLock",
})

#: Calls that return open file handles.
_HANDLE_CONSTRUCTORS = frozenset({
    "open", "fdopen", "NamedTemporaryFile", "TemporaryFile", "popen",
    "Popen", "socket",
})


@register_checker
class PicklingChecker(Checker):
    """Prove ``*Task`` payloads contain nothing pickle refuses."""

    name = "pickling"
    codes = {
        "RPL301": "lambda or local function bound into a task payload",
        "RPL302": "generator bound into a task payload",
        "RPL303": "lock object bound into a task payload",
        "RPL304": "file or OS handle bound into a task payload",
    }

    def check(self, context: LintContext) -> List[Finding]:
        findings: List[Finding] = []
        for module in context.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef) and _is_task_class(node):
                    findings.extend(self._check_class(module, node))
        return findings

    def _check_class(
        self, module: ModuleSource, cls: ast.ClassDef
    ) -> List[Finding]:
        findings: List[Finding] = []
        generator_fns = _module_generator_functions(module.tree)

        # Class-level defaults (covers dataclass fields).
        for item in cls.body:
            attr: Optional[str] = None
            value: Optional[ast.expr] = None
            if isinstance(item, ast.Assign) and len(item.targets) == 1 \
                    and isinstance(item.targets[0], ast.Name):
                attr, value = item.targets[0].id, item.value
            elif isinstance(item, ast.AnnAssign) \
                    and isinstance(item.target, ast.Name):
                attr, value = item.target.id, item.value
            if attr is not None and value is not None:
                findings.extend(self._check_value(
                    module, cls.name, attr, value, generator_fns,
                    local_fns=set(), site="default of",
                ))

        # self.<attr> = ... in methods.
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            local_fns = {
                sub.name for sub in ast.walk(item)
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                and sub is not item
            }
            for sub in ast.walk(item):
                if not isinstance(sub, ast.Assign):
                    continue
                for target in sub.targets:
                    if isinstance(target, ast.Attribute) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id == "self":
                        findings.extend(self._check_value(
                            module, cls.name, target.attr, sub.value,
                            generator_fns, local_fns=local_fns,
                            site="assignment to",
                        ))
        return findings

    def _check_value(
        self,
        module: ModuleSource,
        cls_name: str,
        attr: str,
        value: ast.expr,
        generator_fns: Set[str],
        *,
        local_fns: Set[str],
        site: str,
    ) -> List[Finding]:
        findings: List[Finding] = []
        where = f"{site} {cls_name}.{attr}"

        # One flat walk covers nested shapes too: a lambda inside a
        # field(default_factory=...) call or a tuple literal is the same
        # pickling hazard as a bare one.
        for node in ast.walk(value):
            if isinstance(node, ast.Lambda):
                findings.append(self.finding(
                    "RPL301",
                    f"{where} binds a lambda — pickle stores functions by "
                    "qualified name, which the pool worker cannot resolve",
                    module, node,
                ))
            elif isinstance(node, ast.Name) and node.id in local_fns:
                findings.append(self.finding(
                    "RPL301",
                    f"{where} binds local function {node.id!r} — pickle "
                    "stores functions by qualified name, which the pool "
                    "worker cannot resolve",
                    module, node,
                ))
            elif isinstance(node, ast.GeneratorExp):
                findings.append(self.finding(
                    "RPL302",
                    f"{where} binds a generator expression — a paused "
                    "frame has no pickle form; materialise a tuple instead",
                    module, node,
                ))
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                tail = name.rsplit(".", 1)[-1] if name else ""
                if tail in generator_fns:
                    findings.append(self.finding(
                        "RPL302",
                        f"{where} binds the generator returned by "
                        f"{tail}() — a paused frame has no pickle form; "
                        "materialise a tuple instead",
                        module, node,
                    ))
                elif tail in _LOCK_CONSTRUCTORS:
                    findings.append(self.finding(
                        "RPL303",
                        f"{where} binds a {tail}() — lock state is "
                        "process-local and unpicklable; acquire locks in "
                        "the worker, not in the payload",
                        module, node,
                    ))
                elif tail in _HANDLE_CONSTRUCTORS:
                    findings.append(self.finding(
                        "RPL304",
                        f"{where} binds the handle returned by {tail}() — "
                        "OS handles are process-local; ship the path and "
                        "open it in the worker",
                        module, node,
                    ))
        return findings


def _module_generator_functions(tree: ast.Module) -> Set[str]:
    """Names of generator functions anywhere in the module."""
    return {
        node.name
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and _has_direct_yield(node)
    }


def _has_direct_yield(fn: ast.AST) -> bool:
    """Whether ``fn`` itself yields (yields in nested defs don't count)."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


def _is_task_class(node: ast.ClassDef) -> bool:
    return node.name.endswith("Task") and not node.name.endswith("Result")
