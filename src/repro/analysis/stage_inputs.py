"""Checker: a stage's declared inputs must equal what ``run()`` touches.

The stage cache (:mod:`repro.engine.stagecache`) fingerprints a stage by
its **declared** ``context_inputs`` / ``config_inputs`` / ``state_inputs``
— not by what the code actually reads. An undeclared ``ctx.`` read is the
worst kind of bug this repo can have: nothing crashes, the cache simply
keeps serving records keyed on too few inputs, and warm runs silently
diverge from cold ones, breaking the bit-identity every benchmark gates
on. Dead declarations are the cheap cousin — they only cost hit rate —
but they rot the documentation value of the declaration, so both
directions are findings.

The analysis is a per-stage abstract walk of ``run()`` **plus every
module-local helper it calls** (module-level functions and ``self.``
methods), with the context/config/state objects tracked through call
arguments: passing ``ctx`` to ``self._insert_noc(ctx, ...)`` analyses the
helper with its parameter aliased to the context. Accesses are classified
as

* ``ctx.<attr>``                → context read (``ctx.config`` special-cased),
* ``ctx.config.<attr>``         → config read,
* bare ``ctx.config`` escaping (stored, passed to a non-local call) →
  whole-config use, legal only under the ``config_inputs = "*"``
  declaration — a curated field-subset declaration cannot be verified
  against an escape, so the escape must either be declared ``"*"`` or
  suppressed with a reason explaining what closes the field set,
* ``state.<attr>`` loads/stores → state reads / writes.

Out-of-module calls are *not* followed: the declared tuples are exactly
the module-boundary contract, which is also what keeps this checker fast
and its findings explainable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.framework import (
    Checker,
    Finding,
    LintContext,
    ModuleSource,
    register_checker,
)

#: Declared-input attribute names on a Stage class body.
_DECLARATIONS = (
    "context_inputs", "config_inputs", "state_inputs", "state_outputs",
)

#: How deep helper-call chains are followed (defensive; real chains are 2).
_MAX_DEPTH = 8


@dataclass
class _Access:
    """One classified attribute access inside a stage's reachable code."""

    kind: str       # "context" | "config" | "config-whole" | "state-read"
                    # | "state-write"
    attr: str       # "" for config-whole
    node: ast.AST   # anchor for the finding


@dataclass
class _StageDecl:
    """A stage class's declarations, resolved from the AST."""

    class_name: str
    stage_name: str
    node: ast.ClassDef
    cacheable: bool = False
    context_inputs: Optional[Tuple[str, ...]] = None
    config_inputs: Optional[Union[Tuple[str, ...], str]] = None
    state_inputs: Optional[Tuple[str, ...]] = None
    state_outputs: Optional[Tuple[str, ...]] = None
    decl_lines: Dict[str, int] = field(default_factory=dict)
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)


@register_checker
class StageInputsChecker(Checker):
    """Prove stage declarations complete (no stale-cache reads) and live."""

    name = "stage-inputs"
    codes = {
        "RPL101": "undeclared FlowContext read in a cacheable stage",
        "RPL102": "undeclared SynthesisConfig read in a cacheable stage",
        "RPL103": "undeclared CandidateState read in a cacheable stage",
        "RPL104": "undeclared CandidateState write in a cacheable stage",
        "RPL105": "dead declaration: declared input/output never touched",
        "RPL106": "whole config object escapes a stage whose config_inputs "
                  "is a field subset",
    }

    def check(self, context: LintContext) -> List[Finding]:
        findings: List[Finding] = []
        for module in context.modules:
            functions = {
                node.name: node
                for node in module.tree.body
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            constants = _module_constants(module.tree)
            for node in module.tree.body:
                if not isinstance(node, ast.ClassDef):
                    continue
                decl = _parse_stage_class(node, constants)
                if decl is None or not decl.cacheable:
                    continue
                findings.extend(
                    self._check_stage(module, decl, functions)
                )
        return findings

    # -- per-stage analysis -------------------------------------------------

    def _check_stage(
        self,
        module: ModuleSource,
        decl: _StageDecl,
        functions: Dict[str, ast.FunctionDef],
    ) -> List[Finding]:
        run = decl.methods.get("run")
        if run is None:
            return []
        accesses: List[_Access] = []
        visited: Set[Tuple[str, str, str, str]] = set()
        _walk_function(
            run,
            ctx_names={_param_name(run, 1)},
            config_names=set(),
            state_names={_param_name(run, 2)},
            decl=decl,
            functions=functions,
            accesses=accesses,
            visited=visited,
            depth=0,
        )
        return self._diff(module, decl, accesses)

    def _diff(
        self, module: ModuleSource, decl: _StageDecl, accesses: List[_Access]
    ) -> List[Finding]:
        stage = decl.stage_name
        findings: List[Finding] = []
        seen = {
            "context": set(), "config": set(),
            "state-read": set(), "state-write": set(),
        }
        config_whole = False
        ctx_declared = decl.context_inputs
        cfg_declared = decl.config_inputs
        st_in_declared = decl.state_inputs
        st_out_declared = decl.state_outputs
        cfg_star = cfg_declared == "*"

        #: State attrs already written at the point of a read: a
        #: read-after-own-write (e.g. FloorplanStage computing
        #: ``state.final_centers`` then passing it on) is an intermediate,
        #: not a cache input. Reads *before* the first write still count.
        written_so_far: Set[str] = set()

        for access in accesses:
            if access.kind == "config-whole":
                config_whole = True
                if not cfg_star:
                    findings.append(self.finding(
                        "RPL106",
                        f"stage {stage!r}: the whole config object escapes "
                        "here but config_inputs declares a field subset — "
                        "declare \"*\" or suppress with the reason that "
                        "closes the field set",
                        module, access.node,
                    ))
                continue
            if access.kind == "state-read" and access.attr in written_so_far:
                continue
            if access.kind == "state-write":
                written_so_far.add(access.attr)
            seen[access.kind].add(access.attr)
            if access.kind == "context":
                if ctx_declared is not None and access.attr not in ctx_declared:
                    findings.append(self.finding(
                        "RPL101",
                        f"stage {stage!r} reads ctx.{access.attr} but "
                        f"context_inputs does not declare {access.attr!r} "
                        "— the stage cache would serve stale results",
                        module, access.node,
                    ))
            elif access.kind == "config":
                if (
                    not cfg_star
                    and cfg_declared is not None
                    and access.attr not in cfg_declared
                ):
                    findings.append(self.finding(
                        "RPL102",
                        f"stage {stage!r} reads config.{access.attr} but "
                        f"config_inputs does not declare {access.attr!r} "
                        "— the stage cache would serve stale results",
                        module, access.node,
                    ))
            elif access.kind == "state-read":
                if st_in_declared is not None and access.attr not in st_in_declared:
                    findings.append(self.finding(
                        "RPL103",
                        f"stage {stage!r} reads state.{access.attr} but "
                        f"state_inputs does not declare {access.attr!r} "
                        "— the stage cache would serve stale results",
                        module, access.node,
                    ))
            elif access.kind == "state-write":
                if st_out_declared is not None and access.attr not in st_out_declared:
                    findings.append(self.finding(
                        "RPL104",
                        f"stage {stage!r} writes state.{access.attr} but "
                        f"state_outputs does not declare {access.attr!r} "
                        "— a cache hit would not replay it",
                        module, access.node,
                    ))

        # Dead declarations: the reverse direction. Only costs hit rate,
        # but undeclares itself the moment someone trims the code.
        def dead(names, touched, which):
            for attr in names or ():
                if attr not in touched:
                    findings.append(self.finding(
                        "RPL105",
                        f"stage {stage!r} declares {attr!r} in {which} but "
                        "never touches it — dead declaration",
                        module, line=decl.decl_lines.get(which, decl.node.lineno),
                    ))

        dead(ctx_declared, seen["context"], "context_inputs")
        if not cfg_star and not config_whole:
            dead(cfg_declared, seen["config"], "config_inputs")
        dead(st_in_declared, seen["state-read"], "state_inputs")
        dead(
            st_out_declared,
            seen["state-write"] | seen["state-read"],
            "state_outputs",
        )
        return findings


# -- declaration parsing ----------------------------------------------------

def _module_constants(tree: ast.Module) -> Dict[str, Tuple[str, ...]]:
    """Module-level ``NAME = ("a", "b")`` string-tuple constants."""
    out: Dict[str, Tuple[str, ...]] = {}
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        resolved = _string_tuple(value)
        if resolved is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                out[target.id] = resolved
    return out


def _string_tuple(node: ast.expr) -> Optional[Tuple[str, ...]]:
    if isinstance(node, (ast.Tuple, ast.List)):
        items = []
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                items.append(elt.value)
            else:
                return None
        return tuple(items)
    return None


def _parse_stage_class(
    node: ast.ClassDef, constants: Dict[str, Tuple[str, ...]]
) -> Optional[_StageDecl]:
    """A :class:`_StageDecl` when ``node`` looks like a Stage subclass."""
    if not any(
        (isinstance(base, ast.Name) and base.id.endswith("Stage"))
        or (isinstance(base, ast.Attribute) and base.attr.endswith("Stage"))
        for base in node.bases
    ):
        return None
    decl = _StageDecl(class_name=node.name, stage_name=node.name, node=node)
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            decl.methods[item.name] = item
            continue
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(item, ast.Assign):
            targets, value = item.targets, item.value
        elif isinstance(item, ast.AnnAssign) and item.value is not None:
            targets, value = [item.target], item.value
        if value is None:
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if target.id == "name" and isinstance(value, ast.Constant) \
                    and isinstance(value.value, str):
                decl.stage_name = value.value
            elif target.id == "cacheable" and isinstance(value, ast.Constant):
                decl.cacheable = bool(value.value)
            elif target.id in _DECLARATIONS:
                decl.decl_lines[target.id] = item.lineno
                setattr(decl, target.id, _resolve_decl(value, constants))
    return decl


def _resolve_decl(
    value: ast.expr, constants: Dict[str, Tuple[str, ...]]
) -> Optional[Union[Tuple[str, ...], str]]:
    """A declaration value: tuple literal, ``"*"``, or a module constant.

    ``None`` means unresolvable (a computed expression) — the checker
    then skips that aspect rather than guessing.
    """
    if isinstance(value, ast.Constant) and value.value == "*":
        return "*"
    direct = _string_tuple(value)
    if direct is not None:
        return direct
    if isinstance(value, ast.Name):
        return constants.get(value.id)
    return None


# -- the abstract walk ------------------------------------------------------

def _param_name(fn: ast.FunctionDef, index: int) -> str:
    """Positional parameter name (``""`` when absent)."""
    args = fn.args.args
    return args[index].arg if index < len(args) else ""


def _walk_function(
    fn: ast.FunctionDef,
    *,
    ctx_names: Set[str],
    config_names: Set[str],
    state_names: Set[str],
    decl: _StageDecl,
    functions: Dict[str, ast.FunctionDef],
    accesses: List[_Access],
    visited: Set[Tuple[str, str, str, str]],
    depth: int,
) -> None:
    """Collect classified accesses in ``fn``, recursing into local helpers.

    ``visited`` keys on (function name, alias signature) so a helper is
    analysed once per distinct aliasing, and cycles terminate.
    """
    ctx_names = {n for n in ctx_names if n}
    config_names = {n for n in config_names if n}
    state_names = {n for n in state_names if n}
    key = (
        fn.name,
        ",".join(sorted(ctx_names)),
        ",".join(sorted(config_names)),
        ",".join(sorted(state_names)),
    )
    if key in visited or depth > _MAX_DEPTH:
        return
    visited.add(key)

    walker = _AccessWalker(ctx_names, config_names, state_names)
    for stmt in fn.body:
        walker.visit(stmt)

    # Replay events in evaluation order, descending into helpers at the
    # call site — so the read-after-own-write exemption in _diff sees
    # reads and writes in the order run() would actually perform them.
    for kind, payload in walker.events:
        if kind == "access":
            accesses.append(payload)
            continue
        call = payload
        target = _local_target(call, decl, functions)
        if target is None:
            continue
        sub_ctx, sub_config, sub_state = _map_aliases(
            call, target, ctx_names, config_names, state_names,
        )
        if not (sub_ctx or sub_config or sub_state):
            continue
        _walk_function(
            target,
            ctx_names=sub_ctx,
            config_names=sub_config,
            state_names=sub_state,
            decl=decl,
            functions=functions,
            accesses=accesses,
            visited=visited,
            depth=depth + 1,
        )


def _local_target(
    call: ast.Call,
    decl: _StageDecl,
    functions: Dict[str, ast.FunctionDef],
) -> Optional[ast.FunctionDef]:
    """The module-local function / own method a call resolves to, if any."""
    func = call.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name) \
            and func.value.id == "self":
        return decl.methods.get(func.attr)
    if isinstance(func, ast.Name):
        return functions.get(func.id)
    return None


def _map_aliases(
    call: ast.Call,
    target: ast.FunctionDef,
    ctx_names: Set[str],
    config_names: Set[str],
    state_names: Set[str],
) -> Tuple[Set[str], Set[str], Set[str]]:
    """Which of the callee's parameters alias ctx / config / state."""
    params = [a.arg for a in target.args.args]
    is_method = bool(params) and params[0] == "self"
    positional = params[1:] if is_method else params

    sub_ctx: Set[str] = set()
    sub_config: Set[str] = set()
    sub_state: Set[str] = set()

    def classify(expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Name):
            if expr.id in ctx_names:
                return "ctx"
            if expr.id in config_names:
                return "config"
            if expr.id in state_names:
                return "state"
        elif isinstance(expr, ast.Attribute) \
                and isinstance(expr.value, ast.Name) \
                and expr.value.id in ctx_names and expr.attr == "config":
            return "config"
        return None

    for i, arg in enumerate(call.args):
        if i >= len(positional):
            break
        role = classify(arg)
        if role == "ctx":
            sub_ctx.add(positional[i])
        elif role == "config":
            sub_config.add(positional[i])
        elif role == "state":
            sub_state.add(positional[i])
    for kw in call.keywords:
        if kw.arg is None or kw.arg not in params:
            continue
        role = classify(kw.value)
        if role == "ctx":
            sub_ctx.add(kw.arg)
        elif role == "config":
            sub_config.add(kw.arg)
        elif role == "state":
            sub_state.add(kw.arg)
    return sub_ctx, sub_config, sub_state


class _AccessWalker(ast.NodeVisitor):
    """Classify ctx/config/state attribute accesses in one function body."""

    def __init__(
        self,
        ctx_names: Set[str],
        config_names: Set[str],
        state_names: Set[str],
    ) -> None:
        self.ctx_names = ctx_names
        self.config_names = config_names
        self.state_names = state_names
        #: ("access", _Access) and ("call", ast.Call) entries in
        #: evaluation order — argument accesses precede their call,
        #: assignment values precede their targets.
        self.events: List[Tuple[str, object]] = []
        #: Attribute nodes already consumed as the inner part of a longer
        #: chain (``ctx.config.x`` consumes the ``ctx.config`` node).
        self._consumed: Set[int] = set()

    def _access(self, access: "_Access") -> None:
        self.events.append(("access", access))

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested defs are analysed only via explicit calls (alias mapping);
        # a blind descent would mis-bind their parameters.
        return

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        for target in node.targets:
            self.visit(target)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
        self.visit(node.target)

    def visit_Call(self, node: ast.Call) -> None:
        self.generic_visit(node)
        self.events.append(("call", node))

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if id(node) in self._consumed:
            self.generic_visit(node)
            return
        base = node.value
        if isinstance(base, ast.Name):
            if base.id in self.ctx_names:
                if node.attr == "config":
                    # A bare `ctx.config` (not further dereferenced here):
                    # the whole config object escapes.
                    self._access(_Access("config-whole", "", node))
                else:
                    self._access(_Access("context", node.attr, node))
            elif base.id in self.config_names:
                self._access(_Access("config", node.attr, node))
            elif base.id in self.state_names:
                kind = (
                    "state-write"
                    if isinstance(node.ctx, (ast.Store, ast.Del))
                    else "state-read"
                )
                self._access(_Access(kind, node.attr, node))
        elif isinstance(base, ast.Attribute) \
                and isinstance(base.value, ast.Name) \
                and base.value.id in self.ctx_names and base.attr == "config":
            # ctx.config.<attr>: a config field read; mark the inner
            # ctx.config node consumed so it is not double-counted as a
            # whole-config escape.
            self._consumed.add(id(base))
            self._access(_Access("config", node.attr, node))
        self.generic_visit(node)
