"""``repro.analysis`` — the contract linter.

Importing this package registers the five checkers; :func:`lint_paths`
is the one-call entry point the CLI, ``make lint`` and the tests share.
See :mod:`repro.analysis.framework` for the framework itself and
``docs/analysis.md`` for the checker catalog, code table and suppression
policy.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

from repro.analysis.framework import (
    AnalysisError,
    Baseline,
    CHECKER_REGISTRY,
    CODE_NOQA_NO_REASON,
    CODE_NOQA_UNKNOWN,
    CODE_NOQA_UNUSED,
    Checker,
    Finding,
    LintContext,
    LintReport,
    ModuleSource,
    Suppression,
    format_report,
    known_codes,
    load_corpus,
    register_checker,
    resolve_checkers,
    run_checkers,
)

# Importing a checker module registers its checker; registry order is
# documentation order.
from repro.analysis import stage_inputs as _stage_inputs       # noqa: F401
from repro.analysis import determinism as _determinism         # noqa: F401
from repro.analysis import pickling as _pickling               # noqa: F401
from repro.analysis import lock_discipline as _lock_discipline  # noqa: F401
from repro.analysis import stage_salts as _stage_salts         # noqa: F401


def lint_paths(
    paths: Sequence[Union[str, Path]],
    *,
    project_root: Optional[Union[str, Path]] = None,
    checkers: Optional[Sequence[str]] = None,
    baseline: Optional[Union[str, Path]] = None,
) -> LintReport:
    """Load a corpus, run checkers, fold in suppressions and baseline."""
    context = load_corpus(paths, project_root=project_root)
    loaded = Baseline.load(baseline) if baseline is not None else None
    return run_checkers(
        context, resolve_checkers(checkers), baseline=loaded,
    )


__all__ = [
    "AnalysisError",
    "Baseline",
    "CHECKER_REGISTRY",
    "CODE_NOQA_NO_REASON",
    "CODE_NOQA_UNKNOWN",
    "CODE_NOQA_UNUSED",
    "Checker",
    "Finding",
    "LintContext",
    "LintReport",
    "ModuleSource",
    "Suppression",
    "format_report",
    "known_codes",
    "lint_paths",
    "load_corpus",
    "register_checker",
    "resolve_checkers",
    "run_checkers",
]
