"""Checker: a changed ``Stage.run`` body must come with a salt bump.

The port of ``tools/check_stage_salts.py`` into the linter framework
(the script survives as a deprecation shim). Stage-cache fingerprints
cover a stage's *declared inputs* plus its ``salt`` — not its code — so
a behavioural change to ``run()`` without a salt bump keeps serving
stale cached records. ``tools/stage_salts.json`` records, per stage of
the default pipeline, the current ``salt`` and the SHA-256 of the
``run()`` source; this checker recomputes both and reports drift.

Unlike the other checkers this one is not purely syntactic: the salts
live on *instances* of the registered stages, so it imports
:func:`repro.core.pipeline.build_pipeline` — same-process, same cost as
the old script. It only activates when the corpus contains the pipeline
module and the lint run has a project root (so fixture corpora for the
other checkers never trip it); findings are anchored to the stage's
class definition in ``src/repro/core/pipeline.py``.

Refreshing the manifest after a legitimate change stays where it was::

    python tools/check_stage_salts.py --update
"""

from __future__ import annotations

import ast
import hashlib
import inspect
import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.framework import (
    Checker,
    Finding,
    LintContext,
    ModuleSource,
    register_checker,
)

_PIPELINE_RELPATH_SUFFIX = "repro/core/pipeline.py"
_MANIFEST_RELPATH = Path("tools") / "stage_salts.json"
_UPDATE_HINT = "run `python tools/check_stage_salts.py --update` and commit"


def current_stages() -> Dict[str, Dict[str, str]]:
    """``{stage name: {"salt", "run_sha256"}}`` for the default pipeline.

    The single source of truth for the manifest format — the
    ``check_stage_salts.py`` shim's ``--update`` mode calls this too.
    """
    from repro.core.pipeline import build_pipeline

    out: Dict[str, Dict[str, str]] = {}
    for stage in build_pipeline().stages:
        source = inspect.getsource(type(stage).run)
        out[stage.name] = {
            "salt": stage.salt,
            "run_sha256": hashlib.sha256(source.encode("utf-8")).hexdigest(),
        }
    return out


@register_checker
class StageSaltsChecker(Checker):
    """Prove the stage-salt manifest matches the sources."""

    name = "stage-salts"
    codes = {
        "RPL501": "stage-salt manifest missing or unreadable",
        "RPL502": "stage missing from the stage-salt manifest",
        "RPL503": "stage-salt manifest entry for a stage that no longer "
                  "exists",
        "RPL504": "Stage.run changed without a salt bump (or manifest "
                  "not refreshed)",
    }

    def check(self, context: LintContext) -> List[Finding]:
        module = _pipeline_module(context)
        if module is None or context.project_root is None:
            return []

        manifest_path = context.project_root / _MANIFEST_RELPATH
        try:
            recorded = json.loads(manifest_path.read_text())
        except FileNotFoundError:
            return [self.finding(
                "RPL501",
                f"{_MANIFEST_RELPATH.as_posix()} is missing — "
                f"{_UPDATE_HINT}",
                module, line=1,
            )]
        except (OSError, json.JSONDecodeError) as exc:
            return [self.finding(
                "RPL501",
                f"{_MANIFEST_RELPATH.as_posix()} is unreadable ({exc}) — "
                f"{_UPDATE_HINT}",
                module, line=1,
            )]

        from repro.core.pipeline import build_pipeline

        anchors = _class_lines(module)
        findings: List[Finding] = []
        stages = current_stages()
        class_of = {
            stage.name: type(stage).__name__
            for stage in build_pipeline().stages
        }

        for name, cur in stages.items():
            line = anchors.get(class_of.get(name, ""), 1)
            old = recorded.get(name)
            if old is None:
                findings.append(self.finding(
                    "RPL502",
                    f"stage {name!r} is not in the manifest — "
                    f"{_UPDATE_HINT}",
                    module, line=line,
                ))
            elif cur["run_sha256"] != old.get("run_sha256"):
                if cur["salt"] == old.get("salt"):
                    findings.append(self.finding(
                        "RPL504",
                        f"stage {name!r}: run() changed but salt is still "
                        f"{cur['salt']!r} — bump Stage.salt so stale "
                        "cached records are invalidated (for a provably "
                        f"output-preserving refactor, {_UPDATE_HINT})",
                        module, line=line,
                    ))
                else:
                    findings.append(self.finding(
                        "RPL504",
                        f"stage {name!r}: salt bumped to {cur['salt']!r} "
                        f"but the manifest is stale — {_UPDATE_HINT}",
                        module, line=line,
                    ))
            elif cur["salt"] != old.get("salt"):
                findings.append(self.finding(
                    "RPL504",
                    f"stage {name!r}: salt changed to {cur['salt']!r} with "
                    f"run() untouched — {_UPDATE_HINT}",
                    module, line=line,
                ))

        for name in recorded:
            if name not in stages:
                findings.append(self.finding(
                    "RPL503",
                    f"manifest records stage {name!r} which is not in the "
                    f"default pipeline — {_UPDATE_HINT}",
                    module, line=1,
                ))
        return findings


def _pipeline_module(context: LintContext) -> Optional[ModuleSource]:
    for module in context.modules:
        if module.relpath.endswith(_PIPELINE_RELPATH_SUFFIX):
            return module
    return None


def _class_lines(module: ModuleSource) -> Dict[str, int]:
    return {
        node.name: node.lineno
        for node in module.tree.body
        if isinstance(node, ast.ClassDef)
    }
