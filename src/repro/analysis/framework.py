"""The contract-linter framework: findings, suppressions, checker registry.

Every tier of this repo rests on hand-maintained conventions: a pipeline
stage must read exactly its declared inputs (or the stage cache serves
stale results), every random draw must flow through :func:`repro.rng.
make_rng` (or warm and cold runs diverge), engine task payloads must stay
pickling-safe (or the process pool breaks mid-campaign), and multi-file
store/journal mutations must happen under a :class:`~repro.engine.locks.
FileLock` (or two processes race each other's walks). This package turns
those conventions into **build failures**: each convention is a
:class:`Checker` walking the ASTs of ``src/repro`` and emitting
:class:`Finding`\\ s with stable ``RPL###`` codes; ``python -m repro.cli
lint`` (and ``make lint``, wired into ``make check``) exits non-zero on
any unsuppressed finding.

Suppressions are per-line comments that **require a reason**::

    fresh = time.time() - grace  # repro: noqa[RPL202] -- eviction clock,
                                 # results-invariant

* ``# repro: noqa[RPL202]`` suppresses code RPL202 on that line only
  (multiple codes: ``noqa[RPL101,RPL105]``);
* a suppression without a ``-- reason`` text is itself a finding
  (:data:`CODE_NOQA_NO_REASON`);
* a suppression that suppressed nothing is itself a finding
  (:data:`CODE_NOQA_UNUSED`) — suppressions cannot rot silently;
* framework findings (``RPL00x``) are deliberately unsuppressible.

A baseline file (``--baseline``) accepts a set of known findings by
``(path, code, message)`` so the linter can be introduced to a tree with
historical debt without blessing *new* debt; this repo's tree lints clean
and carries no baseline.

See ``docs/analysis.md`` for the checker catalog and the policy on adding
checkers.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type, Union

from repro.errors import ReproError


class AnalysisError(ReproError):
    """A linter invocation problem (bad corpus path, unknown checker...).

    Never raised for *findings* — those are data, not errors."""


# -- framework finding codes (unsuppressible) -------------------------------

#: A ``noqa`` comment that suppressed nothing.
CODE_NOQA_UNUSED = "RPL001"
#: A ``noqa`` comment without a ``-- reason`` text.
CODE_NOQA_NO_REASON = "RPL002"
#: A ``noqa`` comment naming a code no registered checker can emit.
CODE_NOQA_UNKNOWN = "RPL003"

_FRAMEWORK_CODES = {
    CODE_NOQA_UNUSED: "unused suppression",
    CODE_NOQA_NO_REASON: "suppression missing its reason",
    CODE_NOQA_UNKNOWN: "suppression names an unknown code",
}

#: Matches ``repro: noqa[RPL101]`` / ``repro: noqa[RPL101,RPL105] -- reason``
#: comment bodies (the leading hash is part of the pattern).
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\[(?P<codes>[A-Z0-9, ]+)\]"
    r"(?:\s*--\s*(?P<reason>.*\S))?"
)


@dataclass(frozen=True)
class Finding:
    """One contract violation, anchored to a source line."""

    code: str
    message: str
    path: str            #: repo-relative (or as-given) posix path
    line: int
    checker: str = ""
    col: int = 0

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "checker": self.checker,
        }


@dataclass
class Suppression:
    """One parsed ``# repro: noqa[...]`` comment."""

    path: str
    line: int
    codes: Tuple[str, ...]
    reason: str = ""
    used: set = field(default_factory=set)


@dataclass
class ModuleSource:
    """One parsed source file of the lint corpus."""

    path: Path           #: absolute path on disk
    relpath: str         #: stable display path (posix, repo-relative)
    text: str
    tree: ast.Module
    suppressions: List[Suppression] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path, relpath: str) -> "ModuleSource":
        text = path.read_text()
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            raise AnalysisError(f"cannot parse {relpath}: {exc}") from None
        module = cls(path=path, relpath=relpath, text=text, tree=tree)
        # Only real COMMENT tokens count — a noqa-shaped example inside a
        # docstring or string literal is text, not a suppression.
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(token.string)
            if match is None:
                continue
            codes = tuple(
                code.strip()
                for code in match.group("codes").split(",")
                if code.strip()
            )
            module.suppressions.append(Suppression(
                path=relpath, line=token.start[0], codes=codes,
                reason=(match.group("reason") or "").strip(),
            ))
        return module


@dataclass
class LintContext:
    """Everything a checker may look at: the corpus plus repo anchors."""

    modules: List[ModuleSource]
    #: Repo root (for out-of-tree anchors like ``tools/stage_salts.json``);
    #: ``None`` when linting a loose file corpus (tests, fixtures).
    project_root: Optional[Path] = None

    def module(self, relpath: str) -> Optional[ModuleSource]:
        for module in self.modules:
            if module.relpath == relpath:
                return module
        return None


class Checker:
    """One contract, as a corpus-wide AST pass.

    Subclasses set :attr:`name` (the CLI handle) and :attr:`codes`
    (``{code: one-line description}`` — the registry rejects code
    collisions between checkers) and implement :meth:`check`, returning
    findings for the whole corpus. Checkers must not mutate the corpus
    and must anchor every finding to a real (path, line) so suppressions
    can target it.
    """

    name: str = ""
    codes: Dict[str, str] = {}

    def check(self, context: LintContext) -> List[Finding]:
        raise NotImplementedError

    def finding(
        self, code: str, message: str, module: ModuleSource,
        node: Optional[ast.AST] = None, line: Optional[int] = None,
    ) -> Finding:
        if code not in self.codes:
            raise AnalysisError(
                f"checker {self.name!r} emitted unregistered code {code}"
            )
        return Finding(
            code=code,
            message=message,
            path=module.relpath,
            line=line if line is not None else getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) if node is not None else 0,
            checker=self.name,
        )


#: name -> checker class, in registration (= documentation) order.
CHECKER_REGISTRY: Dict[str, Type[Checker]] = {}


def register_checker(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator: file a checker under ``cls.name``."""
    if not cls.name:
        raise AnalysisError(f"checker class {cls.__name__} has no name")
    if cls.name in CHECKER_REGISTRY:
        raise AnalysisError(f"duplicate checker name {cls.name!r}")
    for code in cls.codes:
        owner = _code_owner(code)
        if owner is not None:
            raise AnalysisError(
                f"checker {cls.name!r} re-registers code {code} "
                f"(owned by {owner})"
            )
    CHECKER_REGISTRY[cls.name] = cls
    return cls


def _code_owner(code: str) -> Optional[str]:
    if code in _FRAMEWORK_CODES:
        return "framework"
    for name, cls in CHECKER_REGISTRY.items():
        if code in cls.codes:
            return name
    return None


def known_codes() -> Dict[str, str]:
    """Every registered code -> description (framework codes included)."""
    codes = dict(_FRAMEWORK_CODES)
    for cls in CHECKER_REGISTRY.values():
        codes.update(cls.codes)
    return codes


# -- corpus loading ---------------------------------------------------------

def load_corpus(
    paths: Sequence[Union[str, Path]],
    *,
    project_root: Optional[Union[str, Path]] = None,
) -> LintContext:
    """Build a :class:`LintContext` from files and/or directory trees.

    Directories are walked recursively for ``*.py`` (``__pycache__``
    skipped); display paths are made relative to ``project_root`` when
    given, else to the scanned directory's parent.
    """
    root = Path(project_root).resolve() if project_root is not None else None
    modules: List[ModuleSource] = []
    seen: set = set()
    for raw in paths:
        base = Path(raw).resolve()
        if not base.exists():
            raise AnalysisError(f"lint target {raw} does not exist")
        if base.is_dir():
            files = sorted(
                p for p in base.rglob("*.py") if "__pycache__" not in p.parts
            )
            rel_anchor = root if root is not None else base.parent
        else:
            files = [base]
            rel_anchor = root if root is not None else base.parent
        for file in files:
            if file in seen:
                continue
            seen.add(file)
            try:
                relpath = file.relative_to(rel_anchor).as_posix()
            except ValueError:
                relpath = file.name
            modules.append(ModuleSource.load(file, relpath))
    return LintContext(modules=modules, project_root=root)


# -- running ----------------------------------------------------------------

@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding]
    suppressed: int = 0
    baselined: int = 0
    checkers: Tuple[str, ...] = ()
    modules: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def as_dict(self) -> Dict[str, object]:
        return {
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "checkers": list(self.checkers),
            "modules": self.modules,
            "clean": self.clean,
        }


def resolve_checkers(
    names: Optional[Sequence[str]] = None,
) -> List[Checker]:
    """Instantiate the named checkers (default: all, registry order)."""
    if names is None:
        return [cls() for cls in CHECKER_REGISTRY.values()]
    checkers = []
    for name in names:
        if name not in CHECKER_REGISTRY:
            raise AnalysisError(
                f"unknown checker {name!r}; registered: "
                f"{', '.join(CHECKER_REGISTRY)}"
            )
        checkers.append(CHECKER_REGISTRY[name]())
    return checkers


def run_checkers(
    context: LintContext,
    checkers: Optional[Sequence[Checker]] = None,
    *,
    baseline: Optional["Baseline"] = None,
) -> LintReport:
    """Run checkers over a loaded corpus and fold in suppressions.

    The pipeline is: collect raw findings → drop the ones a same-line
    ``noqa`` covers (marking the suppression used) → drop the ones the
    baseline accepts → append framework findings for malformed or unused
    suppressions (only for codes whose checker actually ran, so a partial
    ``--checkers`` run cannot mis-flag a foreign suppression as unused).
    """
    active = list(checkers) if checkers is not None else resolve_checkers()
    raw: List[Finding] = []
    for checker in active:
        raw.extend(checker.check(context))

    active_codes = set()
    for checker in active:
        active_codes.update(checker.codes)

    suppressions: Dict[Tuple[str, int], List[Suppression]] = {}
    for module in context.modules:
        for sup in module.suppressions:
            suppressions.setdefault((sup.path, sup.line), []).append(sup)

    kept: List[Finding] = []
    suppressed = 0
    for finding in raw:
        sups = suppressions.get((finding.path, finding.line), ())
        hit = None
        for sup in sups:
            if finding.code in sup.codes and finding.code not in _FRAMEWORK_CODES:
                hit = sup
                break
        if hit is not None:
            hit.used.add(finding.code)
            suppressed += 1
        else:
            kept.append(finding)

    baselined = 0
    if baseline is not None:
        filtered = []
        for finding in kept:
            if baseline.accepts(finding):
                baselined += 1
            else:
                filtered.append(finding)
        kept = filtered

    codes = known_codes()
    for module in context.modules:
        for sup in module.suppressions:
            if not sup.reason:
                kept.append(Finding(
                    code=CODE_NOQA_NO_REASON,
                    message=(
                        f"suppression of [{', '.join(sup.codes)}] has no "
                        "reason; write `# repro: noqa[CODE] -- why`"
                    ),
                    path=sup.path, line=sup.line, checker="framework",
                ))
            for code in sup.codes:
                if code not in codes:
                    kept.append(Finding(
                        code=CODE_NOQA_UNKNOWN,
                        message=f"suppression names unknown code {code}",
                        path=sup.path, line=sup.line, checker="framework",
                    ))
                elif code in active_codes and code not in sup.used:
                    kept.append(Finding(
                        code=CODE_NOQA_UNUSED,
                        message=(
                            f"unused suppression of {code} "
                            f"({codes[code]}): nothing to suppress here"
                        ),
                        path=sup.path, line=sup.line, checker="framework",
                    ))

    kept.sort(key=lambda f: (f.path, f.line, f.code))
    return LintReport(
        findings=kept,
        suppressed=suppressed,
        baselined=baselined,
        checkers=tuple(checker.name for checker in active),
        modules=len(context.modules),
    )


# -- baseline ---------------------------------------------------------------

class Baseline:
    """A set of accepted findings, matched by ``(path, code, message)``.

    Line numbers are deliberately *not* part of the identity: accepted
    debt must survive unrelated edits above it, while any change to the
    finding itself (different attribute, different stage) re-surfaces it.
    """

    def __init__(self, entries: Iterable[Dict[str, object]] = ()) -> None:
        self._accepted = {
            (str(e.get("path")), str(e.get("code")), str(e.get("message")))
            for e in entries
        }

    def __len__(self) -> int:
        return len(self._accepted)

    def accepts(self, finding: Finding) -> bool:
        return (finding.path, finding.code, finding.message) in self._accepted

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        try:
            doc = json.loads(Path(path).read_text())
        except FileNotFoundError:
            raise AnalysisError(f"baseline file {path} does not exist")
        except json.JSONDecodeError as exc:
            raise AnalysisError(f"baseline file {path} is not JSON: {exc}")
        entries = doc.get("findings") if isinstance(doc, dict) else None
        if not isinstance(entries, list):
            raise AnalysisError(
                f"baseline file {path} must be {{\"findings\": [...]}}"
            )
        return cls(entries)

    @staticmethod
    def write(path: Union[str, Path], findings: Sequence[Finding]) -> None:
        doc = {
            "findings": [
                {"path": f.path, "code": f.code, "message": f.message}
                for f in findings
            ]
        }
        Path(path).write_text(json.dumps(doc, indent=2) + "\n")


# -- output -----------------------------------------------------------------

def format_report(report: LintReport, *, as_json: bool = False) -> str:
    """Render a report for the CLI (one line per finding, plus a tally)."""
    if as_json:
        return json.dumps(report.as_dict(), indent=2)
    lines = [finding.render() for finding in report.findings]
    tally = (
        f"{len(report.findings)} finding(s)"
        if report.findings else "clean"
    )
    extras = []
    if report.suppressed:
        extras.append(f"{report.suppressed} suppressed")
    if report.baselined:
        extras.append(f"{report.baselined} baselined")
    extra = f" ({', '.join(extras)})" if extras else ""
    lines.append(
        f"lint: {tally}{extra} — {report.modules} file(s), "
        f"checkers: {', '.join(report.checkers)}"
    )
    return "\n".join(lines)


# -- AST helpers shared by checkers -----------------------------------------

def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def decorator_marker(
    node: ast.AST, marker_names: Sequence[str]
) -> Optional[Tuple[str, Optional[str]]]:
    """Match ``@marker("lock-name")`` decorators.

    Returns ``(marker, lock_name)`` when ``node`` is a call to one of
    ``marker_names`` (bare or attribute-qualified) with a string literal
    first argument — ``lock_name`` is ``None`` for a bare ``@marker``.
    """
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is None:
            return None
        tail = name.rsplit(".", 1)[-1]
        if tail in marker_names:
            if node.args and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                return tail, node.args[0].value
            return tail, None
        return None
    name = dotted_name(node)
    if name is not None and name.rsplit(".", 1)[-1] in marker_names:
        return name.rsplit(".", 1)[-1], None
    return None
