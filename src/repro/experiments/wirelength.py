"""Fig. 12 — wire-length distributions of the 2-D and 3-D designs.

"From the figure, as expected, the 2-D design has many long wires." The
experiment compares the link-length histograms of the best-power 2-D and
3-D design points of D_26_media.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import SynthesisConfig
from repro.experiments.common import (
    ExperimentResult,
    default_config_for,
    synthesize_cached,
)
from repro.noc.wire_stats import length_stats, wire_length_histogram


def run_wirelength_distribution(
    benchmark: str = "d26_media",
    bin_width_mm: float = 0.5,
    config: Optional[SynthesisConfig] = None,
) -> ExperimentResult:
    """Histogram rows: one per length bin, 2-D and 3-D counts side by side."""
    if config is None:
        config = default_config_for(benchmark)
    p2 = synthesize_cached(benchmark, "2d", config).best_power()
    p3 = synthesize_cached(benchmark, "3d", config).best_power()

    lengths2 = p2.metrics.wire_lengths_mm
    lengths3 = p3.metrics.wire_lengths_mm
    max_mm = max(max(lengths2, default=0.0), max(lengths3, default=0.0))
    bins2 = wire_length_histogram(lengths2, bin_width_mm, max_mm)
    bins3 = wire_length_histogram(lengths3, bin_width_mm, max_mm)

    mean2, max2, _ = length_stats(lengths2)
    mean3, max3, _ = length_stats(lengths3)
    table = ExperimentResult(
        name=f"Fig. 12: wire-length distribution, {benchmark}",
        columns=["bin_mm", "links_2d", "links_3d"],
        notes=(
            f"2-D mean {mean2:.2f} mm / max {max2:.2f} mm; "
            f"3-D mean {mean3:.2f} mm / max {max3:.2f} mm"
        ),
    )
    for b2, b3 in zip(bins2, bins3):
        table.add(bin_mm=b2.label, links_2d=b2.count, links_3d=b3.count)
    return table
