"""Fig. 23 — custom topologies vs. power-optimised mesh.

"Compared to this optimized mesh topology, we obtain a large power reduction
for the custom topologies (an average of 51%) ... we obtain 21% reduction in
latency when compared to the optimized mesh."
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.bench.registry import TABLE1_BENCHMARKS, get_benchmark
from repro.core.config import SynthesisConfig
from repro.core.mesh_baseline import synthesize_mesh
from repro.errors import SynthesisError
from repro.experiments.common import (
    ExperimentResult,
    default_config_for,
    synthesize_cached,
)


def run_mesh_comparison(
    benchmarks: Sequence[str] = TABLE1_BENCHMARKS + ("d26_media",),
    config: Optional[SynthesisConfig] = None,
) -> ExperimentResult:
    """One row per benchmark: custom vs optimised-mesh power and latency."""
    table = ExperimentResult(
        name="Fig. 23: custom topology vs. optimised mesh",
        columns=[
            "benchmark", "custom_mw", "mesh_mw", "power_saving_pct",
            "custom_lat", "mesh_lat", "latency_saving_pct",
        ],
    )
    power_savings, latency_savings = [], []
    for name in benchmarks:
        cfg = config if config is not None else default_config_for(name)
        try:
            custom = synthesize_cached(name, "3d", cfg).best_power()
        except SynthesisError:
            table.add(benchmark=name)
            continue
        bench = get_benchmark(name)
        mesh = synthesize_mesh(bench.core_spec_3d, bench.comm_spec, config=cfg)
        ps = 100.0 * (1.0 - custom.total_power_mw / mesh.total_power_mw)
        ls = 100.0 * (
            1.0 - custom.avg_latency_cycles / mesh.avg_latency_cycles
        )
        power_savings.append(ps)
        latency_savings.append(ls)
        table.add(
            benchmark=name,
            custom_mw=custom.total_power_mw,
            mesh_mw=mesh.total_power_mw,
            power_saving_pct=ps,
            custom_lat=custom.avg_latency_cycles,
            mesh_lat=mesh.avg_latency_cycles,
            latency_saving_pct=ls,
        )
    if power_savings:
        table.notes = (
            f"average power saving {sum(power_savings) / len(power_savings):.1f}% "
            f"(paper: 51%), average latency saving "
            f"{sum(latency_savings) / len(latency_savings):.1f}% (paper: 21%)"
        )
    return table
