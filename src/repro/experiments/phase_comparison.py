"""Fig. 17 — Phase 2 power relative to Phase 1 across all benchmarks.

"Phase 1 can generate topologies that lead to a 40% reduction in NoC power
consumption, when compared to Phase 2. However, Phase 2 can generate
topologies with a much tighter inter-layer link constraint."
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.bench.registry import TABLE1_BENCHMARKS
from repro.core.config import SynthesisConfig
from repro.errors import SynthesisError
from repro.experiments.common import (
    ExperimentResult,
    default_config_for,
    synthesize_cached,
)


def run_phase_comparison(
    benchmarks: Sequence[str] = TABLE1_BENCHMARKS + ("d26_media",),
    config: Optional[SynthesisConfig] = None,
) -> ExperimentResult:
    """One row per benchmark: phase1/phase2 best power and the ratio."""
    table = ExperimentResult(
        name="Fig. 17: Phase 2 power relative to Phase 1",
        columns=[
            "benchmark", "phase1_mw", "phase2_mw", "ratio",
            "vlinks_p1", "vlinks_p2",
        ],
        notes="ratio > 1: the layer-by-layer restriction costs power; "
              "Phase 2 uses far fewer inter-layer links",
    )
    for name in benchmarks:
        base = config if config is not None else default_config_for(name)
        try:
            p1 = synthesize_cached(name, "3d", base.with_(phase="phase1")).best_power()
        except SynthesisError:
            p1 = None
        try:
            p2 = synthesize_cached(name, "3d", base.with_(phase="phase2")).best_power()
        except SynthesisError:
            p2 = None
        table.add(
            benchmark=name,
            phase1_mw=p1.total_power_mw if p1 else None,
            phase2_mw=p2.total_power_mw if p2 else None,
            ratio=(p2.total_power_mw / p1.total_power_mw) if p1 and p2 else None,
            vlinks_p1=p1.metrics.num_vertical_links if p1 else None,
            vlinks_p2=p2.metrics.num_vertical_links if p2 else None,
        )
    return table
