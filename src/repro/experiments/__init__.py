"""Experiment runners: one module per table/figure of the paper's evaluation.

Every module exposes a ``run_*`` function returning an
:class:`~repro.experiments.common.ExperimentResult` whose rows mirror the
series the paper plots, plus a printable table. The ``benchmarks/`` harness
and the example scripts both drive these runners; EXPERIMENTS.md records the
paper-vs-measured outcome of each.

Index (see DESIGN.md Sec. 4):

========  ==========================================================
fig1      :func:`repro.experiments.fig01_yield.run_yield_curves`
fig10/11  :func:`repro.experiments.power_curves.run_power_vs_switches`
fig12     :func:`repro.experiments.wirelength.run_wirelength_distribution`
fig13-16  :func:`repro.experiments.topology_report.run_topology_report`
fig17     :func:`repro.experiments.phase_comparison.run_phase_comparison`
table1    :func:`repro.experiments.table1_2d_vs_3d.run_table1`
fig18-20  :func:`repro.experiments.floorplan_comparison.*`
fig21/22  :func:`repro.experiments.max_ill_sweep.run_max_ill_sweep`
fig23     :func:`repro.experiments.mesh_comparison.run_mesh_comparison`
========  ==========================================================
"""

from repro.experiments.common import (
    ExperimentResult,
    default_config_for,
    synthesize_cached,
)

__all__ = ["ExperimentResult", "default_config_for", "synthesize_cached"]
