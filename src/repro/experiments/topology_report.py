"""Figs. 13-16 — the synthesized D_26_media topology and floorplan.

Fig. 13 shows the most power-efficient Phase 1 topology, Fig. 14 the
layer-by-layer (Phase 2) topology, Fig. 15 the resulting 3-D floorplan with
the inserted switches, and Fig. 16 the initial core placement. These are
drawings in the paper; here they are rendered as structured text reports
(plus row data for assertions in the benchmark harness).
"""

from __future__ import annotations

from typing import List, Optional

from repro.bench.registry import get_benchmark
from repro.core.config import SynthesisConfig
from repro.core.design_point import DesignPoint
from repro.experiments.common import (
    ExperimentResult,
    default_config_for,
    synthesize_cached,
)


def run_topology_report(
    benchmark: str = "d26_media",
    phase: str = "phase1",
    config: Optional[SynthesisConfig] = None,
) -> ExperimentResult:
    """Per-switch rows of the best topology: layer, cores, ports, links.

    ``phase="phase1"`` reproduces Fig. 13, ``phase="phase2"`` Fig. 14 (the
    layer-by-layer topology, which uses far fewer inter-layer links at a
    power/latency price).
    """
    if config is None:
        config = default_config_for(benchmark, phase=phase)
    else:
        config = config.with_(phase=phase)
    point = synthesize_cached(benchmark, "3d", config).best_power()
    bench = get_benchmark(benchmark)
    names = bench.core_spec_3d.names

    fig = "Fig. 13" if phase == "phase1" else "Fig. 14"
    table = ExperimentResult(
        name=f"{fig}: best {phase} topology, {benchmark}",
        columns=["switch", "layer", "in_ports", "out_ports", "cores"],
        notes=(
            f"{point.switch_count} switches, "
            f"{point.metrics.num_vertical_links} vertical links "
            f"(max ill {point.metrics.max_ill_used}), "
            f"power {point.total_power_mw:.1f} mW, "
            f"latency {point.avg_latency_cycles:.2f} cycles"
        ),
    )
    core_lists: List[List[str]] = [[] for _ in point.topology.switches]
    for core, sw in sorted(point.topology.core_to_switch.items()):
        core_lists[sw].append(names[core])
    for sw in point.topology.switches:
        table.add(
            switch=f"sw{sw.id}",
            layer=sw.layer,
            in_ports=sw.in_ports,
            out_ports=sw.out_ports,
            cores=",".join(core_lists[sw.id]) or "(indirect)",
        )
    return table


def run_floorplan_report(
    benchmark: str = "d26_media",
    config: Optional[SynthesisConfig] = None,
) -> ExperimentResult:
    """Fig. 15/16: per-component placement of the best 3-D design point."""
    if config is None:
        config = default_config_for(benchmark)
    point = synthesize_cached(benchmark, "3d", config).best_power()
    table = ExperimentResult(
        name=f"Fig. 15: 3-D floorplan with network components, {benchmark}",
        columns=["component", "kind", "layer", "x_mm", "y_mm", "w_mm", "h_mm"],
        notes=f"die area {point.die_area_mm2:.2f} mm^2 (max layer bbox)",
    )
    for comp in sorted(
        point.floorplan, key=lambda c: (c.layer, c.kind, c.name)
    ):
        table.add(
            component=comp.name, kind=comp.kind, layer=comp.layer,
            x_mm=comp.rect.x, y_mm=comp.rect.y,
            w_mm=comp.rect.width, h_mm=comp.rect.height,
        )
    return table


def describe_design_point(point: DesignPoint) -> str:
    """A compact multi-line description of a design point (CLI output)."""
    lines = [point.summary()]
    for sw in point.topology.switches:
        lines.append(
            f"  sw{sw.id}: layer {sw.layer}, {sw.in_ports} in / "
            f"{sw.out_ports} out ports at ({sw.x:.2f}, {sw.y:.2f})"
        )
    vertical = point.topology.vertical_links()
    lines.append(f"  {len(vertical)} vertical links:")
    for link in vertical:
        lines.append(
            f"    link{link.id}: {link.src} L{link.src_layer} -> "
            f"{link.dst} L{link.dst_layer}, load {link.load_mbps:.0f} MB/s"
        )
    return "\n".join(lines)
