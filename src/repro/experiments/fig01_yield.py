"""Fig. 1 — yield vs. TSV count for different manufacturing processes.

The paper motivates the ``max_ill`` constraint with Miyakawa's yield data
[39]: every process holds a flat yield up to a TSV-count knee and decays
rapidly beyond it. This experiment regenerates the three curves from our
yield model and derives the TSV budget (and the resulting max_ill for
32-bit links) at a 95%-of-base target yield.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentResult
from repro.models.tsv_model import DEFAULT_PROCESSES, TsvModel


def run_yield_curves(
    tsv_counts: Sequence[int] = (0, 200, 400, 600, 800, 1200, 1600, 2000, 2400, 3200),
) -> ExperimentResult:
    """Yield of every process at each TSV count (one row per count)."""
    result = ExperimentResult(
        name="Fig. 1: yield vs. TSV count",
        columns=["tsv_count"] + list(DEFAULT_PROCESSES),
        notes="flat up to a process knee, rapid decay beyond it",
    )
    for count in tsv_counts:
        row = {"tsv_count": count}
        for name, process in DEFAULT_PROCESSES.items():
            row[name] = process.yield_at(count)
        result.rows.append(row)
    return result


def run_budget_table(
    relative_target: float = 0.95, width_bits: int = 32
) -> ExperimentResult:
    """TSV budget and max_ill per process at a relative yield target."""
    model = TsvModel()
    result = ExperimentResult(
        name="TSV budget -> max_ill derivation",
        columns=["process", "base_yield", "target_yield", "tsv_budget", "max_ill"],
        notes=f"{width_bits}-bit links: {model.tsvs_per_link(width_bits)} TSVs per link",
    )
    for name, process in DEFAULT_PROCESSES.items():
        target = process.base_yield * relative_target
        budget = process.max_tsvs(target)
        result.add(
            process=name,
            base_yield=process.base_yield,
            target_yield=target,
            tsv_budget=budget,
            max_ill=model.max_ill_for_budget(budget, width_bits),
        )
    return result
