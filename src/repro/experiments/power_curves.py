"""Figs. 10 & 11 — NoC power vs. switch count, 2-D and 3-D (D_26_media).

The paper plots, for every synthesized switch count, the power split into
switch power, switch-to-switch link power and core-to-switch link power —
first for the 2-D implementation (Fig. 10), then for the 3-D one (Fig. 11).
The 3-D curves sit below the 2-D ones (24% at the best points in the paper)
because long horizontal wires are replaced by short vertical ones.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import SynthesisConfig
from repro.experiments.common import (
    ExperimentResult,
    default_config_for,
    synthesize_cached,
)


def run_power_vs_switches(
    benchmark: str = "d26_media",
    dims: str = "3d",
    config: Optional[SynthesisConfig] = None,
) -> ExperimentResult:
    """One row per valid switch count: the three power components + total."""
    if config is None:
        config = default_config_for(benchmark)
    result = synthesize_cached(benchmark, dims, config)

    fig = "Fig. 11 (3-D)" if dims == "3d" else "Fig. 10 (2-D)"
    table = ExperimentResult(
        name=f"{fig}: power vs. switch count, {benchmark}",
        columns=[
            "switches", "switch_mw", "sw2sw_link_mw", "core2sw_link_mw",
            "total_mw", "latency_cyc", "phase",
        ],
        notes=f"frequency {config.frequency_mhz:g} MHz, max_ill {config.max_ill}",
    )
    by_count = {}
    for point in result.points:
        # Keep the best (lowest-power) point per switch count.
        prev = by_count.get(point.switch_count)
        if prev is None or point.total_power_mw < prev.total_power_mw:
            by_count[point.switch_count] = point
    for count in sorted(by_count):
        p = by_count[count]
        m = p.metrics
        table.add(
            switches=count,
            switch_mw=m.switch_power_mw,
            sw2sw_link_mw=m.sw2sw_link_power_mw,
            core2sw_link_mw=m.core2sw_link_power_mw,
            total_mw=m.total_power_mw,
            latency_cyc=m.avg_latency_cycles,
            phase=p.phase,
        )
    return table


def run_2d_vs_3d_best(
    benchmark: str = "d26_media",
    config: Optional[SynthesisConfig] = None,
) -> ExperimentResult:
    """The headline D_26_media comparison: best 2-D vs best 3-D point."""
    if config is None:
        config = default_config_for(benchmark)
    table = ExperimentResult(
        name=f"Best power points, 2-D vs 3-D, {benchmark}",
        columns=["dims", "switches", "total_mw", "latency_cyc", "saving_pct"],
    )
    p2 = synthesize_cached(benchmark, "2d", config).best_power()
    p3 = synthesize_cached(benchmark, "3d", config).best_power()
    table.add(
        dims="2d", switches=p2.switch_count, total_mw=p2.total_power_mw,
        latency_cyc=p2.avg_latency_cycles, saving_pct=0.0,
    )
    table.add(
        dims="3d", switches=p3.switch_count, total_mw=p3.total_power_mw,
        latency_cyc=p3.avg_latency_cycles,
        saving_pct=100.0 * (1.0 - p3.total_power_mw / p2.total_power_mw),
    )
    return table
