"""Figs. 18-20 — custom insertion routine vs. constrained standard floorplanner.

Fig. 18: die area vs. switch count on D_26_media for both floorplanners
("the behavior of the constrained standard floorplanner is unpredictable").
Fig. 19: die area of the best-power points across benchmarks.
Fig. 20: NoC power of the best-power points across benchmarks (area feeds
back into wire lengths, hence power). The paper reports the custom routine
saving ~20% area and ~7.5% power on average.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.bench.registry import TABLE1_BENCHMARKS
from repro.core.config import SynthesisConfig
from repro.errors import SynthesisError
from repro.experiments.common import (
    ExperimentResult,
    default_config_for,
    synthesize_cached,
)


def run_area_vs_switches(
    benchmark: str = "d26_media",
    config: Optional[SynthesisConfig] = None,
) -> ExperimentResult:
    """Fig. 18: per-switch-count die area for both floorplanning methods."""
    base = config if config is not None else default_config_for(benchmark)
    res_custom = synthesize_cached(benchmark, "3d", base.with_(floorplanner="custom"))
    res_std = synthesize_cached(benchmark, "3d", base.with_(floorplanner="constrained"))

    table = ExperimentResult(
        name=f"Fig. 18: die area vs. switch count, {benchmark}",
        columns=["switches", "custom_mm2", "constrained_mm2"],
    )
    custom = {p.switch_count: p for p in res_custom.points}
    std = {p.switch_count: p for p in res_std.points}
    for count in sorted(set(custom) | set(std)):
        table.add(
            switches=count,
            custom_mm2=custom[count].die_area_mm2 if count in custom else None,
            constrained_mm2=std[count].die_area_mm2 if count in std else None,
        )
    return table


def run_best_point_comparison(
    benchmarks: Sequence[str] = TABLE1_BENCHMARKS + ("d26_media",),
    config: Optional[SynthesisConfig] = None,
) -> ExperimentResult:
    """Figs. 19-20: area and power of the best points, both floorplanners."""
    table = ExperimentResult(
        name="Figs. 19-20: best-power points, custom vs constrained floorplanner",
        columns=[
            "benchmark",
            "custom_area_mm2", "constrained_area_mm2", "area_saving_pct",
            "custom_power_mw", "constrained_power_mw", "power_saving_pct",
        ],
    )
    area_savings, power_savings = [], []
    for name in benchmarks:
        base = config if config is not None else default_config_for(name)
        try:
            pc = synthesize_cached(name, "3d", base.with_(floorplanner="custom")).best_power()
            ps = synthesize_cached(name, "3d", base.with_(floorplanner="constrained")).best_power()
        except SynthesisError:
            table.add(benchmark=name)
            continue
        a_sav = 100.0 * (1.0 - pc.die_area_mm2 / ps.die_area_mm2)
        p_sav = 100.0 * (1.0 - pc.total_power_mw / ps.total_power_mw)
        area_savings.append(a_sav)
        power_savings.append(p_sav)
        table.add(
            benchmark=name,
            custom_area_mm2=pc.die_area_mm2,
            constrained_area_mm2=ps.die_area_mm2,
            area_saving_pct=a_sav,
            custom_power_mw=pc.total_power_mw,
            constrained_power_mw=ps.total_power_mw,
            power_saving_pct=p_sav,
        )
    if area_savings:
        table.notes = (
            f"average area saving {sum(area_savings) / len(area_savings):.1f}% "
            f"(paper: ~20%), average power saving "
            f"{sum(power_savings) / len(power_savings):.1f}% (paper: ~7.5%)"
        )
    return table
