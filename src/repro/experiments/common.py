"""Shared machinery for the experiment runners.

* :class:`ExperimentResult` — rows + column order + a plain-text table
  renderer (the "same rows/series the paper reports").
* :func:`default_config_for` — the per-benchmark synthesis configuration
  used throughout the evaluation (400 MHz, 32-bit links, max_ill = 25, a
  switch-count sweep wide enough for the benchmark's size).
* :func:`synthesize_cached` — process-level memoisation of synthesis runs,
  since several figures reuse the same best-power design points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence

from repro.bench.registry import get_benchmark
from repro.core.config import SynthesisConfig
from repro.core.design_point import SynthesisResult
from repro.core.pipeline import FlowContext, run_synthesis
from repro.errors import SpecError

Row = Dict[str, object]


@dataclass
class ExperimentResult:
    """Rows of one reproduced table/figure."""

    name: str
    columns: List[str]
    rows: List[Row] = field(default_factory=list)
    notes: str = ""

    def add(self, **values: object) -> None:
        self.rows.append(values)

    def column(self, key: str) -> List[object]:
        return [row.get(key) for row in self.rows]

    def to_text(self) -> str:
        """Render as an aligned plain-text table."""
        headers = list(self.columns)
        table: List[List[str]] = [headers]
        for row in self.rows:
            table.append([_fmt(row.get(col)) for col in headers])
        widths = [
            max(len(line[c]) for line in table) for c in range(len(headers))
        ]
        lines = [f"== {self.name} =="]
        if self.notes:
            lines.append(self.notes)
        for r, line in enumerate(table):
            lines.append(
                "  ".join(cell.rjust(widths[c]) for c, cell in enumerate(line))
            )
            if r == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)

    def print_table(self) -> None:
        print(self.to_text())


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def default_config_for(
    benchmark_name: str,
    *,
    max_ill: int = 25,
    phase: str = "auto",
    floorplanner: str = "custom",
    switch_count_range: Optional[Sequence[int]] = None,
    frequency_mhz: float = 400.0,
) -> SynthesisConfig:
    """The evaluation-wide synthesis configuration for one benchmark.

    The switch-count sweep is sized to the benchmark: large designs need
    more switches to satisfy the switch-size limit, small ones saturate
    early (matching the ranges of Figs. 10-11).
    """
    bench = get_benchmark(benchmark_name)
    if switch_count_range is None:
        if bench.num_cores > 40:
            switch_count_range = (3, 20)
        else:
            switch_count_range = (3, 14)
    return SynthesisConfig(
        frequency_mhz=frequency_mhz,
        max_ill=max_ill,
        phase=phase,
        floorplanner=floorplanner,
        switch_count_range=tuple(switch_count_range),
    )


@lru_cache(maxsize=None)
def synthesize_cached(
    benchmark_name: str,
    dims: str,
    config: SynthesisConfig,
) -> SynthesisResult:
    """Run (or fetch) a synthesis for a benchmark variant.

    Args:
        benchmark_name: Registry name (e.g. "d26_media").
        dims: "3d" (stacked core spec) or "2d" (single-die core spec; forces
            the [16] 2-D flow semantics by construction).
        config: Frozen synthesis configuration (hashable, so cacheable).
    """
    bench = get_benchmark(benchmark_name)
    if dims == "3d":
        core_spec = bench.core_spec_3d
    elif dims == "2d":
        core_spec = bench.core_spec_2d
        config = config.with_(phase="phase1")
    else:
        raise SpecError(f"dims must be '2d' or '3d', got {dims!r}")
    ctx = FlowContext.build(core_spec, bench.comm_spec, config=config)
    return run_synthesis(ctx)


def best_power_point(benchmark_name: str, dims: str, config: SynthesisConfig):
    """Best-power design point of a cached synthesis run."""
    return synthesize_cached(benchmark_name, dims, config).best_power()
