"""Extension experiment: validate the analytic latency model by simulation.

The paper's latency numbers (Table I) are analytic zero-load values. This
experiment injects traffic into the synthesized topology with the
flit-level wormhole simulator and compares:

* at light load the measured packet latency must approach the zero-load
  analytic value plus the packet serialisation time and the per-link
  pipeline registers the analytic convention does not count;
* as offered load rises towards the specification, queueing grows the gap —
  behaviour the analytic model deliberately ignores.

Beyond the classic per-flow Bernoulli process the sweep covers the whole
:mod:`repro.noc.scenarios` library (hotspot, bursty on–off, uniformly
scaled injection), and the (scenario × injection scale × seed) campaign
fans across the :mod:`repro.engine` process pool with a deterministic
merge: ``jobs=N`` returns bit-identical rows to a serial run.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.config import SynthesisConfig
from repro.engine import run_tasks
from repro.engine.executor import ProgressFn
from repro.engine.tasks import (
    BatchSimulationTask,
    SimulationTask,
    SynthesisTask,
)
from repro.experiments.common import (
    ExperimentResult,
    default_config_for,
    synthesize_cached,
)
from repro.models.library import NocLibrary, default_library
from repro.noc.metrics import flow_latency_cycles
from repro.noc.scenarios import ScenarioSpec, make_scenario


def run_simulation_validation(
    benchmark: str = "d26_media",
    injection_scales: Sequence[float] = (0.1, 0.3, 0.6, 1.0),
    cycles: int = 20_000,
    warmup: int = 2_000,
    config: Optional[SynthesisConfig] = None,
    packet_length_flits: int = 4,
    library: Optional[NocLibrary] = None,
    scenarios: Sequence[ScenarioSpec] = ("bernoulli",),
    seeds: Sequence[int] = (0,),
    jobs: Optional[int] = 1,
    drain_limit: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
    store=None,
    retry=None,
    task_timeout_s: Optional[float] = None,
    on_error: str = "raise",
    batch: Optional[int] = None,
) -> ExperimentResult:
    """One row per (scenario, offered load, seed): simulated vs analytic.

    Args:
        benchmark: Registry benchmark to synthesize (best 3-D power point).
        injection_scales: Offered-load multipliers on the specification.
        cycles / warmup: Injection horizon and statistics warmup.
        config: Synthesis configuration (default: the evaluation-wide one).
        packet_length_flits: Packet length in flits.
        library: Component library used for both synthesis-side analytics
            and the simulator (default: :func:`default_library`).
        scenarios: Traffic scenarios (names, ``"name:arg"`` specs or
            :class:`~repro.noc.scenarios.TrafficScenario` objects).
        seeds: Simulator seeds; each (scenario, scale, seed) triple is one
            independent run.
        jobs: Worker processes for the campaign (``1`` = serial, ``0`` /
            ``None`` = auto). Results are bit-identical either way.
        drain_limit: Post-horizon drain bound (see
            :meth:`~repro.noc.simulator.WormholeSimulator.run`).
        progress: Optional ``progress(done, total, key)`` callback.
        store: Optional :class:`~repro.engine.store.ResultStore`. Both the
            upstream synthesis and every (scenario × scale × seed) run are
            served from / checkpointed into the store, so a killed campaign
            rerun with the same store resumes where it stopped and merges
            bit-identically to an uninterrupted cold run.
        retry / task_timeout_s / on_error: The engine's supervision knobs
            (see :func:`repro.engine.run_tasks`). Under
            ``on_error="quarantine"`` runs lost to a worker crash or
            deadline are dropped from the table and counted in its
            ``notes`` instead of aborting the campaign.
        batch: Replications per engine task. ``None``/``1`` runs one
            :class:`~repro.engine.tasks.SimulationTask` per seed; ``K > 1``
            groups each (scenario, scale)'s seeds into
            :class:`~repro.engine.tasks.BatchSimulationTask` chunks of up
            to ``K`` on the vectorised lockstep engine. Rows, row order and
            store fingerprints are bit-identical either way — batching only
            changes how the work is packed.
    """
    if batch is not None and batch < 1:
        from repro.errors import EngineError

        raise EngineError(f"batch must be >= 1, got {batch}")
    if config is None:
        config = default_config_for(benchmark)
    point = _best_power_point(benchmark, config, store)
    if library is None:
        library = default_library()

    zero_load = {
        flow: flow_latency_cycles(point.topology, flow, library)
        for flow in point.topology.routes
    }
    analytic_avg = sum(zero_load.values()) / len(zero_load)

    scenario_objs = [make_scenario(s) for s in scenarios]
    if batch is not None and batch > 1:
        # Seed chunks stay in seed order within each (scenario, scale), so
        # the flattened rows land in exactly the solo campaign's order.
        tasks = [
            BatchSimulationTask(
                key=(scen.label(), scale, chunk),
                topology=point.topology,
                seeds=chunk,
                library=library,
                packet_length_flits=packet_length_flits,
                cycles=cycles,
                warmup=warmup,
                injection_scale=scale,
                scenario=scen,
                drain_limit=drain_limit,
            )
            for scen in scenario_objs
            for scale in injection_scales
            for chunk in _seed_chunks(seeds, batch)
        ]
    else:
        tasks = [
            SimulationTask(
                key=(scen.label(), scale, seed),
                topology=point.topology,
                library=library,
                packet_length_flits=packet_length_flits,
                seed=seed,
                cycles=cycles,
                warmup=warmup,
                injection_scale=scale,
                scenario=scen,
                drain_limit=drain_limit,
            )
            for scen in scenario_objs
            for scale in injection_scales
            for seed in seeds
        ]
    results = run_tasks(
        tasks, jobs=jobs, progress=progress, store=store,
        retry=retry, task_timeout_s=task_timeout_s, on_error=on_error,
    )

    table = ExperimentResult(
        name=f"Simulation vs analytic latency, {benchmark} (best 3-D point)",
        columns=[
            "scenario", "seed", "injection_scale",
            "delivered", "injected", "delivery_ratio",
            "sim_latency_cyc", "analytic_cyc", "gap_cyc",
        ],
        notes=(
            f"packet length {packet_length_flits} flits; the analytic "
            "convention charges 1 cycle per switch and only extra pipeline "
            "stages per link; runs drain in-flight packets past the horizon"
        ),
    )
    quarantined = [r for r in results if r.error is not None]
    if quarantined:
        lost = ", ".join(str(r.key) for r in quarantined)
        table.notes += (
            f"; {len(quarantined)} of {len(results)} run(s) quarantined "
            f"({lost}) — rows omitted"
        )
    for task_result in results:
        if task_result.error is not None:
            continue
        label, scale, seed = task_result.key
        if isinstance(seed, tuple):  # a batch task: one row per replication
            rows = zip(seed, task_result.result)
        else:
            rows = [(seed, task_result.result)]
        for row_seed, stats in rows:
            table.add(
                scenario=label,
                seed=row_seed,
                injection_scale=scale,
                delivered=stats.packets_delivered,
                injected=stats.packets_injected,
                delivery_ratio=stats.delivery_ratio,
                sim_latency_cyc=stats.avg_packet_latency,
                analytic_cyc=analytic_avg,
                gap_cyc=stats.avg_packet_latency - analytic_avg,
            )
    return table


def _seed_chunks(seeds: Sequence[int], batch: int):
    """Consecutive seed groups of up to ``batch``, in campaign order."""
    seeds = tuple(int(s) for s in seeds)
    return [seeds[i:i + batch] for i in range(0, len(seeds), batch)]


def _best_power_point(benchmark: str, config: SynthesisConfig, store):
    """The campaign's synthesized topology, optionally via the store.

    Without a store this is the process-level memoised synthesis every
    experiment shares. With one, the synthesis itself becomes a store-backed
    engine task, so a warm campaign rerun skips it entirely — the two paths
    produce bit-identical design points (``synthesize`` is the same staged
    flow ``synthesize_cached`` runs).
    """
    if store is None:
        return synthesize_cached(benchmark, "3d", config).best_power()
    from repro.bench.registry import get_benchmark

    bench = get_benchmark(benchmark)
    task = SynthesisTask(
        key=("synthesis", benchmark),
        core_spec=bench.core_spec_3d,
        comm_spec=bench.comm_spec,
        config=config,
    )
    return run_tasks([task], jobs=1, store=store)[0].result.best_power()
