"""Extension experiment: validate the analytic latency model by simulation.

The paper's latency numbers (Table I) are analytic zero-load values. This
experiment injects the specified traffic into the synthesized topology with
the flit-level wormhole simulator and compares:

* at light load the measured packet latency must approach the zero-load
  analytic value plus the packet serialisation time and the per-link
  pipeline registers the analytic convention does not count;
* as offered load rises towards the specification, queueing grows the gap —
  behaviour the analytic model deliberately ignores.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.config import SynthesisConfig
from repro.experiments.common import (
    ExperimentResult,
    default_config_for,
    synthesize_cached,
)
from repro.models.library import default_library
from repro.noc.metrics import flow_latency_cycles
from repro.noc.simulator import WormholeSimulator


def run_simulation_validation(
    benchmark: str = "d26_media",
    injection_scales: Sequence[float] = (0.1, 0.3, 0.6, 1.0),
    cycles: int = 20_000,
    warmup: int = 2_000,
    config: Optional[SynthesisConfig] = None,
    packet_length_flits: int = 4,
) -> ExperimentResult:
    """One row per offered-load level: simulated vs analytic latency."""
    if config is None:
        config = default_config_for(benchmark)
    point = synthesize_cached(benchmark, "3d", config).best_power()
    library = default_library()

    zero_load = {
        flow: flow_latency_cycles(point.topology, flow, library)
        for flow in point.topology.routes
    }
    analytic_avg = sum(zero_load.values()) / len(zero_load)

    table = ExperimentResult(
        name=f"Simulation vs analytic latency, {benchmark} (best 3-D point)",
        columns=[
            "injection_scale", "delivered", "injected", "delivery_ratio",
            "sim_latency_cyc", "analytic_cyc", "gap_cyc",
        ],
        notes=(
            f"packet length {packet_length_flits} flits; the analytic "
            "convention charges 1 cycle per switch and only extra pipeline "
            "stages per link"
        ),
    )
    for scale in injection_scales:
        sim = WormholeSimulator(
            point.topology, library,
            packet_length_flits=packet_length_flits, seed=0,
        )
        stats = sim.run(cycles=cycles, warmup=warmup, injection_scale=scale)
        table.add(
            injection_scale=scale,
            delivered=stats.packets_delivered,
            injected=stats.packets_injected,
            delivery_ratio=stats.delivery_ratio,
            sim_latency_cyc=stats.avg_packet_latency,
            analytic_cyc=analytic_avg,
            gap_cyc=stats.avg_packet_latency - analytic_avg,
        )
    return table
