"""Figs. 21 & 22 — impact of the max_ill (TSV) constraint on power/latency.

"With a tighter TSV constraint, the power consumption and latency increases
significantly, as more switches are needed in the design. With less than ten
inter-layer links, it is impossible to build any topology and having a
max_ill constraint larger than 24 does not improve the results anymore."

The exact infeasibility threshold depends on the layer assignment of the
benchmark (our synthetic D_36_4 keeps more traffic intra-layer than the
original), but the shape — infeasible below a floor, monotonically improving
to saturation — is reproduced.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.config import SynthesisConfig
from repro.errors import SynthesisError
from repro.experiments.common import (
    ExperimentResult,
    default_config_for,
    synthesize_cached,
)

DEFAULT_SWEEP = (1, 2, 3, 4, 6, 8, 10, 14, 18, 22, 25, 30)


def run_max_ill_sweep(
    benchmark: str = "d36_4",
    max_ill_values: Sequence[int] = DEFAULT_SWEEP,
    config: Optional[SynthesisConfig] = None,
) -> ExperimentResult:
    """One row per max_ill value: best power, latency, and TSV usage."""
    table = ExperimentResult(
        name=f"Figs. 21-22: impact of max_ill, {benchmark}",
        columns=[
            "max_ill", "power_mw", "latency_cyc", "switches",
            "vertical_links", "max_ill_used", "phase", "theta",
        ],
    )
    for max_ill in max_ill_values:
        base = config if config is not None else default_config_for(benchmark)
        cfg = base.with_(max_ill=max_ill)
        try:
            point = synthesize_cached(benchmark, "3d", cfg).best_power()
        except SynthesisError:
            table.add(max_ill=max_ill, power_mw=None, latency_cyc=None,
                      switches=None, vertical_links=None, max_ill_used=None,
                      phase="infeasible", theta=None)
            continue
        table.add(
            max_ill=max_ill,
            power_mw=point.total_power_mw,
            latency_cyc=point.avg_latency_cycles,
            switches=point.switch_count,
            vertical_links=point.metrics.num_vertical_links,
            max_ill_used=point.metrics.max_ill_used,
            phase=point.phase,
            theta=point.assignment.theta,
        )
    return table
