"""Table I — 2-D vs. 3-D NoC comparison on the six benchmarks.

For each benchmark the paper reports link power, switch power, total power
and average zero-load latency for the least-power 2-D and 3-D design points.
The paper measures an average 38% power and 13% latency reduction for 3-D;
the *shape* to reproduce is: 3-D wins everywhere, the distributed designs
save the most, the pipelined ones the least.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.bench.registry import TABLE1_BENCHMARKS
from repro.core.config import SynthesisConfig
from repro.experiments.common import (
    ExperimentResult,
    default_config_for,
    synthesize_cached,
)


def run_table1(
    benchmarks: Sequence[str] = TABLE1_BENCHMARKS,
    config: Optional[SynthesisConfig] = None,
) -> ExperimentResult:
    """One row per benchmark with the full Table I column set."""
    table = ExperimentResult(
        name="Table I: 2-D vs. 3-D NoC comparison",
        columns=[
            "benchmark",
            "link_2d_mw", "link_3d_mw",
            "switch_2d_mw", "switch_3d_mw",
            "total_2d_mw", "total_3d_mw",
            "lat_2d_cyc", "lat_3d_cyc",
            "power_saving_pct", "latency_saving_pct",
        ],
    )
    power_savings = []
    latency_savings = []
    for name in benchmarks:
        cfg = config if config is not None else default_config_for(name)
        p2 = synthesize_cached(name, "2d", cfg).best_power()
        p3 = synthesize_cached(name, "3d", cfg).best_power()
        ps = 100.0 * (1.0 - p3.total_power_mw / p2.total_power_mw)
        ls = 100.0 * (1.0 - p3.avg_latency_cycles / p2.avg_latency_cycles)
        power_savings.append(ps)
        latency_savings.append(ls)
        table.add(
            benchmark=name,
            link_2d_mw=p2.metrics.link_power_mw,
            link_3d_mw=p3.metrics.link_power_mw,
            switch_2d_mw=p2.metrics.switch_power_mw,
            switch_3d_mw=p3.metrics.switch_power_mw,
            total_2d_mw=p2.total_power_mw,
            total_3d_mw=p3.total_power_mw,
            lat_2d_cyc=p2.avg_latency_cycles,
            lat_3d_cyc=p3.avg_latency_cycles,
            power_saving_pct=ps,
            latency_saving_pct=ls,
        )
    if power_savings:
        table.notes = (
            f"average power saving {sum(power_savings) / len(power_savings):.1f}% "
            f"(paper: 38%), average latency saving "
            f"{sum(latency_savings) / len(latency_savings):.1f}% (paper: 13%)"
        )
    return table
