"""Command-line interface: ``sunfloor3d`` (or ``python -m repro.cli``).

Sub-commands:

* ``synth``      — synthesize a NoC for a core + communication spec pair
  (JSON or text format) or a named built-in benchmark, printing the
  trade-off points and the chosen design; ``--jobs N`` fans candidate
  evaluation across the engine pool and ``--stage-timings`` prints the
  per-stage wall-clock breakdown of the staged pipeline.
  ``--floorplanner constrained`` selects the Sec. VIII-D baseline, with
  ``--floorplan-restarts K`` / ``--floorplan-jobs N`` running K multi-start
  anneals (fanned across the engine pool) per insertion.
* ``sweep``      — explore an architectural design space (frequency × α ×
  link width) on the parallel engine (``--jobs``).
* ``sim``        — wormhole-simulate a synthesized benchmark under a
  (scenario × injection scale × seed) traffic campaign fanned across the
  engine pool (``--jobs``); see ``docs/simulator.md``.
* ``bench``      — run the engine scaling benchmark and write
  ``BENCH_engine.json`` (perf trajectory tracking).
* ``cache``      — inspect or manage the content-addressed on-disk result
  store (``stats`` / ``verify`` / ``clear``); ``synth``, ``sweep`` and
  ``sim`` accept ``--cache`` / ``--cache-dir DIR`` to serve
  already-computed results from the store and checkpoint fresh ones, so a
  killed campaign resumes on rerun (see ``docs/engine.md``). With caching
  on, ``synth`` and ``sweep`` also memoize *individual pipeline stages*
  (see ``docs/pipeline.md``), so a changed parameter re-runs only the
  stages it invalidates; ``cache stats`` breaks those records out per
  stage.
* ``campaign``   — declarative campaigns (see ``docs/campaign.md``):
  ``validate`` a spec file (every problem listed with its JSON path, exit
  2 if invalid), ``run`` one locally, or ``submit`` / ``status`` /
  ``cancel`` against a service spool directory.
* ``serve``      — the resident campaign service over a spool directory:
  bounded job queue with explicit backpressure, round-robin fairness
  across jobs, write-ahead journal, graceful SIGTERM drain; after a
  crash, ``serve --resume`` replays the journal and completes every
  incomplete job bit-identically from the content-addressed store.
* ``experiment`` — regenerate one of the paper's tables/figures by id
  (fig1, fig10, fig11, fig12, fig13, fig14, fig15, fig17, fig18, fig19,
  fig21, fig23, table1).
* ``benchmarks`` — list the built-in benchmark suite.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.registry import get_benchmark, list_benchmarks
from repro.core.config import SynthesisConfig
from repro.core.synthesis import SunFloor3D
from repro.errors import ReproError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sunfloor3d",
        description="SunFloor 3D reproduction: NoC topology synthesis for 3-D SoCs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    synth = sub.add_parser("synth", help="synthesize a NoC topology")
    src = synth.add_mutually_exclusive_group(required=True)
    src.add_argument("--benchmark", help="built-in benchmark name")
    src.add_argument("--cores", help="core specification file (json/text)")
    synth.add_argument("--comm", help="communication spec file (with --cores)")
    synth.add_argument("--dims", choices=("2d", "3d"), default="3d",
                       help="which benchmark variant to synthesize")
    synth.add_argument("--frequency", type=float, default=400.0,
                       help="NoC frequency in MHz")
    synth.add_argument("--max-ill", type=int, default=25,
                       help="max inter-layer links per adjacent boundary")
    synth.add_argument("--phase", choices=("auto", "phase1", "phase2"),
                       default="auto")
    synth.add_argument("--objective", choices=("power", "latency"),
                       default="power")
    synth.add_argument("--switches", type=str, default=None,
                       help="switch count range, e.g. 3:14")
    synth.add_argument("--jobs", type=int, default=1,
                       help="worker processes for candidate evaluation "
                            "(0 = one per CPU, 1 = serial; results are "
                            "identical either way)")
    synth.add_argument("--stage-timings", action="store_true",
                       help="print the per-stage wall-clock breakdown")
    synth.add_argument("--floorplanner", choices=("custom", "constrained"),
                       default="custom",
                       help="NoC insertion routine: the paper's custom one "
                            "or the constrained-annealer baseline")
    synth.add_argument("--floorplan-restarts", type=int, default=1,
                       help="multi-start annealing runs of the constrained "
                            "floorplanner (best cost wins deterministically)")
    synth.add_argument("--floorplan-jobs", type=int, default=1,
                       help="worker processes for those restarts "
                            "(0 = one per CPU, 1 = serial; results are "
                            "identical either way)")
    synth.add_argument("--all-points", action="store_true",
                       help="print every valid design point")
    synth.add_argument("--verify", action="store_true",
                       help="run the design-rule verifier on the result")
    synth.add_argument("--ascii", action="store_true",
                       help="render the floorplan as ASCII art")
    synth.add_argument("--export-json", metavar="PATH",
                       help="write the chosen design point as JSON")
    synth.add_argument("--export-dot", metavar="PATH",
                       help="write the topology as Graphviz DOT")
    _add_cache_args(synth)
    _add_supervision_args(synth)

    sweep = sub.add_parser(
        "sweep", help="explore an architectural design space in parallel"
    )
    ssrc = sweep.add_mutually_exclusive_group(required=True)
    ssrc.add_argument("--benchmark", help="built-in benchmark name")
    ssrc.add_argument("--cores", help="core specification file (json/text)")
    sweep.add_argument("--comm", help="communication spec file (with --cores)")
    sweep.add_argument("--dims", choices=("2d", "3d"), default="3d")
    sweep.add_argument("--frequencies", type=str, default=None,
                       help="comma-separated frequencies in MHz, e.g. 300,400,600")
    sweep.add_argument("--alphas", type=str, default=None,
                       help="comma-separated PG weights in [0,1], e.g. 0.3,0.7")
    sweep.add_argument("--widths", type=str, default=None,
                       help="comma-separated link widths in bits, e.g. 16,32,64")
    sweep.add_argument("--max-ill", type=int, default=25)
    sweep.add_argument("--switches", type=str, default=None,
                       help="switch count range, e.g. 3:14")
    sweep.add_argument("--jobs", type=int, default=0,
                       help="worker processes (0 = one per CPU, 1 = serial)")
    sweep.add_argument("--objective", choices=("power", "latency"),
                       default="power")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress per-point progress lines")
    _add_cache_args(sweep)
    _add_supervision_args(sweep)

    sim = sub.add_parser(
        "sim",
        help="wormhole-simulate a synthesized benchmark under traffic "
             "scenarios",
    )
    sim.add_argument("--benchmark", required=True,
                     help="built-in benchmark name")
    sim.add_argument("--scenarios", type=str, default="bernoulli",
                     help="comma-separated scenario specs: bernoulli, "
                          "hotspot[:core], bursty[:mean_burst_cycles], "
                          "scaled[:factor]")
    sim.add_argument("--scales", type=str, default="0.1,0.3,0.6,1.0",
                     help="comma-separated injection scales")
    sim.add_argument("--seeds", type=str, default="0",
                     help="comma-separated simulator seeds")
    sim.add_argument("--cycles", type=int, default=20_000,
                     help="injection horizon in cycles")
    sim.add_argument("--warmup", type=int, default=2_000,
                     help="cycles excluded from the statistics")
    sim.add_argument("--packet-flits", type=int, default=4,
                     help="packet length in flits")
    sim.add_argument("--max-ill", type=int, default=25)
    sim.add_argument("--switches", type=str, default=None,
                     help="switch count range, e.g. 3:14")
    sim.add_argument("--jobs", type=int, default=1,
                     help="worker processes for the campaign (0 = one per "
                          "CPU, 1 = serial; results are identical either "
                          "way)")
    sim.add_argument("--batch", type=int, default=1,
                     help="replications per engine task (1 = one task per "
                          "seed; K > 1 batches each scenario/scale's seeds "
                          "K at a time onto the vectorised lockstep engine; "
                          "results are identical either way)")
    sim.add_argument("--quiet", action="store_true",
                     help="suppress per-run progress lines")
    _add_cache_args(sim)
    _add_supervision_args(sim)

    cache = sub.add_parser(
        "cache",
        help="inspect or manage the on-disk result store",
    )
    cache.add_argument("action", choices=("stats", "verify", "clear"),
                       help="stats: entry/size summary; verify: audit every "
                            "entry (--repair deletes corrupt ones); clear: "
                            "delete all entries")
    cache.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="store location (default: $REPRO_CACHE_DIR or "
                            ".repro-cache)")
    cache.add_argument("--repair", action="store_true",
                       help="with verify: delete entries that fail the audit")

    bench = sub.add_parser(
        "bench", help="run the engine scaling benchmark (BENCH_engine.json)"
    )
    bench.add_argument("--quick", action="store_true",
                       help="small grid (CI-friendly)")
    bench.add_argument("--jobs", type=int, default=0,
                       help="worker processes for the parallel leg "
                            "(0 = auto; minimum 2 — the leg must exercise "
                            "a real pool)")
    bench.add_argument("--output", default="BENCH_engine.json",
                       help="where to write the JSON report")

    campaign = sub.add_parser(
        "campaign",
        help="declarative campaign specs: validate/run locally, or "
             "submit/status/cancel against a service spool directory",
    )
    csub = campaign.add_subparsers(dest="campaign_command", required=True)

    cval = csub.add_parser(
        "validate",
        help="check a campaign spec file; every problem is reported with "
             "its JSON path (exit 2 when invalid)",
    )
    cval.add_argument("spec", help="campaign spec file (JSON, or YAML "
                                   "where PyYAML is installed)")

    crun = csub.add_parser(
        "run", help="compile and run one campaign locally (no service)"
    )
    crun.add_argument("spec", help="campaign spec file")
    crun.add_argument("--jobs", type=int, default=1,
                      help="engine worker processes (0 = one per CPU)")
    crun.add_argument("--quiet", action="store_true",
                      help="suppress per-task progress lines")
    _add_cache_args(crun)

    csubmit = csub.add_parser(
        "submit", help="drop a spec in a service's inbox (validated "
                       "client-side first)"
    )
    csubmit.add_argument("spec", help="campaign spec file")
    csubmit.add_argument("--dir", required=True, metavar="SPOOL",
                         help="service spool directory")

    cstatus = csub.add_parser(
        "status", help="show job states from a spool's journal (read-only)"
    )
    cstatus.add_argument("--dir", required=True, metavar="SPOOL",
                         help="service spool directory")

    ccancel = csub.add_parser(
        "cancel", help="request cancellation of a queued/running job"
    )
    ccancel.add_argument("job", help="job id (e.g. job-0003)")
    ccancel.add_argument("--dir", required=True, metavar="SPOOL",
                         help="service spool directory")

    serve = sub.add_parser(
        "serve",
        help="run the resident campaign service over a spool directory "
             "(bounded queue, write-ahead journal, crash-safe resume)",
    )
    serve.add_argument("--dir", required=True, metavar="SPOOL",
                       help="spool directory (journal, inbox, store, "
                            "results; created if missing)")
    serve.add_argument("--resume", action="store_true",
                       help="replay the journal and finish incomplete jobs "
                            "(required when the previous service crashed "
                            "mid-campaign)")
    serve.add_argument("--once", action="store_true",
                       help="drain the inbox and queue, then exit instead "
                            "of staying resident")
    serve.add_argument("--jobs", type=int, default=1,
                       help="engine worker processes per batch "
                            "(1 = serial; results identical either way)")
    serve.add_argument("--max-queue", type=int, default=8,
                       help="bound on queued+running jobs; submissions "
                            "past it are rejected with a retry-after "
                            "(never silently dropped)")
    serve.add_argument("--batch", type=int, default=2,
                       help="engine tasks per scheduling turn per job "
                            "(the round-robin fairness quantum)")
    serve.add_argument("--idle-exit", type=float, default=None,
                       metavar="SECONDS",
                       help="exit after this long with nothing to do "
                            "(default: stay resident)")

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp.add_argument("id", help="experiment id (e.g. table1, fig11, fig23)")

    lint = sub.add_parser(
        "lint",
        help="run the contract linter (repro.analysis) over src/repro: "
             "stage input declarations, determinism, pickling safety, "
             "lock discipline, stage salts",
    )
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files or directories to lint "
                           "(default: this installation's src/repro)")
    lint.add_argument("--json", action="store_true",
                      help="machine-readable report on stdout")
    lint.add_argument("--checkers", metavar="NAME[,NAME...]", default=None,
                      help="run only these checkers (see --list)")
    lint.add_argument("--list", action="store_true", dest="list_checkers",
                      help="list registered checkers and finding codes, "
                           "then exit")
    lint.add_argument("--baseline", metavar="FILE", default=None,
                      help="accept the findings recorded in FILE "
                           "(historical debt); new findings still fail")
    lint.add_argument("--write-baseline", metavar="FILE", default=None,
                      help="write the current findings to FILE and exit 0 "
                           "(adopting them as accepted debt)")

    sub.add_parser("benchmarks", help="list built-in benchmarks")
    return parser


def _add_cache_args(parser) -> None:
    parser.add_argument("--cache", action="store_true",
                        help="serve already-computed results from the "
                             "on-disk store and checkpoint fresh ones "
                             "(default dir: $REPRO_CACHE_DIR or "
                             ".repro-cache)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="store location (implies --cache)")


def _add_supervision_args(parser) -> None:
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="re-run a failing task up to N extra times "
                             "(deterministic backoff; default 0)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-task deadline; a stuck worker pool is "
                             "killed and regenerated instead of waited on "
                             "(parallel runs only)")
    parser.add_argument("--on-error", choices=("raise", "quarantine"),
                        default="raise",
                        help="what to do when a task crashes its worker or "
                             "times out: abort the campaign (raise, "
                             "default) or quarantine the task and complete "
                             "the rest")


def _supervision_kwargs(args) -> dict:
    """Map the --retries/--task-timeout/--on-error flags to run_tasks kwargs."""
    retry = None
    if args.retries:
        if args.retries < 0:
            raise ReproError(f"--retries must be >= 0, got {args.retries}")
        from repro.engine.supervise import RetryPolicy

        retry = RetryPolicy(max_retries=args.retries)
    return {
        "retry": retry,
        "task_timeout_s": args.task_timeout,
        "on_error": args.on_error,
    }


def _open_store(args):
    """The run's ResultStore, or None when caching was not requested.

    An unwritable or invalid ``--cache-dir`` raises
    :class:`~repro.errors.StoreError` here — before any synthesis work —
    with a clear message instead of a traceback from the store layer.
    """
    if not getattr(args, "cache", False) and args.cache_dir is None:
        return None
    from repro.engine.store import open_store

    return open_store(args.cache_dir)


def _parse_values(text, cast, what):
    if text is None:
        return ()
    try:
        return tuple(cast(item) for item in text.split(",") if item.strip())
    except ValueError:
        raise ReproError(f"could not parse {what} list {text!r}")


def _parse_switch_range(text):
    if not text:
        return None
    lo, _, hi = text.partition(":")
    try:
        return (int(lo), int(hi or lo))
    except ValueError:
        raise ReproError(
            f"could not parse switch range {text!r} (expected e.g. 3:14)"
        )


def _load_specs(args):
    if args.benchmark:
        bench = get_benchmark(args.benchmark)
        core_spec = bench.core_spec_3d if args.dims == "3d" else bench.core_spec_2d
        return core_spec, bench.comm_spec
    if not args.comm:
        raise ReproError("--comm is required together with --cores")
    from repro.spec.io import (
        load_comm_spec_json, load_comm_spec_text,
        load_core_spec_json, load_core_spec_text,
    )
    if args.cores.endswith(".json"):
        core_spec = load_core_spec_json(args.cores)
    else:
        core_spec = load_core_spec_text(args.cores)
    if args.comm.endswith(".json"):
        comm_spec = load_comm_spec_json(args.comm)
    else:
        comm_spec = load_comm_spec_text(args.comm)
    return core_spec, comm_spec


def _cmd_synth(args) -> int:
    core_spec, comm_spec = _load_specs(args)
    switch_range = _parse_switch_range(args.switches)
    # Invalid knob combinations (e.g. --floorplan-restarts without
    # --floorplanner constrained) are rejected by SynthesisConfig itself.
    config = SynthesisConfig(
        frequency_mhz=args.frequency,
        max_ill=args.max_ill,
        phase=args.phase,
        objective=args.objective,
        switch_count_range=switch_range,
        floorplanner=args.floorplanner,
        floorplan_restarts=args.floorplan_restarts,
        floorplan_jobs=args.floorplan_jobs,
    )
    store = _open_store(args)
    supervision = _supervision_kwargs(args)
    tool = SunFloor3D(core_spec, comm_spec, config=config)
    cached = False
    stage_cache = None
    if store is not None:
        # The whole run is one content-addressed unit: a rerun with the
        # same specs + config is served from disk without synthesizing.
        # Beneath it, per-stage memoization shares the same store, so even
        # a *changed* config reuses every stage the change left untouched
        # (see docs/pipeline.md, "Stage memoization").
        from repro.engine.profile import Timer
        from repro.engine.stagecache import StageCache
        from repro.engine.tasks import SynthesisTask

        stage_cache = StageCache(store)
        task = SynthesisTask(key="synth", core_spec=core_spec,
                             comm_spec=comm_spec, config=config)
        fingerprint = store.fingerprint(task)
        entry = store.get(fingerprint)
        if entry is not None:
            payload = entry.payload
            if isinstance(payload, dict) and "result" in payload:
                result = payload["result"]
                tool.last_stage_timings = payload.get("stage_timings")
            else:
                # Legacy entry from before timings rode along with the
                # result; still served, just without a stage breakdown.
                result = payload
                tool.last_stage_timings = None
            cached = True
        else:
            with Timer() as timer:
                result = tool.synthesize(jobs=args.jobs,
                                         stage_cache=stage_cache,
                                         **supervision)
            store.put(
                fingerprint,
                {"result": result,
                 "stage_timings": tool.last_stage_timings},
                task_type="SynthesisTask", elapsed_s=timer.elapsed_s,
            )
    else:
        result = tool.synthesize(jobs=args.jobs, **supervision)
    if tool.last_quarantined:
        print(f"{len(tool.last_quarantined)} candidate evaluation(s) "
              "quarantined:")
        for key, message in tool.last_quarantined:
            print(f"  {key}: {message}")
        print()
    if args.stage_timings:
        timings = tool.last_stage_timings
        if timings is None:
            # Only possible for pre-upgrade cache entries that stored the
            # bare result without its timings.
            print("per-stage timings unavailable: cache entry predates "
                  "persisted timings")
        else:
            if cached:
                timings.mark_all_cached()
            print(timings.report())
        print()
        if stage_cache is not None and stage_cache.stats_dict():
            from repro.engine.stagecache import format_stage_cache_summary

            print("stage cache:")
            print(format_stage_cache_summary(stage_cache.stats_dict()))
            print()
    if result.is_empty:
        print("no valid design points found "
              f"(unmet switch counts: {result.unmet_switch_counts})")
        return 1
    if args.all_points:
        for point in sorted(result.points, key=lambda p: p.switch_count):
            print(point.summary())
        print()
    best = result.best(args.objective)
    from repro.experiments.topology_report import describe_design_point

    print("best design point:")
    print(describe_design_point(best))

    if args.verify:
        from repro.core.verification import verify_design_point
        from repro.graphs.comm_graph import build_comm_graph
        from repro.models.library import default_library

        graph = build_comm_graph(core_spec, comm_spec)
        report = verify_design_point(best, graph, default_library())
        print("\nverification: " + report.summary())
        if not report.ok:
            return 1
    if args.ascii:
        from repro.floorplan.ascii_art import render_floorplan

        print()
        print(render_floorplan(best.floorplan))
    if args.export_json:
        from repro.noc.export import save_design_point_json

        save_design_point_json(best, args.export_json)
        print(f"\nwrote {args.export_json}")
    if args.export_dot:
        from repro.noc.export import save_topology_dot

        save_topology_dot(best.topology, args.export_dot, core_spec.names)
        print(f"wrote {args.export_dot}")
    return 0


def _cmd_sweep(args) -> int:
    from repro.engine import ParameterGrid, build_tasks, run_tasks

    store = _open_store(args)  # fail fast on an unusable --cache-dir
    core_spec, comm_spec = _load_specs(args)
    config = SynthesisConfig(
        max_ill=args.max_ill,
        objective=args.objective,
        switch_count_range=_parse_switch_range(args.switches),
    )
    grid = ParameterGrid(
        frequencies_mhz=_parse_values(args.frequencies, float, "frequency"),
        alphas=_parse_values(args.alphas, float, "alpha"),
        link_widths_bits=_parse_values(args.widths, int, "width"),
    )
    # With a store, also arm per-stage memoization in the workers (same
    # directory/salt): neighbouring grid points share every stage their
    # parameters don't touch.
    tasks = build_tasks(
        core_spec, comm_spec, grid, config,
        stage_cache_dir=str(store.root) if store is not None else None,
        stage_cache_salt=store.salt if store is not None else None,
    )
    progress = None
    if not args.quiet:
        def progress(done, total, key):
            print(f"  [{done}/{total}] {key.label()}")
    print(f"sweeping {len(tasks)} design point(s) "
          f"(jobs={args.jobs or 'auto'})")
    results = run_tasks(tasks, jobs=args.jobs, progress=progress,
                        store=store, **_supervision_kwargs(args))

    best = None
    quarantined = 0
    print(f"\n{'point':36s} {'valid':>5s} {'best mW':>9s} {'best lat':>9s}")
    for task_result in results:
        label = task_result.key.label()
        if task_result.error is not None:
            quarantined += 1
            note = f"quarantined: {type(task_result.error).__name__}"
            print(f"{label:36s} {0:5d} {note:>24s}")
            continue
        result = task_result.result
        if not result.points:
            note = "skipped" if task_result.skipped else "no valid points"
            print(f"{label:36s} {0:5d} {note:>20s}")
            continue
        point = result.best(args.objective)
        print(f"{label:36s} {len(result.points):5d} "
              f"{point.total_power_mw:9.1f} {point.avg_latency_cycles:9.2f}")
        if best is None or point.objective_value() < best.objective_value():
            best = point
    if quarantined:
        print(f"\n{quarantined} of {len(results)} point(s) quarantined "
              "(crashed or timed out); see rows above")
    if store is not None and not args.quiet:
        from repro.engine.stagecache import (
            format_stage_cache_summary, merge_stage_stats,
        )

        print(f"\nstore: {store.hits} hit(s), {store.misses} miss(es)")
        stage_stats: dict = {}
        for task_result in results:
            if task_result.stage_cache:
                merge_stage_stats(stage_stats, task_result.stage_cache)
        if stage_stats:
            print("stage cache:")
            print(format_stage_cache_summary(stage_stats))
    if best is None:
        print("\nno valid design points anywhere in the grid")
        return 1
    from repro.experiments.topology_report import describe_design_point

    print("\nbest design point over the grid:")
    print(describe_design_point(best))
    return 0


def _cmd_sim(args) -> int:
    from repro.experiments.common import default_config_for
    from repro.experiments.simulation_validation import run_simulation_validation

    store = _open_store(args)  # fail fast on an unusable --cache-dir
    config = default_config_for(
        args.benchmark,
        max_ill=args.max_ill,
        switch_count_range=_parse_switch_range(args.switches),
    )
    scenarios = tuple(
        s.strip() for s in args.scenarios.split(",") if s.strip()
    )
    progress = None
    if not args.quiet:
        def progress(done, total, key):
            print(f"  [{done}/{total}] {key}")
    table = run_simulation_validation(
        benchmark=args.benchmark,
        injection_scales=_parse_values(args.scales, float, "scale"),
        cycles=args.cycles,
        warmup=args.warmup,
        config=config,
        packet_length_flits=args.packet_flits,
        scenarios=scenarios,
        seeds=_parse_values(args.seeds, int, "seed"),
        jobs=args.jobs,
        batch=args.batch,
        progress=progress,
        store=store,
        **_supervision_kwargs(args),
    )
    print()
    table.print_table()
    if store is not None and not args.quiet:
        print(f"\nstore: {store.hits} hit(s), {store.misses} miss(es)")
    return 0


def _cmd_bench(args) -> int:
    from repro.engine.benchmark import run_engine_benchmark

    report = run_engine_benchmark(
        quick=args.quick, jobs=args.jobs or None, output=args.output,
        log=print,
    )
    sweep = report["sweep"]
    cache = report["cache"]
    stage_cache = report["stage_cache"]
    paths = report["compute_paths"]
    floorplan = report["floorplan"]
    simulator = report["simulator"]
    service = report["service"]
    print(
        f"\nsummary: sweep speedup {sweep['speedup']}x on {sweep['jobs']} "
        f"worker(s) ({report['cpu_count']} CPU(s) visible), "
        f"warm-cache speedup {cache['speedup']}x, "
        f"warm-adjacent stage-cache speedup {stage_cache['speedup']}x, "
        f"compute_paths speedup {paths['speedup']}x, "
        f"floorplan anneal speedup {floorplan['speedup']}x "
        f"({floorplan['incremental_moves_per_s']:,.0f} moves/s), "
        f"simulator speedup {simulator['speedup']}x "
        f"({simulator['engine_cycles_per_s']:,.0f} cycles/s), "
        f"service replay overhead {service['replay_overhead_pct']:+.1f}% "
        f"({service['lost_jobs']} lost, {service['duplicated_jobs']} "
        f"duplicated)"
    )
    return 0


def _fmt_bytes(n: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024
    return f"{n} B"  # unreachable


def _cmd_cache(args) -> int:
    from repro.engine.store import open_store

    # Inspection-only open: auditing a store on a read-only mount must
    # work, and `cache stats` of a missing store must not create one.
    # clear / verify --repair only unlink existing files, which needs no
    # directory creation or write probe either.
    store = open_store(args.cache_dir, readonly=True)
    if args.action == "stats":
        stats = store.stats()
        print(f"store: {stats.root}")
        print(f"entries: {stats.entries} ({_fmt_bytes(stats.total_bytes)})")
        stage_types = [t for t in sorted(stats.by_task_type)
                       if t.startswith("stage:")]
        for task_type in sorted(stats.by_task_type):
            if task_type not in stage_types:
                print(f"  {task_type}: {stats.by_task_type[task_type]}")
        if stage_types:
            print("  stage records (per-stage memoization):")
            for task_type in stage_types:
                name = task_type[len("stage:"):]
                print(f"    {name}: {stats.by_task_type[task_type]}")
        return 0
    if args.action == "verify":
        report = store.verify(repair=args.repair)
        print(f"checked {report.checked} entr"
              f"{'y' if report.checked == 1 else 'ies'}: {report.ok} ok, "
              f"{len(report.bad)} bad, {report.removed} removed")
        for path, reason in report.bad:
            print(f"  {path}: {reason}")
        if report.clean:
            return 0
        # A repair only succeeds if every bad entry actually came off disk
        # (unlink failures on read-only stores are swallowed by the layer
        # below); exit 0 must mean "the store is clean now".
        if args.repair and report.removed == len(report.bad):
            return 0
        return 1
    removed, failed = store.clear()
    print(f"removed {removed} entr{'y' if removed == 1 else 'ies'} "
          f"from {store.root}")
    if failed:
        print(f"error: {failed} entr"
              f"{'y' if failed == 1 else 'ies'} could not be removed",
              file=sys.stderr)
        return 1
    return 0


def _cmd_campaign(args) -> int:
    from repro.campaign import (
        CampaignService, compile_campaign, load_campaign_file,
    )

    if args.campaign_command == "validate":
        spec = load_campaign_file(args.spec)  # raises listing every issue
        print(f"{args.spec}: ok — campaign {spec.name!r} "
              f"({spec.kind}, {spec.benchmark}, {spec.task_count} task(s))")
        return 0
    if args.campaign_command == "run":
        from repro.engine.executor import run_tasks

        spec = load_campaign_file(args.spec)
        store = _open_store(args)
        tasks = compile_campaign(
            spec, store=store,
            stage_cache_dir=str(store.root) if store is not None else None,
        )
        progress = None
        if not args.quiet:
            def progress(done, total, key):
                print(f"  [{done}/{total}] {key}")
        print(f"campaign {spec.name!r}: {len(tasks)} task(s) "
              f"(jobs={args.jobs or 'auto'})")
        results = run_tasks(tasks, jobs=args.jobs, progress=progress,
                            store=store)
        failed = [r for r in results if r.error is not None]
        print(f"done: {len(results) - len(failed)} ok, {len(failed)} failed")
        return 1 if failed else 0
    if args.campaign_command == "submit":
        from repro.campaign.service import submit_file

        target = submit_file(args.dir, args.spec)
        print(f"submitted {args.spec} -> {target}")
        print("(a running `serve` on that directory will pick it up; "
              "check `campaign status`)")
        return 0
    if args.campaign_command == "status":
        state = CampaignService.status(args.dir)
        if not state.jobs:
            print(f"{args.dir}: no jobs journaled")
        else:
            print(f"{'job':10s} {'state':10s} {'progress':>10s} digest")
            for job in state.jobs.values():
                progress_str = (
                    f"{job.done_tasks}/{job.total_tasks}"
                    if job.total_tasks else "-"
                )
                tail = job.digest[:12] if job.digest else (job.error or "")
                print(f"{job.job_id:10s} {job.state:10s} "
                      f"{progress_str:>10s} {tail}")
        if state.rejected:
            print(f"{state.rejected} submission(s) rejected (backpressure)")
        if state.torn_tail:
            print("note: journal has a torn final record (crash signature); "
                  "resume with `serve --resume`")
        return 0
    # cancel
    from repro.campaign.service import request_cancel

    marker = request_cancel(args.dir, args.job)
    print(f"cancellation of {args.job} requested ({marker})")
    return 0


def _cmd_serve(args) -> int:
    from repro.campaign import CampaignService

    if args.max_queue < 1:
        raise ReproError(f"--max-queue must be >= 1, got {args.max_queue}")
    if args.batch < 1:
        raise ReproError(f"--batch must be >= 1, got {args.batch}")
    with CampaignService(
        args.dir, max_queue=args.max_queue, batch_size=args.batch,
        jobs=args.jobs, resume=args.resume,
    ) as service:
        print(f"serving {service.paths.root} "
              f"(max_queue={service.max_queue}, batch={service.batch_size}"
              f"{', resumed' if args.resume else ''})")
        if args.once:
            completed = service.run_until_idle()
            print(f"drained: {len(completed)} job(s) completed")
        else:
            service.serve_forever(idle_exit_s=args.idle_exit)
            print("service stopped (drained)")
    return 0


def _cmd_experiment(args) -> int:
    exp_id = args.id.lower()
    from repro.experiments import (
        fig01_yield, floorplan_comparison, max_ill_sweep, mesh_comparison,
        phase_comparison, power_curves, table1_2d_vs_3d, topology_report,
        wirelength,
    )

    runners = {
        "fig1": lambda: [fig01_yield.run_yield_curves(),
                         fig01_yield.run_budget_table()],
        "fig10": lambda: [power_curves.run_power_vs_switches(dims="2d")],
        "fig11": lambda: [power_curves.run_power_vs_switches(dims="3d")],
        "fig12": lambda: [wirelength.run_wirelength_distribution()],
        "fig13": lambda: [topology_report.run_topology_report(phase="phase1")],
        "fig14": lambda: [topology_report.run_topology_report(phase="phase2")],
        "fig15": lambda: [topology_report.run_floorplan_report()],
        "fig16": lambda: [topology_report.run_floorplan_report()],
        "fig17": lambda: [phase_comparison.run_phase_comparison()],
        "fig18": lambda: [floorplan_comparison.run_area_vs_switches()],
        "fig19": lambda: [floorplan_comparison.run_best_point_comparison()],
        "fig20": lambda: [floorplan_comparison.run_best_point_comparison()],
        "fig21": lambda: [max_ill_sweep.run_max_ill_sweep()],
        "fig22": lambda: [max_ill_sweep.run_max_ill_sweep()],
        "fig23": lambda: [mesh_comparison.run_mesh_comparison()],
        "table1": lambda: [table1_2d_vs_3d.run_table1()],
    }
    if exp_id not in runners:
        print(f"unknown experiment {args.id!r}; known: {', '.join(sorted(runners))}")
        return 1
    for table in runners[exp_id]():
        table.print_table()
        print()
    return 0


def _cmd_lint(args) -> int:
    """Run the contract linter; exit 1 on any unsuppressed finding.

    The analysis package is imported lazily so every other CLI command
    stays import-light.
    """
    from pathlib import Path

    from repro.analysis import (
        CHECKER_REGISTRY, Baseline, format_report, known_codes, lint_paths,
        run_checkers, load_corpus, resolve_checkers,
    )

    if args.list_checkers:
        for name, cls in CHECKER_REGISTRY.items():
            print(name)
            for code, description in sorted(cls.codes.items()):
                print(f"  {code}  {description}")
        print("framework")
        for code, description in sorted(
            c for c in known_codes().items() if c[0].startswith("RPL0")
        ):
            print(f"  {code}  {description}")
        return 0

    package_dir = Path(__file__).resolve().parent      # .../src/repro
    project_root = package_dir.parent.parent
    paths = args.paths or [package_dir]
    checkers = args.checkers.split(",") if args.checkers else None

    if args.write_baseline:
        context = load_corpus(paths, project_root=project_root)
        report = run_checkers(context, resolve_checkers(checkers))
        Baseline.write(args.write_baseline, report.findings)
        print(f"wrote {args.write_baseline} "
              f"({len(report.findings)} accepted finding(s))")
        return 0

    report = lint_paths(
        paths,
        project_root=project_root,
        checkers=checkers,
        baseline=args.baseline,
    )
    print(format_report(report, as_json=args.json))
    return 0 if report.clean else 1


def _cmd_benchmarks() -> int:
    for name in list_benchmarks():
        bench = get_benchmark(name)
        print(f"{name:12s} {bench.num_cores:3d} cores, {bench.num_flows:3d} flows, "
              f"{bench.num_layers} layers - {bench.description}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "synth":
            return _cmd_synth(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "sim":
            return _cmd_sim(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "cache":
            return _cmd_cache(args)
        if args.command == "campaign":
            return _cmd_campaign(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "experiment":
            return _cmd_experiment(args)
        if args.command == "lint":
            return _cmd_lint(args)
        if args.command == "benchmarks":
            return _cmd_benchmarks()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
