"""Balanced k-way min-cut graph partitioning.

Algorithms 1 and 2 of the paper repeatedly ask for "i min-cut partitions of
PG ... such that each block has about equal number of cores". This module
implements that primitive from scratch:

1. **Seeded greedy growth** builds an initial balanced partition: block seeds
   are chosen to be mutually weakly connected, then blocks absorb the
   unassigned vertex with the strongest attraction, always growing the
   currently smallest block.
2. **Pairwise Kernighan-Lin refinement** improves the cut: for every pair of
   blocks a KL pass finds the best prefix of tentative swaps (edges to
   vertices outside the pair are unaffected by a swap, so pairwise passes are
   exact for the pair).
3. **Balance-preserving single moves** handle the ``n % k != 0`` case where
   block sizes may legally differ by one.

All steps are deterministic for a given seed.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Set, Tuple

from repro.rng import make_rng

Weights = Mapping[Tuple[int, int], float]
Adjacency = List[Dict[int, float]]


def kway_min_cut(
    n: int,
    weights: Weights,
    k: int,
    *,
    seed: int = 0,
    refinement_rounds: int = 6,
) -> List[List[int]]:
    """Partition vertices ``0..n-1`` into ``k`` balanced blocks of small cut.

    Args:
        n: Number of vertices.
        weights: Edge weights; keys are vertex pairs (either orientation;
            both orientations are summed), values are non-negative weights.
        k: Number of blocks, ``1 <= k <= n``.
        seed: Determinism seed for tie-breaking.
        refinement_rounds: Maximum KL refinement sweeps over all block pairs.

    Returns:
        List of ``k`` blocks; each block is a sorted list of vertex indices.
        Block sizes are ``n // k`` or ``n // k + 1``. Blocks are ordered by
        their smallest member, so output is deterministic.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")

    adj = _build_adjacency(n, weights)

    if k == 1:
        return [list(range(n))]
    if k == n:
        return [[v] for v in range(n)]

    assignment = _greedy_initial(n, adj, k, seed)
    blocks: List[Set[int]] = [set() for _ in range(k)]
    for v, b in enumerate(assignment):
        blocks[b].add(v)

    _refine(adj, blocks, n, k, refinement_rounds)

    result = [sorted(b) for b in blocks]
    result.sort(key=lambda blk: blk[0] if blk else n)
    return result


def cut_value(n: int, weights: Weights, blocks: Sequence[Sequence[int]]) -> float:
    """Total weight of edges crossing between different blocks.

    Each undirected pair is counted once (both orientations of a directed
    pair are summed into the pair weight first).
    """
    owner = {}
    for b, block in enumerate(blocks):
        for v in block:
            if v in owner:
                raise ValueError(f"vertex {v} appears in multiple blocks")
            owner[v] = b
    if len(owner) != n:
        raise ValueError(f"blocks cover {len(owner)} of {n} vertices")

    pair_weights: Dict[Tuple[int, int], float] = {}
    for (i, j), w in weights.items():
        if i == j:
            continue
        key = (min(i, j), max(i, j))
        pair_weights[key] = pair_weights.get(key, 0.0) + float(w)

    return sum(
        w for (i, j), w in pair_weights.items() if owner[i] != owner[j]
    )


# --------------------------------------------------------------------------
# internals
# --------------------------------------------------------------------------

def _build_adjacency(n: int, weights: Weights) -> Adjacency:
    adj: Adjacency = [dict() for _ in range(n)]
    for (i, j), w in weights.items():
        if not (0 <= i < n and 0 <= j < n):
            raise ValueError(f"edge ({i}, {j}) out of range for n={n}")
        if i == j:
            continue
        w = float(w)
        if w < 0:
            raise ValueError(f"edge ({i}, {j}) has negative weight {w}")
        if w == 0:
            continue
        adj[i][j] = adj[i].get(j, 0.0) + w
        adj[j][i] = adj[j].get(i, 0.0) + w
    return adj


def _block_sizes(n: int, k: int) -> List[int]:
    base, extra = divmod(n, k)
    return [base + 1 if b < extra else base for b in range(k)]


def _greedy_initial(n: int, adj: Adjacency, k: int, seed: int) -> List[int]:
    """Seeded greedy growth producing a balanced assignment vector."""
    rng = make_rng(seed, "kway-init")
    sizes = _block_sizes(n, k)
    assignment = [-1] * n
    unassigned: Set[int] = set(range(n))

    # Seed selection: first seed is the heaviest vertex; subsequent seeds are
    # the unassigned vertices least attracted to already-chosen seeds (so
    # blocks start far apart in the graph).
    strength = [sum(adj[v].values()) for v in range(n)]
    first = max(range(n), key=lambda v: (strength[v], -v))
    seeds = [first]
    unassigned.discard(first)
    assignment[first] = 0
    for b in range(1, k):
        best_v, best_key = None, None
        for v in sorted(unassigned):
            attraction = sum(adj[v].get(s, 0.0) for s in seeds)
            key = (attraction, -strength[v], v)
            if best_key is None or key < best_key:
                best_key, best_v = key, v
        seeds.append(best_v)
        assignment[best_v] = b
        unassigned.discard(best_v)

    counts = [1] * k
    # Grow: always extend the most under-full block with its most attracted
    # unassigned vertex.
    while unassigned:
        b = min(range(k), key=lambda bb: (counts[bb] / sizes[bb], bb))
        members = [v for v in range(n) if assignment[v] == b]
        best_v, best_key = None, None
        for v in sorted(unassigned):
            attraction = sum(adj[v].get(m, 0.0) for m in members)
            key = (-attraction, -strength[v], v)
            if best_key is None or key < best_key:
                best_key, best_v = key, v
        assignment[best_v] = b
        counts[b] += 1
        unassigned.discard(best_v)
        if counts[b] >= sizes[b] and all(
            counts[bb] >= sizes[bb] for bb in range(k)
        ):
            break

    # Any stragglers (can happen only if sizes were exhausted simultaneously).
    leftovers = [v for v in range(n) if assignment[v] == -1]
    rng.shuffle(leftovers)
    for v in leftovers:
        b = min(range(k), key=lambda bb: (counts[bb] - sizes[bb], bb))
        assignment[v] = b
        counts[b] += 1
    return assignment


def _external_internal(
    adj: Adjacency, v: int, own: Set[int], other: Set[int]
) -> float:
    """KL D-value of ``v``: external (to ``other``) minus internal weight."""
    ext = 0.0
    intl = 0.0
    for u, w in adj[v].items():
        if u in other:
            ext += w
        elif u in own:
            intl += w
    return ext - intl


def _kl_pass(adj: Adjacency, a: Set[int], b: Set[int]) -> float:
    """One Kernighan-Lin pass swapping between blocks ``a`` and ``b``.

    Mutates the blocks in place if an improving prefix of swaps exists.
    Returns the achieved gain (0.0 if no improvement).
    """
    if not a or not b:
        return 0.0

    d: Dict[int, float] = {}
    for v in a:
        d[v] = _external_internal(adj, v, a, b)
    for v in b:
        d[v] = _external_internal(adj, v, b, a)

    work_a, work_b = set(a), set(b)
    locked_pairs: List[Tuple[int, int]] = []
    gains: List[float] = []

    steps = min(len(a), len(b))
    for _ in range(steps):
        best = None  # (gain, u, v)
        for u in sorted(work_a):
            adj_u = adj[u]
            du = d[u]
            for v in sorted(work_b):
                gain = du + d[v] - 2.0 * adj_u.get(v, 0.0)
                if best is None or gain > best[0] + 1e-12:
                    best = (gain, u, v)
        if best is None:
            break
        gain, u, v = best
        locked_pairs.append((u, v))
        gains.append(gain)
        work_a.discard(u)
        work_b.discard(v)
        # Update D-values as if u and v were swapped.
        for x in work_a:
            d[x] += 2.0 * adj[x].get(u, 0.0) - 2.0 * adj[x].get(v, 0.0)
        for y in work_b:
            d[y] += 2.0 * adj[y].get(v, 0.0) - 2.0 * adj[y].get(u, 0.0)

    # Best prefix.
    best_total, best_len = 0.0, 0
    total = 0.0
    for idx, g in enumerate(gains, start=1):
        total += g
        if total > best_total + 1e-12:
            best_total, best_len = total, idx

    if best_len == 0:
        return 0.0
    for u, v in locked_pairs[:best_len]:
        a.discard(u)
        b.discard(v)
        a.add(v)
        b.add(u)
    return best_total


def _move_pass(
    adj: Adjacency, blocks: List[Set[int]], n: int, k: int
) -> float:
    """Single-node moves that keep every block within legal size bounds."""
    lo, hi = n // k, -(-n // k)  # floor and ceil
    total_gain = 0.0
    improved = True
    while improved:
        improved = False
        best = None  # (gain, v, src, dst)
        for src in range(k):
            if len(blocks[src]) <= lo:
                continue
            for v in sorted(blocks[src]):
                conn = [0.0] * k
                for u, w in adj[v].items():
                    for bb in range(k):
                        if u in blocks[bb]:
                            conn[bb] += w
                            break
                for dst in range(k):
                    if dst == src or len(blocks[dst]) >= hi:
                        continue
                    gain = conn[dst] - conn[src]
                    if best is None or gain > best[0] + 1e-12:
                        best = (gain, v, src, dst)
        if best is not None and best[0] > 1e-12:
            gain, v, src, dst = best
            blocks[src].discard(v)
            blocks[dst].add(v)
            total_gain += gain
            improved = True
    return total_gain


def _refine(
    adj: Adjacency, blocks: List[Set[int]], n: int, k: int, rounds: int
) -> None:
    for _ in range(rounds):
        gain = 0.0
        for i in range(k):
            for j in range(i + 1, k):
                gain += _kl_pass(adj, blocks[i], blocks[j])
        gain += _move_pass(adj, blocks, n, k)
        if gain <= 1e-9:
            break
