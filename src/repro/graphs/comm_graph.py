"""The communication graph (Definition 2 of the paper).

A directed graph with one vertex per core and one edge per traffic flow,
annotated with bandwidth and latency constraint. This module gives the graph
a concrete, index-based representation shared by the partitioning graphs
(PG/SPG/LPG) built on top of it in :mod:`repro.core.partition_graphs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

import networkx as nx

from repro.errors import SpecError
from repro.spec.comm_spec import CommSpec, TrafficFlow
from repro.spec.core_spec import CoreSpec


@dataclass
class CommGraph:
    """Index-based communication graph.

    Attributes:
        n: Number of cores (vertices).
        names: Core names, ``names[i]`` is the name of vertex ``i``.
        edges: Mapping ``(i, j) -> TrafficFlow`` for every directed flow.
        layers: ``layers[i]`` is the 3-D layer of core ``i``.
    """

    n: int
    names: List[str]
    edges: Dict[Tuple[int, int], TrafficFlow] = field(default_factory=dict)
    layers: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.names) != self.n:
            raise SpecError("names list length must equal n")
        if len(self.layers) != self.n:
            raise SpecError("layers list length must equal n")

    def index_of(self, name: str) -> int:
        try:
            return self.names.index(name)
        except ValueError as exc:
            raise SpecError(f"unknown core {name!r}") from exc

    def flows(self) -> Iterator[Tuple[int, int, TrafficFlow]]:
        """Iterate ``(src_index, dst_index, flow)`` in deterministic order."""
        for (i, j) in sorted(self.edges):
            yield i, j, self.edges[(i, j)]

    def bandwidth(self, i: int, j: int) -> float:
        """Bandwidth of flow i->j, 0 if there is no such flow."""
        flow = self.edges.get((i, j))
        return flow.bandwidth if flow is not None else 0.0

    def latency(self, i: int, j: int) -> float:
        """Latency constraint of flow i->j; +inf if there is no such flow."""
        flow = self.edges.get((i, j))
        return flow.latency if flow is not None else float("inf")

    @property
    def max_bandwidth(self) -> float:
        """``max_bw`` of Def. 3."""
        if not self.edges:
            raise SpecError("communication graph has no flows")
        return max(f.bandwidth for f in self.edges.values())

    @property
    def min_latency(self) -> float:
        """``min_lat`` of Def. 3."""
        if not self.edges:
            raise SpecError("communication graph has no flows")
        return min(f.latency for f in self.edges.values())

    @property
    def num_layers(self) -> int:
        return max(self.layers) + 1 if self.layers else 0

    def symmetric_bandwidth(self) -> Dict[Tuple[int, int], float]:
        """Undirected bandwidth weights: ``bw(i,j) + bw(j,i)`` per pair i<j."""
        out: Dict[Tuple[int, int], float] = {}
        for (i, j), flow in self.edges.items():
            key = (min(i, j), max(i, j))
            out[key] = out.get(key, 0.0) + flow.bandwidth
        return out

    def to_networkx(self) -> nx.DiGraph:
        """Export to a networkx DiGraph (for analysis and visual dumps)."""
        g = nx.DiGraph()
        for i, name in enumerate(self.names):
            g.add_node(i, name=name, layer=self.layers[i])
        for (i, j), flow in self.edges.items():
            g.add_edge(i, j, bandwidth=flow.bandwidth, latency=flow.latency,
                       message_type=flow.message_type.value)
        return g


def build_comm_graph(core_spec: CoreSpec, comm_spec: CommSpec) -> CommGraph:
    """Build the communication graph from the two input specifications.

    Vertex ``i`` corresponds to ``core_spec[i]``; flow endpoints are resolved
    by core name.
    """
    index = {name: i for i, name in enumerate(core_spec.names)}
    edges: Dict[Tuple[int, int], TrafficFlow] = {}
    for flow in comm_spec:
        if flow.src not in index:
            raise SpecError(f"flow source {flow.src!r} is not a declared core")
        if flow.dst not in index:
            raise SpecError(f"flow destination {flow.dst!r} is not a declared core")
        edges[(index[flow.src], index[flow.dst])] = flow
    return CommGraph(
        n=len(core_spec),
        names=list(core_spec.names),
        edges=edges,
        layers=[c.layer for c in core_spec],
    )
