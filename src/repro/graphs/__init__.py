"""Graph substrate: communication graphs and balanced min-cut partitioning.

SunFloor 3D's core-to-switch assignment (Algorithms 1 and 2) relies on a
balanced k-way min-cut partitioner. The original tool used an external
partitioning package; here :mod:`repro.graphs.partition` implements one from
scratch (greedy seeded growth + pairwise Kernighan-Lin refinement, plus
balance-preserving single-node moves).
"""

from repro.graphs.comm_graph import CommGraph, build_comm_graph
from repro.graphs.partition import cut_value, kway_min_cut

__all__ = ["CommGraph", "build_comm_graph", "kway_min_cut", "cut_value"]
