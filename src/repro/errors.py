"""Exception hierarchy for the SunFloor 3D reproduction.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch one base class. The subclasses distinguish the stage of the flow that
failed: specification validation, infeasible synthesis, LP solving, and
floorplanning.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class SpecError(ReproError):
    """An input specification (core or communication) is malformed."""


class SynthesisError(ReproError):
    """Topology synthesis could not produce any valid design point."""


class PathComputationError(SynthesisError):
    """No constraint-respecting, deadlock-free path exists for a flow."""


class LPError(ReproError):
    """The linear program is malformed or could not be solved."""


class InfeasibleLPError(LPError):
    """The linear program has no feasible solution."""


class UnboundedLPError(LPError):
    """The linear program objective is unbounded below."""


class FloorplanError(ReproError):
    """A floorplanning step failed (overlap removal, insertion, legality)."""


class EngineError(ReproError):
    """The parallel sweep engine was misconfigured or a worker failed."""


class StoreError(EngineError):
    """The on-disk result store is unusable (unwritable/invalid location)
    or a value has no stable fingerprint."""
