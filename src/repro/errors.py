"""Exception hierarchy for the SunFloor 3D reproduction.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch one base class. The subclasses distinguish the stage of the flow that
failed: specification validation, infeasible synthesis, LP solving, and
floorplanning.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class SpecError(ReproError):
    """An input specification (core or communication) is malformed."""


class SynthesisError(ReproError):
    """Topology synthesis could not produce any valid design point."""


class PathComputationError(SynthesisError):
    """No constraint-respecting, deadlock-free path exists for a flow."""


class LPError(ReproError):
    """The linear program is malformed or could not be solved."""


class InfeasibleLPError(LPError):
    """The linear program has no feasible solution."""


class UnboundedLPError(LPError):
    """The linear program objective is unbounded below."""


class FloorplanError(ReproError):
    """A floorplanning step failed (overlap removal, insertion, legality)."""


class EngineError(ReproError):
    """The parallel sweep engine was misconfigured or a worker failed."""


class StoreError(EngineError):
    """The on-disk result store is unusable (unwritable/invalid location)
    or a value has no stable fingerprint."""


class LockTimeoutError(EngineError):
    """An inter-process file lock could not be acquired within its timeout
    (another process holds it for longer than expected)."""

    def __init__(self, message: str, *, path=None, timeout_s: float = 0.0):
        super().__init__(message)
        self.path = path
        self.timeout_s = timeout_s


class CampaignError(ReproError):
    """The campaign service layer was misconfigured or a job failed in a
    way the service itself could not absorb."""


class CampaignSpecError(CampaignError):
    """A declarative campaign spec is invalid. Carries *every* problem
    found (``issues``: a list of :class:`repro.campaign.spec.SpecIssue`),
    each with the JSON path of the offending value, not just the first."""

    def __init__(self, issues):
        self.issues = list(issues)
        lines = [f"  {issue.path}: {issue.message}" for issue in self.issues]
        super().__init__(
            "invalid campaign spec "
            f"({len(self.issues)} problem{'s' if len(self.issues) != 1 else ''}):\n"
            + "\n".join(lines)
        )


class JournalError(CampaignError):
    """The job journal is unusable: unwritable location, a second writer
    holds the journal lock, or corruption beyond the tolerated torn tail."""


class BackpressureError(CampaignError):
    """A submission was rejected because the service's bounded job queue is
    full. Structured — never a silent drop: carries the observed queue
    depth, the configured capacity and a retry-after estimate."""

    def __init__(self, message: str, *, queue_depth: int = 0,
                 max_queue: int = 0, retry_after_s: float = 1.0):
        super().__init__(message)
        self.queue_depth = queue_depth
        self.max_queue = max_queue
        self.retry_after_s = retry_after_s


class SupervisionError(EngineError):
    """Base class for failures *synthesized by the engine supervisor* (as
    opposed to errors raised by task code): deadline expiries and poison-task
    quarantines. ``run_tasks(..., on_error="quarantine")`` returns these as
    structured :class:`~repro.engine.tasks.TaskResult` errors instead of
    raising."""


class TaskTimeoutError(SupervisionError):
    """A task exceeded its per-task deadline; its worker pool was torn down
    and regenerated rather than waited on forever."""

    def __init__(self, message: str, *, key=None, timeout_s: float = 0.0):
        super().__init__(message)
        self.key = key
        self.timeout_s = timeout_s


class TaskQuarantinedError(SupervisionError):
    """A task was attributed as a worker-pool crasher (or could not be
    scheduled after the pool-restart budget ran out) and quarantined so the
    rest of the campaign could complete."""

    def __init__(self, message: str, *, key=None, attempts: int = 0,
                 reason: str = "crash"):
        super().__init__(message)
        self.key = key
        self.attempts = attempts
        self.reason = reason
