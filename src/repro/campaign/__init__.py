"""``repro.campaign`` — durable, declarative experiment campaigns.

The engine (PRs 1–7) made individual tasks parallel, resumable, memoized
and fault-tolerant. This package adds the layer above: **campaigns as
durable named jobs** submitted to a resident service that survives its own
death.

* :mod:`repro.campaign.spec` — the declarative campaign spec (a plain
  JSON/YAML-able dict: parameter grids × scenarios × seeds × config/stage
  overrides), validated like :mod:`repro.spec` but reporting *every*
  problem with its JSON path, and compiled into engine task lists;
* :mod:`repro.campaign.journal` — the write-ahead job journal: an
  append-only, per-record-checksummed JSONL file with atomic rotation,
  fsync'd on job state transitions, replayable after a SIGKILL;
* :mod:`repro.campaign.service` — the resident service:
  a bounded job queue with structured backpressure
  (:class:`~repro.errors.BackpressureError` — submissions beyond capacity
  are rejected with a retry-after, never dropped), round-robin task
  interleaving across jobs for per-job fairness, cancel/status, graceful
  SIGTERM drain, and crash-safe ``--resume`` that replays the journal and
  completes every incomplete job bit-identically via the shared
  content-addressed :class:`~repro.engine.store.ResultStore`.

CLI: ``python -m repro.cli serve`` runs the service over a spool
directory; ``python -m repro.cli campaign validate|run|submit|status|
cancel`` are the client verbs. See ``docs/campaign.md``.
"""

from repro.campaign.journal import JobJournal, JobRecord, JournalState
from repro.campaign.service import CampaignService, ServicePaths
from repro.campaign.spec import (
    CampaignSpec,
    SpecIssue,
    compile_campaign,
    load_campaign_file,
    validate_campaign,
)
from repro.errors import (
    BackpressureError,
    CampaignError,
    CampaignSpecError,
    JournalError,
)

__all__ = [
    "BackpressureError",
    "CampaignError",
    "CampaignSpec",
    "CampaignSpecError",
    "CampaignService",
    "JobJournal",
    "JobRecord",
    "JournalError",
    "JournalState",
    "ServicePaths",
    "SpecIssue",
    "compile_campaign",
    "load_campaign_file",
    "validate_campaign",
]
