"""The resident campaign service: a durable job queue over the engine.

One :class:`CampaignService` owns a *spool directory*::

    <root>/
      journal.jsonl   write-ahead job journal (single writer, checksummed)
      store/          shared content-addressed ResultStore (task payloads)
      inbox/          spec files dropped by clients (atomic rename submits)
      rejected/       inbox files that failed validation (+ .error notes)
      results/        one pickle per finished job: the ordered payload list
      control/        client → service requests (cancel-<job> marker files)

and processes submitted campaign specs as **jobs**:

* **bounded queue, explicit backpressure** — at most ``max_queue`` jobs
  may be queued or running; a submission beyond that is journaled as
  ``rejected`` and raises :class:`~repro.errors.BackpressureError` with a
  retry-after estimate derived from observed task throughput. Nothing is
  ever silently dropped.
* **round-robin fairness** — the scheduler interleaves jobs batch by
  batch (``batch_size`` engine tasks per turn), so a three-point smoke
  job finishes promptly even behind a thousand-point sweep.
* **crash-safe by replay** — every state transition hits the journal
  before it takes effect; all task payloads live in the content-addressed
  store. After a SIGKILL, ``CampaignService(root, resume=True)`` replays
  the journal, recompiles each incomplete job from its journaled spec and
  re-runs it through the store — completed tasks are served as hits, so
  the finished job's result file is **bit-identical** to an uninterrupted
  run (asserted by the chaos suite, ``make chaos``).
* **graceful drain** — SIGTERM (or :meth:`request_drain`) finishes the
  in-flight batch, journals a ``checkpoint`` + ``service-stop`` and
  returns; SIGKILL at *any* instant is equivalent to a drain at the last
  journaled transition.

Determinism for chaos testing comes from the :mod:`repro.engine.faults`
service-level sites (``journal-write``, ``service-batch``,
``service-between-jobs``, ``store-evict``) — armed via environment, they
crash the service at exact, reproducible points.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import signal
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, List, Mapping, Optional, Union

from repro.campaign.journal import JobJournal, JournalState
from repro.campaign.spec import CampaignSpec, compile_campaign
from repro.engine.faults import maybe_fire
from repro.errors import (
    BackpressureError,
    CampaignError,
    ReproError,
)

#: Pickle protocol pinned for byte-stable result files across runs.
_PICKLE_PROTOCOL = 4

#: Fallback retry-after before any throughput has been observed.
_DEFAULT_RETRY_AFTER_S = 5.0


@dataclass(frozen=True)
class ServicePaths:
    """The spool directory layout (all children of one root)."""

    root: Path

    @property
    def journal(self) -> Path:
        return self.root / "journal.jsonl"

    @property
    def store_dir(self) -> Path:
        return self.root / "store"

    @property
    def inbox(self) -> Path:
        return self.root / "inbox"

    @property
    def rejected(self) -> Path:
        return self.root / "rejected"

    @property
    def results(self) -> Path:
        return self.root / "results"

    @property
    def control(self) -> Path:
        return self.root / "control"

    def make(self) -> "ServicePaths":
        for directory in (
            self.root, self.inbox, self.rejected, self.results, self.control,
        ):
            directory.mkdir(parents=True, exist_ok=True)
        return self


@dataclass
class _Job:
    """In-memory state of one queued/running job."""

    job_id: str
    spec: CampaignSpec
    tasks: Optional[List[object]] = None
    cursor: int = 0
    payloads: List[Any] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.tasks) if self.tasks is not None else 0


class CampaignService:
    """See the module docstring for semantics.

    Args:
        root: Spool directory (created if missing).
        store: An open :class:`~repro.engine.store.ResultStore`; ``None``
            opens one at ``<root>/store`` (the normal arrangement — the
            store is what makes resume bit-identical).
        max_queue: Bound on queued + running jobs; submissions past it get
            :class:`~repro.errors.BackpressureError`.
        batch_size: Engine tasks run per scheduling turn per job — the
            fairness quantum *and* the crash-replay granularity.
        jobs: Engine worker processes per batch (1 = in-process serial).
        resume: Replay the journal and re-enqueue incomplete jobs. Without
            it, a journal holding incomplete jobs refuses to open (a crash
            should be resumed deliberately, not steamrolled).

    Raises:
        CampaignError: incomplete journal without ``resume=True``.
        JournalError: another process owns this journal.
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        store=None,
        max_queue: int = 8,
        batch_size: int = 2,
        jobs: int = 1,
        resume: bool = False,
    ) -> None:
        if max_queue < 1:
            raise CampaignError(f"max_queue must be >= 1, got {max_queue}")
        if batch_size < 1:
            raise CampaignError(f"batch_size must be >= 1, got {batch_size}")
        self.paths = ServicePaths(Path(root)).make()
        self.max_queue = max_queue
        self.batch_size = batch_size
        self.jobs = jobs
        if store is None:
            from repro.engine.store import ResultStore

            store = ResultStore(self.paths.store_dir)
        self.store = store
        self.journal = JobJournal(self.paths.journal, writer=True)
        self._queue: Deque[_Job] = deque()
        self._by_id: Dict[str, _Job] = {}
        self._next_job = 1
        self._draining = False
        self._avg_task_s: Optional[float] = None
        self.completed: List[str] = []

        state = self.journal.replay()
        self._next_job = state.next_job_number
        incomplete = state.incomplete
        if incomplete and not resume:
            self.journal.close()
            raise CampaignError(
                f"journal {self.paths.journal} holds "
                f"{len(incomplete)} incomplete job(s) "
                f"({', '.join(j.job_id for j in incomplete)}); "
                "start with resume=True (CLI: serve --resume) to finish "
                "them, or point the service at a fresh directory"
            )
        self.journal.append("service-start", resumed=bool(incomplete))
        for record in incomplete:
            if record.spec is None:
                self.journal.append(
                    "failed", job=record.job_id,
                    error="journal lost this job's spec; cannot resume",
                )
                continue
            job = _Job(record.job_id, CampaignSpec.from_dict(record.spec))
            self._by_id[job.job_id] = job
            self._queue.append(job)
            self.journal.append("queued", job=job.job_id, resumed=True)

    # -- client surface ---------------------------------------------------

    def submit(
        self, spec: Union[CampaignSpec, Mapping[str, Any]]
    ) -> str:
        """Queue a campaign; returns its job id.

        Raises:
            CampaignSpecError: invalid spec (all problems listed).
            BackpressureError: the bounded queue is full — journaled as a
                ``rejected`` record; retry after ``exc.retry_after_s``.
        """
        if not isinstance(spec, CampaignSpec):
            spec = CampaignSpec.from_dict(spec)
        depth = len(self._queue)
        if depth >= self.max_queue:
            retry_after = self._retry_after(depth)
            self.journal.append(
                "rejected", name=spec.name, queue_depth=depth,
                max_queue=self.max_queue, retry_after_s=retry_after,
            )
            raise BackpressureError(
                f"queue full ({depth}/{self.max_queue} jobs); retry "
                f"submission of {spec.name!r} in ~{retry_after:.0f}s",
                queue_depth=depth, max_queue=self.max_queue,
                retry_after_s=retry_after,
            )
        job_id = f"job-{self._next_job:04d}"
        self._next_job += 1
        job = _Job(job_id, spec)
        # Write-ahead: the journal knows the job before the queue does.
        self.journal.append(
            "submitted", job=job_id, spec=spec.to_dict(),
            total_tasks=spec.task_count,
        )
        self._by_id[job_id] = job
        self._queue.append(job)
        return job_id

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued/running job; ``True`` if it was active."""
        job = self._by_id.pop(job_id, None)
        if job is None:
            return False
        try:
            self._queue.remove(job)
        except ValueError:
            pass
        self.journal.append(
            "cancelled", job=job_id,
            done_tasks=job.cursor, total_tasks=job.total,
        )
        return True

    def request_drain(self) -> None:
        """Finish the in-flight batch, checkpoint, then stop serving."""
        self._draining = True

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @staticmethod
    def status(root: Union[str, Path]) -> JournalState:
        """Read-only replay of a spool directory's journal (never blocks a
        running service — readers don't take the writer lock)."""
        return JobJournal(ServicePaths(Path(root)).journal, writer=False) \
            .replay()

    # -- scheduling -------------------------------------------------------

    def step(self) -> bool:
        """One scheduling turn: the head job runs one batch, then yields.

        Returns ``True`` if any work was done (``False`` = idle). Fault
        sites ``service-batch`` / ``service-between-jobs`` fire here, which
        is what lets the chaos suite kill the service at exact points.
        """
        self._poll_control()
        if not self._queue:
            return False
        job = self._queue.popleft()
        if job.job_id not in self._by_id:  # cancelled while queued
            return True
        if job.tasks is None:
            self._start(job)
            if job.job_id not in self._by_id:  # compile failed
                return True
        maybe_fire("service-batch")
        batch = job.tasks[job.cursor:job.cursor + self.batch_size]
        started = time.perf_counter()
        try:
            results = self._run_batch(batch)
        except Exception as exc:  # task errors re-raise deterministically
            self._finish(job, "failed", error=str(exc))
            return True
        elapsed = time.perf_counter() - started
        self._observe(elapsed, len(batch))
        job.payloads.extend(r.result for r in results)
        job.cursor += len(batch)
        if job.cursor >= job.total:
            self._finish(job, "done")
            maybe_fire("service-between-jobs")
        else:
            self.journal.append(
                "progress", job=job.job_id,
                done_tasks=job.cursor, total_tasks=job.total,
            )
            self._queue.append(job)  # round-robin: back of the line
        return True

    def run_until_idle(self, *, poll_inbox: bool = True) -> List[str]:
        """Drive the scheduler until queue and inbox are both empty (or a
        drain is requested). Returns the job ids completed this call."""
        completed_before = len(self.completed)
        while not self._draining:
            if poll_inbox:
                self.poll_inbox()
            if not self.step():
                break
        return self.completed[completed_before:]

    def serve_forever(
        self,
        *,
        poll_s: float = 0.2,
        idle_exit_s: Optional[float] = None,
        install_signals: bool = True,
    ) -> None:
        """The resident loop behind ``python -m repro.cli serve``.

        SIGTERM/SIGINT request a graceful drain: the in-flight batch
        completes, a ``checkpoint`` is journaled, the loop returns (the
        CLI then exits 0). ``idle_exit_s`` bounds how long an empty
        service lingers — mainly for tests and one-shot smoke runs.
        """
        previous = {}
        if install_signals:
            def _drain(_signum, _frame):
                self.request_drain()

            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    previous[signum] = signal.signal(signum, _drain)
                except ValueError:  # not the main thread
                    break
        idle_since = time.monotonic()
        try:
            while not self._draining:
                self.poll_inbox()
                if self.step():
                    idle_since = time.monotonic()
                    continue
                if (
                    idle_exit_s is not None
                    and time.monotonic() - idle_since >= idle_exit_s
                ):
                    break
                time.sleep(poll_s)
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            self._checkpoint()

    def _checkpoint(self) -> None:
        """Journal a drain checkpoint: where every job stood at stop time.

        Informational only — replay state comes from the per-transition
        records — but it makes a post-mortem `campaign status` read like a
        story instead of a diff.
        """
        for job in list(self._queue):
            self.journal.append(
                "checkpoint", job=job.job_id,
                done_tasks=job.cursor, total_tasks=job.total,
            )
        if not self._queue:
            self.journal.append("checkpoint")
        self.journal.append("service-stop", drained=not self._queue)

    def close(self) -> None:
        self.journal.close()

    def __enter__(self) -> "CampaignService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- inbox / control --------------------------------------------------

    def poll_inbox(self) -> List[str]:
        """Accept spec files dropped in ``inbox/`` (oldest name first).

        A valid spec becomes a submitted job and the file is consumed; an
        invalid one moves to ``rejected/`` with a ``.error`` note; a
        backpressured one *stays in the inbox* (it will be retried on a
        later poll — the file system is the client's retry queue).
        """
        accepted: List[str] = []
        from repro.campaign.spec import load_campaign_file

        for path in sorted(self.paths.inbox.iterdir()):
            if not path.is_file() or path.name.startswith("."):
                continue
            try:
                spec = load_campaign_file(path)
            except ReproError as exc:
                self._reject_file(path, str(exc))
                continue
            try:
                accepted.append(self.submit(spec))
            except BackpressureError:
                break  # queue full: leave this and later files for retry
            path.unlink(missing_ok=True)
        return accepted

    def _reject_file(self, path: Path, reason: str) -> None:
        target = self.paths.rejected / path.name
        note = target.with_suffix(target.suffix + ".error")
        try:
            note.write_text(reason + "\n")
            os.replace(path, target)
        except OSError:
            path.unlink(missing_ok=True)

    def _poll_control(self) -> None:
        for path in sorted(self.paths.control.glob("cancel-*")):
            job_id = path.name[len("cancel-"):]
            self.cancel(job_id)
            path.unlink(missing_ok=True)

    # -- internals --------------------------------------------------------

    def _start(self, job: _Job) -> None:
        try:
            job.tasks = compile_campaign(job.spec, store=self.store)
        except ReproError as exc:
            self._by_id.pop(job.job_id, None)
            self.journal.append(
                "failed", job=job.job_id,
                error=f"compile failed: {exc}",
            )
            return
        self.journal.append(
            "running", job=job.job_id, total_tasks=job.total,
        )

    def _run_batch(self, batch: List[object]):
        from repro.engine.executor import run_tasks

        return run_tasks(batch, jobs=self.jobs, store=self.store)

    def _finish(self, job: _Job, state: str, *, error: str = "") -> None:
        self._by_id.pop(job.job_id, None)
        fields: Dict[str, Any] = {
            "done_tasks": job.cursor, "total_tasks": job.total,
        }
        if state == "done":
            # Round-trip each payload through pickle on its own before
            # building the blob: payloads computed in this process can
            # share sub-objects (which the joint pickle would encode as
            # memo backreferences) while the same payloads served from
            # the store are independent copies — normalising per payload
            # makes the result file byte-identical either way, which is
            # the resume bit-identity contract the chaos suite asserts.
            items = [
                (repr(t.key),
                 pickle.loads(pickle.dumps(p, protocol=_PICKLE_PROTOCOL)))
                for t, p in zip(job.tasks, job.payloads)
            ]
            blob = pickle.dumps(items, protocol=_PICKLE_PROTOCOL)
            digest = hashlib.sha256(blob).hexdigest()
            result_path = self.paths.results / f"{job.job_id}.pkl"
            tmp = result_path.with_suffix(".tmp")
            tmp.write_bytes(blob)
            os.replace(tmp, result_path)
            fields["digest"] = digest
            fields["result_path"] = str(result_path)
            self.completed.append(job.job_id)
        else:
            fields["error"] = error
        self.journal.append(state, job=job.job_id, **fields)

    def _observe(self, elapsed_s: float, tasks: int) -> None:
        if tasks <= 0:
            return
        per_task = elapsed_s / tasks
        if self._avg_task_s is None:
            self._avg_task_s = per_task
        else:  # EMA: recent batches dominate (warm store speeds things up)
            self._avg_task_s = 0.7 * self._avg_task_s + 0.3 * per_task

    def _retry_after(self, depth: int) -> float:
        """Rough time until a queue slot frees: one job's remaining work at
        observed throughput, clamped to something a client can sleep on."""
        if self._avg_task_s is None:
            return _DEFAULT_RETRY_AFTER_S
        head = self._queue[0] if self._queue else None
        remaining = (
            (head.total - head.cursor) if head is not None and head.tasks
            else self.batch_size
        )
        estimate = max(1, remaining) * self._avg_task_s
        return min(300.0, max(1.0, estimate))


def submit_file(
    root: Union[str, Path], spec_path: Union[str, Path]
) -> Path:
    """Client-side submit: atomically drop a validated spec in the inbox.

    Validation runs *client-side* first so an invalid spec fails the
    ``campaign submit`` command immediately (with every issue listed)
    instead of landing in ``rejected/`` where nobody is watching.
    """
    from repro.campaign.spec import load_campaign_file

    load_campaign_file(spec_path)  # raises with full issue list if invalid
    paths = ServicePaths(Path(root)).make()
    spec_path = Path(spec_path)
    stamp = f"{os.getpid()}-{time.monotonic_ns()}"
    target = paths.inbox / f"{stamp}-{spec_path.name}"
    tmp = paths.inbox / f".{stamp}-{spec_path.name}.tmp"
    tmp.write_bytes(spec_path.read_bytes())
    os.replace(tmp, target)
    return target


def request_cancel(root: Union[str, Path], job_id: str) -> Path:
    """Client-side cancel: drop a control marker the service consumes."""
    paths = ServicePaths(Path(root)).make()
    marker = paths.control / f"cancel-{job_id}"
    marker.touch()
    return marker
