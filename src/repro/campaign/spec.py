"""Declarative campaign specs: validated dicts → engine task lists.

A campaign spec is a plain dict (JSON file, YAML file where available, or
built in code) naming a benchmark and the experiment to run over it::

    {"name": "freq-sweep", "kind": "sweep", "benchmark": "d26_media",
     "grid": {"frequencies_mhz": [200, 400, 800]},
     "config": {"max_ill": 25, "objective": "power"}}

    {"name": "traffic", "kind": "sim", "benchmark": "d26_media",
     "scenarios": ["bernoulli", "hotspot:3"], "seeds": [0, 1],
     "injection_scales": [0.1, 0.5], "cycles": 4000, "warmup": 400}

Two campaign kinds cover the paper's two experiment families:

* ``"sweep"`` — the Fig. 3 outer loop: a :class:`~repro.engine.grid.
  ParameterGrid` cross product of architectural points, one
  :class:`~repro.engine.tasks.SynthesisTask` per point;
* ``"sim"`` — the wormhole-simulation campaign: synthesize the best
  design point (store-backed, so a resumed campaign re-derives the
  *identical* topology from cache), then one
  :class:`~repro.engine.tasks.SimulationTask` per
  (scenario × injection scale × seed) — or, with ``"batch": K``, one
  :class:`~repro.engine.tasks.BatchSimulationTask` per seed chunk of up
  to ``K`` on the vectorised lockstep engine. Per-replication results
  and store fingerprints are identical either way, so batched and solo
  campaigns resume through the same cache entries.

Validation philosophy matches :mod:`repro.spec.validate` but goes one step
further: :func:`validate_campaign` returns **every** problem it can find,
each tagged with the JSON path of the offending value
(``grid.frequencies_mhz[1]``, ``config.max_ill``, ``scenarios[0]``), so a
spec author fixes a file in one round trip instead of replaying
first-error whack-a-mole. :func:`CampaignSpec.from_dict` raises a
:class:`~repro.errors.CampaignSpecError` carrying the full issue list.

Compilation is deterministic: the same spec always expands to the same
task list in the same order, which is what lets the campaign service
resume a SIGKILLed job bit-identically from the content-addressed store.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import CampaignError, CampaignSpecError, ReproError

KINDS = ("sweep", "sim")
DIMS = ("3d", "2d")

#: Top-level spec keys, by applicability. ``grid``/``stages`` configure a
#: sweep; the traffic keys configure a sim campaign.
COMMON_KEYS = ("name", "kind", "benchmark", "dims", "config")
SWEEP_KEYS = ("grid", "stages")
SIM_KEYS = (
    "scenarios", "seeds", "injection_scales", "cycles", "warmup",
    "packet_length_flits", "batch",
)

GRID_KEYS = (
    "frequencies_mhz", "alphas", "link_widths_bits", "switch_count_ranges",
)


@dataclass(frozen=True)
class SpecIssue:
    """One problem in a campaign spec: where (JSON path) and what."""

    path: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}: {self.message}"


@dataclass(frozen=True)
class CampaignSpec:
    """A validated campaign: benchmark × experiment × parameter space.

    Construct via :meth:`from_dict` / :func:`load_campaign_file` — the
    constructor itself does not validate (it is the *output* of
    validation). ``config`` holds :class:`~repro.core.config.
    SynthesisConfig` overrides as a sorted tuple of ``(key, value)`` pairs
    so the spec stays hashable and fingerprintable.
    """

    name: str
    kind: str = "sweep"
    benchmark: str = "d26_media"
    dims: str = "3d"
    config: Tuple[Tuple[str, Any], ...] = ()
    # sweep
    grid: Tuple[Tuple[str, Tuple], ...] = ()
    stages: Optional[Tuple[str, ...]] = None
    # sim
    scenarios: Tuple[str, ...] = ("bernoulli",)
    seeds: Tuple[int, ...] = (0,)
    injection_scales: Tuple[float, ...] = (0.5,)
    cycles: int = 4_000
    warmup: int = 400
    packet_length_flits: int = 4
    #: Replications per engine task: ``None``/``1`` = one task per seed,
    #: ``K > 1`` = seeds batched K at a time onto the vectorised lockstep
    #: engine. Results and store fingerprints are identical either way.
    batch: Optional[int] = None

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        """Validate ``data`` (collecting *all* problems) and build the spec.

        Raises:
            CampaignSpecError: listing every issue with its JSON path.
        """
        issues = validate_campaign(data)
        if issues:
            raise CampaignSpecError(issues)
        kwargs: Dict[str, Any] = {
            "name": data["name"],
            "kind": data.get("kind", "sweep"),
            "benchmark": data.get("benchmark", "d26_media"),
            "dims": data.get("dims", "3d"),
            "config": tuple(sorted(
                (str(k), _freeze(v))
                for k, v in dict(data.get("config") or {}).items()
            )),
        }
        grid = dict(data.get("grid") or {})
        kwargs["grid"] = tuple(
            (key, _freeze(grid[key])) for key in GRID_KEYS if key in grid
        )
        if data.get("stages") is not None:
            kwargs["stages"] = tuple(str(s) for s in data["stages"])
        if kwargs["kind"] == "sim":
            for key, cast in (
                ("scenarios", str), ("seeds", int), ("injection_scales", float),
            ):
                if data.get(key) is not None:
                    kwargs[key] = tuple(cast(v) for v in data[key])
            for key in ("cycles", "warmup", "packet_length_flits", "batch"):
                if data.get(key) is not None:
                    kwargs[key] = int(data[key])
        return cls(**kwargs)

    def to_dict(self) -> Dict[str, Any]:
        """The round-trippable plain-dict form (JSON-serialisable)."""
        out: Dict[str, Any] = {
            "name": self.name, "kind": self.kind,
            "benchmark": self.benchmark, "dims": self.dims,
        }
        if self.config:
            out["config"] = {k: _thaw(v) for k, v in self.config}
        if self.kind == "sweep":
            if self.grid:
                out["grid"] = {k: _thaw(v) for k, v in self.grid}
            if self.stages is not None:
                out["stages"] = list(self.stages)
        else:
            out.update(
                scenarios=list(self.scenarios),
                seeds=list(self.seeds),
                injection_scales=list(self.injection_scales),
                cycles=self.cycles, warmup=self.warmup,
                packet_length_flits=self.packet_length_flits,
            )
            if self.batch is not None:
                out["batch"] = self.batch
        return out

    def base_config(self):
        """The resolved :class:`SynthesisConfig` (benchmark default +
        ``config`` overrides)."""
        from repro.experiments.common import default_config_for

        overrides = {k: _thaw(v) for k, v in self.config}
        base = default_config_for(
            self.benchmark,
            frequency_mhz=overrides.pop("frequency_mhz", 400.0),
            max_ill=overrides.pop("max_ill", 25),
            phase=overrides.pop("phase", "auto"),
            floorplanner=overrides.pop("floorplanner", "custom"),
            switch_count_range=overrides.pop("switch_count_range", None),
        )
        return base.with_(**overrides) if overrides else base

    def parameter_grid(self):
        """The sweep's :class:`~repro.engine.grid.ParameterGrid`."""
        from repro.engine.grid import ParameterGrid

        return ParameterGrid(**{k: _thaw(v) for k, v in self.grid})

    @property
    def task_count(self) -> int:
        """How many engine tasks :func:`compile_campaign` will produce
        (excluding a sim campaign's store-backed synthesis prestep)."""
        if self.kind == "sweep":
            return self.parameter_grid().size
        per_point = len(self.seeds)
        if self.batch is not None and self.batch > 1:
            per_point = -(-len(self.seeds) // self.batch)  # ceil division
        return len(self.scenarios) * per_point * len(self.injection_scales)


def validate_campaign(data: Any) -> List[SpecIssue]:
    """Every problem in ``data``, each with its JSON path. Empty = valid.

    Unlike exception-per-problem validation this keeps going after the
    first issue: unknown keys, bad grid values, unresolvable stages and
    malformed scenario specs are all reported in one pass.
    """
    if not isinstance(data, Mapping):
        return [SpecIssue("$", f"campaign spec must be an object/dict, "
                               f"got {type(data).__name__}")]
    issues: List[SpecIssue] = []
    kind = data.get("kind", "sweep")
    _check_header(data, kind, issues)
    _check_config(data.get("config"), issues)
    if kind == "sweep" or kind not in KINDS:
        _check_grid(data.get("grid"), issues)
        _check_stages(data.get("stages"), issues)
    if kind == "sim" or kind not in KINDS:
        _check_sim(data, issues)
    return issues


def load_campaign_file(path: Union[str, Path]) -> CampaignSpec:
    """Load and validate a campaign spec file (JSON; YAML when PyYAML is
    installed — gated, never a hard dependency).

    Raises:
        CampaignError: unreadable/unparseable file.
        CampaignSpecError: parseable but invalid (all issues listed).
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise CampaignError(f"cannot read campaign spec {path}: {exc}")
    data = _parse_spec_text(text, path)
    if not isinstance(data, Mapping):
        raise CampaignSpecError([SpecIssue(
            "$", f"campaign spec must be an object/dict, "
                 f"got {type(data).__name__}"
        )])
    return CampaignSpec.from_dict(data)


def compile_campaign(
    spec: CampaignSpec,
    *,
    store=None,
    stage_cache_dir: Optional[str] = None,
) -> List[object]:
    """Expand a validated spec into its engine task list.

    Deterministic: same spec → same tasks in the same order, every time —
    the property the service's crash-safe resume rests on (a recompiled
    job's tasks hit the same content-addressed store entries).

    For a ``sim`` campaign the prerequisite synthesis runs *here* (store-
    backed when ``store`` is given), because the simulation tasks embed the
    synthesized topology by value. A resumed campaign re-derives it from
    the store, so the downstream task fingerprints are identical.
    """
    from repro.bench.registry import get_benchmark

    bench = get_benchmark(spec.benchmark)
    core_spec = (
        bench.core_spec_3d if spec.dims == "3d" else bench.core_spec_2d
    )
    config = spec.base_config()
    if spec.dims == "2d":
        config = config.with_(phase="phase1")

    if spec.kind == "sweep":
        from repro.engine.grid import build_tasks

        return list(build_tasks(
            core_spec, bench.comm_spec, spec.parameter_grid(), config,
            stage_cache_dir=stage_cache_dir,
        ))

    # kind == "sim": synthesize the best point, then fan out the traffic grid.
    from repro.engine.executor import run_tasks
    from repro.engine.tasks import SimulationTask, SynthesisTask
    from repro.noc.scenarios import make_scenario

    synthesis = SynthesisTask(
        key=("campaign-synthesis", spec.benchmark, spec.dims),
        core_spec=core_spec,
        comm_spec=bench.comm_spec,
        config=config,
        stage_cache_dir=stage_cache_dir,
    )
    outcome = run_tasks([synthesis], jobs=1, store=store)[0]
    if outcome.error is not None:
        raise CampaignError(
            f"campaign {spec.name!r}: prerequisite synthesis failed: "
            f"{outcome.error}"
        )
    try:
        point = outcome.result.best(config.objective)
    except ReproError as exc:
        raise CampaignError(
            f"campaign {spec.name!r}: no design point to simulate "
            f"(benchmark {spec.benchmark}, dims {spec.dims}): {exc}"
        )
    scenario_objs = [make_scenario(s) for s in spec.scenarios]
    if spec.batch is not None and spec.batch > 1:
        from repro.engine.tasks import BatchSimulationTask

        chunks = [
            spec.seeds[i:i + spec.batch]
            for i in range(0, len(spec.seeds), spec.batch)
        ]
        return [
            BatchSimulationTask(
                key=(scen.label(), scale, chunk),
                topology=point.topology,
                seeds=chunk,
                packet_length_flits=spec.packet_length_flits,
                cycles=spec.cycles,
                warmup=spec.warmup,
                injection_scale=scale,
                scenario=scen,
            )
            for scen in scenario_objs
            for scale in spec.injection_scales
            for chunk in chunks
        ]
    return [
        SimulationTask(
            key=(scen.label(), scale, seed),
            topology=point.topology,
            packet_length_flits=spec.packet_length_flits,
            seed=seed,
            cycles=spec.cycles,
            warmup=spec.warmup,
            injection_scale=scale,
            scenario=scen,
        )
        for scen in scenario_objs
        for scale in spec.injection_scales
        for seed in spec.seeds
    ]


# --------------------------------------------------------------------------
# validation internals — one focused checker per spec region, all of them
# appending to the shared issue list instead of raising.

def _check_header(data: Mapping, kind, issues: List[SpecIssue]) -> None:
    name = data.get("name")
    if name is None:
        issues.append(SpecIssue("name", "required"))
    elif not isinstance(name, str) or not name.strip():
        issues.append(SpecIssue("name", f"must be a non-empty string, "
                                        f"got {name!r}"))
    elif not all(c.isalnum() or c in "._-" for c in name) or len(name) > 64:
        issues.append(SpecIssue(
            "name", f"must be <= 64 chars of [A-Za-z0-9._-], got {name!r}"
        ))
    if kind not in KINDS:
        issues.append(SpecIssue(
            "kind", f"must be one of {KINDS}, got {kind!r}"
        ))
    dims = data.get("dims", "3d")
    if dims not in DIMS:
        issues.append(SpecIssue(
            "dims", f"must be one of {DIMS}, got {dims!r}"
        ))
    benchmark = data.get("benchmark", "d26_media")
    from repro.bench.registry import list_benchmarks

    if not isinstance(benchmark, str) or benchmark not in list_benchmarks():
        issues.append(SpecIssue(
            "benchmark",
            f"unknown benchmark {benchmark!r}; "
            f"available: {', '.join(list_benchmarks())}",
        ))
    allowed = set(COMMON_KEYS)
    if kind == "sweep" or kind not in KINDS:
        allowed.update(SWEEP_KEYS)
    if kind == "sim" or kind not in KINDS:
        allowed.update(SIM_KEYS)
    for key in data:
        if key not in allowed:
            hint = ""
            if key in SIM_KEYS:
                hint = " (only valid for kind 'sim')"
            elif key in SWEEP_KEYS:
                hint = " (only valid for kind 'sweep')"
            issues.append(SpecIssue(str(key), f"unknown key{hint}"))


def _check_config(config: Any, issues: List[SpecIssue]) -> None:
    if config is None:
        return
    if not isinstance(config, Mapping):
        issues.append(SpecIssue(
            "config", f"must be an object of SynthesisConfig overrides, "
                      f"got {type(config).__name__}"
        ))
        return
    from dataclasses import fields as dc_fields

    from repro.core.config import SynthesisConfig

    known = {f.name for f in dc_fields(SynthesisConfig)}
    base = SynthesisConfig()
    clean: Dict[str, Any] = {}
    for key, value in config.items():
        if key not in known:
            issues.append(SpecIssue(
                f"config.{key}", "unknown SynthesisConfig field"
            ))
            continue
        value = _thaw(_freeze(value))
        # Apply one override at a time so a bad value is blamed on its own
        # key, not on whichever combination happened to trip first.
        try:
            base.with_(**{key: value})
        except (ReproError, TypeError, ValueError) as exc:
            issues.append(SpecIssue(f"config.{key}", str(exc)))
            continue
        clean[key] = value
    if len(clean) > 1:
        # Cross-field constraints (e.g. floorplan_restarts without the
        # constrained floorplanner) only show up with all overrides applied.
        try:
            base.with_(**clean)
        except (ReproError, TypeError, ValueError) as exc:
            issues.append(SpecIssue("config", str(exc)))


def _check_grid(grid: Any, issues: List[SpecIssue]) -> None:
    if grid is None:
        return
    if not isinstance(grid, Mapping):
        issues.append(SpecIssue(
            "grid", f"must be an object of sweep dimensions, "
                    f"got {type(grid).__name__}"
        ))
        return
    for key in grid:
        if key not in GRID_KEYS:
            issues.append(SpecIssue(
                f"grid.{key}",
                f"unknown dimension; known: {', '.join(GRID_KEYS)}",
            ))
    for key, check in (
        ("frequencies_mhz", _positive_number),
        ("alphas", _unit_interval),
        ("link_widths_bits", _positive_int),
        ("switch_count_ranges", _switch_range),
    ):
        values = grid.get(key)
        if values is None:
            continue
        if not isinstance(values, Sequence) or isinstance(values, str):
            issues.append(SpecIssue(f"grid.{key}", "must be a list"))
            continue
        for i, value in enumerate(values):
            problem = check(value)
            if problem:
                issues.append(SpecIssue(f"grid.{key}[{i}]", problem))


def _check_stages(stages: Any, issues: List[SpecIssue]) -> None:
    if stages is None:
        return
    if not isinstance(stages, Sequence) or isinstance(stages, str):
        issues.append(SpecIssue("stages", "must be a list of stage names"))
        return
    from repro.core.pipeline import STAGE_REGISTRY

    for i, stage in enumerate(stages):
        if not isinstance(stage, str) or stage not in STAGE_REGISTRY:
            issues.append(SpecIssue(
                f"stages[{i}]",
                f"unknown stage {stage!r}; "
                f"known: {', '.join(sorted(STAGE_REGISTRY))}",
            ))


def _check_sim(data: Mapping, issues: List[SpecIssue]) -> None:
    from repro.noc.scenarios import make_scenario

    scenarios = data.get("scenarios")
    if scenarios is not None:
        if not isinstance(scenarios, Sequence) or isinstance(scenarios, str):
            issues.append(SpecIssue(
                "scenarios", "must be a list of scenario specs"
            ))
        else:
            for i, scen in enumerate(scenarios):
                try:
                    make_scenario(scen)
                except ReproError as exc:
                    issues.append(SpecIssue(f"scenarios[{i}]", str(exc)))
    for key, check in (
        ("seeds", _non_negative_int), ("injection_scales", _positive_number),
    ):
        values = data.get(key)
        if values is None:
            continue
        if not isinstance(values, Sequence) or isinstance(values, str):
            issues.append(SpecIssue(key, "must be a list"))
            continue
        if not values:
            issues.append(SpecIssue(key, "must not be empty"))
        for i, value in enumerate(values):
            problem = check(value)
            if problem:
                issues.append(SpecIssue(f"{key}[{i}]", problem))
    for key, check in (
        ("cycles", _positive_int), ("warmup", _non_negative_int),
        ("packet_length_flits", _positive_int), ("batch", _positive_int),
    ):
        value = data.get(key)
        if value is None:
            continue
        problem = check(value)
        if problem:
            issues.append(SpecIssue(key, problem))
    cycles = data.get("cycles", 4_000)
    warmup = data.get("warmup", 400)
    if (
        _positive_int(cycles) is None and _non_negative_int(warmup) is None
        and warmup >= cycles
    ):
        issues.append(SpecIssue(
            "warmup", f"must be < cycles ({cycles}), got {warmup}"
        ))


def _positive_number(value) -> Optional[str]:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return f"must be a number, got {value!r}"
    if value <= 0:
        return f"must be positive, got {value!r}"
    return None


def _unit_interval(value) -> Optional[str]:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return f"must be a number, got {value!r}"
    if not 0.0 <= value <= 1.0:
        return f"must be in [0, 1], got {value!r}"
    return None


def _positive_int(value) -> Optional[str]:
    if not isinstance(value, int) or isinstance(value, bool):
        return f"must be an integer, got {value!r}"
    if value <= 0:
        return f"must be positive, got {value!r}"
    return None


def _non_negative_int(value) -> Optional[str]:
    if not isinstance(value, int) or isinstance(value, bool):
        return f"must be an integer, got {value!r}"
    if value < 0:
        return f"must be >= 0, got {value!r}"
    return None


def _switch_range(value) -> Optional[str]:
    if (
        not isinstance(value, Sequence) or isinstance(value, str)
        or len(value) != 2
    ):
        return f"must be a [min, max] pair, got {value!r}"
    lo, hi = value
    if _positive_int(lo) or _positive_int(hi) or hi < lo:
        return f"must be a [min, max] pair with 1 <= min <= max, got {value!r}"
    return None


def _freeze(value):
    """Lists → tuples, recursively, so specs hash/pickle/fingerprint."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def _thaw(value):
    """Tuples of pairs/values back to JSON-friendly lists where sensible."""
    if isinstance(value, tuple):
        return [_thaw(v) for v in value]
    return value


def _parse_spec_text(text: str, path: Path):
    """JSON first; ``.yml``/``.yaml`` falls back to PyYAML when present."""
    if path.suffix.lower() in (".yml", ".yaml"):
        try:
            import yaml
        except ImportError:
            raise CampaignError(
                f"{path}: YAML spec but PyYAML is not installed — "
                "use JSON instead"
            )
        try:
            return yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise CampaignError(f"{path}: invalid YAML: {exc}")
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise CampaignError(f"{path}: invalid JSON: {exc}")
