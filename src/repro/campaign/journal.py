"""The write-ahead job journal: crash-safe memory of the campaign service.

Every externally-visible state change of the service — a job submitted,
queued, started, progressed, finished, failed, cancelled, a submission
rejected for backpressure, the service itself starting or draining — is
appended to one JSONL file *before* the change takes effect anywhere else
(write-ahead discipline). After any crash, however rude (``kill -9``
included), replaying the journal reconstructs exactly which jobs exist and
how far each had provably gotten; everything else is recomputable from the
content-addressed result store.

Record format — one JSON object per line::

    {"seq": 7, "event": "running", "job": "job-0003", ..., "crc": "9a1b2c3d"}

* ``crc`` is the CRC32 (hex) of the record's canonical JSON (sorted keys,
  compact separators) *without* the ``crc`` field. A record whose checksum
  does not match is treated as absent — corruption never silently alters
  job state.
* ``seq`` is a strictly increasing sequence number; replay rejects a
  journal whose sequence regresses (two writers interleaving) rather than
  guessing an order.
* **Torn tails are tolerated**: a process killed mid-append leaves at most
  one partial final line, which replay drops (with a note). Corruption
  anywhere *before* the tail raises :class:`~repro.errors.JournalError` —
  that is damage, not a crash signature.

Durability: appends for *job state transitions* (``submitted``/``queued``/
``running``/``done``/``failed``/``cancelled``/``rejected``) are fsync'd
before :meth:`JobJournal.append` returns, so an acknowledged transition
survives power loss. High-frequency ``progress`` ticks ride the page cache
(losing one costs re-running at most one already-stored batch — the store,
not the journal, is the payload of record).

Single-writer: the journal directory carries a
:class:`~repro.engine.locks.FileLock`; a second service process opening
the same journal for writing gets a structured :class:`JournalError`
instead of interleaved (sequence-broken) records. Readers never lock.

Compaction (:meth:`JobJournal.compact`) rewrites the file with terminal
jobs summarised, via the same tmp + ``os.replace`` idiom the result store
uses: the journal is never observable in a half-rotated state.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.engine.faults import maybe_fire
from repro.engine.locks import FileLock, asserts_lock, requires_lock
from repro.errors import JournalError, LockTimeoutError

#: Events that change a job's lifecycle state — these are fsync'd.
STATE_EVENTS = (
    "submitted", "queued", "running", "done", "failed", "cancelled",
    "rejected",
)
#: Best-effort events — informational, not fsync'd.
INFO_EVENTS = ("progress", "checkpoint", "service-start", "service-stop")

#: Job lifecycle states a replay can land on.
ACTIVE_STATES = ("queued", "running")
TERMINAL_STATES = ("done", "failed", "cancelled")


def _canonical(record: Dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _crc(record: Dict[str, Any]) -> str:
    body = {k: v for k, v in record.items() if k != "crc"}
    return format(zlib.crc32(_canonical(body).encode("utf-8")), "08x")


@dataclass
class JobRecord:
    """Replayed state of one job."""

    job_id: str
    state: str = "queued"
    spec: Optional[Dict[str, Any]] = None
    #: Tasks completed so far (from the latest ``progress`` record).
    done_tasks: int = 0
    total_tasks: int = 0
    #: SHA-256 of the pickled, ordered result payload (``done`` records).
    digest: Optional[str] = None
    error: Optional[str] = None
    result_path: Optional[str] = None

    @property
    def active(self) -> bool:
        return self.state in ACTIVE_STATES


@dataclass
class JournalState:
    """Everything a replay reconstructs from one journal file."""

    jobs: Dict[str, JobRecord] = field(default_factory=dict)
    last_seq: int = -1
    records: int = 0
    #: ``True`` when the final line was torn (partial write at crash time).
    torn_tail: bool = False
    #: Submissions rejected for backpressure (job ids are never assigned).
    rejected: int = 0

    @property
    def incomplete(self) -> List[JobRecord]:
        """Jobs a resuming service must finish, in submission order."""
        return [job for job in self.jobs.values() if job.active]

    @property
    def next_job_number(self) -> int:
        numbers = [0]
        for job_id in self.jobs:
            tail = job_id.rsplit("-", 1)[-1]
            if tail.isdigit():
                numbers.append(int(tail))
        return max(numbers) + 1


class JobJournal:
    """Append-only, checksummed, single-writer job journal.

    Args:
        path: The JSONL file (parents created on demand).
        writer: Take the exclusive writer lock. Readers (status commands)
            pass ``False`` and never block a running service.

    Raises:
        JournalError: as a writer, when another process already holds the
            journal's writer lock.
    """

    def __init__(self, path: Union[str, Path], *, writer: bool = True) -> None:
        self.path = Path(path)
        self._lock: Optional[FileLock] = None
        self._seq = -1
        if writer:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            lock = FileLock(self._lock_path())
            try:
                acquired = lock.acquire(timeout_s=0)
            except LockTimeoutError as exc:
                raise JournalError(f"cannot lock journal {self.path}: {exc}")
            if not acquired:
                raise JournalError(
                    f"journal {self.path} is already owned by another "
                    "process (single-writer; is a service running here?)"
                )
            self._lock = lock
            self._seq = self.replay().last_seq

    def _lock_path(self) -> Path:
        return self.path.with_suffix(self.path.suffix + ".lock")

    @property
    def is_writer(self) -> bool:
        return self._lock is not None

    def close(self) -> None:
        if self._lock is not None:
            self._lock.release()
            self._lock = None

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- writing ----------------------------------------------------------

    @asserts_lock("journal")
    def _require_writer(self, action: str) -> None:
        """Raise unless this instance holds the journal's writer lock.

        The lock-discipline checker treats a call to this guard as proof
        that the lock is held for the rest of the function — which is
        exactly its runtime behaviour: past this line, either ``_lock`` is
        a held :class:`FileLock` or the caller has raised.
        """
        if not self.is_writer:
            raise JournalError(
                f"journal {self.path} opened read-only; cannot {action}"
            )

    def append(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Write one record; fsync'd when ``event`` is a state transition.

        The deterministic chaos harness's ``journal-write`` fault site
        fires *before* the bytes land, so an injected crash here proves the
        write-ahead property: either the record is fully on disk or the
        transition never happened — no third possibility.
        """
        self._require_writer("append")
        if event not in STATE_EVENTS and event not in INFO_EVENTS:
            raise JournalError(f"unknown journal event {event!r}")
        maybe_fire("journal-write")
        self._seq += 1
        record = {"seq": self._seq, "event": event, **fields}
        record["crc"] = _crc(record)
        self._write_record(record, fsync=event in STATE_EVENTS)
        return record

    @requires_lock("journal")
    def _write_record(self, record: Dict[str, Any], *, fsync: bool) -> None:
        """Land one already-checksummed record at the end of the file."""
        line = _canonical(record) + "\n"
        fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, line.encode("utf-8"))
            if fsync:
                os.fsync(fd)
        finally:
            os.close(fd)

    def compact(self, state: Optional[JournalState] = None) -> int:
        """Atomically rewrite the journal with one summary record per job.

        Long-running services accrete ``progress`` lines without bound;
        compaction replaces history with the replay's fixed point — the
        resulting journal replays to the *same* :class:`JournalState`.
        Returns the number of records dropped.
        """
        self._require_writer("compact")
        if state is None:
            state = self.replay()
        return self._compact_locked(state)

    @requires_lock("journal")
    def _compact_locked(self, state: JournalState) -> int:
        tmp = self.path.with_suffix(".tmp")
        seq = -1
        with open(tmp, "w") as handle:
            for job in state.jobs.values():
                seq += 1
                record: Dict[str, Any] = {
                    "seq": seq, "event": job.state, "job": job.job_id,
                }
                if job.spec is not None:
                    record["spec"] = job.spec
                if job.total_tasks:
                    record["total_tasks"] = job.total_tasks
                    record["done_tasks"] = job.done_tasks
                if job.digest is not None:
                    record["digest"] = job.digest
                if job.result_path is not None:
                    record["result_path"] = job.result_path
                if job.error is not None:
                    record["error"] = job.error
                record["crc"] = _crc(record)
                handle.write(_canonical(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        dropped = state.records - (seq + 1)
        self._seq = seq
        return max(0, dropped)

    # -- reading ----------------------------------------------------------

    def replay(self) -> JournalState:
        """Reconstruct job state from the file (tolerating a torn tail).

        Raises:
            JournalError: checksum/parse damage anywhere before the final
                line, or a regressing sequence number (interleaved
                writers) — both are corruption, not crash signatures.
        """
        state = JournalState()
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return state
        lines = raw.split(b"\n")
        if lines and lines[-1] == b"":
            lines.pop()
        for i, line in enumerate(lines):
            record = self._parse(line)
            if record is None:
                if i == len(lines) - 1:
                    state.torn_tail = True
                    break
                raise JournalError(
                    f"journal {self.path} is corrupt at line {i + 1} "
                    "(bad JSON or checksum before the tail)"
                )
            seq = record.get("seq", -1)
            if not isinstance(seq, int) or seq <= state.last_seq:
                raise JournalError(
                    f"journal {self.path} line {i + 1}: sequence {seq!r} "
                    f"does not advance past {state.last_seq} "
                    "(interleaved writers?)"
                )
            state.last_seq = seq
            state.records += 1
            self._apply(state, record)
        return state

    def _parse(self, line: bytes) -> Optional[Dict[str, Any]]:
        try:
            record = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if not isinstance(record, dict) or "crc" not in record:
            return None
        if record["crc"] != _crc(record):
            return None
        return record

    @staticmethod
    def _apply(state: JournalState, record: Dict[str, Any]) -> None:
        event = record.get("event")
        if event == "rejected":
            state.rejected += 1
            return
        job_id = record.get("job")
        if not job_id:
            return  # service-start / service-stop / checkpoint markers
        if event == "submitted" or event == "queued":
            job = state.jobs.get(job_id)
            if job is None:
                job = JobRecord(job_id=job_id)
                state.jobs[job_id] = job
            job.state = "queued"
            if record.get("spec") is not None:
                job.spec = record["spec"]
            if record.get("total_tasks"):
                job.total_tasks = int(record["total_tasks"])
            return
        job = state.jobs.get(job_id)
        if job is None:
            # A transition for a job we never saw submitted: only possible
            # after compaction pruned it; synthesize the shell.
            job = JobRecord(job_id=job_id)
            state.jobs[job_id] = job
        if event == "running":
            job.state = "running"
            if record.get("total_tasks"):
                job.total_tasks = int(record["total_tasks"])
        elif event == "progress":
            job.done_tasks = int(record.get("done_tasks", job.done_tasks))
            if record.get("total_tasks"):
                job.total_tasks = int(record["total_tasks"])
        elif event in TERMINAL_STATES:
            job.state = event
            job.digest = record.get("digest", job.digest)
            job.error = record.get("error", job.error)
            job.result_path = record.get("result_path", job.result_path)
            if record.get("total_tasks"):
                job.total_tasks = int(record["total_tasks"])
            if record.get("done_tasks") is not None:
                job.done_tasks = int(record["done_tasks"])
        if record.get("spec") is not None:
            job.spec = record["spec"]

    def iter_records(self) -> Iterator[Dict[str, Any]]:
        """Valid records, in order (diagnostics; replay() for state)."""
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return
        for line in raw.split(b"\n"):
            if not line:
                continue
            record = self._parse(line)
            if record is not None:
                yield record
