"""The SunFloor 3D synthesis driver — the full flow of Fig. 3.

For every candidate switch count the driver:

1. obtains a core-to-switch connectivity candidate (Phase 1 / Phase 2),
2. materialises the topology skeleton and applies the pruning rules,
3. computes deadlock-free, constraint-respecting paths (Sec. VI),
4. optimises switch positions with the Sec. VII LP,
5. inserts switches and TSV macros into the input floorplan (custom routine
   or the constrained standard-floorplanner baseline),
6. recomputes wire lengths from the final placement, re-checks every flow's
   latency constraint, and evaluates power / latency / area,
7. saves the design point if all constraints hold.

Phase 1's Unmet set is retried over the θ sweep with SPG-based partitions;
in "auto" mode Phase 2 is used as a fallback when Phase 1 produces no valid
point at all (the paper's two-phase method of Sec. IV).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.core.assignment import Assignment, violates_ill_precheck
from repro.core.config import SynthesisConfig
from repro.core.design_point import DesignPoint, SynthesisResult
from repro.core.partition_graphs import build_pg
from repro.core.paths import build_topology_skeleton, compute_paths
from repro.core.phase1 import (
    phase1_candidate,
    phase1_scaled_candidate,
    switch_count_bounds,
)
from repro.core.phase2 import phase2_candidates
from repro.core.placement import optimise_switch_positions
from repro.errors import PathComputationError, SpecError
from repro.floorplan.constrained import constrained_insert
from repro.floorplan.geometry import Rect
from repro.floorplan.inserter import NewComponent, insert_components
from repro.floorplan.placement import ChipFloorplan, PlacedComponent
from repro.floorplan.tsv_macros import VerticalLinkSpec, place_tsv_macros
from repro.graphs.comm_graph import CommGraph, build_comm_graph
from repro.models.library import NocLibrary, default_library
from repro.noc.metrics import compute_metrics, link_lengths_from_positions
from repro.noc.topology import Topology
from repro.spec.comm_spec import CommSpec
from repro.spec.core_spec import CoreSpec
from repro.spec.validate import validate_specs


class SunFloor3D:
    """Application-specific 3-D NoC topology synthesis (the paper's tool)."""

    def __init__(
        self,
        core_spec: CoreSpec,
        comm_spec: CommSpec,
        library: Optional[NocLibrary] = None,
        config: Optional[SynthesisConfig] = None,
    ) -> None:
        validate_specs(core_spec, comm_spec)
        self.core_spec = core_spec
        self.comm_spec = comm_spec
        self.library = library if library is not None else default_library()
        self.config = config if config is not None else SynthesisConfig()
        self.graph: CommGraph = build_comm_graph(core_spec, comm_spec)
        self._core_centers: Dict[int, Tuple[float, float]] = {
            i: core.center for i, core in enumerate(core_spec)
        }
        self._die_bounds = self._compute_die_bounds()

    # -- public API ----------------------------------------------------------

    def synthesize(self) -> SynthesisResult:
        """Run the configured flow and return all valid design points."""
        result = SynthesisResult()
        if self.config.phase in ("auto", "phase1"):
            self._run_phase1(result)
        if self.config.phase == "phase2" or (
            self.config.phase == "auto" and result.is_empty
        ):
            self._run_phase2(result)
        return result

    def evaluate_assignment(self, assignment: Assignment) -> Optional[DesignPoint]:
        """Evaluate a single connectivity candidate (None if unmet)."""
        return self._try_point(assignment)

    # -- phase drivers ---------------------------------------------------------

    def _run_phase1(self, result: SynthesisResult) -> None:
        lo, hi = switch_count_bounds(self.graph, self.config)
        unmet: List[int] = []
        for count in range(lo, hi + 1):
            assignment = phase1_candidate(self.graph, self.config, count)
            point = self._try_point(assignment)
            if point is not None:
                result.points.append(point)
            else:
                unmet.append(count)

        for theta in self.config.theta_values():
            if not unmet:
                break
            still_unmet: List[int] = []
            for count in unmet:
                assignment = phase1_scaled_candidate(
                    self.graph, self.config, count, theta
                )
                point = self._try_point(assignment)
                if point is not None:
                    result.points.append(point)
                else:
                    still_unmet.append(count)
            unmet = still_unmet
        result.unmet_switch_counts = sorted(set(result.unmet_switch_counts) | set(unmet))

    def _run_phase2(self, result: SynthesisResult) -> None:
        met_counts = set()
        for assignment in phase2_candidates(self.graph, self.config, self.library):
            point = self._try_point(assignment)
            if point is not None:
                result.points.append(point)
                met_counts.add(assignment.num_switches)
            else:
                if assignment.num_switches not in met_counts:
                    result.unmet_switch_counts = sorted(
                        set(result.unmet_switch_counts) | {assignment.num_switches}
                    )

    # -- single-point evaluation ------------------------------------------------

    def _try_point(self, assignment: Assignment) -> Optional[DesignPoint]:
        if violates_ill_precheck(assignment, self.graph, self.config.max_ill):
            return None
        try:
            topology = build_topology_skeleton(
                assignment, self.graph, self.library, self.config,
                self._core_centers,
            )
            compute_paths(
                topology, self.graph, self.library, self.config,
                self._core_centers,
            )
        except PathComputationError:
            return None

        die_w, die_h = self._die_bounds
        optimise_switch_positions(topology, self._core_centers, die_w, die_h)

        floorplan = self._insert_noc(topology)
        final_centers = self._final_core_centers(floorplan)
        self._update_switch_positions(topology, floorplan)
        link_lengths_from_positions(topology, final_centers)

        if not self._latency_constraints_met(topology):
            return None

        metrics = compute_metrics(topology, final_centers, self.library)
        return DesignPoint(
            assignment=assignment,
            topology=topology,
            floorplan=floorplan,
            metrics=metrics,
            config=self.config,
        )

    # -- floorplanning ------------------------------------------------------------

    def _insert_noc(self, topology: Topology) -> ChipFloorplan:
        """Insert switches (and TSV macros) into the input core floorplan."""
        floorplan = ChipFloorplan()
        num_layers = max(self.core_spec.num_layers, 1)
        for layer in range(num_layers):
            existing = [
                PlacedComponent(
                    name=core.name,
                    kind="core",
                    rect=Rect(core.x, core.y, core.width, core.height),
                    layer=layer,
                )
                for core in self.core_spec.cores_in_layer(layer)
            ]
            new_components = []
            for sw in topology.switches:
                if sw.layer != layer:
                    continue
                side = math.sqrt(
                    self.library.switch.area_mm2(
                        max(sw.size, self.library.switch.min_ports)
                    )
                )
                new_components.append(
                    NewComponent(
                        name=f"sw{sw.id}",
                        kind="switch",
                        width=side,
                        height=side,
                        ideal_center=(sw.x, sw.y),
                    )
                )
            if new_components:
                if self.config.floorplanner == "custom":
                    placed = insert_components(
                        existing,
                        new_components,
                        search_radius=self.config.search_radius_mm,
                        grid_step=self.config.grid_step_mm,
                    )
                else:
                    placed = constrained_insert(
                        existing, new_components, seed=self.config.seed
                    )
            else:
                placed = existing
            for comp in placed:
                floorplan.add(comp)

        vertical_specs = self._vertical_link_specs(topology, floorplan)
        if vertical_specs:
            floorplan = place_tsv_macros(
                floorplan,
                vertical_specs,
                self.library.tsv,
                self.config.link_width_bits,
                search_radius=self.config.search_radius_mm,
                grid_step=self.config.grid_step_mm,
            )
        return floorplan

    def _vertical_link_specs(
        self, topology: Topology, floorplan: ChipFloorplan
    ) -> List[VerticalLinkSpec]:
        """Multi-layer links needing explicit intermediate TSV macros."""
        specs: List[VerticalLinkSpec] = []
        for link in topology.links:
            if link.layers_crossed < 2:
                continue
            top_ep = link.src if link.src_layer > link.dst_layer else link.dst
            kind, index = top_ep
            name = f"sw{index}" if kind == "switch" else self.core_spec[index].name
            center = (
                floorplan.center_of(name)
                if floorplan.has(name)
                else (0.0, 0.0)
            )
            specs.append(
                VerticalLinkSpec(
                    name=f"link{link.id}",
                    lo_layer=link.lo_layer,
                    hi_layer=link.hi_layer,
                    top_center=center,
                )
            )
        return specs

    def _final_core_centers(
        self, floorplan: ChipFloorplan
    ) -> Dict[int, Tuple[float, float]]:
        centers: Dict[int, Tuple[float, float]] = {}
        for i, core in enumerate(self.core_spec):
            centers[i] = floorplan.center_of(core.name)
        return centers

    @staticmethod
    def _update_switch_positions(
        topology: Topology, floorplan: ChipFloorplan
    ) -> None:
        for sw in topology.switches:
            name = f"sw{sw.id}"
            if floorplan.has(name):
                sw.x, sw.y = floorplan.center_of(name)

    # -- checks and helpers ----------------------------------------------------------

    def _latency_constraints_met(self, topology: Topology) -> bool:
        from repro.noc.metrics import flow_latency_cycles

        for (src, dst), flow in self.graph.edges.items():
            latency = flow_latency_cycles(topology, (src, dst), self.library)
            if latency > flow.latency + 1e-9:
                return False
        return True

    def _compute_die_bounds(self) -> Tuple[float, float]:
        width = max(c.x + c.width for c in self.core_spec)
        height = max(c.y + c.height for c in self.core_spec)
        if width <= 0 or height <= 0:
            raise SpecError("core positions must span a positive die area")
        return width, height


def synthesize(
    core_spec: CoreSpec,
    comm_spec: CommSpec,
    library: Optional[NocLibrary] = None,
    config: Optional[SynthesisConfig] = None,
) -> SynthesisResult:
    """Convenience wrapper: construct the tool and run it."""
    return SunFloor3D(core_spec, comm_spec, library, config).synthesize()
