"""The SunFloor 3D synthesis driver — the full flow of Fig. 3.

For every candidate switch count the flow:

1. obtains a core-to-switch connectivity candidate (Phase 1 / Phase 2),
2. materialises the topology skeleton and applies the pruning rules,
3. computes deadlock-free, constraint-respecting paths (Sec. VI),
4. optimises switch positions with the Sec. VII LP,
5. inserts switches and TSV macros into the input floorplan (custom routine
   or the constrained standard-floorplanner baseline),
6. recomputes wire lengths from the final placement, re-checks every flow's
   latency constraint, and evaluates power / latency / area,
7. saves the design point if all constraints hold.

Since the staged-pipeline refactor the flow itself lives in
:mod:`repro.core.pipeline` — explicit :class:`~repro.core.pipeline.Stage`
objects over an immutable :class:`~repro.core.pipeline.FlowContext`, with
the θ-retry of Algorithm 1 expressed as a requeue policy and candidate
evaluation optionally fanned across the :mod:`repro.engine` process pool.
This module keeps the historical entry points (:class:`SunFloor3D`,
:func:`synthesize`) as thin wrappers over that pipeline; see
``docs/pipeline.md`` for the stage model.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.assignment import Assignment
from repro.core.config import SynthesisConfig
from repro.core.design_point import DesignPoint, SynthesisResult
from repro.core.pipeline import (
    FlowContext,
    Pipeline,
    ProgressFn,
    StageTimings,
    build_pipeline,
    run_synthesis,
)
from repro.graphs.comm_graph import CommGraph
from repro.models.library import NocLibrary
from repro.spec.comm_spec import CommSpec
from repro.spec.core_spec import CoreSpec


class SunFloor3D:
    """Application-specific 3-D NoC topology synthesis (the paper's tool).

    A convenience wrapper binding one (core spec, comm spec, library,
    config) context to the staged pipeline. Construction validates the
    specs; :meth:`synthesize` runs the flow.
    """

    def __init__(
        self,
        core_spec: CoreSpec,
        comm_spec: CommSpec,
        library: Optional[NocLibrary] = None,
        config: Optional[SynthesisConfig] = None,
        pipeline: Optional[Pipeline] = None,
    ) -> None:
        self.context = FlowContext.build(core_spec, comm_spec, library, config)
        self.pipeline = pipeline if pipeline is not None else build_pipeline()
        #: Stage timings of the most recent :meth:`synthesize` call.
        self.last_stage_timings: Optional[StageTimings] = None
        #: Candidates lost to supervision (worker crash/deadline) in the
        #: most recent :meth:`synthesize` call, as ``(key, message)`` pairs.
        self.last_quarantined: list = []

    # -- context attributes (kept for API compatibility) -----------------------

    @property
    def core_spec(self) -> CoreSpec:
        return self.context.core_spec

    @property
    def comm_spec(self) -> CommSpec:
        return self.context.comm_spec

    @property
    def library(self) -> NocLibrary:
        return self.context.library

    @property
    def config(self) -> SynthesisConfig:
        return self.context.config

    @property
    def graph(self) -> CommGraph:
        return self.context.graph

    @property
    def _core_centers(self) -> Dict[int, Tuple[float, float]]:
        return self.context.core_centers

    @property
    def _die_bounds(self) -> Tuple[float, float]:
        return self.context.die_bounds

    # -- public API ----------------------------------------------------------

    def synthesize(
        self,
        jobs: Optional[int] = 1,
        progress: Optional[ProgressFn] = None,
        timings: Optional[StageTimings] = None,
        retry=None,
        task_timeout_s: Optional[float] = None,
        on_error: str = "raise",
        stage_cache=None,
    ) -> SynthesisResult:
        """Run the configured flow and return all valid design points.

        ``jobs=1`` (default) evaluates candidates serially; ``jobs=N``
        fans independent candidates across the engine process pool with
        bit-identical results. Per-stage wall-clock totals land in
        ``timings`` (or ``self.last_stage_timings``).

        ``retry``/``task_timeout_s``/``on_error`` supervise the parallel
        candidate fan-out (see :func:`repro.engine.run_tasks`); candidates
        lost to supervision under ``on_error="quarantine"`` are recorded
        in ``self.last_quarantined`` as ``(key, message)`` pairs.

        ``stage_cache`` (a :class:`repro.engine.stagecache.StageCache`)
        memoises individual stage outputs across runs, serving unchanged
        stages from disk with bit-identical results.
        """
        timings = timings if timings is not None else StageTimings()
        self.last_stage_timings = timings
        self.last_quarantined = []
        return run_synthesis(
            self.context,
            pipeline=self.pipeline,
            jobs=jobs,
            progress=progress,
            timings=timings,
            retry=retry,
            task_timeout_s=task_timeout_s,
            on_error=on_error,
            quarantine_log=self.last_quarantined,
            stage_cache=stage_cache,
        )

    def evaluate_assignment(self, assignment: Assignment) -> Optional[DesignPoint]:
        """Evaluate a single connectivity candidate (None if unmet)."""
        return self.pipeline.evaluate(self.context, assignment).point

    # Legacy internal name, kept because external callers grew on it.
    def _try_point(self, assignment: Assignment) -> Optional[DesignPoint]:
        return self.evaluate_assignment(assignment)


def synthesize(
    core_spec: CoreSpec,
    comm_spec: CommSpec,
    library: Optional[NocLibrary] = None,
    config: Optional[SynthesisConfig] = None,
    *,
    jobs: Optional[int] = 1,
    progress: Optional[ProgressFn] = None,
    pipeline: Optional[Pipeline] = None,
    timings: Optional[StageTimings] = None,
    retry=None,
    task_timeout_s: Optional[float] = None,
    on_error: str = "raise",
    stage_cache=None,
) -> SynthesisResult:
    """Convenience wrapper: build the context and run the staged pipeline."""
    return run_synthesis(
        FlowContext.build(core_spec, comm_spec, library, config),
        pipeline=pipeline,
        jobs=jobs,
        progress=progress,
        timings=timings,
        retry=retry,
        task_timeout_s=task_timeout_s,
        on_error=on_error,
        stage_cache=stage_cache,
    )
