"""Path computation for inter-switch flows (Sec. VI, Algorithm 3).

Given a core-to-switch assignment (an :class:`~repro.core.assignment.Assignment`
already materialised into a :class:`~repro.noc.topology.Topology` skeleton),
this module finds a route for every traffic flow:

* flows are processed in decreasing bandwidth order;
* the route of a flow is a min-cost path over the switch graph, where the
  cost of traversing (u, v) is the marginal power of carrying the flow —
  reusing an existing link with spare capacity is cheap; opening a new link
  pays its static power and port growth, and is subject to the hard (INF)
  and soft (SOFT_INF) thresholds of Algorithm 3 on inter-layer link counts
  and switch sizes;
* latency constraints are enforced on the zero-load estimate; if the
  min-power path violates a flow's constraint the search retries with a
  min-hop objective;
* deadlock freedom is maintained with a channel-dependency graph per
  message class; a route that would close a cycle is re-searched with the
  offending switch-graph edges banned;
* when port saturation makes a flow unroutable, core-less *indirect
  switches* are inserted (Sec. VI: "these indirect switches help in reducing
  the number of ports needed in the direct switches").

This is the hottest loop of the whole flow (one Dijkstra per flow per
candidate switch count per architectural point), so the inner search runs
on a :class:`_RoutingContext` that hoists every flow-invariant term out of
the edge relaxation: switch-pair geometry, wire/TSV energies and static
power are precomputed per ordered switch pair, the library model lookups
that depend only on a switch size are memoised, and the hard INF threshold
tests of Algorithm 3 run *before* any energy arithmetic so saturated edges
exit early. The context produces bit-identical costs to the plain
:func:`_edge_cost` evaluator (kept as the reference, and cross-checked by
the regression tests against the frozen copy in
:mod:`repro.engine.reference`).

Raises :class:`~repro.errors.PathComputationError` when any flow cannot be
routed — the caller (Algorithm 1 / 2 driver) treats the design point as
unmet.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.assignment import Assignment
from repro.core.config import SynthesisConfig
from repro.errors import PathComputationError
from repro.graphs.comm_graph import CommGraph
from repro.models.library import NocLibrary
from repro.noc.deadlock import ChannelDependencyGraph
from repro.noc.topology import Topology, core_ep, switch_ep
from repro.units import flits_per_second

INF = float("inf")


def build_topology_skeleton(
    assignment: Assignment,
    graph: CommGraph,
    library: NocLibrary,
    config: SynthesisConfig,
    core_centers: Mapping[int, Tuple[float, float]],
) -> Topology:
    """Materialise an assignment: switches, core attachments, no routes yet.

    Raises PathComputationError if a switch's core attachments already exceed
    the maximum switch size for the target frequency (pruning rule 1) or if
    the core links alone violate the max_ill constraint (pruning rule 3).
    """
    topo = Topology(
        frequency_mhz=config.frequency_mhz, width_bits=config.link_width_bits
    )
    for layer in assignment.switch_layers:
        topo.add_switch(layer)
    for s, block in enumerate(assignment.blocks):
        for core in block:
            topo.attach_core(core, s, graph.layers[core])

    # Estimated switch positions: centroid of the attached cores (used by
    # the path cost model; refined later by the placement LP).
    for s, block in enumerate(assignment.blocks):
        if block:
            xs = [core_centers[c][0] for c in block]
            ys = [core_centers[c][1] for c in block]
            topo.switches[s].x = sum(xs) / len(xs)
            topo.switches[s].y = sum(ys) / len(ys)

    max_size = library.switch.max_switch_size(config.frequency_mhz)
    for sw in topo.switches:
        if sw.size > max_size:
            raise PathComputationError(
                f"switch {sw.id} needs {sw.size} ports for its cores alone, "
                f"above the size limit {max_size} at {config.frequency_mhz} MHz"
            )
    for boundary, count in topo.ill.items():
        if count > config.max_ill:
            raise PathComputationError(
                f"core links alone use {count} inter-layer links across "
                f"boundary {boundary}, above max_ill={config.max_ill}"
            )
    return topo


@dataclass
class _CostModel:
    """Precomputed constants for Algorithm 3 cost evaluation."""

    max_switch_size: int
    soft_switch_size: int
    soft_max_ill: int
    soft_inf: float
    capacity: float


class _RoutingContext:
    """Flow-invariant state for Algorithm 3's inner loop.

    Everything that does not change while routing one design point is
    precomputed here: the pair geometry never changes (switch positions are
    only refined by the placement LP *after* routing), and model lookups
    keyed on a switch size are pure functions of that size. Mutable state —
    port counts, inter-layer link counts, link loads — is read live from the
    topology on every evaluation, so committed routes are always visible.
    """

    __slots__ = (
        "topology", "library", "config", "model",
        "_pair_cache", "_switch_eps", "_energy_by_size", "_clock_delta",
        "_min_ports", "_reuse_cap", "_max_ill", "_soft_max_ill",
        "_max_size", "_soft_size", "_soft_on", "_soft_inf",
    )

    def __init__(
        self,
        topology: Topology,
        library: NocLibrary,
        config: SynthesisConfig,
        model: _CostModel,
    ) -> None:
        self.topology = topology
        self.library = library
        self.config = config
        self.model = model
        #: (u, v) -> (move_energy_pj, open_static_mw, allowed, boundary_keys)
        self._pair_cache: Dict[
            Tuple[int, int], Tuple[float, float, bool, Tuple[Tuple[int, int], ...]]
        ] = {}
        self._switch_eps: List[Tuple[str, int]] = [
            switch_ep(s.id) for s in topology.switches
        ]
        self._energy_by_size: Dict[int, float] = {}
        self._clock_delta: Dict[int, float] = {}
        self._min_ports = library.switch.min_ports
        self._reuse_cap = model.capacity + 1e-9
        self._max_ill = config.max_ill
        self._soft_max_ill = model.soft_max_ill
        self._max_size = model.max_switch_size
        self._soft_size = model.soft_switch_size
        self._soft_on = config.use_soft_thresholds
        self._soft_inf = model.soft_inf

    def switch_added(self) -> None:
        """Register switches appended to the topology (indirect insertion)."""
        for s in self.topology.switches[len(self._switch_eps):]:
            self._switch_eps.append(switch_ep(s.id))

    # -- memoised model lookups -------------------------------------------

    def _traverse_energy(self, size: int) -> float:
        """``switch.energy_per_flit_pj(max(size, min_ports))``, memoised."""
        e = self._energy_by_size.get(size)
        if e is None:
            e = self.library.switch.energy_per_flit_pj(
                max(size, self._min_ports)
            )
            self._energy_by_size[size] = e
        return e

    def _port_growth_mw(self, size: int) -> float:
        """Marginal clock power of one extra port at ``size``, memoised."""
        d = self._clock_delta.get(size)
        if d is None:
            freq = self.config.frequency_mhz
            sw = self.library.switch
            d = sw.clock_power_mw(size + 1, freq) - sw.clock_power_mw(size, freq)
            self._clock_delta[size] = d
        return d

    def _pair(
        self, u: int, v: int
    ) -> Tuple[float, float, bool, Tuple[Tuple[int, int], ...]]:
        pair = self._pair_cache.get((u, v))
        if pair is None:
            su = self.topology.switches[u]
            sv = self.topology.switches[v]
            planar = abs(su.x - sv.x) + abs(su.y - sv.y)
            vlayers = abs(su.layer - sv.layer)
            move_energy = self.library.link.energy_per_flit_pj(
                planar
            ) + self.library.tsv.energy_per_flit_pj(vlayers)
            open_static = (
                self.library.link.static_power_mw(planar)
                + vlayers * self.library.tsv.static_mw_per_link
            )
            allowed = not (
                self.config.adjacent_layer_links_only and vlayers >= 2
            )
            lo = min(su.layer, sv.layer)
            hi = max(su.layer, sv.layer)
            boundaries = tuple((b, b + 1) for b in range(lo, hi))
            pair = (move_energy, open_static, allowed, boundaries)
            self._pair_cache[(u, v)] = pair
        return pair

    # -- Algorithm 3 cost -------------------------------------------------

    def edge_cost(
        self, u: int, v: int, bandwidth: float, rate_mflits: float
    ) -> Tuple[float, bool]:
        """Cost of routing the flow across switches (u -> v).

        Bit-identical to :func:`_edge_cost`, with the hard-threshold exits
        taken before any energy arithmetic.
        """
        topo = self.topology
        pair = self._pair_cache.get((u, v))
        if pair is None:
            pair = self._pair(u, v)
        move_energy, open_static, allowed, boundaries = pair

        sv = topo.switches[v]
        sv_in = sv.in_ports
        sv_size = sv_in if sv_in >= sv.out_ports else sv.out_ports
        sv_energy = self._energy_by_size.get(sv_size)
        if sv_energy is None:
            sv_energy = self._traverse_energy(sv_size)

        # Reuse an existing link when capacity allows: no new resources.
        ids = topo._link_index.get((self._switch_eps[u], self._switch_eps[v]))
        if ids:
            links = topo.links
            cap = self._reuse_cap
            for lid in ids:
                if links[lid].load_mbps + bandwidth <= cap:
                    return rate_mflits * (move_energy + sv_energy) * 1e-3, False

        # A new physical link is needed: Algorithm 3 constraint checks,
        # cheapest (and most selective) first.
        if not allowed:
            return INF, True

        soft = False
        ill = topo.ill
        for key in boundaries:
            count = ill.get(key, 0)
            if count >= self._max_ill:
                return INF, True
            if count >= self._soft_max_ill:
                soft = True

        su = topo.switches[u]
        su_out = su.out_ports
        if su_out + 1 > self._max_size:
            return INF, True
        if sv_in + 1 > self._max_size:
            return INF, True
        if su_out + 1 > self._soft_size or sv_in + 1 > self._soft_size:
            soft = True

        su_size = su.in_ports if su.in_ports >= su_out else su_out
        min_p = self._min_ports
        if su_size < min_p:
            su_size = min_p
        eff_v = sv_size if sv_size >= min_p else min_p
        growth = self._clock_delta
        growth_u = growth.get(su_size)
        if growth_u is None:
            growth_u = self._port_growth_mw(su_size)
        growth_v = growth.get(eff_v)
        if growth_v is None:
            growth_v = self._port_growth_mw(eff_v)

        traffic = rate_mflits * (move_energy + sv_energy) * 1e-3
        cost = traffic + (open_static + growth_u + growth_v)
        if soft and self._soft_on:
            cost += self._soft_inf
        return cost, True


def compute_paths(
    topology: Topology,
    graph: CommGraph,
    library: NocLibrary,
    config: SynthesisConfig,
    core_centers: Mapping[int, Tuple[float, float]],
) -> None:
    """Route every flow of ``graph`` on ``topology`` (mutates the topology)."""
    model = _make_cost_model(topology, graph, library, config)
    ctx = _RoutingContext(topology, library, config, model)
    cdg = ChannelDependencyGraph()

    if config.flow_order == "bandwidth_desc":
        flows = sorted(
            graph.edges.items(), key=lambda kv: (-kv[1].bandwidth, kv[0])
        )
    elif config.flow_order == "bandwidth_asc":
        flows = sorted(
            graph.edges.items(), key=lambda kv: (kv[1].bandwidth, kv[0])
        )
    else:  # "spec": deterministic spec order (sorted index pairs)
        flows = sorted(graph.edges.items(), key=lambda kv: kv[0])
    indirect_layers: Set[int] = set()

    for (src, dst), flow in flows:
        if flow.bandwidth > model.capacity:
            raise PathComputationError(
                f"flow {src}->{dst} demands {flow.bandwidth} MB/s, above link "
                f"capacity {model.capacity:.1f} MB/s"
            )
        routed = _route_flow(
            topology, graph, library, config, model, ctx, cdg,
            src, dst, flow, core_centers,
        )
        while not routed:
            added = _try_add_indirect_switch(
                topology, config, library, src, dst, indirect_layers
            )
            if not added:
                raise PathComputationError(
                    f"no valid path for flow {src}->{dst} "
                    f"(bw {flow.bandwidth} MB/s, lat <= {flow.latency} cycles)"
                )
            ctx.switch_added()
            routed = _route_flow(
                topology, graph, library, config, model, ctx, cdg,
                src, dst, flow, core_centers,
            )

    topology.validate_routes()
    over = topology.check_capacity(config.utilisation_cap)
    if over:
        raise PathComputationError(f"links over capacity after routing: {over}")


# --------------------------------------------------------------------------
# internals
# --------------------------------------------------------------------------

def _make_cost_model(
    topology: Topology,
    graph: CommGraph,
    library: NocLibrary,
    config: SynthesisConfig,
) -> _CostModel:
    max_size = library.switch.max_switch_size(config.frequency_mhz)
    soft_size = max(library.switch.min_ports, max_size - config.soft_switch_margin)
    soft_ill = max(0, config.max_ill - config.soft_ill_margin)

    # SOFT_INF: "ten times the maximum cost of any flow" (Sec. VI). The cost
    # of a flow is bounded by its flit rate times the worst per-hop energy
    # over the die diagonal.
    diag = 40.0  # generous upper bound on die extent in mm
    worst_energy = (
        library.link.energy_per_flit_pj(diag)
        + library.switch.energy_per_flit_pj(max_size)
        + library.tsv.energy_per_flit_pj(max(1, graph.num_layers - 1))
    )
    max_rate = flits_per_second(graph.max_bandwidth, config.link_width_bits)
    soft_inf = config.soft_inf_factor * max_rate * worst_energy * 1e-3

    return _CostModel(
        max_switch_size=max_size,
        soft_switch_size=soft_size,
        soft_max_ill=soft_ill,
        soft_inf=soft_inf,
        capacity=topology.capacity_mbps * config.utilisation_cap,
    )


def _edge_cost(
    topology: Topology,
    library: NocLibrary,
    config: SynthesisConfig,
    model: _CostModel,
    u: int,
    v: int,
    bandwidth: float,
    rate_mflits: float,
) -> Tuple[float, bool]:
    """Cost of routing the flow across switches (u -> v).

    Returns (cost in mW-equivalents, needs_new_link). INF cost means the
    edge is unusable (hard constraint of Algorithm 3). This is the plain
    single-shot evaluator; :meth:`_RoutingContext.edge_cost` computes the
    same values with the flow-invariant terms cached.
    """
    su = topology.switches[u]
    sv = topology.switches[v]
    planar = abs(su.x - sv.x) + abs(su.y - sv.y)
    vlayers = abs(su.layer - sv.layer)

    traffic = rate_mflits * (
        library.link.energy_per_flit_pj(planar)
        + library.tsv.energy_per_flit_pj(vlayers)
        + library.switch.energy_per_flit_pj(max(sv.size, library.switch.min_ports))
    ) * 1e-3

    # Reuse an existing link when capacity allows: no new resources needed.
    for link in topology.links_between(switch_ep(u), switch_ep(v)):
        if link.load_mbps + bandwidth <= model.capacity + 1e-9:
            return traffic, False

    # A new physical link is needed: Algorithm 3 constraint checks.
    if config.adjacent_layer_links_only and vlayers >= 2:
        return INF, True

    soft = False
    for boundary in range(min(su.layer, sv.layer), max(su.layer, sv.layer)):
        count = topology.ill.get((boundary, boundary + 1), 0)
        if count >= config.max_ill:
            return INF, True
        if count >= model.soft_max_ill:
            soft = True

    if su.out_ports + 1 > model.max_switch_size:
        return INF, True
    if sv.in_ports + 1 > model.max_switch_size:
        return INF, True
    if (
        su.out_ports + 1 > model.soft_switch_size
        or sv.in_ports + 1 > model.soft_switch_size
    ):
        soft = True

    freq = config.frequency_mhz
    min_p = library.switch.min_ports
    size_u = max(su.size, min_p)
    size_v = max(sv.size, min_p)
    open_penalty = (
        library.link.static_power_mw(planar)
        + vlayers * library.tsv.static_mw_per_link
        + (
            library.switch.clock_power_mw(size_u + 1, freq)
            - library.switch.clock_power_mw(size_u, freq)
        )
        + (
            library.switch.clock_power_mw(size_v + 1, freq)
            - library.switch.clock_power_mw(size_v, freq)
        )
    )
    cost = traffic + open_penalty
    if soft and config.use_soft_thresholds:
        cost += model.soft_inf
    return cost, True


def _dijkstra(
    ctx: _RoutingContext,
    src_sw: int,
    dst_sw: int,
    bandwidth: float,
    rate: float,
    banned: Set[Tuple[int, int]],
    min_hop: bool = False,
) -> Optional[List[int]]:
    """Min-cost (or min-hop) path over the switch graph. None if none."""
    n = len(ctx.topology.switches)
    dist = [INF] * n
    dist[src_sw] = 0.0
    prev = [-1] * n
    done = [False] * n
    reached = False
    heap: List[Tuple[float, int]] = [(0.0, src_sw)]
    edge_cost = ctx.edge_cost

    while heap:
        d, u = heapq.heappop(heap)
        if done[u]:
            continue
        if u == dst_sw:
            reached = True
            break
        done[u] = True
        for v in range(n):
            if v == u or done[v] or (u, v) in banned:
                continue
            cost, _ = edge_cost(u, v, bandwidth, rate)
            if cost == INF:
                continue
            step = (1.0 + cost * 1e-9) if min_hop else cost
            nd = d + step
            if nd < dist[v]:
                dist[v] = nd
                prev[v] = u
                heapq.heappush(heap, (nd, v))

    if not reached and dist[dst_sw] == INF:
        return None
    path = [dst_sw]
    while path[-1] != src_sw:
        path.append(prev[path[-1]])
    path.reverse()
    return path


def _estimate_latency(
    topology: Topology,
    library: NocLibrary,
    path_switches: Sequence[int],
    src: int,
    dst: int,
    core_centers: Mapping[int, Tuple[float, float]],
) -> float:
    """Zero-load latency estimate using current (pre-placement) positions."""
    freq = topology.frequency_mhz
    latency = float(len(path_switches)) * library.switch.delay_cycles()

    def extra(length: float) -> int:
        return max(0, library.link.pipeline_stages(length, freq) - 1)

    sw0 = topology.switches[path_switches[0]]
    swn = topology.switches[path_switches[-1]]
    cs, cd = core_centers[src], core_centers[dst]
    latency += extra(abs(cs[0] - sw0.x) + abs(cs[1] - sw0.y))
    latency += extra(abs(cd[0] - swn.x) + abs(cd[1] - swn.y))
    for a, b in zip(path_switches, path_switches[1:]):
        sa, sb = topology.switches[a], topology.switches[b]
        latency += extra(abs(sa.x - sb.x) + abs(sa.y - sb.y))
        latency += library.tsv.delay_cycles(abs(sa.layer - sb.layer), freq)
    return latency


def _route_flow(
    topology: Topology,
    graph: CommGraph,
    library: NocLibrary,
    config: SynthesisConfig,
    model: _CostModel,
    ctx: _RoutingContext,
    cdg: ChannelDependencyGraph,
    src: int,
    dst: int,
    flow,
    core_centers: Mapping[int, Tuple[float, float]],
) -> bool:
    """Try to route one flow. Returns False if no valid path exists."""
    src_sw = topology.core_to_switch[src]
    dst_sw = topology.core_to_switch[dst]
    bandwidth = flow.bandwidth
    rate = flits_per_second(bandwidth, topology.width_bits)

    inj = topology.injection_link(src)
    ej = topology.ejection_link(dst)
    if inj.load_mbps + bandwidth > model.capacity + 1e-9:
        return False
    if ej.load_mbps + bandwidth > model.capacity + 1e-9:
        return False

    banned: Set[Tuple[int, int]] = set()
    for _ in range(max(1, config.deadlock_retries)):
        if src_sw == dst_sw:
            path_switches: Optional[List[int]] = [src_sw]
        else:
            path_switches = _dijkstra(
                ctx, src_sw, dst_sw, bandwidth, rate, banned,
            )
        if path_switches is None:
            return False

        if (
            _estimate_latency(
                topology, library, path_switches, src, dst, core_centers
            )
            > flow.latency + 1e-9
        ):
            alt = (
                _dijkstra(
                    ctx, src_sw, dst_sw, bandwidth, rate, banned, min_hop=True,
                )
                if src_sw != dst_sw
                else [src_sw]
            )
            if alt is None:
                return False
            if (
                _estimate_latency(topology, library, alt, src, dst, core_centers)
                > flow.latency + 1e-9
            ):
                return False
            path_switches = alt

        # Plan link usage with tentative ids for new links.
        plan: List[Tuple[int, int, Optional[int]]] = []  # (u, v, link_id|None)
        tentative_ids: List[int] = [inj.id]
        next_fake = -1
        for u, v in zip(path_switches, path_switches[1:]):
            chosen = None
            for link in topology.links_between(switch_ep(u), switch_ep(v)):
                if link.load_mbps + bandwidth <= model.capacity + 1e-9:
                    if chosen is None or link.load_mbps < chosen.load_mbps:
                        chosen = link
            if chosen is not None:
                plan.append((u, v, chosen.id))
                tentative_ids.append(chosen.id)
            else:
                plan.append((u, v, None))
                tentative_ids.append(next_fake)
                next_fake -= 1
        tentative_ids.append(ej.id)

        if cdg.creates_cycle(tentative_ids, flow.message_type):
            edge_to_ban = _pick_ban_edge(path_switches, banned)
            if edge_to_ban is None:
                return False
            banned.add(edge_to_ban)
            continue

        # Commit: materialise new links, record route and dependencies.
        real_ids: List[int] = [inj.id]
        for u, v, link_id in plan:
            if link_id is None:
                link = topology.add_switch_link(u, v)
                real_ids.append(link.id)
            else:
                real_ids.append(link_id)
        real_ids.append(ej.id)
        topology.record_route((src, dst), real_ids, list(path_switches), bandwidth)
        cdg.add_path(real_ids, flow.message_type)
        return True

    return False


def _pick_ban_edge(
    path_switches: Sequence[int], banned: Set[Tuple[int, int]]
) -> Optional[Tuple[int, int]]:
    """Choose a switch-graph edge of the failed path to forbid on retry.

    The final turns of a path most often close the dependency cycle, so edges
    are banned from the destination side backwards.
    """
    edges = list(zip(path_switches, path_switches[1:]))
    for edge in reversed(edges):
        if edge not in banned:
            return edge
    return None


def _try_add_indirect_switch(
    topology: Topology,
    config: SynthesisConfig,
    library: NocLibrary,
    src: int,
    dst: int,
    indirect_layers: Set[int],
) -> bool:
    """Insert one core-less indirect switch near the failing flow (Sec. VI).

    At most one indirect switch is added per layer per design point. Returns
    True if a switch was added.
    """
    if not config.allow_indirect_switches:
        return False
    for sw_id in (topology.core_to_switch[src], topology.core_to_switch[dst]):
        layer = topology.switches[sw_id].layer
        if layer in indirect_layers:
            continue
        peers = [s for s in topology.switches if s.layer == layer]
        sw = topology.add_switch(layer, is_indirect=True)
        if peers:
            sw.x = sum(p.x for p in peers) / len(peers)
            sw.y = sum(p.y for p in peers) / len(peers)
        indirect_layers.add(layer)
        return True
    return False
