"""Design-rule verification of synthesized design points.

An independent checker that re-validates everything the synthesis flow
promises about a :class:`~repro.core.design_point.DesignPoint`:

* every specified flow is routed, as a connected core-to-core chain;
* routes are deadlock-free per message class (CDG acyclicity);
* no link exceeds its capacity;
* the ``max_ill`` TSV constraint holds on every layer boundary;
* no switch exceeds the maximum size for the operating frequency;
* switch-to-switch links respect the adjacency restriction (when enabled);
* Phase 2 designs keep cores attached to same-layer switches;
* every latency constraint is met with the final wire lengths;
* the floorplan is legal (no intra-layer overlap) and contains every core
  and switch;
* multi-layer vertical links have their intermediate TSV macros placed.

Used by the test suite as an oracle and exposed through the CLI so users
can audit any design the tool emits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.design_point import DesignPoint
from repro.graphs.comm_graph import CommGraph
from repro.models.library import NocLibrary
from repro.noc.deadlock import ChannelDependencyGraph
from repro.noc.metrics import flow_latency_cycles


@dataclass
class VerificationReport:
    """Outcome of :func:`verify_design_point`."""

    violations: List[str] = field(default_factory=list)
    checks_run: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def fail(self, message: str) -> None:
        self.violations.append(message)

    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        lines = [f"{status}: {self.checks_run} checks, "
                 f"{len(self.violations)} violations"]
        lines.extend(f"  - {v}" for v in self.violations)
        return "\n".join(lines)


def verify_design_point(
    point: DesignPoint,
    graph: CommGraph,
    library: NocLibrary,
) -> VerificationReport:
    """Run every design-rule check against ``point``."""
    report = VerificationReport()
    topo = point.topology
    config = point.config

    # 1. Route completeness and connectivity.
    report.checks_run += 1
    expected = set(graph.edges)
    routed = set(topo.routes)
    for missing in sorted(expected - routed):
        report.fail(f"flow {missing} has no route")
    for extra in sorted(routed - expected):
        report.fail(f"route exists for unspecified flow {extra}")
    try:
        topo.validate_routes()
    except Exception as exc:  # SynthesisError carries the detail
        report.fail(f"route chain invalid: {exc}")

    # 2. Deadlock freedom per message class.
    report.checks_run += 1
    cdg = ChannelDependencyGraph()
    for flow_key in sorted(topo.routes):
        if flow_key not in graph.edges:
            continue
        flow = graph.edges[flow_key]
        cdg.add_path(topo.routes[flow_key], flow.message_type)
    if not cdg.is_deadlock_free():
        report.fail("channel dependency graph contains a cycle")

    # 3. Link capacity.
    report.checks_run += 1
    for link_id in topo.check_capacity(config.utilisation_cap):
        link = topo.links[link_id]
        report.fail(
            f"link {link_id} ({link.src}->{link.dst}) over capacity: "
            f"{link.load_mbps:.1f} MB/s > "
            f"{topo.capacity_mbps * config.utilisation_cap:.1f}"
        )

    # 4. TSV / max_ill constraint.
    report.checks_run += 1
    for boundary, count in sorted(topo.ill.items()):
        if count > config.max_ill:
            report.fail(
                f"boundary {boundary} uses {count} inter-layer links "
                f"(max_ill {config.max_ill})"
            )

    # 5. Switch size vs frequency.
    report.checks_run += 1
    max_size = library.switch.max_switch_size(config.frequency_mhz)
    for sw in topo.switches:
        if sw.size > max_size:
            report.fail(
                f"switch {sw.id} has size {sw.size} above the limit "
                f"{max_size} at {config.frequency_mhz} MHz"
            )

    # 6. Adjacency of switch-to-switch links.
    report.checks_run += 1
    if config.adjacent_layer_links_only:
        for link in topo.links:
            if not link.is_core_link and link.layers_crossed > 1:
                report.fail(
                    f"switch link {link.id} spans {link.layers_crossed} "
                    "layers (adjacent-only technology)"
                )

    # 7. Phase 2 layer locality.
    report.checks_run += 1
    if point.phase == "phase2":
        for core, sw_id in sorted(topo.core_to_switch.items()):
            if topo.switches[sw_id].layer != graph.layers[core]:
                report.fail(
                    f"phase2: core {core} (layer {graph.layers[core]}) "
                    f"attached to switch {sw_id} on layer "
                    f"{topo.switches[sw_id].layer}"
                )

    # 8. Latency constraints with final wire lengths.
    report.checks_run += 1
    for flow_key, flow in sorted(graph.edges.items()):
        if flow_key not in topo.routes:
            continue
        latency = flow_latency_cycles(topo, flow_key, library)
        if latency > flow.latency + 1e-9:
            report.fail(
                f"flow {flow_key} latency {latency:.2f} cyc exceeds its "
                f"constraint {flow.latency:g}"
            )

    # 9. Floorplan legality and completeness.
    report.checks_run += 1
    overlaps = point.floorplan.overlaps()
    for a, b in overlaps:
        report.fail(f"floorplan overlap between {a!r} and {b!r}")
    placed = {c.name for c in point.floorplan}
    for i, name in enumerate(graph.names):
        if name not in placed:
            report.fail(f"core {name!r} missing from the floorplan")
    for sw in topo.switches:
        if f"sw{sw.id}" not in placed:
            report.fail(f"switch sw{sw.id} missing from the floorplan")

    # 10. Intermediate TSV macros for multi-layer vertical links.
    report.checks_run += 1
    for link in topo.links:
        if link.layers_crossed >= 2:
            for layer in range(link.lo_layer + 1, link.hi_layer):
                name = f"tsv:link{link.id}:L{layer}"
                if name not in placed:
                    report.fail(
                        f"vertical link {link.id} lacks its TSV macro on "
                        f"intermediate layer {layer}"
                    )

    return report
