"""Switch position computation — the LP of Sec. VII (Eqs. 2-5).

For a routed topology, the (x, y) of every switch is chosen to minimise the
bandwidth-weighted sum of Manhattan distances to the cores and switches it
connects to::

    obj = sum coredist(i,k) * bw_sw2core(i,k) + sum swdist(i,j) * bw_sw2sw(i,j)

Manhattan distances are linearised with auxiliary variables
(``d >= a - b``, ``d >= b - a``); the LP is solved with the scipy/HiGHS
backend of :mod:`repro.lp` (the paper used lp_solve). TSV macros are excluded
from the LP — "TSVs split the wires in two segments, both carrying the same
bandwidth. Therefore, the placement of the TSV macro is more relaxed."
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.errors import LPError
from repro.lp.model import LinearProgram
from repro.noc.topology import Topology


def optimise_switch_positions(
    topology: Topology,
    core_centers: Mapping[int, Tuple[float, float]],
    die_width_mm: float,
    die_height_mm: float,
    *,
    backend: str = "scipy",
) -> float:
    """Set every switch's (x, y) to the LP optimum. Returns the objective.

    Args:
        topology: Routed topology; link loads provide the bandwidth weights.
        core_centers: Fixed (x, y) of every attached core.
        die_width_mm / die_height_mm: Bounds for the switch coordinates
            (the input floorplan's extent).
        backend: LP backend, "scipy" (default) or "simplex".
    """
    nsw = len(topology.switches)
    if nsw == 0:
        return 0.0
    if die_width_mm <= 0 or die_height_mm <= 0:
        raise LPError("die bounds must be positive")

    # Aggregate bandwidth between connected component pairs. Both directions
    # of a pair share the same distance, so their loads are summed.
    sw2core: Dict[Tuple[int, int], float] = {}
    sw2sw: Dict[Tuple[int, int], float] = {}
    for link in topology.links:
        skind, sidx = link.src
        dkind, didx = link.dst
        if skind == "switch" and dkind == "switch":
            key = (min(sidx, didx), max(sidx, didx))
            sw2sw[key] = sw2sw.get(key, 0.0) + link.load_mbps
        elif skind == "switch" and dkind == "core":
            key = (sidx, didx)
            sw2core[key] = sw2core.get(key, 0.0) + link.load_mbps
        elif skind == "core" and dkind == "switch":
            key = (didx, sidx)
            sw2core[key] = sw2core.get(key, 0.0) + link.load_mbps

    lp = LinearProgram()
    xs = [lp.add_variable(f"xs{i}", low=0.0, high=die_width_mm) for i in range(nsw)]
    ys = [lp.add_variable(f"ys{i}", low=0.0, high=die_height_mm) for i in range(nsw)]

    # Zero-bandwidth connections still get a tiny pull so disconnected
    # switches don't wander; weight epsilon keeps the LP bounded and tidy.
    eps = 1e-6

    for (i, k), bw in sorted(sw2core.items()):
        cx, cy = core_centers[k]
        dx = lp.add_variable(f"dxc{i}_{k}")
        dy = lp.add_variable(f"dyc{i}_{k}")
        # dx >= xs_i - cx  and  dx >= cx - xs_i
        lp.add_constraint({dx: 1.0, xs[i]: -1.0}, ">=", -cx)
        lp.add_constraint({dx: 1.0, xs[i]: 1.0}, ">=", cx)
        lp.add_constraint({dy: 1.0, ys[i]: -1.0}, ">=", -cy)
        lp.add_constraint({dy: 1.0, ys[i]: 1.0}, ">=", cy)
        weight = max(bw, eps)
        lp.add_objective_term(dx, weight)
        lp.add_objective_term(dy, weight)

    for (i, j), bw in sorted(sw2sw.items()):
        dx = lp.add_variable(f"dxs{i}_{j}")
        dy = lp.add_variable(f"dys{i}_{j}")
        lp.add_constraint({dx: 1.0, xs[i]: -1.0, xs[j]: 1.0}, ">=", 0.0)
        lp.add_constraint({dx: 1.0, xs[i]: 1.0, xs[j]: -1.0}, ">=", 0.0)
        lp.add_constraint({dy: 1.0, ys[i]: -1.0, ys[j]: 1.0}, ">=", 0.0)
        lp.add_constraint({dy: 1.0, ys[i]: 1.0, ys[j]: -1.0}, ">=", 0.0)
        weight = max(bw, eps)
        lp.add_objective_term(dx, weight)
        lp.add_objective_term(dy, weight)

    solution = lp.solve(backend=backend)

    connected = {i for (i, _k) in sw2core} | {
        i for pair in sw2sw for i in pair
    }
    for i, sw in enumerate(topology.switches):
        if i in connected:
            sw.x = solution.value(xs[i])
            sw.y = solution.value(ys[i])
        else:
            # A switch nothing connects to (can only be an unused indirect
            # switch): centre of the die.
            sw.x = die_width_mm / 2.0
            sw.y = die_height_mm / 2.0
    return solution.objective


def placement_objective(
    topology: Topology,
    core_centers: Mapping[int, Tuple[float, float]],
) -> float:
    """Evaluate Eq. (4) for the topology's *current* switch positions."""
    total = 0.0
    for link in topology.links:
        skind, sidx = link.src
        dkind, didx = link.dst
        if skind == "switch":
            a: Optional[Tuple[float, float]] = topology.switches[sidx].center
        else:
            a = core_centers[sidx]
        if dkind == "switch":
            b: Optional[Tuple[float, float]] = topology.switches[didx].center
        else:
            b = core_centers[didx]
        total += link.load_mbps * (abs(a[0] - b[0]) + abs(a[1] - b[1]))
    return total
