"""The 2-D synthesis flow (the comparison baseline of Murali et al. [16]).

"For comparative purposes, we also apply a 2-D synthesis flow developed
earlier by [16] for a corresponding 2-D implementation of the benchmarks"
(Sec. I). The 2-D flow is the same machinery with a single layer: the PG has
no inter-layer edges, no TSV constraints apply, and all links are planar.

The caller provides a *2-D floorplanned* core specification (all cores on
layer 0, re-floorplanned onto one die — the benchmark generators produce
this variant alongside the 3-D one).
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import SynthesisConfig
from repro.core.design_point import SynthesisResult
from repro.core.synthesis import SunFloor3D
from repro.errors import SpecError
from repro.models.library import NocLibrary
from repro.spec.comm_spec import CommSpec
from repro.spec.core_spec import CoreSpec


def synthesize_2d(
    core_spec: CoreSpec,
    comm_spec: CommSpec,
    library: Optional[NocLibrary] = None,
    config: Optional[SynthesisConfig] = None,
) -> SynthesisResult:
    """Run the 2-D synthesis flow on a single-layer core specification."""
    if core_spec.num_layers != 1:
        raise SpecError(
            "synthesize_2d expects a single-layer core specification "
            f"(got {core_spec.num_layers} layers); use the benchmark's 2-D "
            "floorplan variant"
        )
    base = config if config is not None else SynthesisConfig()
    # In 2-D no link can cross a layer, so the TSV constraints are inert;
    # phase1 is the [16] flow (phase2's layer-by-layer restriction is
    # meaningless with one layer).
    cfg = base.with_(phase="phase1")
    return SunFloor3D(core_spec, comm_spec, library, cfg).synthesize()
