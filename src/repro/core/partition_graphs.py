"""Partitioning-graph builders: PG, SPG and LPG (Definitions 3-5, Eq. 1).

All three graphs share the edge-weight formula of Def. 3::

    h_ij = alpha * bw_ij / max_bw + (1 - alpha) * min_lat / lat_ij

The weights returned here are *directed* dictionaries; the k-way partitioner
(:func:`repro.graphs.partition.kway_min_cut`) sums the two orientations of a
pair, which matches treating communication volume symmetrically for
clustering purposes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import SpecError
from repro.graphs.comm_graph import CommGraph

Weights = Dict[Tuple[int, int], float]

#: Relative weight of the LPG helper edges added from isolated vertices
#: ("edges with low weight (close to 0)", Def. 5).
LPG_ISOLATED_WEIGHT_FACTOR = 1e-6


def edge_weight(
    bandwidth: float, latency: float, max_bw: float, min_lat: float, alpha: float
) -> float:
    """The h_ij formula of Def. 3."""
    if max_bw <= 0:
        raise SpecError(f"max bandwidth must be positive, got {max_bw}")
    if latency <= 0 or min_lat <= 0:
        raise SpecError("latencies must be positive")
    return alpha * bandwidth / max_bw + (1.0 - alpha) * min_lat / latency


def build_pg(graph: CommGraph, alpha: float) -> Weights:
    """The partitioning graph PG(U, H, alpha) of Def. 3.

    Same vertices and edges as the communication graph, with combined
    bandwidth/latency weights.
    """
    max_bw = graph.max_bandwidth
    min_lat = graph.min_latency
    weights: Weights = {}
    for i, j, flow in graph.flows():
        weights[(i, j)] = edge_weight(
            flow.bandwidth, flow.latency, max_bw, min_lat, alpha
        )
    return weights


def build_spg(graph: CommGraph, alpha: float, theta: float, theta_max: float) -> Weights:
    """The scaled partitioning graph SPG(W, L, theta) of Def. 4 / Eq. (1).

    Relative to PG:
      * intra-layer PG edges keep their weight h_ij;
      * inter-layer PG edges are scaled down to
        ``h_ij / (theta * |layer_i - layer_j|)``;
      * new low-weight edges ``theta * max_wt / (10 * theta_max)`` are added
        between every same-layer pair not already connected, so the
        partitioner prefers clustering within a layer.

    The ``/10`` keeps the added edges at most one tenth of the maximum PG
    weight ("obtained experimentally" in the paper).
    """
    if theta <= 0:
        raise SpecError(f"theta must be positive, got {theta}")
    if theta_max < theta:
        raise SpecError(f"theta_max ({theta_max}) must be >= theta ({theta})")

    pg = build_pg(graph, alpha)
    max_wt = max(pg.values()) if pg else 0.0
    extra_weight = theta * max_wt / (10.0 * theta_max)

    weights: Weights = {}
    for (i, j), h in pg.items():
        delta = abs(graph.layers[i] - graph.layers[j])
        if delta == 0:
            weights[(i, j)] = h
        else:
            weights[(i, j)] = h / (theta * delta)

    pg_pairs = {(min(i, j), max(i, j)) for (i, j) in pg}
    n = graph.n
    for i in range(n):
        for j in range(i + 1, n):
            if graph.layers[i] != graph.layers[j]:
                continue
            if (i, j) in pg_pairs:
                continue
            if extra_weight > 0:
                weights[(i, j)] = extra_weight
    return weights


def build_lpg(
    graph: CommGraph, layer: int, alpha: float
) -> Tuple[List[int], Weights]:
    """The layer partitioning graph LPG(Z, M, ly) of Def. 5.

    Returns ``(members, weights)`` where ``members`` lists the global core
    indices in the layer and ``weights`` is keyed by *local* indices into
    ``members``. Inter-layer flows are ignored entirely (the defining
    restriction of Phase 2). Cores with no intra-layer communication get
    low-weight edges to every other vertex of the layer so the partitioner
    still balances them.
    """
    members = [i for i in range(graph.n) if graph.layers[i] == layer]
    if not members:
        return [], {}
    local = {g: l for l, g in enumerate(members)}

    max_bw = graph.max_bandwidth
    min_lat = graph.min_latency
    weights: Weights = {}
    connected = set()
    for i, j, flow in graph.flows():
        if i in local and j in local:
            weights[(local[i], local[j])] = edge_weight(
                flow.bandwidth, flow.latency, max_bw, min_lat, alpha
            )
            connected.add(local[i])
            connected.add(local[j])

    max_wt = max(weights.values()) if weights else 1.0
    iso_weight = max_wt * LPG_ISOLATED_WEIGHT_FACTOR
    for l in range(len(members)):
        if l in connected:
            continue
        for other in range(len(members)):
            if other != l:
                key = (min(l, other), max(l, other))
                weights.setdefault(key, iso_weight)
    return members, weights
