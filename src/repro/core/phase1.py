"""Phase 1 core-to-switch connectivity (Algorithm 1).

Cores may connect to a switch in *any* layer: the partitioning graph PG is
cut into as many blocks as there are switches, so highly-communicating cores
share a switch regardless of their layers. When the resulting design cannot
meet the ``max_ill`` constraint, the scaled partitioning graph SPG is used
with θ swept from ``theta_min`` to ``theta_max``, progressively discouraging
cross-layer clustering (Steps 11-19).

This module only produces :class:`~repro.core.assignment.Assignment`
candidates; building, routing and evaluating them is the synthesis driver's
job (:mod:`repro.core.synthesis`), which implements the Unmet-set retry loop.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.core.assignment import Assignment, assignment_from_blocks
from repro.core.config import SynthesisConfig
from repro.core.partition_graphs import build_pg, build_spg
from repro.graphs.comm_graph import CommGraph
from repro.graphs.partition import kway_min_cut


def switch_count_bounds(graph: CommGraph, config: SynthesisConfig) -> Tuple[int, int]:
    """The switch-count sweep range: 1..n, clipped by the config."""
    lo, hi = 1, graph.n
    if config.switch_count_range is not None:
        clo, chi = config.switch_count_range
        lo = max(lo, clo)
        hi = min(hi, chi)
    return lo, hi


def phase1_candidate(
    graph: CommGraph, config: SynthesisConfig, switch_count: int
) -> Assignment:
    """The PG-based assignment for one switch count (Steps 4-7)."""
    pg = build_pg(graph, config.alpha)
    blocks = kway_min_cut(graph.n, pg, switch_count, seed=config.seed)
    return assignment_from_blocks(
        blocks, graph, config.switch_layer_mode, phase="phase1"
    )


def phase1_scaled_candidate(
    graph: CommGraph, config: SynthesisConfig, switch_count: int, theta: float
) -> Assignment:
    """The SPG-based assignment used for unmet switch counts (Steps 12-19)."""
    spg = build_spg(graph, config.alpha, theta, config.theta_max)
    blocks = kway_min_cut(graph.n, spg, switch_count, seed=config.seed)
    return assignment_from_blocks(
        blocks, graph, config.switch_layer_mode, phase="phase1", theta=theta
    )


def phase1_candidates(
    graph: CommGraph, config: SynthesisConfig
) -> Iterator[Assignment]:
    """All first-round (unscaled) Phase 1 candidates, one per switch count."""
    lo, hi = switch_count_bounds(graph, config)
    for count in range(lo, hi + 1):
        yield phase1_candidate(graph, config, count)
