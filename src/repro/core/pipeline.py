"""The staged synthesis pipeline — the Fig. 3 flow as explicit components.

The paper's flow is a sequence of distinct stages (connectivity candidate →
topology skeleton → deadlock-free paths → switch-position LP → floorplan
insertion → latency re-check → metrics). This module models each stage as a
:class:`Stage` object operating on an immutable per-run :class:`FlowContext`
and a mutable per-candidate :class:`CandidateState`, so stages are

* **swappable** — the :data:`STAGE_REGISTRY` lets experiments substitute a
  single stage (a different skeleton builder, a different floorplanner)
  without forking the driver;
* **measurable** — every stage execution is timed into a
  :class:`StageTimings` accumulator (``repro.cli synth --stage-timings``);
* **parallelizable** — candidate evaluation is a pure function of
  ``(context, assignment)``, so independent candidates fan out across the
  :mod:`repro.engine` process pool (``jobs=N``) with deterministic merging:
  serial and parallel runs produce identical :class:`SynthesisResult`\\ s.

Candidate *generation* stays serial and cheap (graph partitioning); only
evaluation — routing, LP, floorplanning, metrics — is distributed. The
switch-count sweep with its θ-retry (Algorithm 1, Steps 11-19) is a generic
candidate-queue driver plus a requeue *policy*: Phase 1 requeues failed
switch counts at the next θ (:class:`Phase1ThetaRequeuePolicy`); Phase 2 is
a single round that records never-met switch counts
(:class:`Phase2SingleRoundPolicy`).

Entry point: :func:`run_synthesis`. ``repro.core.synthesize`` and
``SunFloor3D.synthesize`` are thin compatibility wrappers over it.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

from repro.core.assignment import Assignment, violates_ill_precheck
from repro.core.config import SynthesisConfig
from repro.core.design_point import DesignPoint, SynthesisResult
from repro.core.paths import build_topology_skeleton, compute_paths
from repro.core.phase1 import (
    phase1_candidate,
    phase1_scaled_candidate,
    switch_count_bounds,
)
from repro.core.phase2 import phase2_candidates
from repro.core.placement import optimise_switch_positions
from repro.errors import PathComputationError, SpecError, SynthesisError
from repro.floorplan.constrained import constrained_insert
from repro.floorplan.geometry import Rect
from repro.floorplan.inserter import NewComponent, insert_components
from repro.floorplan.placement import ChipFloorplan, PlacedComponent
from repro.floorplan.tsv_macros import VerticalLinkSpec, place_tsv_macros
from repro.graphs.comm_graph import CommGraph, build_comm_graph
from repro.models.library import NocLibrary, default_library
from repro.noc.metrics import (
    compute_metrics,
    flow_latency_cycles,
    link_lengths_from_positions,
)
from repro.noc.topology import Topology
from repro.spec.comm_spec import CommSpec
from repro.spec.core_spec import CoreSpec
from repro.spec.validate import validate_specs

#: Progress callback: ``(done_in_round, round_total, candidate_key)``.
ProgressFn = Callable[[int, int, object], None]


# --------------------------------------------------------------------------
# run context and per-candidate state
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class FlowContext:
    """Everything a stage may read, fixed for one synthesis run.

    Immutable by convention *and* by dataclass freezing: stages receive the
    context plus a per-candidate :class:`CandidateState` and must confine
    every mutation to the state. That is what makes candidate evaluation a
    pure function, and therefore safe to fan out across processes.
    """

    core_spec: CoreSpec
    comm_spec: CommSpec
    graph: CommGraph
    library: NocLibrary
    config: SynthesisConfig
    core_centers: Dict[int, Tuple[float, float]]
    die_bounds: Tuple[float, float]

    @classmethod
    def build(
        cls,
        core_spec: CoreSpec,
        comm_spec: CommSpec,
        library: Optional[NocLibrary] = None,
        config: Optional[SynthesisConfig] = None,
    ) -> "FlowContext":
        """Validate the specs and derive the shared run context."""
        validate_specs(core_spec, comm_spec)
        library = library if library is not None else default_library()
        config = config if config is not None else SynthesisConfig()
        graph = build_comm_graph(core_spec, comm_spec)
        centers = {i: core.center for i, core in enumerate(core_spec)}
        width = max(c.x + c.width for c in core_spec)
        height = max(c.y + c.height for c in core_spec)
        if width <= 0 or height <= 0:
            raise SpecError("core positions must span a positive die area")
        return cls(
            core_spec=core_spec,
            comm_spec=comm_spec,
            graph=graph,
            library=library,
            config=config,
            core_centers=centers,
            die_bounds=(width, height),
        )


@dataclass
class CandidateState:
    """Mutable scratch state threaded through the stages of one candidate."""

    assignment: Assignment
    topology: Optional[Topology] = None
    floorplan: Optional[ChipFloorplan] = None
    final_centers: Optional[Dict[int, Tuple[float, float]]] = None
    point: Optional[DesignPoint] = None
    failed_stage: Optional[str] = None
    failure_reason: str = ""
    #: Wall-clock seconds spent in each executed stage. For stages served
    #: from a stage cache this is the *original* execution time, replayed
    #: from the cached entry so warm runs still report timings.
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: Names of stages whose results were served from a stage cache.
    cached_stages: List[str] = field(default_factory=list)
    #: Per-stage content fingerprints (``None`` = uncacheable), recorded
    #: only when evaluating under a stage cache; diagnostic and test hook.
    stage_fingerprints: Dict[str, Optional[str]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.failed_stage is None

    def outcome(self) -> "CandidateOutcome":
        return CandidateOutcome(
            point=self.point,
            failed_stage=self.failed_stage,
            failure_reason=self.failure_reason,
            stage_seconds=dict(self.stage_seconds),
            cached_stages=tuple(self.cached_stages),
        )


@dataclass
class CandidateOutcome:
    """The pickling-safe result of evaluating one candidate."""

    point: Optional[DesignPoint] = None
    failed_stage: Optional[str] = None
    failure_reason: str = ""
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    cached_stages: Tuple[str, ...] = ()


class StageFailure(Exception):
    """Raised inside a stage to reject the candidate (not an error)."""


# --------------------------------------------------------------------------
# stage timing collection
# --------------------------------------------------------------------------

class StageTimings:
    """Per-stage wall-clock accumulator (sample list per stage name).

    Samples served from a stage cache are counted separately: their
    seconds are the *original* execution times replayed from the cached
    entries, and :meth:`report`/:meth:`as_dict` surface how many of each
    stage's calls were cached (the ``(cached)`` column only appears when
    at least one sample was).
    """

    def __init__(self) -> None:
        self._samples: Dict[str, List[float]] = {}
        self._order: List[str] = []
        self._cached: Dict[str, int] = {}

    def add(self, name: str, seconds: float, *, cached: bool = False) -> None:
        if name not in self._samples:
            self._samples[name] = []
            self._order.append(name)
        self._samples[name].append(seconds)
        if cached:
            self._cached[name] = self._cached.get(name, 0) + 1

    def merge(
        self,
        stage_seconds: Mapping[str, float],
        cached: Sequence[str] = (),
    ) -> None:
        """Fold one candidate's ``{stage: seconds}`` dict (worker results);
        ``cached`` names the stages served from a stage cache."""
        cached_set = set(cached)
        for name, seconds in stage_seconds.items():
            self.add(name, seconds, cached=name in cached_set)

    def mark_all_cached(self) -> None:
        """Flag every sample as cache-served (whole-run replay)."""
        for name in self._order:
            self._cached[name] = len(self._samples[name])

    @property
    def names(self) -> List[str]:
        return list(self._order)

    def count(self, name: str) -> int:
        return len(self._samples.get(name, ()))

    def cached_count(self, name: str) -> int:
        return self._cached.get(name, 0)

    def total_s(self, name: str) -> float:
        return sum(self._samples.get(name, ()))

    @property
    def any_cached(self) -> bool:
        return any(self._cached.values())

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        doc = {}
        for name in self._order:
            row = {
                "total_s": round(self.total_s(name), 6),
                "count": self.count(name),
                "mean_ms": round(
                    1000.0 * self.total_s(name) / max(self.count(name), 1), 3
                ),
            }
            # Only present when stage caching was in play, so uncached
            # runs keep their historical document shape.
            if self.cached_count(name):
                row["cached"] = self.cached_count(name)
            doc[name] = row
        return doc

    def report(self) -> str:
        """An aligned plain-text per-stage breakdown."""
        with_cached = self.any_cached
        rows = [("stage", "calls", "total s", "mean ms")
                + (("cached",) if with_cached else ())]
        for name in self._order:
            row = (
                name,
                str(self.count(name)),
                f"{self.total_s(name):.3f}",
                f"{1000.0 * self.total_s(name) / max(self.count(name), 1):.2f}",
            )
            if with_cached:
                cached = self.cached_count(name)
                row += (f"({cached} cached)" if cached else "-",)
            rows.append(row)
        ncols = len(rows[0])
        widths = [max(len(r[c]) for r in rows) for c in range(ncols)]
        lines = ["per-stage timings:"]
        for i, row in enumerate(rows):
            lines.append(
                "  " + row[0].ljust(widths[0]) + "  "
                + "  ".join(row[c].rjust(widths[c]) for c in range(1, ncols))
            )
            if i == 0:
                lines.append("  " + "  ".join("-" * w for w in widths))
        return "\n".join(lines)


# --------------------------------------------------------------------------
# stages
# --------------------------------------------------------------------------

class Stage:
    """One step of the Fig. 3 flow.

    Subclasses set :attr:`name` and implement :meth:`run`, which either
    advances ``state`` or raises :class:`StageFailure` to reject the
    candidate. Stages must be stateless (or carry only immutable
    configuration) and defined at module top level so they pickle across
    the ``jobs=N`` process-pool boundary.

    Cacheable stages additionally declare their **input signature** — the
    exact subset of :class:`FlowContext` / :class:`SynthesisConfig` /
    :class:`CandidateState` fields :meth:`run` reads — plus the state
    fields it writes and a per-stage code-version :attr:`salt`. The
    :class:`repro.engine.stagecache.StageCache` layer fingerprints these
    inputs (through the canonical store encoder) to serve a stage's
    outputs from disk at any design point whose inputs hash identically.
    Declarations must never *under*-report reads — a missing input means
    silently-stale hits; over-reporting only costs hit rate. Bump
    :attr:`salt` whenever :meth:`run`'s behaviour changes
    (``tools/check_stage_salts.py`` enforces this), which invalidates the
    stage and every downstream stage. See ``docs/pipeline.md``.
    """

    name: str = ""
    #: Code-version salt: bump on any behavioural change to :meth:`run`.
    salt: str = "v1"
    #: Only stages that opt in are memoised; custom stages default off so
    #: an undeclared input can never cause a stale hit.
    cacheable: bool = False
    #: :class:`FlowContext` fields :meth:`run` reads.
    context_inputs: Tuple[str, ...] = ()
    #: :class:`SynthesisConfig` fields :meth:`run` reads; the string
    #: ``"*"`` declares the whole config object (used when the config
    #: itself lands in the stage's output, e.g. inside a DesignPoint).
    config_inputs: Union[Tuple[str, ...], str] = ()
    #: :class:`CandidateState` fields :meth:`run` reads.
    state_inputs: Tuple[str, ...] = ()
    #: :class:`CandidateState` fields :meth:`run` writes or mutates;
    #: replayed from the cached record on a hit.
    state_outputs: Tuple[str, ...] = ()

    def run(self, ctx: FlowContext, state: CandidateState) -> None:
        raise NotImplementedError


#: name -> stage class; :func:`build_pipeline` instantiates from here.
STAGE_REGISTRY: Dict[str, Type[Stage]] = {}


def register_stage(cls: Type[Stage]) -> Type[Stage]:
    """Class decorator: file a stage under ``cls.name`` in the registry."""
    if not cls.name:
        raise SynthesisError(f"stage class {cls.__name__} has no name")
    STAGE_REGISTRY[cls.name] = cls
    return cls


#: The :class:`SynthesisConfig` fields read by the skeleton/routing path
#: machinery (``repro.core.paths``). Frequency and link width shape link
#: capacity; the rest are pruning/routing policy. Floorplan-only knobs
#: (seed, restarts, search radius) are deliberately absent, so a
#: ``--floorplan-restarts`` bump reuses every upstream stage verbatim.
_PATHS_CONFIG_INPUTS: Tuple[str, ...] = (
    "frequency_mhz",
    "link_width_bits",
    "max_ill",
    "adjacent_layer_links_only",
    "use_soft_thresholds",
    "soft_ill_margin",
    "soft_switch_margin",
    "soft_inf_factor",
    "utilisation_cap",
    "deadlock_retries",
    "flow_order",
    "allow_indirect_switches",
)


@register_stage
class IllPrecheckStage(Stage):
    """Pruning rule 3 (Sec. V-C): core links alone must respect max_ill."""

    name = "precheck"
    salt = "v1"
    cacheable = True
    context_inputs = ("graph",)
    config_inputs = ("max_ill",)
    state_inputs = ("assignment",)
    state_outputs = ()

    def run(self, ctx: FlowContext, state: CandidateState) -> None:
        if violates_ill_precheck(state.assignment, ctx.graph, ctx.config.max_ill):
            raise StageFailure(
                "core-to-switch links alone exceed the max_ill constraint"
            )


@register_stage
class SkeletonStage(Stage):
    """Materialise the topology skeleton and apply the pruning rules."""

    name = "skeleton"
    salt = "v1"
    cacheable = True
    context_inputs = ("graph", "library", "core_centers")
    config_inputs = _PATHS_CONFIG_INPUTS
    state_inputs = ("assignment",)
    state_outputs = ("topology",)

    def run(self, ctx: FlowContext, state: CandidateState) -> None:
        try:
            state.topology = build_topology_skeleton(
                state.assignment, ctx.graph, ctx.library, ctx.config,  # repro: noqa[RPL106] -- paths.py reads exactly _PATHS_CONFIG_INPUTS, pinned by test_pipeline_decl_paths_config_inputs
                ctx.core_centers,
            )
        except PathComputationError as exc:
            raise StageFailure(str(exc))


@register_stage
class RoutingStage(Stage):
    """Deadlock-free, constraint-respecting paths (Sec. VI / Algorithm 3)."""

    name = "routing"
    salt = "v1"
    cacheable = True
    context_inputs = ("graph", "library", "core_centers")
    config_inputs = _PATHS_CONFIG_INPUTS
    state_inputs = ("topology",)
    # compute_paths mutates the topology in place (routes, utilisation).
    state_outputs = ("topology",)

    def run(self, ctx: FlowContext, state: CandidateState) -> None:
        try:
            compute_paths(
                state.topology, ctx.graph, ctx.library, ctx.config,  # repro: noqa[RPL106] -- paths.py reads exactly _PATHS_CONFIG_INPUTS, pinned by test_pipeline_decl_paths_config_inputs
                ctx.core_centers,
            )
        except PathComputationError as exc:
            raise StageFailure(str(exc))


@register_stage
class PlacementLPStage(Stage):
    """Optimise switch positions with the Sec. VII LP."""

    name = "placement_lp"
    salt = "v1"
    cacheable = True
    context_inputs = ("core_centers", "die_bounds")
    config_inputs = ()
    state_inputs = ("topology",)
    # Switch positions are written back onto the topology's switches.
    state_outputs = ("topology",)

    def run(self, ctx: FlowContext, state: CandidateState) -> None:
        die_w, die_h = ctx.die_bounds
        optimise_switch_positions(
            state.topology, ctx.core_centers, die_w, die_h
        )


def vertical_link_specs(
    topology: Topology, floorplan: ChipFloorplan, core_spec: CoreSpec
) -> List[VerticalLinkSpec]:
    """Multi-layer links needing explicit intermediate TSV macros.

    Every such link is anchored at its top endpoint's placed position; a
    missing endpoint is a synthesis bug, not a default-to-origin situation.
    """
    specs: List[VerticalLinkSpec] = []
    for link in topology.links:
        if link.layers_crossed < 2:
            continue
        top_ep = link.src if link.src_layer > link.dst_layer else link.dst
        kind, index = top_ep
        name = f"sw{index}" if kind == "switch" else core_spec[index].name
        if not floorplan.has(name):
            raise SynthesisError(
                f"vertical link {link.id} endpoint {name!r} is missing from "
                "the floorplan; cannot anchor its TSV macro stack"
            )
        specs.append(
            VerticalLinkSpec(
                name=f"link{link.id}",
                lo_layer=link.lo_layer,
                hi_layer=link.hi_layer,
                top_center=floorplan.center_of(name),
            )
        )
    return specs


@register_stage
class FloorplanStage(Stage):
    """Insert switches and TSV macros into the input core floorplan, then
    recompute positions and wire lengths from the final placement."""

    name = "floorplan"
    salt = "v1"
    cacheable = True
    context_inputs = ("core_spec", "library")
    config_inputs = (
        "seed",
        "search_radius_mm",
        "grid_step_mm",
        "floorplanner",
        "floorplan_restarts",
        "link_width_bits",  # sizes the TSV macro stacks
    )
    state_inputs = ("topology",)
    state_outputs = ("topology", "floorplan", "final_centers")

    def run(self, ctx: FlowContext, state: CandidateState) -> None:
        floorplan = self._insert_noc(ctx, state.topology)
        state.floorplan = floorplan
        state.final_centers = {
            i: floorplan.center_of(core.name)
            for i, core in enumerate(ctx.core_spec)
        }
        for sw in state.topology.switches:
            name = f"sw{sw.id}"
            if floorplan.has(name):
                sw.x, sw.y = floorplan.center_of(name)
        link_lengths_from_positions(state.topology, state.final_centers)

    def _insert_noc(self, ctx: FlowContext, topology: Topology) -> ChipFloorplan:
        floorplan = ChipFloorplan()
        num_layers = max(ctx.core_spec.num_layers, 1)
        for layer in range(num_layers):
            existing = [
                PlacedComponent(
                    name=core.name,
                    kind="core",
                    rect=Rect(core.x, core.y, core.width, core.height),
                    layer=layer,
                )
                for core in ctx.core_spec.cores_in_layer(layer)
            ]
            new_components = []
            for sw in topology.switches:
                if sw.layer != layer:
                    continue
                side = math.sqrt(
                    ctx.library.switch.area_mm2(
                        max(sw.size, ctx.library.switch.min_ports)
                    )
                )
                new_components.append(
                    NewComponent(
                        name=f"sw{sw.id}",
                        kind="switch",
                        width=side,
                        height=side,
                        ideal_center=(sw.x, sw.y),
                    )
                )
            if new_components:
                if ctx.config.floorplanner == "custom":
                    placed = insert_components(
                        existing,
                        new_components,
                        search_radius=ctx.config.search_radius_mm,
                        grid_step=ctx.config.grid_step_mm,
                    )
                else:
                    placed = constrained_insert(
                        existing, new_components, seed=ctx.config.seed,
                        restarts=ctx.config.floorplan_restarts,
                        jobs=ctx.config.floorplan_jobs,  # repro: noqa[RPL102] -- parallelism knob, results-invariant (test_floorplan_jobs_fingerprint_invariant); declaring it would split the cache by jobs=
                    )
            else:
                placed = existing
            for comp in placed:
                floorplan.add(comp)

        vertical_specs = vertical_link_specs(topology, floorplan, ctx.core_spec)
        if vertical_specs:
            floorplan = place_tsv_macros(
                floorplan,
                vertical_specs,
                ctx.library.tsv,
                ctx.config.link_width_bits,
                search_radius=ctx.config.search_radius_mm,
                grid_step=ctx.config.grid_step_mm,
            )
        return floorplan


@register_stage
class LatencyVerifyStage(Stage):
    """Re-check every flow's latency constraint on final wire lengths."""

    name = "verify"
    salt = "v1"
    cacheable = True
    context_inputs = ("graph", "library")
    config_inputs = ()
    state_inputs = ("topology",)
    state_outputs = ()

    def run(self, ctx: FlowContext, state: CandidateState) -> None:
        for (src, dst), flow in ctx.graph.edges.items():
            latency = flow_latency_cycles(
                state.topology, (src, dst), ctx.library
            )
            if latency > flow.latency + 1e-9:
                raise StageFailure(
                    f"flow ({src}, {dst}) misses its latency constraint "
                    f"after floorplanning ({latency:.2f} > {flow.latency:g})"
                )


@register_stage
class MetricsStage(Stage):
    """Evaluate power / latency / area and emit the design point."""

    name = "metrics"
    salt = "v1"
    cacheable = True
    context_inputs = ("library",)
    # The whole config lands inside the emitted DesignPoint, so any config
    # change (beyond the store-level __fingerprint_exclude__ fields) must
    # re-run metrics for the cached point to stay bit-identical.
    config_inputs = "*"
    state_inputs = ("assignment", "topology", "final_centers", "floorplan")
    state_outputs = ("point",)

    def run(self, ctx: FlowContext, state: CandidateState) -> None:
        metrics = compute_metrics(
            state.topology, state.final_centers, ctx.library
        )
        state.point = DesignPoint(
            assignment=state.assignment,
            topology=state.topology,
            floorplan=state.floorplan,
            metrics=metrics,
            config=ctx.config,
        )


#: The standard Fig. 3 stage sequence.
DEFAULT_STAGE_NAMES: Tuple[str, ...] = (
    "precheck",
    "skeleton",
    "routing",
    "placement_lp",
    "floorplan",
    "verify",
    "metrics",
)


def build_pipeline(
    stages: Optional[Sequence[Union[str, Stage]]] = None,
    overrides: Optional[Mapping[str, Union[Stage, Type[Stage]]]] = None,
) -> "Pipeline":
    """Build a pipeline from registry names and/or stage instances.

    Args:
        stages: Stage names (registry lookups) or ready instances, in
            execution order; defaults to :data:`DEFAULT_STAGE_NAMES`.
        overrides: ``{name: replacement}`` applied after resolution — the
            hook for substituting a single stage (e.g. a custom
            floorplanner) while keeping the standard sequence.
    """
    resolved: List[Stage] = []
    for item in (stages if stages is not None else DEFAULT_STAGE_NAMES):
        if isinstance(item, Stage):
            resolved.append(item)
        elif isinstance(item, str):
            if item not in STAGE_REGISTRY:
                raise SynthesisError(
                    f"unknown stage {item!r}; registered: "
                    f"{', '.join(sorted(STAGE_REGISTRY))}"
                )
            resolved.append(STAGE_REGISTRY[item]())
        else:
            raise SynthesisError(f"stage must be a name or Stage, got {item!r}")
    if overrides:
        by_name = {stage.name: i for i, stage in enumerate(resolved)}
        for name, replacement in overrides.items():
            if name not in by_name:
                raise SynthesisError(
                    f"cannot override stage {name!r}: not in the pipeline"
                )
            stage = replacement() if isinstance(replacement, type) else replacement
            resolved[by_name[name]] = stage
    return Pipeline(resolved)


class Pipeline:
    """An ordered stage sequence evaluating one candidate at a time."""

    def __init__(self, stages: Sequence[Stage]) -> None:
        if not stages:
            raise SynthesisError("a pipeline needs at least one stage")
        self.stages: Tuple[Stage, ...] = tuple(stages)

    @property
    def stage_names(self) -> Tuple[str, ...]:
        return tuple(stage.name for stage in self.stages)

    def evaluate(
        self,
        ctx: FlowContext,
        assignment: Assignment,
        timings: Optional[StageTimings] = None,
        stage_cache=None,
    ) -> CandidateState:
        """Run every stage on a fresh state; stop at the first rejection.

        With a ``stage_cache`` (:class:`repro.engine.stagecache.StageCache`)
        each stage is first looked up under the fingerprint of its declared
        inputs plus the upstream signature chain: a hit replays the
        recorded outputs (including a recorded :class:`StageFailure`
        rejection) instead of running the stage, crediting the *original*
        execution time to ``stage_seconds``/``timings`` with a cached
        marker; a miss runs the stage and checkpoints its outputs. Hard
        (non-:class:`StageFailure`) errors propagate without caching.
        """
        state = CandidateState(assignment=assignment)
        chain: List[object] = []
        # ``state field -> fingerprint of the stage that last wrote it``;
        # downstream fingerprints fold in the producer fingerprint instead
        # of re-hashing the (large) value itself.
        provenance: Dict[str, str] = {}
        for stage in self.stages:
            fingerprint = None
            if stage_cache is not None:
                fingerprint = stage_cache.fingerprint(
                    stage, chain, ctx, state, provenance
                )
                state.stage_fingerprints[stage.name] = fingerprint
                chain.append(stage_cache.signature(stage))
                if fingerprint is not None:
                    hit = stage_cache.load(stage, fingerprint)
                    if hit is not None:
                        record, recorded_s = hit
                        record.apply(state)
                        state.cached_stages.append(stage.name)
                        state.stage_seconds[stage.name] = (
                            state.stage_seconds.get(stage.name, 0.0)
                            + recorded_s
                        )
                        if timings is not None:
                            timings.add(stage.name, recorded_s, cached=True)
                        for name in getattr(stage, "state_outputs", ()):
                            provenance[name] = fingerprint
                        if state.failed_stage is not None:
                            break
                        continue
            start = time.perf_counter()
            try:
                stage.run(ctx, state)
            except StageFailure as exc:
                state.failed_stage = stage.name
                state.failure_reason = str(exc)
            finally:
                elapsed = time.perf_counter() - start
                state.stage_seconds[stage.name] = (
                    state.stage_seconds.get(stage.name, 0.0) + elapsed
                )
                if timings is not None:
                    timings.add(stage.name, elapsed)
            if fingerprint is not None:
                # Deterministic rejections are cached alongside successes
                # (replaying them is exactly as correct and much cheaper);
                # hard errors raised out of the try above never reach here.
                stage_cache.save(stage, fingerprint, state, elapsed)
                for name in getattr(stage, "state_outputs", ()):
                    provenance[name] = fingerprint
            elif stage_cache is not None:
                # An unfingerprinted stage may have mutated any state field
                # (opt-out stages declare nothing): downstream stages fall
                # back to hashing state values directly.
                provenance.clear()
            if state.failed_stage is not None:
                break
        return state


# --------------------------------------------------------------------------
# candidate queue driver and requeue policies
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class CandidateRequest:
    """One queued candidate: a built assignment plus its sweep provenance."""

    assignment: Assignment
    count: int
    theta: Optional[float] = None

    @property
    def key(self) -> Tuple[object, ...]:
        phase = self.assignment.phase if self.assignment is not None else "?"
        return (phase, self.count, self.theta)


class CandidatePolicy:
    """Candidate generation + requeue policy for the queue driver."""

    def initial_requests(self, ctx: FlowContext) -> List[CandidateRequest]:
        raise NotImplementedError

    def next_round(
        self,
        ctx: FlowContext,
        requests: Sequence[CandidateRequest],
        outcomes: Sequence[CandidateOutcome],
    ) -> List[CandidateRequest]:
        raise NotImplementedError

    def finalize(self, ctx: FlowContext, result: SynthesisResult) -> None:
        pass


class Phase1ThetaRequeuePolicy(CandidatePolicy):
    """Algorithm 1: PG candidates per switch count; failed counts requeue
    as SPG candidates over the θ sweep (the Unmet-set retry, Steps 11-19)."""

    def __init__(self) -> None:
        self._theta_iter = None
        self._unmet: Tuple[int, ...] = ()

    def initial_requests(self, ctx: FlowContext) -> List[CandidateRequest]:
        self._theta_iter = iter(ctx.config.theta_values())
        lo, hi = switch_count_bounds(ctx.graph, ctx.config)
        return [
            CandidateRequest(
                phase1_candidate(ctx.graph, ctx.config, count), count
            )
            for count in range(lo, hi + 1)
        ]

    def next_round(self, ctx, requests, outcomes) -> List[CandidateRequest]:
        failed = [
            req for req, out in zip(requests, outcomes) if out.point is None
        ]
        if not failed:
            return []
        try:
            theta = next(self._theta_iter)
        except StopIteration:
            self._unmet = tuple(sorted({req.count for req in failed}))
            return []
        return [
            CandidateRequest(
                phase1_scaled_candidate(ctx.graph, ctx.config, req.count, theta),
                req.count,
                theta,
            )
            for req in failed
        ]

    def finalize(self, ctx: FlowContext, result: SynthesisResult) -> None:
        result.unmet_switch_counts = sorted(
            set(result.unmet_switch_counts) | set(self._unmet)
        )


class Phase2SingleRoundPolicy(CandidatePolicy):
    """Algorithm 2: one round over all layer-local candidates. A switch
    count is unmet only if *no* candidate at that count produced a point."""

    def __init__(self) -> None:
        self._met: set = set()
        self._failed: set = set()

    def initial_requests(self, ctx: FlowContext) -> List[CandidateRequest]:
        return [
            CandidateRequest(assignment, assignment.num_switches)
            for assignment in phase2_candidates(
                ctx.graph, ctx.config, ctx.library
            )
        ]

    def next_round(self, ctx, requests, outcomes) -> List[CandidateRequest]:
        for req, out in zip(requests, outcomes):
            if out.point is not None:
                self._met.add(req.count)
            else:
                self._failed.add(req.count)
        return []

    def finalize(self, ctx: FlowContext, result: SynthesisResult) -> None:
        unmet = self._failed - self._met
        if unmet:
            result.unmet_switch_counts = sorted(
                set(result.unmet_switch_counts) | unmet
            )


#: Batch evaluator: requests in, outcomes out (submission order preserved).
BatchEvaluator = Callable[[Sequence[CandidateRequest]], List[CandidateOutcome]]


def run_candidate_queue(
    ctx: FlowContext,
    policy: CandidatePolicy,
    evaluate_batch: BatchEvaluator,
    result: SynthesisResult,
) -> None:
    """The generic round-based driver shared by both phases.

    Each round's candidates are evaluated as one batch (serially or fanned
    across the engine pool) and merged in submission order, so point order
    — round by round, then switch count within a round — is identical to
    the historical serial loops.
    """
    requests = policy.initial_requests(ctx)
    while requests:
        outcomes = evaluate_batch(requests)
        for outcome in outcomes:
            if outcome.point is not None:
                result.points.append(outcome.point)
        requests = policy.next_round(ctx, requests, outcomes)
    policy.finalize(ctx, result)


# --------------------------------------------------------------------------
# batch evaluation (serial / engine fan-out) and the run entry point
# --------------------------------------------------------------------------

def _make_batch_evaluator(
    ctx: FlowContext,
    pipeline: Pipeline,
    jobs: Optional[int],
    progress: Optional[ProgressFn],
    timings: Optional[StageTimings],
    retry=None,
    task_timeout_s: Optional[float] = None,
    on_error: str = "raise",
    quarantine_log: Optional[List] = None,
    stage_cache=None,
) -> BatchEvaluator:
    def serial(requests: Sequence[CandidateRequest]) -> List[CandidateOutcome]:
        outcomes: List[CandidateOutcome] = []
        total = len(requests)
        for i, req in enumerate(requests):
            state = pipeline.evaluate(ctx, req.assignment, timings, stage_cache)
            outcomes.append(state.outcome())
            if progress is not None:
                progress(i + 1, total, req.key)
        return outcomes

    if jobs == 1:
        return serial

    import uuid

    context_token = uuid.uuid4().hex
    if stage_cache is not None:
        stage_cache_dir, stage_cache_salt = stage_cache.spec()
    else:
        stage_cache_dir = stage_cache_salt = None

    def parallel(requests: Sequence[CandidateRequest]) -> List[CandidateOutcome]:
        if len(requests) <= 1:
            return serial(requests)
        # Imported lazily: repro.engine depends on repro.core, not vice versa.
        from repro.engine.executor import run_tasks
        from repro.engine.tasks import CandidateTask, release_context, seed_context

        tasks = [
            CandidateTask(
                key=req.key,
                core_spec=ctx.core_spec,
                comm_spec=ctx.comm_spec,
                config=ctx.config,
                assignment=req.assignment,
                library=ctx.library,
                stages=pipeline.stages,
                context_token=context_token,
                stage_cache_dir=stage_cache_dir,
                stage_cache_salt=stage_cache_salt,
            )
            for req in requests
        ]
        seed_context(context_token, ctx)
        try:
            results = run_tasks(
                tasks, jobs=jobs, progress=progress,
                retry=retry, task_timeout_s=task_timeout_s,
                on_error=on_error,
            )
        finally:
            release_context(context_token)
        outcomes = []
        for task_result in results:
            if task_result.error is not None:
                # A quarantined/timed-out candidate (on_error="quarantine")
                # becomes a failed outcome, so the synthesis completes on
                # the surviving candidates.
                if quarantine_log is not None:
                    quarantine_log.append(
                        (task_result.key, str(task_result.error))
                    )
                outcomes.append(CandidateOutcome(
                    failed_stage="supervision",
                    failure_reason=str(task_result.error),
                ))
            else:
                outcomes.append(task_result.result)
        if timings is not None:
            for outcome in outcomes:
                timings.merge(outcome.stage_seconds, outcome.cached_stages)
        if stage_cache is not None:
            # Worker-side hits/misses land in the parent's counters via the
            # outcomes (bytes stay worker-local and are reported as 0).
            for outcome in outcomes:
                stage_cache.note_remote(outcome)
        return outcomes

    return parallel


def run_synthesis(
    ctx: FlowContext,
    *,
    pipeline: Optional[Pipeline] = None,
    jobs: Optional[int] = 1,
    progress: Optional[ProgressFn] = None,
    timings: Optional[StageTimings] = None,
    retry=None,
    task_timeout_s: Optional[float] = None,
    on_error: str = "raise",
    quarantine_log: Optional[List] = None,
    stage_cache=None,
) -> SynthesisResult:
    """Run the configured flow and return all valid design points.

    Args:
        ctx: The run context (see :meth:`FlowContext.build`).
        pipeline: Stage sequence; default :func:`build_pipeline`.
        jobs: Candidate-evaluation worker processes — ``1`` (default)
            serial, ``None``/``0`` one per CPU, ``n >= 2`` a pool of n.
            Results are bit-identical regardless of ``jobs``.
        progress: Optional per-candidate callback
            ``(done_in_round, round_total, key)``.
        timings: Optional :class:`StageTimings` accumulator to fill.
        retry / task_timeout_s / on_error: Supervision knobs of the
            candidate fan-out (parallel runs; see
            :func:`repro.engine.run_tasks`). Under
            ``on_error="quarantine"`` a candidate lost to a worker crash
            or deadline is treated as a failed candidate, not a fatal
            error.
        quarantine_log: Optional list collecting ``(key, message)`` pairs
            for candidates lost to supervision.
        stage_cache: Optional
            :class:`repro.engine.stagecache.StageCache` memoising
            individual stage outputs across runs and sweep points (see
            :meth:`Pipeline.evaluate`). Results stay bit-identical with
            or without it.
    """
    pipeline = pipeline if pipeline is not None else build_pipeline()
    evaluate_batch = _make_batch_evaluator(
        ctx, pipeline, jobs, progress, timings,
        retry=retry, task_timeout_s=task_timeout_s, on_error=on_error,
        quarantine_log=quarantine_log, stage_cache=stage_cache,
    )
    result = SynthesisResult()
    phase = ctx.config.phase
    if phase in ("auto", "phase1"):
        run_candidate_queue(ctx, Phase1ThetaRequeuePolicy(), evaluate_batch, result)
    if phase == "phase2" or (phase == "auto" and result.is_empty):
        run_candidate_queue(ctx, Phase2SingleRoundPolicy(), evaluate_batch, result)
    return result
