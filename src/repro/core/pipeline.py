"""The staged synthesis pipeline — the Fig. 3 flow as explicit components.

The paper's flow is a sequence of distinct stages (connectivity candidate →
topology skeleton → deadlock-free paths → switch-position LP → floorplan
insertion → latency re-check → metrics). This module models each stage as a
:class:`Stage` object operating on an immutable per-run :class:`FlowContext`
and a mutable per-candidate :class:`CandidateState`, so stages are

* **swappable** — the :data:`STAGE_REGISTRY` lets experiments substitute a
  single stage (a different skeleton builder, a different floorplanner)
  without forking the driver;
* **measurable** — every stage execution is timed into a
  :class:`StageTimings` accumulator (``repro.cli synth --stage-timings``);
* **parallelizable** — candidate evaluation is a pure function of
  ``(context, assignment)``, so independent candidates fan out across the
  :mod:`repro.engine` process pool (``jobs=N``) with deterministic merging:
  serial and parallel runs produce identical :class:`SynthesisResult`\\ s.

Candidate *generation* stays serial and cheap (graph partitioning); only
evaluation — routing, LP, floorplanning, metrics — is distributed. The
switch-count sweep with its θ-retry (Algorithm 1, Steps 11-19) is a generic
candidate-queue driver plus a requeue *policy*: Phase 1 requeues failed
switch counts at the next θ (:class:`Phase1ThetaRequeuePolicy`); Phase 2 is
a single round that records never-met switch counts
(:class:`Phase2SingleRoundPolicy`).

Entry point: :func:`run_synthesis`. ``repro.core.synthesize`` and
``SunFloor3D.synthesize`` are thin compatibility wrappers over it.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

from repro.core.assignment import Assignment, violates_ill_precheck
from repro.core.config import SynthesisConfig
from repro.core.design_point import DesignPoint, SynthesisResult
from repro.core.paths import build_topology_skeleton, compute_paths
from repro.core.phase1 import (
    phase1_candidate,
    phase1_scaled_candidate,
    switch_count_bounds,
)
from repro.core.phase2 import phase2_candidates
from repro.core.placement import optimise_switch_positions
from repro.errors import PathComputationError, SpecError, SynthesisError
from repro.floorplan.constrained import constrained_insert
from repro.floorplan.geometry import Rect
from repro.floorplan.inserter import NewComponent, insert_components
from repro.floorplan.placement import ChipFloorplan, PlacedComponent
from repro.floorplan.tsv_macros import VerticalLinkSpec, place_tsv_macros
from repro.graphs.comm_graph import CommGraph, build_comm_graph
from repro.models.library import NocLibrary, default_library
from repro.noc.metrics import (
    compute_metrics,
    flow_latency_cycles,
    link_lengths_from_positions,
)
from repro.noc.topology import Topology
from repro.spec.comm_spec import CommSpec
from repro.spec.core_spec import CoreSpec
from repro.spec.validate import validate_specs

#: Progress callback: ``(done_in_round, round_total, candidate_key)``.
ProgressFn = Callable[[int, int, object], None]


# --------------------------------------------------------------------------
# run context and per-candidate state
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class FlowContext:
    """Everything a stage may read, fixed for one synthesis run.

    Immutable by convention *and* by dataclass freezing: stages receive the
    context plus a per-candidate :class:`CandidateState` and must confine
    every mutation to the state. That is what makes candidate evaluation a
    pure function, and therefore safe to fan out across processes.
    """

    core_spec: CoreSpec
    comm_spec: CommSpec
    graph: CommGraph
    library: NocLibrary
    config: SynthesisConfig
    core_centers: Dict[int, Tuple[float, float]]
    die_bounds: Tuple[float, float]

    @classmethod
    def build(
        cls,
        core_spec: CoreSpec,
        comm_spec: CommSpec,
        library: Optional[NocLibrary] = None,
        config: Optional[SynthesisConfig] = None,
    ) -> "FlowContext":
        """Validate the specs and derive the shared run context."""
        validate_specs(core_spec, comm_spec)
        library = library if library is not None else default_library()
        config = config if config is not None else SynthesisConfig()
        graph = build_comm_graph(core_spec, comm_spec)
        centers = {i: core.center for i, core in enumerate(core_spec)}
        width = max(c.x + c.width for c in core_spec)
        height = max(c.y + c.height for c in core_spec)
        if width <= 0 or height <= 0:
            raise SpecError("core positions must span a positive die area")
        return cls(
            core_spec=core_spec,
            comm_spec=comm_spec,
            graph=graph,
            library=library,
            config=config,
            core_centers=centers,
            die_bounds=(width, height),
        )


@dataclass
class CandidateState:
    """Mutable scratch state threaded through the stages of one candidate."""

    assignment: Assignment
    topology: Optional[Topology] = None
    floorplan: Optional[ChipFloorplan] = None
    final_centers: Optional[Dict[int, Tuple[float, float]]] = None
    point: Optional[DesignPoint] = None
    failed_stage: Optional[str] = None
    failure_reason: str = ""
    #: Wall-clock seconds spent in each executed stage.
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.failed_stage is None

    def outcome(self) -> "CandidateOutcome":
        return CandidateOutcome(
            point=self.point,
            failed_stage=self.failed_stage,
            failure_reason=self.failure_reason,
            stage_seconds=dict(self.stage_seconds),
        )


@dataclass
class CandidateOutcome:
    """The pickling-safe result of evaluating one candidate."""

    point: Optional[DesignPoint] = None
    failed_stage: Optional[str] = None
    failure_reason: str = ""
    stage_seconds: Dict[str, float] = field(default_factory=dict)


class StageFailure(Exception):
    """Raised inside a stage to reject the candidate (not an error)."""


# --------------------------------------------------------------------------
# stage timing collection
# --------------------------------------------------------------------------

class StageTimings:
    """Per-stage wall-clock accumulator (sample list per stage name)."""

    def __init__(self) -> None:
        self._samples: Dict[str, List[float]] = {}
        self._order: List[str] = []

    def add(self, name: str, seconds: float) -> None:
        if name not in self._samples:
            self._samples[name] = []
            self._order.append(name)
        self._samples[name].append(seconds)

    def merge(self, stage_seconds: Mapping[str, float]) -> None:
        """Fold one candidate's ``{stage: seconds}`` dict (worker results)."""
        for name, seconds in stage_seconds.items():
            self.add(name, seconds)

    @property
    def names(self) -> List[str]:
        return list(self._order)

    def count(self, name: str) -> int:
        return len(self._samples.get(name, ()))

    def total_s(self, name: str) -> float:
        return sum(self._samples.get(name, ()))

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {
                "total_s": round(self.total_s(name), 6),
                "count": self.count(name),
                "mean_ms": round(
                    1000.0 * self.total_s(name) / max(self.count(name), 1), 3
                ),
            }
            for name in self._order
        }

    def report(self) -> str:
        """An aligned plain-text per-stage breakdown."""
        rows = [("stage", "calls", "total s", "mean ms")]
        for name in self._order:
            rows.append((
                name,
                str(self.count(name)),
                f"{self.total_s(name):.3f}",
                f"{1000.0 * self.total_s(name) / max(self.count(name), 1):.2f}",
            ))
        widths = [max(len(r[c]) for r in rows) for c in range(4)]
        lines = ["per-stage timings:"]
        for i, row in enumerate(rows):
            lines.append(
                "  " + row[0].ljust(widths[0]) + "  "
                + "  ".join(row[c].rjust(widths[c]) for c in range(1, 4))
            )
            if i == 0:
                lines.append("  " + "  ".join("-" * w for w in widths))
        return "\n".join(lines)


# --------------------------------------------------------------------------
# stages
# --------------------------------------------------------------------------

class Stage:
    """One step of the Fig. 3 flow.

    Subclasses set :attr:`name` and implement :meth:`run`, which either
    advances ``state`` or raises :class:`StageFailure` to reject the
    candidate. Stages must be stateless (or carry only immutable
    configuration) and defined at module top level so they pickle across
    the ``jobs=N`` process-pool boundary.
    """

    name: str = ""

    def run(self, ctx: FlowContext, state: CandidateState) -> None:
        raise NotImplementedError


#: name -> stage class; :func:`build_pipeline` instantiates from here.
STAGE_REGISTRY: Dict[str, Type[Stage]] = {}


def register_stage(cls: Type[Stage]) -> Type[Stage]:
    """Class decorator: file a stage under ``cls.name`` in the registry."""
    if not cls.name:
        raise SynthesisError(f"stage class {cls.__name__} has no name")
    STAGE_REGISTRY[cls.name] = cls
    return cls


@register_stage
class IllPrecheckStage(Stage):
    """Pruning rule 3 (Sec. V-C): core links alone must respect max_ill."""

    name = "precheck"

    def run(self, ctx: FlowContext, state: CandidateState) -> None:
        if violates_ill_precheck(state.assignment, ctx.graph, ctx.config.max_ill):
            raise StageFailure(
                "core-to-switch links alone exceed the max_ill constraint"
            )


@register_stage
class SkeletonStage(Stage):
    """Materialise the topology skeleton and apply the pruning rules."""

    name = "skeleton"

    def run(self, ctx: FlowContext, state: CandidateState) -> None:
        try:
            state.topology = build_topology_skeleton(
                state.assignment, ctx.graph, ctx.library, ctx.config,
                ctx.core_centers,
            )
        except PathComputationError as exc:
            raise StageFailure(str(exc))


@register_stage
class RoutingStage(Stage):
    """Deadlock-free, constraint-respecting paths (Sec. VI / Algorithm 3)."""

    name = "routing"

    def run(self, ctx: FlowContext, state: CandidateState) -> None:
        try:
            compute_paths(
                state.topology, ctx.graph, ctx.library, ctx.config,
                ctx.core_centers,
            )
        except PathComputationError as exc:
            raise StageFailure(str(exc))


@register_stage
class PlacementLPStage(Stage):
    """Optimise switch positions with the Sec. VII LP."""

    name = "placement_lp"

    def run(self, ctx: FlowContext, state: CandidateState) -> None:
        die_w, die_h = ctx.die_bounds
        optimise_switch_positions(
            state.topology, ctx.core_centers, die_w, die_h
        )


def vertical_link_specs(
    topology: Topology, floorplan: ChipFloorplan, core_spec: CoreSpec
) -> List[VerticalLinkSpec]:
    """Multi-layer links needing explicit intermediate TSV macros.

    Every such link is anchored at its top endpoint's placed position; a
    missing endpoint is a synthesis bug, not a default-to-origin situation.
    """
    specs: List[VerticalLinkSpec] = []
    for link in topology.links:
        if link.layers_crossed < 2:
            continue
        top_ep = link.src if link.src_layer > link.dst_layer else link.dst
        kind, index = top_ep
        name = f"sw{index}" if kind == "switch" else core_spec[index].name
        if not floorplan.has(name):
            raise SynthesisError(
                f"vertical link {link.id} endpoint {name!r} is missing from "
                "the floorplan; cannot anchor its TSV macro stack"
            )
        specs.append(
            VerticalLinkSpec(
                name=f"link{link.id}",
                lo_layer=link.lo_layer,
                hi_layer=link.hi_layer,
                top_center=floorplan.center_of(name),
            )
        )
    return specs


@register_stage
class FloorplanStage(Stage):
    """Insert switches and TSV macros into the input core floorplan, then
    recompute positions and wire lengths from the final placement."""

    name = "floorplan"

    def run(self, ctx: FlowContext, state: CandidateState) -> None:
        floorplan = self._insert_noc(ctx, state.topology)
        state.floorplan = floorplan
        state.final_centers = {
            i: floorplan.center_of(core.name)
            for i, core in enumerate(ctx.core_spec)
        }
        for sw in state.topology.switches:
            name = f"sw{sw.id}"
            if floorplan.has(name):
                sw.x, sw.y = floorplan.center_of(name)
        link_lengths_from_positions(state.topology, state.final_centers)

    def _insert_noc(self, ctx: FlowContext, topology: Topology) -> ChipFloorplan:
        floorplan = ChipFloorplan()
        num_layers = max(ctx.core_spec.num_layers, 1)
        for layer in range(num_layers):
            existing = [
                PlacedComponent(
                    name=core.name,
                    kind="core",
                    rect=Rect(core.x, core.y, core.width, core.height),
                    layer=layer,
                )
                for core in ctx.core_spec.cores_in_layer(layer)
            ]
            new_components = []
            for sw in topology.switches:
                if sw.layer != layer:
                    continue
                side = math.sqrt(
                    ctx.library.switch.area_mm2(
                        max(sw.size, ctx.library.switch.min_ports)
                    )
                )
                new_components.append(
                    NewComponent(
                        name=f"sw{sw.id}",
                        kind="switch",
                        width=side,
                        height=side,
                        ideal_center=(sw.x, sw.y),
                    )
                )
            if new_components:
                if ctx.config.floorplanner == "custom":
                    placed = insert_components(
                        existing,
                        new_components,
                        search_radius=ctx.config.search_radius_mm,
                        grid_step=ctx.config.grid_step_mm,
                    )
                else:
                    placed = constrained_insert(
                        existing, new_components, seed=ctx.config.seed,
                        restarts=ctx.config.floorplan_restarts,
                        jobs=ctx.config.floorplan_jobs,
                    )
            else:
                placed = existing
            for comp in placed:
                floorplan.add(comp)

        vertical_specs = vertical_link_specs(topology, floorplan, ctx.core_spec)
        if vertical_specs:
            floorplan = place_tsv_macros(
                floorplan,
                vertical_specs,
                ctx.library.tsv,
                ctx.config.link_width_bits,
                search_radius=ctx.config.search_radius_mm,
                grid_step=ctx.config.grid_step_mm,
            )
        return floorplan


@register_stage
class LatencyVerifyStage(Stage):
    """Re-check every flow's latency constraint on final wire lengths."""

    name = "verify"

    def run(self, ctx: FlowContext, state: CandidateState) -> None:
        for (src, dst), flow in ctx.graph.edges.items():
            latency = flow_latency_cycles(
                state.topology, (src, dst), ctx.library
            )
            if latency > flow.latency + 1e-9:
                raise StageFailure(
                    f"flow ({src}, {dst}) misses its latency constraint "
                    f"after floorplanning ({latency:.2f} > {flow.latency:g})"
                )


@register_stage
class MetricsStage(Stage):
    """Evaluate power / latency / area and emit the design point."""

    name = "metrics"

    def run(self, ctx: FlowContext, state: CandidateState) -> None:
        metrics = compute_metrics(
            state.topology, state.final_centers, ctx.library
        )
        state.point = DesignPoint(
            assignment=state.assignment,
            topology=state.topology,
            floorplan=state.floorplan,
            metrics=metrics,
            config=ctx.config,
        )


#: The standard Fig. 3 stage sequence.
DEFAULT_STAGE_NAMES: Tuple[str, ...] = (
    "precheck",
    "skeleton",
    "routing",
    "placement_lp",
    "floorplan",
    "verify",
    "metrics",
)


def build_pipeline(
    stages: Optional[Sequence[Union[str, Stage]]] = None,
    overrides: Optional[Mapping[str, Union[Stage, Type[Stage]]]] = None,
) -> "Pipeline":
    """Build a pipeline from registry names and/or stage instances.

    Args:
        stages: Stage names (registry lookups) or ready instances, in
            execution order; defaults to :data:`DEFAULT_STAGE_NAMES`.
        overrides: ``{name: replacement}`` applied after resolution — the
            hook for substituting a single stage (e.g. a custom
            floorplanner) while keeping the standard sequence.
    """
    resolved: List[Stage] = []
    for item in (stages if stages is not None else DEFAULT_STAGE_NAMES):
        if isinstance(item, Stage):
            resolved.append(item)
        elif isinstance(item, str):
            if item not in STAGE_REGISTRY:
                raise SynthesisError(
                    f"unknown stage {item!r}; registered: "
                    f"{', '.join(sorted(STAGE_REGISTRY))}"
                )
            resolved.append(STAGE_REGISTRY[item]())
        else:
            raise SynthesisError(f"stage must be a name or Stage, got {item!r}")
    if overrides:
        by_name = {stage.name: i for i, stage in enumerate(resolved)}
        for name, replacement in overrides.items():
            if name not in by_name:
                raise SynthesisError(
                    f"cannot override stage {name!r}: not in the pipeline"
                )
            stage = replacement() if isinstance(replacement, type) else replacement
            resolved[by_name[name]] = stage
    return Pipeline(resolved)


class Pipeline:
    """An ordered stage sequence evaluating one candidate at a time."""

    def __init__(self, stages: Sequence[Stage]) -> None:
        if not stages:
            raise SynthesisError("a pipeline needs at least one stage")
        self.stages: Tuple[Stage, ...] = tuple(stages)

    @property
    def stage_names(self) -> Tuple[str, ...]:
        return tuple(stage.name for stage in self.stages)

    def evaluate(
        self,
        ctx: FlowContext,
        assignment: Assignment,
        timings: Optional[StageTimings] = None,
    ) -> CandidateState:
        """Run every stage on a fresh state; stop at the first rejection."""
        state = CandidateState(assignment=assignment)
        for stage in self.stages:
            start = time.perf_counter()
            try:
                stage.run(ctx, state)
            except StageFailure as exc:
                state.failed_stage = stage.name
                state.failure_reason = str(exc)
            finally:
                elapsed = time.perf_counter() - start
                state.stage_seconds[stage.name] = (
                    state.stage_seconds.get(stage.name, 0.0) + elapsed
                )
                if timings is not None:
                    timings.add(stage.name, elapsed)
            if state.failed_stage is not None:
                break
        return state


# --------------------------------------------------------------------------
# candidate queue driver and requeue policies
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class CandidateRequest:
    """One queued candidate: a built assignment plus its sweep provenance."""

    assignment: Assignment
    count: int
    theta: Optional[float] = None

    @property
    def key(self) -> Tuple[object, ...]:
        phase = self.assignment.phase if self.assignment is not None else "?"
        return (phase, self.count, self.theta)


class CandidatePolicy:
    """Candidate generation + requeue policy for the queue driver."""

    def initial_requests(self, ctx: FlowContext) -> List[CandidateRequest]:
        raise NotImplementedError

    def next_round(
        self,
        ctx: FlowContext,
        requests: Sequence[CandidateRequest],
        outcomes: Sequence[CandidateOutcome],
    ) -> List[CandidateRequest]:
        raise NotImplementedError

    def finalize(self, ctx: FlowContext, result: SynthesisResult) -> None:
        pass


class Phase1ThetaRequeuePolicy(CandidatePolicy):
    """Algorithm 1: PG candidates per switch count; failed counts requeue
    as SPG candidates over the θ sweep (the Unmet-set retry, Steps 11-19)."""

    def __init__(self) -> None:
        self._theta_iter = None
        self._unmet: Tuple[int, ...] = ()

    def initial_requests(self, ctx: FlowContext) -> List[CandidateRequest]:
        self._theta_iter = iter(ctx.config.theta_values())
        lo, hi = switch_count_bounds(ctx.graph, ctx.config)
        return [
            CandidateRequest(
                phase1_candidate(ctx.graph, ctx.config, count), count
            )
            for count in range(lo, hi + 1)
        ]

    def next_round(self, ctx, requests, outcomes) -> List[CandidateRequest]:
        failed = [
            req for req, out in zip(requests, outcomes) if out.point is None
        ]
        if not failed:
            return []
        try:
            theta = next(self._theta_iter)
        except StopIteration:
            self._unmet = tuple(sorted({req.count for req in failed}))
            return []
        return [
            CandidateRequest(
                phase1_scaled_candidate(ctx.graph, ctx.config, req.count, theta),
                req.count,
                theta,
            )
            for req in failed
        ]

    def finalize(self, ctx: FlowContext, result: SynthesisResult) -> None:
        result.unmet_switch_counts = sorted(
            set(result.unmet_switch_counts) | set(self._unmet)
        )


class Phase2SingleRoundPolicy(CandidatePolicy):
    """Algorithm 2: one round over all layer-local candidates. A switch
    count is unmet only if *no* candidate at that count produced a point."""

    def __init__(self) -> None:
        self._met: set = set()
        self._failed: set = set()

    def initial_requests(self, ctx: FlowContext) -> List[CandidateRequest]:
        return [
            CandidateRequest(assignment, assignment.num_switches)
            for assignment in phase2_candidates(
                ctx.graph, ctx.config, ctx.library
            )
        ]

    def next_round(self, ctx, requests, outcomes) -> List[CandidateRequest]:
        for req, out in zip(requests, outcomes):
            if out.point is not None:
                self._met.add(req.count)
            else:
                self._failed.add(req.count)
        return []

    def finalize(self, ctx: FlowContext, result: SynthesisResult) -> None:
        unmet = self._failed - self._met
        if unmet:
            result.unmet_switch_counts = sorted(
                set(result.unmet_switch_counts) | unmet
            )


#: Batch evaluator: requests in, outcomes out (submission order preserved).
BatchEvaluator = Callable[[Sequence[CandidateRequest]], List[CandidateOutcome]]


def run_candidate_queue(
    ctx: FlowContext,
    policy: CandidatePolicy,
    evaluate_batch: BatchEvaluator,
    result: SynthesisResult,
) -> None:
    """The generic round-based driver shared by both phases.

    Each round's candidates are evaluated as one batch (serially or fanned
    across the engine pool) and merged in submission order, so point order
    — round by round, then switch count within a round — is identical to
    the historical serial loops.
    """
    requests = policy.initial_requests(ctx)
    while requests:
        outcomes = evaluate_batch(requests)
        for outcome in outcomes:
            if outcome.point is not None:
                result.points.append(outcome.point)
        requests = policy.next_round(ctx, requests, outcomes)
    policy.finalize(ctx, result)


# --------------------------------------------------------------------------
# batch evaluation (serial / engine fan-out) and the run entry point
# --------------------------------------------------------------------------

def _make_batch_evaluator(
    ctx: FlowContext,
    pipeline: Pipeline,
    jobs: Optional[int],
    progress: Optional[ProgressFn],
    timings: Optional[StageTimings],
    retry=None,
    task_timeout_s: Optional[float] = None,
    on_error: str = "raise",
    quarantine_log: Optional[List] = None,
) -> BatchEvaluator:
    def serial(requests: Sequence[CandidateRequest]) -> List[CandidateOutcome]:
        outcomes: List[CandidateOutcome] = []
        total = len(requests)
        for i, req in enumerate(requests):
            state = pipeline.evaluate(ctx, req.assignment, timings)
            outcomes.append(state.outcome())
            if progress is not None:
                progress(i + 1, total, req.key)
        return outcomes

    if jobs == 1:
        return serial

    import uuid

    context_token = uuid.uuid4().hex

    def parallel(requests: Sequence[CandidateRequest]) -> List[CandidateOutcome]:
        if len(requests) <= 1:
            return serial(requests)
        # Imported lazily: repro.engine depends on repro.core, not vice versa.
        from repro.engine.executor import run_tasks
        from repro.engine.tasks import CandidateTask, release_context, seed_context

        tasks = [
            CandidateTask(
                key=req.key,
                core_spec=ctx.core_spec,
                comm_spec=ctx.comm_spec,
                config=ctx.config,
                assignment=req.assignment,
                library=ctx.library,
                stages=pipeline.stages,
                context_token=context_token,
            )
            for req in requests
        ]
        seed_context(context_token, ctx)
        try:
            results = run_tasks(
                tasks, jobs=jobs, progress=progress,
                retry=retry, task_timeout_s=task_timeout_s,
                on_error=on_error,
            )
        finally:
            release_context(context_token)
        outcomes = []
        for task_result in results:
            if task_result.error is not None:
                # A quarantined/timed-out candidate (on_error="quarantine")
                # becomes a failed outcome, so the synthesis completes on
                # the surviving candidates.
                if quarantine_log is not None:
                    quarantine_log.append(
                        (task_result.key, str(task_result.error))
                    )
                outcomes.append(CandidateOutcome(
                    failed_stage="supervision",
                    failure_reason=str(task_result.error),
                ))
            else:
                outcomes.append(task_result.result)
        if timings is not None:
            for outcome in outcomes:
                timings.merge(outcome.stage_seconds)
        return outcomes

    return parallel


def run_synthesis(
    ctx: FlowContext,
    *,
    pipeline: Optional[Pipeline] = None,
    jobs: Optional[int] = 1,
    progress: Optional[ProgressFn] = None,
    timings: Optional[StageTimings] = None,
    retry=None,
    task_timeout_s: Optional[float] = None,
    on_error: str = "raise",
    quarantine_log: Optional[List] = None,
) -> SynthesisResult:
    """Run the configured flow and return all valid design points.

    Args:
        ctx: The run context (see :meth:`FlowContext.build`).
        pipeline: Stage sequence; default :func:`build_pipeline`.
        jobs: Candidate-evaluation worker processes — ``1`` (default)
            serial, ``None``/``0`` one per CPU, ``n >= 2`` a pool of n.
            Results are bit-identical regardless of ``jobs``.
        progress: Optional per-candidate callback
            ``(done_in_round, round_total, key)``.
        timings: Optional :class:`StageTimings` accumulator to fill.
        retry / task_timeout_s / on_error: Supervision knobs of the
            candidate fan-out (parallel runs; see
            :func:`repro.engine.run_tasks`). Under
            ``on_error="quarantine"`` a candidate lost to a worker crash
            or deadline is treated as a failed candidate, not a fatal
            error.
        quarantine_log: Optional list collecting ``(key, message)`` pairs
            for candidates lost to supervision.
    """
    pipeline = pipeline if pipeline is not None else build_pipeline()
    evaluate_batch = _make_batch_evaluator(
        ctx, pipeline, jobs, progress, timings,
        retry=retry, task_timeout_s=task_timeout_s, on_error=on_error,
        quarantine_log=quarantine_log,
    )
    result = SynthesisResult()
    phase = ctx.config.phase
    if phase in ("auto", "phase1"):
        run_candidate_queue(ctx, Phase1ThetaRequeuePolicy(), evaluate_batch, result)
    if phase == "phase2" or (phase == "auto" and result.is_empty):
        run_candidate_queue(ctx, Phase2SingleRoundPolicy(), evaluate_batch, result)
    return result
