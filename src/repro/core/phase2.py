"""Phase 2 core-to-switch connectivity (Algorithm 2, layer-by-layer).

Cores connect only to switches in their own layer; switches link only within
a layer or to adjacent layers. Each layer starts with the minimum number of
switches its core count requires at the target frequency
(``ceil(cores / max_sw_size)``, Steps 2-4) and all layers grow together by
one switch per iteration (pruning rule 2 of Sec. V-C), capped at one switch
per core.
"""

from __future__ import annotations

import math
from typing import Iterator, List

from repro.core.assignment import Assignment
from repro.core.config import SynthesisConfig
from repro.core.partition_graphs import build_lpg
from repro.errors import SynthesisError
from repro.graphs.comm_graph import CommGraph
from repro.graphs.partition import kway_min_cut
from repro.models.library import NocLibrary


def minimum_switches_per_layer(
    graph: CommGraph, config: SynthesisConfig, library: NocLibrary
) -> List[int]:
    """``ni_j = ceil(cores_in_layer_j / max_sw_size)`` (Steps 2-4)."""
    max_size = library.switch.max_switch_size(config.frequency_mhz)
    counts = []
    for layer in range(graph.num_layers):
        n_cores = sum(1 for l in graph.layers if l == layer)
        if n_cores == 0:
            raise SynthesisError(f"layer {layer} has no cores")
        counts.append(max(1, math.ceil(n_cores / max_size)))
    return counts


def phase2_candidate(
    graph: CommGraph,
    config: SynthesisConfig,
    library: NocLibrary,
    increment: int,
) -> Assignment:
    """The Phase 2 assignment at iteration ``increment`` of Algorithm 2."""
    base = minimum_switches_per_layer(graph, config, library)
    blocks: List[tuple] = []
    layers: List[int] = []
    for layer in range(graph.num_layers):
        members, weights = build_lpg(graph, layer, config.alpha)
        np_ = min(base[layer] + increment, len(members))
        local_blocks = kway_min_cut(
            len(members), weights, np_, seed=config.seed
        )
        for block in local_blocks:
            blocks.append(tuple(members[l] for l in block))
            layers.append(layer)
    return Assignment(
        blocks=tuple(tuple(sorted(b)) for b in blocks),
        switch_layers=tuple(layers),
        phase="phase2",
    )


def phase2_candidates(
    graph: CommGraph, config: SynthesisConfig, library: NocLibrary
) -> Iterator[Assignment]:
    """All Phase 2 candidates (Step 6 loop), respecting switch_count_range."""
    base = minimum_switches_per_layer(graph, config, library)
    layer_sizes = [
        sum(1 for l in graph.layers if l == layer)
        for layer in range(graph.num_layers)
    ]
    max_increment = max(
        size - ni for size, ni in zip(layer_sizes, base)
    )
    for increment in range(0, max_increment + 1):
        candidate = phase2_candidate(graph, config, library, increment)
        if config.switch_count_range is not None:
            lo, hi = config.switch_count_range
            if not lo <= candidate.num_switches <= hi:
                continue
        yield candidate
