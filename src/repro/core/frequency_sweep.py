"""Architectural-parameter sweep: the outer loop of Fig. 3.

"The NoC architectural parameters, such as frequency of operation, are
varied and the topology design process is repeated for each architectural
point." (Sec. IV) — and "a range of frequencies can also be swept by the
tool to explore more design points" (Sec. VIII-A).

:func:`sweep_frequencies` runs the full synthesis per frequency and merges
the design points into one result; :func:`find_lowest_feasible_frequency`
reproduces the paper's observation that "the best power points are obtained
for topologies designed at the lowest possible operating frequency" (found
to be 400 MHz for D_26_media).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import SynthesisConfig
from repro.core.design_point import DesignPoint, SynthesisResult
from repro.core.synthesis import SunFloor3D
from repro.errors import SynthesisError
from repro.models.library import NocLibrary
from repro.spec.comm_spec import CommSpec
from repro.spec.core_spec import CoreSpec
from repro.units import link_capacity_mbps


@dataclass
class FrequencySweepResult:
    """Per-frequency synthesis results, merged."""

    per_frequency: Dict[float, SynthesisResult] = field(default_factory=dict)

    @property
    def frequencies(self) -> List[float]:
        return sorted(self.per_frequency)

    def all_points(self) -> List[DesignPoint]:
        points: List[DesignPoint] = []
        for freq in self.frequencies:
            points.extend(self.per_frequency[freq].points)
        return points

    def best_power(self) -> DesignPoint:
        points = self.all_points()
        if not points:
            raise SynthesisError("no valid design point at any frequency")
        return min(points, key=lambda p: (p.total_power_mw, p.switch_count))

    def best_power_per_frequency(self) -> Dict[float, Optional[DesignPoint]]:
        out: Dict[float, Optional[DesignPoint]] = {}
        for freq, result in self.per_frequency.items():
            out[freq] = result.best_power() if result.points else None
        return out


def minimum_feasible_frequency(
    comm_spec: CommSpec, width_bits: int
) -> float:
    """Lower bound on the NoC frequency from single-flow bandwidth.

    A flow must fit on one link, so ``f >= bw_max / (width/8)`` MHz. (Shared
    links may require more; the sweep discovers that.)
    """
    max_bw = comm_spec.max_bandwidth
    bytes_per_flit = width_bits / 8.0
    return max_bw / bytes_per_flit


def sweep_frequencies(
    core_spec: CoreSpec,
    comm_spec: CommSpec,
    frequencies_mhz: Sequence[float],
    library: Optional[NocLibrary] = None,
    config: Optional[SynthesisConfig] = None,
) -> FrequencySweepResult:
    """Run the synthesis flow once per frequency."""
    base = config if config is not None else SynthesisConfig()
    sweep = FrequencySweepResult()
    for freq in frequencies_mhz:
        if freq <= 0:
            raise SynthesisError(f"frequency must be positive, got {freq}")
        cfg = base.with_(frequency_mhz=float(freq))
        if comm_spec.max_bandwidth > link_capacity_mbps(cfg.link_width_bits, freq):
            # No single link can carry the largest flow: skip the point.
            sweep.per_frequency[float(freq)] = SynthesisResult()
            continue
        tool = SunFloor3D(core_spec, comm_spec, library, cfg)
        sweep.per_frequency[float(freq)] = tool.synthesize()
    return sweep


def sweep_alpha(
    core_spec: CoreSpec,
    comm_spec: CommSpec,
    alphas: Sequence[float],
    library: Optional[NocLibrary] = None,
    config: Optional[SynthesisConfig] = None,
) -> Dict[float, SynthesisResult]:
    """Sweep the PG weight parameter α of Def. 3.

    "The parameter α can be set by the designer based on the application
    characteristics or swept by the tool over a range of values, in order to
    meet the latency constraints." Smaller α weights latency-critical flows
    more heavily during partitioning.
    """
    base = config if config is not None else SynthesisConfig()
    out: Dict[float, SynthesisResult] = {}
    for alpha in alphas:
        cfg = base.with_(alpha=float(alpha))
        tool = SunFloor3D(core_spec, comm_spec, library, cfg)
        out[float(alpha)] = tool.synthesize()
    return out


def sweep_link_widths(
    core_spec: CoreSpec,
    comm_spec: CommSpec,
    widths_bits: Sequence[int],
    library: Optional[NocLibrary] = None,
    config: Optional[SynthesisConfig] = None,
) -> Dict[int, SynthesisResult]:
    """Sweep the link data width (an architectural parameter of Sec. IV).

    Wider links raise capacity (fewer parallel links, lower flit rates) but
    cost proportionally more wires and TSVs per link — "for a particular
    link width, the maximum number of links can be directly determined from
    the TSV constraints", so the effective ``max_ill`` shrinks as width
    grows. The caller is responsible for adjusting ``max_ill`` per width if
    a fixed TSV budget is to be modelled; this sweep keeps the configured
    ``max_ill`` constant and varies only the width.
    """
    base = config if config is not None else SynthesisConfig()
    out: Dict[int, SynthesisResult] = {}
    for width in widths_bits:
        if width <= 0:
            raise SynthesisError(f"link width must be positive, got {width}")
        cfg = base.with_(link_width_bits=int(width))
        if comm_spec.max_bandwidth > link_capacity_mbps(width, cfg.frequency_mhz):
            out[int(width)] = SynthesisResult()
            continue
        tool = SunFloor3D(core_spec, comm_spec, library, cfg)
        out[int(width)] = tool.synthesize()
    return out


def find_lowest_feasible_frequency(
    core_spec: CoreSpec,
    comm_spec: CommSpec,
    frequencies_mhz: Sequence[float],
    library: Optional[NocLibrary] = None,
    config: Optional[SynthesisConfig] = None,
) -> float:
    """The smallest swept frequency with at least one valid design point."""
    sweep = sweep_frequencies(
        core_spec, comm_spec, sorted(frequencies_mhz), library, config
    )
    for freq in sweep.frequencies:
        if sweep.per_frequency[freq].points:
            return freq
    raise SynthesisError(
        f"no frequency in {sorted(frequencies_mhz)} admits a valid design"
    )
