"""Architectural-parameter sweep: the outer loop of Fig. 3.

"The NoC architectural parameters, such as frequency of operation, are
varied and the topology design process is repeated for each architectural
point." (Sec. IV) — and "a range of frequencies can also be swept by the
tool to explore more design points" (Sec. VIII-A).

:func:`sweep_frequencies` runs the full synthesis per frequency and merges
the design points into one result; :func:`find_lowest_feasible_frequency`
reproduces the paper's observation that "the best power points are obtained
for topologies designed at the lowest possible operating frequency" (found
to be 400 MHz for D_26_media).

Every sweep here runs on the :mod:`repro.engine` executor: pass ``jobs``
(``1`` = serial, the default; ``0``/``None`` = one worker per CPU) to fan
the independent synthesis points across a process pool, and ``progress``
for per-point callbacks. Sweep parameters are validated *up front* — an
invalid value anywhere in the list aborts before any point is synthesized —
and parallel runs merge deterministically, point for point identical to a
serial run. Pass ``store`` (a :class:`~repro.engine.store.ResultStore`) to
serve already-computed points from disk and checkpoint fresh ones as they
finish — an interrupted sweep rerun with the same store resumes instead of
recomputing, with bit-identical merged results.

Fault tolerance rides on the engine's supervision layer: ``retry=`` (a
:class:`~repro.engine.supervise.RetryPolicy`) re-runs transiently failing
points, ``task_timeout_s=`` bounds each point's wall clock, and
``on_error="quarantine"`` lets a sweep *complete* around a point that
crashes its worker — the casualty is excluded from the merged result (and
reported in ``FrequencySweepResult.quarantined``) instead of aborting the
campaign. See ``docs/engine.md`` ("Failure semantics").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import SynthesisConfig
from repro.core.design_point import DesignPoint, SynthesisResult
from repro.engine.executor import ProgressFn, run_tasks
from repro.engine.grid import ParameterGrid, build_tasks
from repro.errors import SynthesisError
from repro.models.library import NocLibrary
from repro.spec.comm_spec import CommSpec
from repro.spec.core_spec import CoreSpec


@dataclass
class FrequencySweepResult:
    """Per-frequency synthesis results, merged.

    ``quarantined`` maps frequencies whose point was lost to supervision
    (worker crash, deadline expiry) under ``on_error="quarantine"`` to the
    error message; those frequencies are absent from ``per_frequency``.

    ``stage_cache`` aggregates the per-stage hit/miss/bytes counters of a
    stage-cached sweep (``{stage: {hits, misses, ...}}``, empty when stage
    caching was off — see :mod:`repro.engine.stagecache`).
    """

    per_frequency: Dict[float, SynthesisResult] = field(default_factory=dict)
    quarantined: Dict[float, str] = field(default_factory=dict)
    stage_cache: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def frequencies(self) -> List[float]:
        return sorted(self.per_frequency)

    def all_points(self) -> List[DesignPoint]:
        points: List[DesignPoint] = []
        for freq in self.frequencies:
            points.extend(self.per_frequency[freq].points)
        return points

    def best_power(self) -> DesignPoint:
        points = self.all_points()
        if not points:
            raise SynthesisError("no valid design point at any frequency")
        # Frequency joins the key so equal-power ties resolve to the lowest
        # frequency deterministically, not by dict insertion order.
        return min(
            points,
            key=lambda p: (
                p.total_power_mw, p.switch_count, p.config.frequency_mhz
            ),
        )

    def best_power_per_frequency(self) -> Dict[float, Optional[DesignPoint]]:
        out: Dict[float, Optional[DesignPoint]] = {}
        for freq, result in self.per_frequency.items():
            out[freq] = result.best_power() if result.points else None
        return out


def minimum_feasible_frequency(
    comm_spec: CommSpec, width_bits: int
) -> float:
    """Lower bound on the NoC frequency from single-flow bandwidth.

    A flow must fit on one link, so ``f >= bw_max / (width/8)`` MHz. (Shared
    links may require more; the sweep discovers that.)
    """
    max_bw = comm_spec.max_bandwidth
    bytes_per_flit = width_bits / 8.0
    return max_bw / bytes_per_flit


def sweep_frequencies(
    core_spec: CoreSpec,
    comm_spec: CommSpec,
    frequencies_mhz: Sequence[float],
    library: Optional[NocLibrary] = None,
    config: Optional[SynthesisConfig] = None,
    *,
    jobs: Optional[int] = 1,
    progress: Optional[ProgressFn] = None,
    store=None,
    retry=None,
    task_timeout_s: Optional[float] = None,
    on_error: str = "raise",
    stage_cache_dir: Optional[str] = None,
    stage_cache_salt: Optional[str] = None,
) -> FrequencySweepResult:
    """Run the synthesis flow once per frequency (in parallel for jobs != 1).

    All frequencies are validated before any synthesis starts, so a bad
    value midway through the list cannot discard already-computed points.
    Frequencies whose link capacity cannot carry the largest single flow
    are merged as empty results, as before. ``retry`` / ``task_timeout_s``
    / ``on_error`` are the engine's supervision knobs (see
    :func:`repro.engine.run_tasks`); under ``on_error="quarantine"`` lost
    points land in ``FrequencySweepResult.quarantined``.

    ``stage_cache_dir`` (usually the store directory) arms per-stage
    memoization: only the frequency-sensitive stages re-run per point,
    everything else is served from disk with bit-identical results; the
    per-stage counters land in ``FrequencySweepResult.stage_cache``.
    """
    freqs = [float(f) for f in frequencies_mhz]
    bad = [f for f in freqs if f <= 0]
    if bad:
        raise SynthesisError(
            f"frequency must be positive, got {bad[0]}"
            + (f" (and {len(bad) - 1} more invalid values)" if len(bad) > 1 else "")
        )
    base = config if config is not None else SynthesisConfig()
    tasks = build_tasks(
        core_spec, comm_spec, ParameterGrid(frequencies_mhz=tuple(freqs)),
        base, library,
        stage_cache_dir=stage_cache_dir, stage_cache_salt=stage_cache_salt,
    )
    results = run_tasks(
        tasks, jobs=jobs, progress=progress, store=store,
        retry=retry, task_timeout_s=task_timeout_s, on_error=on_error,
    )
    sweep = FrequencySweepResult()
    for freq, task_result in zip(freqs, results):
        if task_result.error is not None:
            sweep.quarantined[freq] = str(task_result.error)
        else:
            sweep.per_frequency[freq] = task_result.result
        if task_result.stage_cache:
            from repro.engine.stagecache import merge_stage_stats

            merge_stage_stats(sweep.stage_cache, task_result.stage_cache)
    return sweep


def sweep_alpha(
    core_spec: CoreSpec,
    comm_spec: CommSpec,
    alphas: Sequence[float],
    library: Optional[NocLibrary] = None,
    config: Optional[SynthesisConfig] = None,
    *,
    jobs: Optional[int] = 1,
    progress: Optional[ProgressFn] = None,
    store=None,
    retry=None,
    task_timeout_s: Optional[float] = None,
    on_error: str = "raise",
    stage_cache_dir: Optional[str] = None,
    stage_cache_salt: Optional[str] = None,
) -> Dict[float, SynthesisResult]:
    """Sweep the PG weight parameter α of Def. 3.

    "The parameter α can be set by the designer based on the application
    characteristics or swept by the tool over a range of values, in order to
    meet the latency constraints." Smaller α weights latency-critical flows
    more heavily during partitioning. Under ``on_error="quarantine"`` lost
    points are absent from the returned dict.
    """
    values = [float(a) for a in alphas]
    base = config if config is not None else SynthesisConfig()
    # No feasibility skip here: α does not change link capacity, and the
    # serial sweep always ran every point.
    tasks = build_tasks(
        core_spec, comm_spec, ParameterGrid(alphas=tuple(values)),
        base, library, skip_infeasible=False,
        stage_cache_dir=stage_cache_dir, stage_cache_salt=stage_cache_salt,
    )
    results = run_tasks(
        tasks, jobs=jobs, progress=progress, store=store,
        retry=retry, task_timeout_s=task_timeout_s, on_error=on_error,
    )
    return {
        alpha: task_result.result
        for alpha, task_result in zip(values, results)
        if task_result.error is None
    }


def sweep_link_widths(
    core_spec: CoreSpec,
    comm_spec: CommSpec,
    widths_bits: Sequence[int],
    library: Optional[NocLibrary] = None,
    config: Optional[SynthesisConfig] = None,
    *,
    jobs: Optional[int] = 1,
    progress: Optional[ProgressFn] = None,
    store=None,
    retry=None,
    task_timeout_s: Optional[float] = None,
    on_error: str = "raise",
    stage_cache_dir: Optional[str] = None,
    stage_cache_salt: Optional[str] = None,
) -> Dict[int, SynthesisResult]:
    """Sweep the link data width (an architectural parameter of Sec. IV).

    Wider links raise capacity (fewer parallel links, lower flit rates) but
    cost proportionally more wires and TSVs per link — "for a particular
    link width, the maximum number of links can be directly determined from
    the TSV constraints", so the effective ``max_ill`` shrinks as width
    grows. The caller is responsible for adjusting ``max_ill`` per width if
    a fixed TSV budget is to be modelled; this sweep keeps the configured
    ``max_ill`` constant and varies only the width.
    """
    widths = [int(w) for w in widths_bits]
    bad_widths = [w for w in widths if w <= 0]
    if bad_widths:
        raise SynthesisError(
            f"link width must be positive, got {bad_widths[0]}"
        )
    base = config if config is not None else SynthesisConfig()
    tasks = build_tasks(
        core_spec, comm_spec, ParameterGrid(link_widths_bits=tuple(widths)),
        base, library,
        stage_cache_dir=stage_cache_dir, stage_cache_salt=stage_cache_salt,
    )
    results = run_tasks(
        tasks, jobs=jobs, progress=progress, store=store,
        retry=retry, task_timeout_s=task_timeout_s, on_error=on_error,
    )
    return {
        width: task_result.result
        for width, task_result in zip(widths, results)
        if task_result.error is None
    }


def find_lowest_feasible_frequency(
    core_spec: CoreSpec,
    comm_spec: CommSpec,
    frequencies_mhz: Sequence[float],
    library: Optional[NocLibrary] = None,
    config: Optional[SynthesisConfig] = None,
    *,
    jobs: Optional[int] = 1,
    progress: Optional[ProgressFn] = None,
    store=None,
    retry=None,
    task_timeout_s: Optional[float] = None,
    on_error: str = "raise",
    stage_cache_dir: Optional[str] = None,
    stage_cache_salt: Optional[str] = None,
) -> float:
    """The smallest swept frequency with at least one valid design point."""
    sweep = sweep_frequencies(
        core_spec, comm_spec, sorted(frequencies_mhz), library, config,
        jobs=jobs, progress=progress, store=store,
        retry=retry, task_timeout_s=task_timeout_s, on_error=on_error,
        stage_cache_dir=stage_cache_dir, stage_cache_salt=stage_cache_salt,
    )
    for freq in sweep.frequencies:
        if sweep.per_frequency[freq].points:
            return freq
    raise SynthesisError(
        f"no frequency in {sorted(frequencies_mhz)} admits a valid design"
    )
