"""Core-to-switch connectivity assignments (outputs of Algorithms 1 and 2).

An :class:`Assignment` fixes, for one candidate design point, how many
switches exist, which cores attach to each switch, and the 3-D layer of
every switch (Step 7 of Algorithm 1: the mean of the attached cores' layers,
or alternatively their majority layer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import SynthesisError
from repro.graphs.comm_graph import CommGraph


@dataclass(frozen=True)
class Assignment:
    """One core-to-switch connectivity candidate.

    Attributes:
        blocks: ``blocks[s]`` lists the core indices attached to switch s.
        switch_layers: ``switch_layers[s]`` is the 3-D layer of switch s.
        phase: "phase1" or "phase2" (provenance, for reporting).
        theta: The SPG scaling parameter used, if any (Phase 1 retries).
    """

    blocks: tuple
    switch_layers: tuple
    phase: str
    theta: Optional[float] = None

    def __post_init__(self) -> None:
        if len(self.blocks) != len(self.switch_layers):
            raise SynthesisError("blocks and switch_layers length mismatch")
        seen = set()
        for block in self.blocks:
            for core in block:
                if core in seen:
                    raise SynthesisError(f"core {core} assigned to two switches")
                seen.add(core)

    @property
    def num_switches(self) -> int:
        return len(self.blocks)

    @property
    def core_to_switch(self) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for s, block in enumerate(self.blocks):
            for core in block:
                out[core] = s
        return out

    def describe(self) -> str:
        parts = [f"{self.phase}, {self.num_switches} switches"]
        if self.theta is not None:
            parts.append(f"theta={self.theta:g}")
        return ", ".join(parts)


def switch_layer_for_block(
    block: Sequence[int], core_layers: Sequence[int], mode: str
) -> int:
    """Layer assignment for one switch (Step 7 of Algorithm 1).

    ``mode="mean"``: the rounded average of the attached cores' layers.
    ``mode="majority"``: the layer containing most of the attached cores
    (ties broken towards the lower layer).
    """
    if not block:
        raise SynthesisError("cannot compute a layer for an empty block")
    if mode == "mean":
        avg = sum(core_layers[c] for c in block) / len(block)
        return int(round(avg))
    if mode == "majority":
        counts: Dict[int, int] = {}
        for c in block:
            counts[core_layers[c]] = counts.get(core_layers[c], 0) + 1
        best = max(sorted(counts), key=lambda l: counts[l])
        return best
    raise SynthesisError(f"unknown switch layer mode {mode!r}")


def assignment_from_blocks(
    blocks: Sequence[Sequence[int]],
    graph: CommGraph,
    mode: str,
    phase: str,
    theta: Optional[float] = None,
) -> Assignment:
    """Build an Assignment, computing each switch's layer from its cores."""
    layers = tuple(
        switch_layer_for_block(block, graph.layers, mode) for block in blocks
    )
    return Assignment(
        blocks=tuple(tuple(sorted(b)) for b in blocks),
        switch_layers=layers,
        phase=phase,
        theta=theta,
    )


def core_link_ill_usage(
    assignment: Assignment, graph: CommGraph
) -> Dict[tuple, int]:
    """Inter-layer link usage of the core-to-switch connections alone.

    Pruning rule 3 (Sec. V-C): "after partitioning, we evaluate the
    inter-layer links used to connect the cores to the switches, before
    finding the paths". Each core contributes an injection and an ejection
    link, each crossing every boundary between its layer and its switch's.
    """
    usage: Dict[tuple, int] = {}
    for s, block in enumerate(assignment.blocks):
        sw_layer = assignment.switch_layers[s]
        for core in block:
            lo = min(graph.layers[core], sw_layer)
            hi = max(graph.layers[core], sw_layer)
            for boundary in range(lo, hi):
                key = (boundary, boundary + 1)
                usage[key] = usage.get(key, 0) + 2  # injection + ejection
    return usage


def violates_ill_precheck(
    assignment: Assignment, graph: CommGraph, max_ill: int
) -> bool:
    """True if core links alone already exceed the max_ill constraint."""
    usage = core_link_ill_usage(assignment, graph)
    return any(count > max_ill for count in usage.values())
