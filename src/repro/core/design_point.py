"""Design points and synthesis results.

"The output of the topology synthesis procedure is a set of tradeoff points
of topologies that meet the constraints, with different values of power,
latency, and design area. From the resulting points, the designer can choose
the optimal point for the application." (Sec. IV)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.assignment import Assignment
from repro.core.config import SynthesisConfig
from repro.errors import SynthesisError
from repro.floorplan.placement import ChipFloorplan
from repro.noc.metrics import NocMetrics
from repro.noc.topology import Topology


@dataclass
class DesignPoint:
    """One valid synthesized design: topology + floorplan + metrics."""

    assignment: Assignment
    topology: Topology
    floorplan: ChipFloorplan
    metrics: NocMetrics
    config: SynthesisConfig

    @property
    def switch_count(self) -> int:
        return len(self.topology.switches)

    @property
    def phase(self) -> str:
        return self.assignment.phase

    @property
    def total_power_mw(self) -> float:
        return self.metrics.total_power_mw

    @property
    def avg_latency_cycles(self) -> float:
        return self.metrics.avg_latency_cycles

    @property
    def die_area_mm2(self) -> float:
        return self.floorplan.die_area_mm2()

    def objective_value(self) -> float:
        """The metric this run's objective ranks points by."""
        if self.config.objective == "latency":
            return self.metrics.avg_latency_cycles
        return self.metrics.total_power_mw

    def summary(self) -> str:
        m = self.metrics
        return (
            f"{self.phase} {self.switch_count}sw: "
            f"power {m.total_power_mw:.1f} mW "
            f"(sw {m.switch_power_mw:.1f} / s2s {m.sw2sw_link_power_mw:.1f} "
            f"/ c2s {m.core2sw_link_power_mw:.1f}), "
            f"latency {m.avg_latency_cycles:.2f} cyc, "
            f"area {self.die_area_mm2:.2f} mm^2, "
            f"vlinks {m.num_vertical_links} (max ill {m.max_ill_used})"
        )


@dataclass
class SynthesisResult:
    """All valid design points of one synthesis run."""

    points: List[DesignPoint] = field(default_factory=list)
    unmet_switch_counts: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    @property
    def is_empty(self) -> bool:
        return not self.points

    def best_power(self) -> DesignPoint:
        """The most power-efficient valid design point."""
        if not self.points:
            raise SynthesisError("no valid design points were found")
        return min(self.points, key=lambda p: (p.total_power_mw, p.switch_count))

    def best_latency(self) -> DesignPoint:
        if not self.points:
            raise SynthesisError("no valid design points were found")
        return min(
            self.points, key=lambda p: (p.avg_latency_cycles, p.total_power_mw)
        )

    def best(self, objective: Optional[str] = None) -> DesignPoint:
        """Best point under the given (or each point's own) objective."""
        if objective == "latency":
            return self.best_latency()
        if objective == "power" or objective is None:
            return self.best_power()
        raise SynthesisError(f"unknown objective {objective!r}")

    def by_switch_count(self, count: int) -> List[DesignPoint]:
        return [p for p in self.points if p.switch_count == count]

    def pareto_front(self) -> List[DesignPoint]:
        """Points not dominated in (power, latency, die area)."""
        front: List[DesignPoint] = []
        for p in self.points:
            dominated = False
            for q in self.points:
                if q is p:
                    continue
                if (
                    q.total_power_mw <= p.total_power_mw
                    and q.avg_latency_cycles <= p.avg_latency_cycles
                    and q.die_area_mm2 <= p.die_area_mm2
                    and (
                        q.total_power_mw < p.total_power_mw
                        or q.avg_latency_cycles < p.avg_latency_cycles
                        or q.die_area_mm2 < p.die_area_mm2
                    )
                ):
                    dominated = True
                    break
            if not dominated:
                front.append(p)
        return front
