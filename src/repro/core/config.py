"""Synthesis configuration: every knob of the Fig. 3 flow in one place.

Defaults follow the paper's experimental setup: 32-bit links, 400 MHz,
``max_ill`` = 25 (Sec. VIII-A), θ swept 1→15 in steps of 3 (Sec. V-A),
SOFT_INF ten times the maximum flow cost and ``soft_max_ill`` two to three
links under ``max_ill`` (Sec. VI).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.errors import SpecError

PHASES = ("auto", "phase1", "phase2")
LAYER_MODES = ("mean", "majority")
OBJECTIVES = ("power", "latency")


@dataclass(frozen=True)
class SynthesisConfig:
    """Configuration of one synthesis run.

    Attributes:
        frequency_mhz: NoC operating frequency for this architectural point.
        link_width_bits: Flit / link data width.
        alpha: PG weight parameter α of Def. 3 (1.0 = bandwidth-only).
        objective: "power" or "latency" — which metric ranks design points.
        max_ill: Maximum inter-layer (TSV) links per adjacent-layer boundary.
        adjacent_layer_links_only: Forbid switch-to-switch links spanning
            two or more layers (the hard rule of Algorithm 3, step 3). Core
            to switch links may span multiple layers in Phase 1 regardless.
        phase: "phase1", "phase2", or "auto" (Phase 1 first; fall back to
            Phase 2 for switch counts Phase 1 could not satisfy — Sec. IV).
        theta_min/theta_max/theta_step: SPG scaling sweep of Algorithm 1.
        use_soft_thresholds: Enable the SOFT_INF mechanism of Algorithm 3.
        soft_ill_margin: soft_max_ill = max_ill - margin.
        soft_switch_margin: soft_max_switch_size = max size - margin.
        soft_inf_factor: SOFT_INF = factor x the maximum single-flow cost.
        switch_layer_mode: Switch layer from its cores — "mean" (Step 7 of
            Algorithm 1) or "majority" (the alternative the paper mentions).
        utilisation_cap: Fraction of link capacity usable by traffic.
        deadlock_retries: Route retries (banning edges) when a path would
            close a CDG cycle.
        flow_order: Order in which flows are routed — "bandwidth_desc"
            (largest first, the standard greedy of [16] and the default),
            "bandwidth_asc", or "spec" (communication-spec order). Exposed
            for the routing-order ablation.
        allow_indirect_switches: Permit adding core-less switches when
            switch-size constraints make routing infeasible (Sec. VI).
        switch_count_range: Optional (min, max) total-switch-count sweep
            bounds; None sweeps the full 1..n range of Algorithm 1.
        seed: Determinism seed (partitioers, floorplanner).
        search_radius_mm / grid_step_mm: Custom insertion routine knobs.
        floorplanner: "custom" (the paper's routine) or "constrained"
            (the standard-floorplanner baseline of Sec. VIII-D).
        floorplan_restarts: Multi-start annealing runs of the constrained
            floorplanner (best cost wins, ties to the lowest restart;
            restart 0 reproduces the single-start trajectory). Requires
            ``floorplanner="constrained"`` — the custom inserter is
            deterministic and would silently ignore the knob.
        floorplan_jobs: Worker processes fanning those restarts across the
            engine pool (1 = serial, 0 = one per CPU); results are
            identical regardless. Keep it at 1 when candidate evaluation
            already runs with ``jobs > 1`` — each candidate worker would
            otherwise spawn its own nested pool per insertion,
            oversubscribing the CPUs.
    """

    frequency_mhz: float = 400.0
    link_width_bits: int = 32
    alpha: float = 0.7
    objective: str = "power"
    max_ill: int = 25
    adjacent_layer_links_only: bool = True
    phase: str = "auto"
    theta_min: float = 1.0
    theta_max: float = 15.0
    theta_step: float = 3.0
    use_soft_thresholds: bool = True
    soft_ill_margin: int = 2
    soft_switch_margin: int = 2
    soft_inf_factor: float = 10.0
    switch_layer_mode: str = "mean"
    utilisation_cap: float = 1.0
    deadlock_retries: int = 8
    flow_order: str = "bandwidth_desc"
    allow_indirect_switches: bool = True
    switch_count_range: Optional[Tuple[int, int]] = None
    seed: int = 0
    search_radius_mm: float = 1.0
    grid_step_mm: float = 0.1
    floorplanner: str = "custom"
    floorplan_restarts: int = 1
    floorplan_jobs: int = 1

    #: Results-invariant parallelism knob: excluded from result-store
    #: fingerprints (repro.engine.store) like the benchmark-registry memo
    #: key excludes it, so runs differing only in worker count share
    #: cache entries for their bit-identical results.
    __fingerprint_exclude__ = ("floorplan_jobs",)

    def __post_init__(self) -> None:
        if self.frequency_mhz <= 0:
            raise SpecError(f"frequency must be positive, got {self.frequency_mhz}")
        if self.link_width_bits <= 0:
            raise SpecError(f"link width must be positive, got {self.link_width_bits}")
        if not 0.0 <= self.alpha <= 1.0:
            raise SpecError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.objective not in OBJECTIVES:
            raise SpecError(f"objective must be one of {OBJECTIVES}, got {self.objective!r}")
        if self.max_ill < 0:
            raise SpecError(f"max_ill must be >= 0, got {self.max_ill}")
        if self.phase not in PHASES:
            raise SpecError(f"phase must be one of {PHASES}, got {self.phase!r}")
        if self.switch_layer_mode not in LAYER_MODES:
            raise SpecError(
                f"switch_layer_mode must be one of {LAYER_MODES}, "
                f"got {self.switch_layer_mode!r}"
            )
        if self.theta_min <= 0 or self.theta_step <= 0:
            raise SpecError("theta_min and theta_step must be positive")
        if self.theta_max < self.theta_min:
            raise SpecError("theta_max must be >= theta_min")
        if not 0 < self.utilisation_cap <= 1.0:
            raise SpecError(
                f"utilisation_cap must be in (0, 1], got {self.utilisation_cap}"
            )
        if self.switch_count_range is not None:
            lo, hi = self.switch_count_range
            if lo < 1 or hi < lo:
                raise SpecError(
                    f"invalid switch_count_range {self.switch_count_range}"
                )
        if self.flow_order not in ("bandwidth_desc", "bandwidth_asc", "spec"):
            raise SpecError(
                f"flow_order must be 'bandwidth_desc', 'bandwidth_asc' or "
                f"'spec', got {self.flow_order!r}"
            )
        if self.floorplanner not in ("custom", "constrained"):
            raise SpecError(
                f"floorplanner must be 'custom' or 'constrained', "
                f"got {self.floorplanner!r}"
            )
        if self.floorplan_restarts < 1:
            raise SpecError(
                f"floorplan_restarts must be >= 1, got {self.floorplan_restarts}"
            )
        if self.floorplan_jobs < 0:
            raise SpecError(
                f"floorplan_jobs must be >= 0 (0 = auto), got {self.floorplan_jobs}"
            )
        if self.floorplanner == "custom" and (
            self.floorplan_restarts != 1 or self.floorplan_jobs != 1
        ):
            # The paper's custom inserter is deterministic, not annealed —
            # the knobs would be silently ignored.
            raise SpecError(
                "floorplan_restarts/floorplan_jobs only apply to the "
                "annealed baseline; set floorplanner='constrained'"
            )

    def with_(self, **kwargs) -> "SynthesisConfig":
        """A modified copy (convenience for sweeps)."""
        return replace(self, **kwargs)

    def theta_values(self):
        """The θ sweep sequence of Algorithm 1 (Steps 11-19)."""
        theta = self.theta_min
        while theta <= self.theta_max + 1e-9:
            yield theta
            theta += self.theta_step
