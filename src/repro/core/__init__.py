"""The SunFloor 3D synthesis core — the paper's primary contribution.

Public entry points:

* :class:`~repro.core.synthesis.SunFloor3D` — the full Fig. 3 flow: sweep
  switch counts, establish core-to-switch connectivity (Phase 1 /
  Algorithm 1 or Phase 2 / Algorithm 2), compute deadlock-free paths under
  the TSV and switch-size constraints (Sec. VI / Algorithm 3), optimise
  switch positions with the Sec. VII LP, insert the network components into
  the floorplan and evaluate every valid design point.
* :mod:`repro.core.pipeline` — the staged form of that flow:
  :class:`~repro.core.pipeline.Stage` objects over an immutable
  :class:`~repro.core.pipeline.FlowContext`, a stage registry for
  substitution, per-stage timings and ``jobs=N`` candidate fan-out
  (``docs/pipeline.md``).
* :func:`~repro.core.synthesis2d.synthesize_2d` — the 2-D synthesis flow of
  Murali et al. [16] used as the comparison baseline.
* :func:`~repro.core.mesh_baseline.synthesize_mesh` — the optimised-mesh
  baseline of Sec. VIII-E.
"""

from repro.core.config import SynthesisConfig
from repro.core.design_point import DesignPoint, SynthesisResult
from repro.core.pipeline import (
    FlowContext,
    Pipeline,
    Stage,
    StageTimings,
    build_pipeline,
    register_stage,
    run_synthesis,
)
from repro.core.synthesis import SunFloor3D, synthesize
from repro.core.synthesis2d import synthesize_2d
from repro.core.mesh_baseline import synthesize_mesh

__all__ = [
    "SynthesisConfig",
    "DesignPoint",
    "SynthesisResult",
    "FlowContext",
    "Pipeline",
    "Stage",
    "StageTimings",
    "SunFloor3D",
    "build_pipeline",
    "register_stage",
    "run_synthesis",
    "synthesize",
    "synthesize_2d",
    "synthesize_mesh",
]
