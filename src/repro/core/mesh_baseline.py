"""The optimised-mesh baseline of Sec. VIII-E.

"We generate best mapping (optimizing for power, meeting the latency
constraints) of the cores on to a mesh topology, and remove any unused
switch-to-switch links."

For a 3-D specification the mesh is a 3-D mesh: an identical 2-D grid of
switches per layer plus vertical links between vertically adjacent switches.
Cores are mapped to grid slots within their own layer by simulated annealing
minimising bandwidth-weighted hop count; flows are routed XYZ
dimension-ordered (deadlock-free by construction); links never used by any
flow are simply not created.

The mesh baseline reports metrics through the same models as the custom
flow, so the Fig. 23 comparison is apples-to-apples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import SynthesisConfig
from repro.errors import SynthesisError
from repro.graphs.comm_graph import CommGraph, build_comm_graph
from repro.models.library import NocLibrary, default_library
from repro.noc.metrics import NocMetrics, compute_metrics, link_lengths_from_positions
from repro.noc.topology import Topology, switch_ep
from repro.rng import make_rng
from repro.spec.comm_spec import CommSpec
from repro.spec.core_spec import CoreSpec
from repro.spec.validate import validate_specs

Slot = Tuple[int, int, int]  # (layer, gx, gy)


@dataclass
class MeshDesign:
    """Result of the mesh baseline: topology + metrics + the grid mapping."""

    topology: Topology
    metrics: NocMetrics
    grid_nx: int
    grid_ny: int
    mapping: Dict[int, Slot]

    @property
    def total_power_mw(self) -> float:
        return self.metrics.total_power_mw

    @property
    def avg_latency_cycles(self) -> float:
        return self.metrics.avg_latency_cycles


def synthesize_mesh(
    core_spec: CoreSpec,
    comm_spec: CommSpec,
    library: Optional[NocLibrary] = None,
    config: Optional[SynthesisConfig] = None,
    *,
    anneal_iterations: int = 4000,
) -> MeshDesign:
    """Map the application onto an optimised (3-D) mesh and evaluate it."""
    validate_specs(core_spec, comm_spec)
    library = library if library is not None else default_library()
    config = config if config is not None else SynthesisConfig()
    graph = build_comm_graph(core_spec, comm_spec)

    num_layers = graph.num_layers
    per_layer = [
        sum(1 for l in graph.layers if l == layer) for layer in range(num_layers)
    ]
    max_cores = max(per_layer)
    nx = int(math.ceil(math.sqrt(max_cores)))
    ny = int(math.ceil(max_cores / nx))

    mapping = _optimise_mapping(graph, nx, ny, config.seed, anneal_iterations)

    die_w = max(c.x + c.width for c in core_spec)
    die_h = max(c.y + c.height for c in core_spec)
    pitch_x = die_w / nx
    pitch_y = die_h / ny

    topology = Topology(
        frequency_mhz=config.frequency_mhz, width_bits=config.link_width_bits
    )
    slot_to_switch: Dict[Slot, int] = {}
    for layer in range(num_layers):
        for gx in range(nx):
            for gy in range(ny):
                sw = topology.add_switch(layer)
                sw.x = (gx + 0.5) * pitch_x
                sw.y = (gy + 0.5) * pitch_y
                slot_to_switch[(layer, gx, gy)] = sw.id

    for core, slot in sorted(mapping.items()):
        topology.attach_core(core, slot_to_switch[slot], graph.layers[core])

    # Route every flow XYZ dimension-ordered; create links on first use
    # ("remove any unused switch-to-switch links" == never create them).
    for (src, dst), flow in sorted(graph.edges.items()):
        slots = _xyz_route(mapping[src], mapping[dst])
        switch_ids = [slot_to_switch[s] for s in slots]
        link_ids = [topology.injection_link(src).id]
        for u, v in zip(switch_ids, switch_ids[1:]):
            link_ids.append(_get_or_create_link(topology, u, v).id)
        link_ids.append(topology.ejection_link(dst).id)
        topology.record_route((src, dst), link_ids, switch_ids, flow.bandwidth)

    topology.validate_routes()
    _prune_unused_switches(topology)

    core_centers = {i: core.center for i, core in enumerate(core_spec)}
    link_lengths_from_positions(topology, core_centers)
    metrics = compute_metrics(topology, core_centers, library)

    return MeshDesign(
        topology=topology,
        metrics=metrics,
        grid_nx=nx,
        grid_ny=ny,
        mapping=mapping,
    )


# --------------------------------------------------------------------------
# internals
# --------------------------------------------------------------------------

def _initial_mapping(graph: CommGraph, nx: int, ny: int) -> Dict[int, Slot]:
    mapping: Dict[int, Slot] = {}
    for layer in range(graph.num_layers):
        cores = [i for i in range(graph.n) if graph.layers[i] == layer]
        slots = [(layer, gx, gy) for gy in range(ny) for gx in range(nx)]
        if len(cores) > len(slots):
            raise SynthesisError(
                f"layer {layer}: {len(cores)} cores exceed {len(slots)} mesh slots"
            )
        for core, slot in zip(cores, slots):
            mapping[core] = slot
    return mapping


def _mapping_cost(graph: CommGraph, mapping: Dict[int, Slot]) -> float:
    """Bandwidth-weighted hop count of the XYZ routes."""
    total = 0.0
    for (src, dst), flow in graph.edges.items():
        a, b = mapping[src], mapping[dst]
        hops = abs(a[1] - b[1]) + abs(a[2] - b[2]) + abs(a[0] - b[0])
        total += flow.bandwidth * (hops + 1)  # +1: at least one switch
    return total


def _optimise_mapping(
    graph: CommGraph, nx: int, ny: int, seed: int, iterations: int
) -> Dict[int, Slot]:
    """SA over per-layer slot assignments (swap two cores / move to free)."""
    rng = make_rng(seed, "mesh-mapping")
    mapping = _initial_mapping(graph, nx, ny)
    cost = _mapping_cost(graph, mapping)
    best_map, best_cost = dict(mapping), cost

    layers = list(range(graph.num_layers))
    cores_by_layer = {
        layer: [i for i in range(graph.n) if graph.layers[i] == layer]
        for layer in layers
    }
    all_slots = {
        layer: [(layer, gx, gy) for gx in range(nx) for gy in range(ny)]
        for layer in layers
    }

    temperature = max(cost, 1.0) * 0.05
    for _ in range(iterations):
        layer = rng.choice(layers)
        cores = cores_by_layer[layer]
        if not cores:
            continue
        core = rng.choice(cores)
        occupied = {mapping[c]: c for c in cores}
        target = rng.choice(all_slots[layer])
        if target == mapping[core]:
            continue
        old = mapping[core]
        other = occupied.get(target)
        mapping[core] = target
        if other is not None:
            mapping[other] = old
        new_cost = _mapping_cost(graph, mapping)
        if new_cost <= cost or rng.random() < math.exp(
            (cost - new_cost) / max(temperature, 1e-9)
        ):
            cost = new_cost
            if cost < best_cost:
                best_cost, best_map = cost, dict(mapping)
        else:
            mapping[core] = old
            if other is not None:
                mapping[other] = target
        temperature *= 0.999
    return best_map


def _xyz_route(src: Slot, dst: Slot) -> List[Slot]:
    """Dimension-ordered route: X, then Y, then Z (layers last)."""
    path = [src]
    layer, gx, gy = src
    while gx != dst[1]:
        gx += 1 if dst[1] > gx else -1
        path.append((layer, gx, gy))
    while gy != dst[2]:
        gy += 1 if dst[2] > gy else -1
        path.append((layer, gx, gy))
    while layer != dst[0]:
        layer += 1 if dst[0] > layer else -1
        path.append((layer, gx, gy))
    return path


def _get_or_create_link(topology: Topology, u: int, v: int):
    links = topology.links_between(switch_ep(u), switch_ep(v))
    if links:
        return links[0]
    return topology.add_switch_link(u, v)


def _prune_unused_switches(topology: Topology) -> None:
    """Mark grid switches with no attached links as indirect/unused.

    Switch objects are kept (ids are dense and referenced by routes), but
    the metrics code sizes power by ports: a switch with zero ports would
    fail the model's minimum, so unused switches are excluded by giving the
    metrics computation nothing to bill — we simply remove them from the
    switch list when they carry no links and re-index.
    """
    used = set()
    for link in topology.links:
        for kind, idx in (link.src, link.dst):
            if kind == "switch":
                used.add(idx)

    keep = sorted(used)
    remap = {old: new for new, old in enumerate(keep)}
    topology.switches = [topology.switches[i] for i in keep]
    for new_id, sw in enumerate(topology.switches):
        sw.id = new_id
    for link in topology.links:
        if link.src[0] == "switch":
            link.src = ("switch", remap[link.src[1]])
        if link.dst[0] == "switch":
            link.dst = ("switch", remap[link.dst[1]])
    topology.core_to_switch = {
        core: remap[sw] for core, sw in topology.core_to_switch.items()
    }
    topology.switch_routes = {
        flow: [remap[s] for s in route]
        for flow, route in topology.switch_routes.items()
    }
    # Rebuild the link index with the re-labelled endpoints.
    topology._link_index = {}
    for link in topology.links:
        topology._link_index.setdefault((link.src, link.dst), []).append(link.id)
