"""Definitions of the paper's benchmarks (Sec. VIII), rebuilt synthetically.

Core dimensions are drawn deterministically from role-dependent ranges
(processors ~1.1 x 1.0 mm, memories larger and "irregular", peripherals
small) and every traffic pattern follows the published structure. Bandwidth
units are MB/s, latency constraints are in cycles; with 32-bit links at
400 MHz the link capacity is 1600 MB/s, so individual flows stay well below
capacity as in the original designs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.bench.builder import Benchmark, build_benchmark
from repro.rng import make_rng
from repro.spec.comm_spec import MessageType, TrafficFlow

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine -> bench)
    from repro.core.config import SynthesisConfig
    from repro.core.design_point import SynthesisResult
    from repro.engine.executor import ProgressFn
    from repro.engine.grid import GridPoint, ParameterGrid

CoreDef = Tuple[str, float, float]

#: Total request bandwidth of the distributed D_36_x designs (MB/s); "the
#: total bandwidth is the same in the three benchmarks" (Sec. VIII-B).
D36_TOTAL_BW = 14400.0


def _sized(name: str, role: str, seed: int) -> CoreDef:
    """Deterministic 'irregular' core dimensions by role."""
    rng = make_rng(seed, "core-size", name)
    if role == "proc":
        w, h = rng.uniform(1.0, 1.4), rng.uniform(0.9, 1.2)
    elif role == "mem":
        w, h = rng.uniform(1.3, 2.0), rng.uniform(1.2, 1.8)
    elif role == "accel":
        w, h = rng.uniform(0.8, 1.2), rng.uniform(0.7, 1.0)
    else:  # peripheral
        w, h = rng.uniform(0.5, 0.9), rng.uniform(0.5, 0.8)
    return (name, round(w, 3), round(h, 3))


def _req(src: str, dst: str, bw: float, lat: float) -> TrafficFlow:
    return TrafficFlow(src=src, dst=dst, bandwidth=bw, latency=lat,
                       message_type=MessageType.REQUEST)


def _resp(src: str, dst: str, bw: float, lat: float) -> TrafficFlow:
    return TrafficFlow(src=src, dst=dst, bandwidth=bw, latency=lat,
                       message_type=MessageType.RESPONSE)


# --------------------------------------------------------------------------
# D_26_media — 26-core multimedia + wireless SoC (Sec. VIII-A)
# --------------------------------------------------------------------------

def d26_media(
    seed: int = 0, floorplan_moves: int = 4000,
    floorplan_restarts: int = 1, floorplan_jobs: int = 1,
) -> Benchmark:
    """The realistic multimedia/wireless benchmark of the case study.

    "The system includes ARM, DSP cores, multiple memory banks, DMA engine
    and several peripheral devices", performing base-band and multimedia
    processing; 26 irregular cores mapped onto three layers.
    """
    roles = {
        "ARM": "proc",
        "DSP0": "proc", "DSP1": "proc", "DSP2": "proc", "DSP3": "proc",
        "ACC0": "accel", "ACC1": "accel", "ACC2": "accel",
        "VIT": "accel", "TUR": "accel", "RF": "accel",
        "DMA": "accel", "SDRAM": "mem",
        "MEM0": "mem", "MEM1": "mem", "MEM2": "mem", "MEM3": "mem",
        "MEM4": "mem", "MEM5": "mem", "MEM6": "mem", "MEM7": "mem",
        "DISP": "periph", "CAM": "periph", "USB": "periph",
        "UART": "periph", "SPI": "periph",
    }
    cores = [_sized(name, role, seed) for name, role in roles.items()]

    flows: List[TrafficFlow] = []
    # ARM <-> its memories and the SDRAM controller.
    for mem, bw in (("MEM0", 320), ("MEM1", 240), ("SDRAM", 400)):
        flows.append(_req("ARM", mem, bw, 8))
        flows.append(_resp(mem, "ARM", bw * 0.75, 8))
    # DSP cluster: each DSP streams from one memory, into an accelerator
    # chain, and back out to another memory (multimedia pipeline).
    dsp_mems = [("DSP0", "MEM2", "MEM3"), ("DSP1", "MEM3", "MEM4"),
                ("DSP2", "MEM4", "MEM5"), ("DSP3", "MEM5", "MEM6")]
    for dsp, src_mem, dst_mem in dsp_mems:
        flows.append(_req(dsp, src_mem, 280, 10))
        flows.append(_resp(src_mem, dsp, 420, 10))
        flows.append(_req(dsp, dst_mem, 260, 10))
    # Accelerator pipeline (video): DSP0 -> ACC0 -> ACC1 -> ACC2 -> DISP.
    flows.append(_req("DSP0", "ACC0", 500, 6))
    flows.append(_req("ACC0", "ACC1", 520, 6))
    flows.append(_req("ACC1", "ACC2", 540, 6))
    flows.append(_req("ACC2", "DISP", 640, 6))
    # Base-band chain: RF -> VIT -> TUR -> DSP3 -> MEM7.
    flows.append(_req("RF", "VIT", 700, 5))
    flows.append(_req("VIT", "TUR", 560, 5))
    flows.append(_req("TUR", "DSP3", 420, 6))
    flows.append(_req("DSP3", "MEM7", 380, 8))
    # DMA moves data between memories and peripherals.
    for dst, bw in (("MEM0", 200), ("MEM6", 180), ("SDRAM", 260), ("USB", 90)):
        flows.append(_req("DMA", dst, bw, 12))
    flows.append(_req("ARM", "DMA", 60, 12))
    # Camera in, low-rate peripherals.
    flows.append(_req("CAM", "MEM2", 340, 8))
    for periph, bw in (("UART", 20), ("SPI", 30), ("USB", 80)):
        flows.append(_req("ARM", periph, bw, 14))
    flows.append(_req("USB", "SDRAM", 120, 12))
    flows.append(_req("DISP", "SDRAM", 160, 10))

    return build_benchmark(
        "d26_media", cores, flows, num_layers=3,
        description="26-core multimedia & wireless SoC (3 layers)",
        seed=seed, floorplan_moves=floorplan_moves,
        floorplan_restarts=floorplan_restarts, floorplan_jobs=floorplan_jobs,
    )


# --------------------------------------------------------------------------
# D_36_4 / D_36_6 / D_36_8 — distributed designs (Sec. VIII-B)
# --------------------------------------------------------------------------

def d36(
    flows_per_proc: int, seed: int = 0, floorplan_moves: int = 4000,
    floorplan_restarts: int = 1, floorplan_jobs: int = 1,
) -> Benchmark:
    """18 processors + 18 memories; each processor talks to
    ``flows_per_proc`` memories; total bandwidth constant across variants."""
    if flows_per_proc not in (4, 6, 8):
        raise ValueError("the paper evaluates 4, 6 and 8 flows per processor")
    n = 18
    cores = [_sized(f"P{i}", "proc", seed) for i in range(n)]
    cores += [_sized(f"M{i}", "mem", seed) for i in range(n)]

    bw = D36_TOTAL_BW / (n * flows_per_proc)
    flows: List[TrafficFlow] = []
    for i in range(n):
        for k in range(flows_per_proc):
            # Deterministic spread: each processor hits a distinct set of
            # memories, overlapping with its neighbours'.
            m = (2 * i + 5 * k + k * k) % n
            # Avoid duplicate (i, m) pairs within a processor.
            tried = 0
            while any(
                f.src == f"P{i}" and f.dst == f"M{m}" for f in flows
            ) and tried < n:
                m = (m + 1) % n
                tried += 1
            flows.append(_req(f"P{i}", f"M{m}", bw, 10))

    return build_benchmark(
        f"d36_{flows_per_proc}", cores, flows, num_layers=3,
        layer_strategy="min_cut",
        description=(
            f"18 processors + 18 memories, {flows_per_proc} flows per "
            "processor (3 layers)"
        ),
        seed=seed, floorplan_moves=floorplan_moves,
        floorplan_restarts=floorplan_restarts, floorplan_jobs=floorplan_jobs,
    )


# --------------------------------------------------------------------------
# D_35_bot — bottleneck design (Sec. VIII-B)
# --------------------------------------------------------------------------

def d35_bot(
    seed: int = 0, floorplan_moves: int = 4000,
    floorplan_restarts: int = 1, floorplan_jobs: int = 1,
) -> Benchmark:
    """16 processors with private memories plus 3 shared memories all
    processors access."""
    n = 16
    cores = [_sized(f"P{i}", "proc", seed) for i in range(n)]
    cores += [_sized(f"M{i}", "mem", seed) for i in range(n)]
    cores += [_sized(f"S{j}", "mem", seed) for j in range(3)]

    flows: List[TrafficFlow] = []
    for i in range(n):
        flows.append(_req(f"P{i}", f"M{i}", 280, 6))
        flows.append(_resp(f"M{i}", f"P{i}", 360, 6))
        for j in range(3):
            flows.append(_req(f"P{i}", f"S{j}", 36, 14))
    return build_benchmark(
        "d35_bot", cores, flows, num_layers=3,
        description="bottleneck: 16 proc + 16 private + 3 shared memories",
        seed=seed, floorplan_moves=floorplan_moves,
        floorplan_restarts=floorplan_restarts, floorplan_jobs=floorplan_jobs,
    )


# --------------------------------------------------------------------------
# D_65_pipe and D_38_tvopd — pipelined designs (Sec. VIII-B)
# --------------------------------------------------------------------------

def d65_pipe(
    seed: int = 0, floorplan_moves: int = 4000,
    floorplan_restarts: int = 1, floorplan_jobs: int = 1,
) -> Benchmark:
    """65 cores communicating in a pipeline fashion."""
    n = 65
    cores = [
        _sized(f"C{i}", "proc" if i % 4 else "mem", seed) for i in range(n)
    ]
    flows = [_req(f"C{i}", f"C{i + 1}", 300, 10) for i in range(n - 1)]
    return build_benchmark(
        "d65_pipe", cores, flows, num_layers=4,
        layer_strategy="min_cut",
        description="65-core pipeline (4 layers)",
        seed=seed, floorplan_moves=floorplan_moves,
        floorplan_restarts=floorplan_restarts, floorplan_jobs=floorplan_jobs,
    )


def d38_tvopd(
    seed: int = 0, floorplan_moves: int = 4000,
    floorplan_restarts: int = 1, floorplan_jobs: int = 1,
) -> Benchmark:
    """38-core pipelined design where "each core communicates only to one or
    few other cores" (a video object-plane-decoder-like structure)."""
    n = 38
    cores = [
        _sized(f"C{i}", "accel" if i % 3 else "mem", seed) for i in range(n)
    ]
    rng = make_rng(seed, "tvopd-bw")
    flows: List[TrafficFlow] = []
    for i in range(n - 1):
        flows.append(_req(f"C{i}", f"C{i + 1}", round(rng.uniform(150, 350)), 10))
    # A few feed-forward branches (every 6th core skips ahead).
    for i in range(0, n - 8, 6):
        flows.append(_req(f"C{i}", f"C{i + 7}", round(rng.uniform(60, 140)), 14))
    return build_benchmark(
        "d38_tvopd", cores, flows, num_layers=3,
        layer_strategy="min_cut",
        description="38-core pipelined video decoder (3 layers)",
        seed=seed, floorplan_moves=floorplan_moves,
        floorplan_restarts=floorplan_restarts, floorplan_jobs=floorplan_jobs,
    )


# --------------------------------------------------------------------------
# Suite-level design-space exploration (the repro.engine outer loop)
# --------------------------------------------------------------------------

def suite_design_space(
    names: Optional[Sequence[str]] = None,
    grid: Optional["ParameterGrid"] = None,
    base_config: Optional["SynthesisConfig"] = None,
    *,
    dims: str = "3d",
    jobs: Optional[int] = None,
    progress: Optional["ProgressFn"] = None,
    stages: Optional[Sequence] = None,
    store=None,
    retry=None,
    task_timeout_s: Optional[float] = None,
    on_error: str = "raise",
    stage_cache_dir: Optional[str] = None,
    stage_cache_salt: Optional[str] = None,
) -> Dict[str, Dict["GridPoint", "SynthesisResult"]]:
    """Explore an architectural grid over a whole benchmark suite at once.

    Every (benchmark, grid point) pair becomes one engine task, so the
    *entire* suite exploration — not just one benchmark's sweep — fans out
    across the worker pool in a single flat batch; that keeps the pool busy
    even when individual benchmarks have too few points to saturate it.

    Args:
        names: Benchmark names (default: the Table I suite).
        grid: Architectural grid (default: the base configuration only).
        base_config: Configuration the grid points override.
        dims: "3d" (stacked) or "2d" benchmark variants.
        jobs: Engine worker count (``None``/``0`` = one per CPU).
        progress: Per-point callback ``(done, total, (name, point))``.
        stages: Optional staged-pipeline override (stage names or
            instances, see :func:`repro.core.pipeline.build_pipeline`)
            applied to every synthesis run of the exploration.
        store: Optional :class:`~repro.engine.store.ResultStore`; finished
            (benchmark, point) pairs are served from disk and fresh ones
            checkpointed incrementally, so an interrupted exploration
            resumes on rerun with bit-identical merged results.
        retry / task_timeout_s / on_error: The engine's supervision knobs
            (see :func:`repro.engine.run_tasks`); quarantined pairs are
            absent from the merged mapping.
        stage_cache_dir / stage_cache_salt: Per-stage memoization
            (:mod:`repro.engine.stagecache`): pipeline stages whose inputs
            repeat across grid points — or across benchmarks sharing a
            sub-design — are served from disk, bit-identically.

    Returns:
        ``{benchmark name: {grid point: merged synthesis result}}`` with
        deterministic ordering, identical for serial and parallel runs.
    """
    import dataclasses

    from repro.bench.registry import get_benchmark
    from repro.engine.executor import run_tasks
    from repro.engine.grid import ParameterGrid, build_tasks
    from repro.engine.tasks import SynthesisTask

    if names is None:
        names = TABLE1_BENCHMARKS
    if grid is None:
        grid = ParameterGrid()
    stage_spec = tuple(stages) if stages is not None else None

    tasks: List[SynthesisTask] = []
    for name in names:
        bench = get_benchmark(name)
        core_spec = bench.core_spec_3d if dims == "3d" else bench.core_spec_2d
        for task in build_tasks(
            core_spec, bench.comm_spec, grid, base_config,
            stage_cache_dir=stage_cache_dir,
            stage_cache_salt=stage_cache_salt,
        ):
            tasks.append(dataclasses.replace(
                task, key=(name, task.key), stages=stage_spec,
            ))

    results = run_tasks(
        tasks, jobs=jobs, progress=progress, store=store,
        retry=retry, task_timeout_s=task_timeout_s, on_error=on_error,
    )
    merged: Dict[str, Dict["GridPoint", "SynthesisResult"]] = {}
    for task_result in results:
        if task_result.error is not None:
            continue
        name, point = task_result.key
        merged.setdefault(name, {})[point] = task_result.result
    return merged
