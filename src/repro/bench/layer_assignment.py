"""Layer assignment of cores for the 3-D benchmark variants.

"The assignment of cores to different 3-D layers ... are taken as inputs for
the synthesis process" (Sec. I) — the paper's benchmarks were assigned
manually. We provide two deterministic strategies:

* ``"min_cut"`` (default) — balanced min-cut of the communication graph into
  L blocks: heavily-communicating cores share a layer, keeping most traffic
  on short intra-layer wires and the TSV budget comfortable.
* ``"stack"`` — pairs heavily-communicating cores *across* layers ("highly
  communicating cores are placed one above the other", Example 1): a greedy
  matching pulls the strongest partners of each block into the other layers.

Both return a list ``layers[i]`` with balanced layer populations.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import SpecError
from repro.graphs.comm_graph import CommGraph
from repro.graphs.partition import kway_min_cut

STRATEGIES = ("min_cut", "stack")


def assign_layers(
    graph: CommGraph,
    num_layers: int,
    *,
    strategy: str = "min_cut",
    seed: int = 0,
    areas: List[float] = None,
) -> List[int]:
    """Assign every core to one of ``num_layers`` layers.

    ``areas`` (one per core) balances the *silicon area* per layer instead of
    the core count — all dies of a wafer-to-wafer stack share one outline, so
    an area-unbalanced assignment wastes the smaller dies. Count balance is
    used when areas are omitted. (Only the "stack" strategy is area-aware;
    "min_cut" balances counts through the partitioner.)
    """
    if num_layers < 1:
        raise SpecError(f"num_layers must be >= 1, got {num_layers}")
    if num_layers > graph.n:
        raise SpecError(
            f"cannot spread {graph.n} cores over {num_layers} layers"
        )
    if strategy not in STRATEGIES:
        raise SpecError(f"unknown layer strategy {strategy!r} (use {STRATEGIES})")
    if areas is not None and len(areas) != graph.n:
        raise SpecError(f"need {graph.n} areas, got {len(areas)}")
    if num_layers == 1:
        return [0] * graph.n

    weights = _directed_to_weights(graph)
    if strategy == "min_cut":
        blocks = kway_min_cut(graph.n, weights, num_layers, seed=seed)
        layers = [0] * graph.n
        for layer, block in enumerate(blocks):
            for core in block:
                layers[core] = layer
        return layers
    return _stack_assignment(graph, weights, num_layers, seed, areas)


def _directed_to_weights(graph: CommGraph) -> Dict[Tuple[int, int], float]:
    weights: Dict[Tuple[int, int], float] = {}
    for i, j, flow in graph.flows():
        key = (min(i, j), max(i, j))
        weights[key] = weights.get(key, 0.0) + flow.bandwidth
    return weights


def _stack_assignment(
    graph: CommGraph,
    weights: Dict[Tuple[int, int], float],
    num_layers: int,
    seed: int,
    areas: List[float] = None,
) -> List[int]:
    """Greedy stacking: strongest unplaced partner goes to the next layer.

    With ``areas`` given, layer fullness is measured in silicon area (with a
    small slack) instead of core count.
    """
    n = graph.n
    if areas is None:
        areas = [1.0] * n
    total_area = sum(areas)
    cap_area = total_area / num_layers * 1.06  # slack for lumpy core sizes
    capacity = [cap_area] * num_layers
    layers = [-1] * n

    strength = [0.0] * n
    neighbours: Dict[int, List[Tuple[float, int]]] = {i: [] for i in range(n)}
    for (i, j), w in weights.items():
        strength[i] += w
        strength[j] += w
        neighbours[i].append((w, j))
        neighbours[j].append((w, i))
    for i in range(n):
        neighbours[i].sort(key=lambda t: (-t[0], t[1]))

    order = sorted(range(n), key=lambda i: (-strength[i], i))
    fill = [0.0] * num_layers
    for seed_core in order:
        if layers[seed_core] != -1:
            continue
        # Place the seed in the emptiest layer, then stack its strongest
        # unplaced partners into the remaining layers round-robin.
        layer = min(range(num_layers), key=lambda l: (fill[l], l))
        layers[seed_core] = layer
        fill[layer] += areas[seed_core]
        next_layer = (layer + 1) % num_layers
        placed = 0
        for _w, partner in neighbours[seed_core]:
            if placed >= num_layers - 1:
                break
            if layers[partner] != -1:
                continue
            tries = 0
            while (
                fill[next_layer] + areas[partner] > capacity[next_layer]
                and tries < num_layers
            ):
                next_layer = (next_layer + 1) % num_layers
                tries += 1
            if fill[next_layer] + areas[partner] > capacity[next_layer]:
                break
            layers[partner] = next_layer
            fill[next_layer] += areas[partner]
            next_layer = (next_layer + 1) % num_layers
            placed += 1

    # Any cores left over go to the least-filled layers.
    for i in range(n):
        if layers[i] == -1:
            layer = min(
                range(num_layers),
                key=lambda l: (fill[l] - capacity[l], l),
            )
            layers[i] = layer
            fill[layer] += areas[i]
    return layers
