"""Benchmark registry: name -> cached Benchmark instance.

Benchmark construction runs layer assignment and four to five simulated-
annealing floorplans, so instances are cached per (name, seed).
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

from repro.bench import suites
from repro.bench.builder import Benchmark
from repro.errors import SpecError

#: The six benchmarks of Table I / Figs. 17, 19, 20, 23.
TABLE1_BENCHMARKS = (
    "d36_4",
    "d36_6",
    "d36_8",
    "d35_bot",
    "d65_pipe",
    "d38_tvopd",
)

_ALL = TABLE1_BENCHMARKS + ("d26_media",)


def list_benchmarks() -> List[str]:
    """Names of every available benchmark."""
    return sorted(_ALL)


@lru_cache(maxsize=None)
def get_benchmark(
    name: str, seed: int = 0, floorplan_moves: int = 4000
) -> Benchmark:
    """Build (or fetch the cached) benchmark called ``name``."""
    if name == "d26_media":
        return suites.d26_media(seed=seed, floorplan_moves=floorplan_moves)
    if name == "d36_4":
        return suites.d36(4, seed=seed, floorplan_moves=floorplan_moves)
    if name == "d36_6":
        return suites.d36(6, seed=seed, floorplan_moves=floorplan_moves)
    if name == "d36_8":
        return suites.d36(8, seed=seed, floorplan_moves=floorplan_moves)
    if name == "d35_bot":
        return suites.d35_bot(seed=seed, floorplan_moves=floorplan_moves)
    if name == "d65_pipe":
        return suites.d65_pipe(seed=seed, floorplan_moves=floorplan_moves)
    if name == "d38_tvopd":
        return suites.d38_tvopd(seed=seed, floorplan_moves=floorplan_moves)
    raise SpecError(
        f"unknown benchmark {name!r}; available: {', '.join(list_benchmarks())}"
    )
