"""Benchmark registry: name -> cached Benchmark instance.

Benchmark construction runs layer assignment and four to five simulated-
annealing floorplans, so instances are cached per (name, seed).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bench import suites
from repro.bench.builder import Benchmark
from repro.errors import SpecError

#: The six benchmarks of Table I / Figs. 17, 19, 20, 23.
TABLE1_BENCHMARKS = (
    "d36_4",
    "d36_6",
    "d36_8",
    "d35_bot",
    "d65_pipe",
    "d38_tvopd",
)

_ALL = TABLE1_BENCHMARKS + ("d26_media",)


def list_benchmarks() -> List[str]:
    """Names of every available benchmark."""
    return sorted(_ALL)


#: Built benchmarks keyed by everything that affects the *result* —
#: ``floorplan_jobs`` is deliberately excluded: it only changes how the
#: restarts execute (serial vs pooled), never what they produce, so a
#: jobs-only difference must hit the cache instead of re-annealing.
_CACHE: Dict[Tuple, Benchmark] = {}


def get_benchmark(
    name: str, seed: int = 0, floorplan_moves: int = 4000,
    floorplan_restarts: int = 1, floorplan_jobs: int = 1,
) -> Benchmark:
    """Build (or fetch the cached) benchmark called ``name``."""
    cache_key = (name, seed, floorplan_moves, floorplan_restarts)
    cached = _CACHE.get(cache_key)
    if cached is not None:
        return cached
    bench = _build_benchmark(
        name, seed, floorplan_moves, floorplan_restarts, floorplan_jobs
    )
    _CACHE[cache_key] = bench
    return bench


def _build_benchmark(
    name: str, seed: int, floorplan_moves: int,
    floorplan_restarts: int, floorplan_jobs: int,
) -> Benchmark:
    kwargs = dict(
        seed=seed, floorplan_moves=floorplan_moves,
        floorplan_restarts=floorplan_restarts, floorplan_jobs=floorplan_jobs,
    )
    if name == "d26_media":
        return suites.d26_media(**kwargs)
    if name == "d36_4":
        return suites.d36(4, **kwargs)
    if name == "d36_6":
        return suites.d36(6, **kwargs)
    if name == "d36_8":
        return suites.d36(8, **kwargs)
    if name == "d35_bot":
        return suites.d35_bot(**kwargs)
    if name == "d65_pipe":
        return suites.d65_pipe(**kwargs)
    if name == "d38_tvopd":
        return suites.d38_tvopd(**kwargs)
    raise SpecError(
        f"unknown benchmark {name!r}; available: {', '.join(list_benchmarks())}"
    )
