"""Initial floorplan generation for the benchmarks.

"The initial positions of the cores in each layer of the 3-D and for the 2-D
design are obtained using existing tools [38]. For fair comparisons, we use
the same objectives of minimizing area and wire-length when obtaining the
floorplan for both the cases." (Sec. VIII-A)

The 3-D stack is floorplanned layer by layer; cores in upper layers are
anchored to the positions of the lower-layer cores they communicate with, so
vertically-communicating cores end up roughly stacked.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.floorplan.annealer import anneal_floorplan
from repro.graphs.comm_graph import CommGraph
from repro.spec.core_spec import CoreSpec


def floorplan_2d(
    core_spec: CoreSpec,
    graph: CommGraph,
    *,
    seed: int = 0,
    moves: int = 4000,
    wirelength_weight: float = 1.0,
    restarts: int = 1,
    jobs: int = 1,
) -> CoreSpec:
    """Floorplan all cores on a single die (the 2-D variant)."""
    widths = [c.width for c in core_spec]
    heights = [c.height for c in core_spec]
    nets = _bandwidth_nets(graph, list(range(len(core_spec))))
    result = anneal_floorplan(
        widths, heights, nets,
        wirelength_weight=wirelength_weight, seed=seed, moves=moves,
        restarts=restarts, jobs=jobs,
    )
    flat = core_spec.flattened_to_2d()
    return flat.with_positions(result.positions)


def floorplan_3d(
    core_spec: CoreSpec,
    graph: CommGraph,
    *,
    seed: int = 0,
    moves: int = 4000,
    wirelength_weight: float = 1.0,
    anchor_weight: float = 2.0,
    restarts: int = 1,
    jobs: int = 1,
) -> CoreSpec:
    """Floorplan each layer of a 3-D core spec (layers must be assigned).

    Layer 0 is floorplanned first; each subsequent layer's cores are pulled
    (via anchor nets) towards the placed positions of the cores in lower
    layers they communicate with. ``restarts``/``jobs`` run each layer's
    anneal as a deterministic multi-start, optionally on the engine pool.
    """
    n = len(core_spec)
    positions: List[Tuple[float, float]] = [(0.0, 0.0)] * n
    placed_centers: Dict[int, Tuple[float, float]] = {}

    for layer in range(core_spec.num_layers):
        members = core_spec.indices_in_layer(layer)
        widths = [core_spec[i].width for i in members]
        heights = [core_spec[i].height for i in members]
        nets = _bandwidth_nets(graph, members)

        anchors: Dict[Tuple[int, Tuple[float, float]], float] = {}
        member_set = set(members)
        local = {g: l for l, g in enumerate(members)}
        for i, j, flow in graph.flows():
            for a, b in ((i, j), (j, i)):
                if a in member_set and b in placed_centers:
                    key = (local[a], placed_centers[b])
                    anchors[key] = anchors.get(key, 0.0) + (
                        anchor_weight * flow.bandwidth
                    )

        result = anneal_floorplan(
            widths, heights, nets, anchors,
            wirelength_weight=wirelength_weight,
            seed=seed + layer, moves=moves,
            restarts=restarts, jobs=jobs,
        )
        for l, g in enumerate(members):
            positions[g] = result.positions[l]
            core = core_spec[g]
            placed_centers[g] = (
                result.positions[l][0] + core.width / 2.0,
                result.positions[l][1] + core.height / 2.0,
            )

    return core_spec.with_positions(positions)


def _bandwidth_nets(
    graph: CommGraph, members: Sequence[int]
) -> Dict[Tuple[int, int], float]:
    """Intra-member bandwidth nets, keyed by local indices into members."""
    local = {g: l for l, g in enumerate(members)}
    nets: Dict[Tuple[int, int], float] = {}
    for i, j, flow in graph.flows():
        if i in local and j in local:
            key = (min(local[i], local[j]), max(local[i], local[j]))
            nets[key] = nets.get(key, 0.0) + flow.bandwidth
    return nets
