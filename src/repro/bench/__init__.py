"""Benchmark suite generators.

The paper evaluates on proprietary SoC benchmarks; this package rebuilds
them synthetically with the published structure (DESIGN.md Sec. 3):

* ``d26_media`` — 26-core multimedia & wireless SoC (ARM, DSPs, memories,
  DMA, accelerators, peripherals) on 3 layers (Sec. VIII-A, Figs. 9/16);
* ``d36_4`` / ``d36_6`` / ``d36_8`` — 18 processors + 18 memories, each
  processor communicating with 4/6/8 memories at equal total bandwidth
  (Sec. VIII-B);
* ``d35_bot`` — bottleneck: 16 processors, 16 private memories, 3 shared
  memories all processors access;
* ``d65_pipe`` — 65-core pipeline;
* ``d38_tvopd`` — 38-core pipelined video object-plane-decoder-like design.

Every benchmark carries a 3-D core spec (layer assignment + per-layer
floorplan), a 2-D core spec (same cores, single-die floorplan) and the
communication spec — everything the 2-D-vs-3-D comparison needs.
"""

from repro.bench.builder import Benchmark, build_benchmark
from repro.bench.registry import (
    TABLE1_BENCHMARKS,
    get_benchmark,
    list_benchmarks,
)

__all__ = [
    "Benchmark",
    "build_benchmark",
    "get_benchmark",
    "list_benchmarks",
    "TABLE1_BENCHMARKS",
]
