"""Benchmark assembly: cores + flows -> layered, floorplanned Benchmark.

:func:`build_benchmark` performs the steps the paper takes as given inputs:
assign cores to layers, floorplan each 3-D layer, and floorplan the
corresponding 2-D (single-die) implementation with the same area/wirelength
objectives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.bench.floorplans import floorplan_2d, floorplan_3d
from repro.bench.layer_assignment import assign_layers
from repro.graphs.comm_graph import build_comm_graph
from repro.spec.comm_spec import CommSpec, TrafficFlow
from repro.spec.core_spec import Core, CoreSpec
from repro.spec.validate import validate_specs


@dataclass(frozen=True)
class Benchmark:
    """A fully-prepared benchmark: specs for both the 3-D and 2-D flows."""

    name: str
    description: str
    core_spec_3d: CoreSpec
    core_spec_2d: CoreSpec
    comm_spec: CommSpec
    num_layers: int

    @property
    def num_cores(self) -> int:
        return len(self.core_spec_3d)

    @property
    def num_flows(self) -> int:
        return len(self.comm_spec)


def build_benchmark(
    name: str,
    cores: Sequence[Tuple[str, float, float]],
    flows: Sequence[TrafficFlow],
    num_layers: int,
    *,
    description: str = "",
    seed: int = 0,
    layer_strategy: str = "stack",
    floorplan_moves: int = 4000,
    floorplan_restarts: int = 1,
    floorplan_jobs: int = 1,
) -> Benchmark:
    """Assemble a benchmark from core dimensions and traffic flows.

    Args:
        cores: ``(name, width_mm, height_mm)`` triples.
        flows: The communication specification's flows.
        num_layers: 3-D layer count of the stacked variant.
        seed: Determinism seed for layer assignment and floorplanning.
        layer_strategy: See :func:`repro.bench.layer_assignment.assign_layers`;
            the default "stack" mirrors the paper's benchmarks, where
            "highly communicating cores are placed one above the other"
            (Example 1).
        floorplan_moves: Annealing budget per floorplan.
        floorplan_restarts: Multi-start annealing runs per floorplan (the
            deterministic best-cost merge of ``anneal_floorplan``).
        floorplan_jobs: Worker processes fanning those restarts across the
            engine pool (1 = serial; results are identical regardless).
    """
    base_cores: List[Core] = [
        Core(name=n, width=w, height=h) for (n, w, h) in cores
    ]
    base_spec = CoreSpec(cores=base_cores)
    comm_spec = CommSpec(flows=list(flows))

    graph = build_comm_graph(base_spec, comm_spec)
    layers = assign_layers(
        graph, num_layers, strategy=layer_strategy, seed=seed,
        areas=[c.area for c in base_cores],
    )
    layered = base_spec.with_layers(layers)
    graph_3d = build_comm_graph(layered, comm_spec)

    core_spec_3d = floorplan_3d(
        layered, graph_3d, seed=seed, moves=floorplan_moves,
        restarts=floorplan_restarts, jobs=floorplan_jobs,
    )
    core_spec_2d = floorplan_2d(
        base_spec, graph, seed=seed, moves=floorplan_moves,
        restarts=floorplan_restarts, jobs=floorplan_jobs,
    )

    validate_specs(core_spec_3d, comm_spec)
    validate_specs(core_spec_2d, comm_spec)
    return Benchmark(
        name=name,
        description=description,
        core_spec_3d=core_spec_3d,
        core_spec_2d=core_spec_2d,
        comm_spec=comm_spec,
        num_layers=num_layers,
    )
