"""Parametric synthetic benchmark generator.

Beyond the paper's fixed designs, downstream users need arbitrary test
inputs: this module generates random SoCs with controllable structure. Four
traffic archetypes cover the paper's benchmark families:

* ``"distributed"`` — processors talking to scattered memories (D_36_x);
* ``"pipeline"``    — a processing chain (D_65_pipe, D_38_tvopd);
* ``"bottleneck"``  — private memories plus shared hotspots (D_35_bot);
* ``"random"``      — Erdos-Renyi-style random flows.

Everything is deterministic in the seed.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bench.builder import Benchmark, build_benchmark
from repro.errors import SpecError
from repro.rng import make_rng
from repro.spec.comm_spec import MessageType, TrafficFlow

PATTERNS = ("distributed", "pipeline", "bottleneck", "random")


def synthetic_benchmark(
    num_cores: int,
    pattern: str = "random",
    num_layers: int = 2,
    *,
    seed: int = 0,
    total_bandwidth: float = 8000.0,
    latency_range: Tuple[float, float] = (8.0, 16.0),
    with_responses: bool = False,
    floorplan_moves: int = 2000,
    floorplan_restarts: int = 1,
    floorplan_jobs: int = 1,
    layer_strategy: str = "min_cut",
    max_port_bandwidth: float = 1200.0,
) -> Benchmark:
    """Generate a random benchmark with the requested structure.

    Args:
        num_cores: Total core count (>= 4).
        pattern: One of :data:`PATTERNS`.
        num_layers: 3-D layer count of the stacked variant.
        seed: Determinism seed (sizes, flows, floorplans).
        total_bandwidth: Sum of request-flow bandwidths in MB/s.
        latency_range: Uniform range for latency constraints (cycles).
        with_responses: Add a response flow for every request.
        floorplan_moves: Annealing budget for the generated floorplans.
        floorplan_restarts / floorplan_jobs: Multi-start annealing knobs
            (see :func:`repro.bench.builder.build_benchmark`).
        layer_strategy: Layer assignment strategy (see
            :func:`repro.bench.layer_assignment.assign_layers`).
        max_port_bandwidth: Cap on any single core's total injected or
            ejected bandwidth (MB/s). A core talks to the NoC through one
            NI link, so demands above link capacity are physically
            unsatisfiable; when the requested ``total_bandwidth`` would
            breach the cap (hotspot patterns), every flow is scaled down
            proportionally — the realised total is then below the request.
    """
    if num_cores < 4:
        raise SpecError(f"need at least 4 cores, got {num_cores}")
    if pattern not in PATTERNS:
        raise SpecError(f"unknown pattern {pattern!r} (use one of {PATTERNS})")
    if total_bandwidth <= 0:
        raise SpecError("total bandwidth must be positive")
    lo_lat, hi_lat = latency_range
    if lo_lat <= 0 or hi_lat < lo_lat:
        raise SpecError(f"invalid latency range {latency_range}")

    rng = make_rng(seed, "synthetic", pattern, num_cores)
    cores = _make_cores(num_cores, pattern, seed)
    pairs = _make_pairs(num_cores, pattern, rng)
    if not pairs:
        raise SpecError("pattern generated no flows; increase num_cores")

    weights = [rng.uniform(0.5, 1.5) for _ in pairs]
    scale = total_bandwidth / sum(weights)

    # Respect per-core NI capacity: find the most loaded port and shrink
    # every flow proportionally if it would exceed the cap.
    inbound = [0.0] * num_cores
    outbound = [0.0] * num_cores
    for (src, dst), weight in zip(pairs, weights):
        outbound[src] += weight * scale
        inbound[dst] += weight * scale
    worst = max(max(inbound), max(outbound))
    if worst > max_port_bandwidth:
        scale *= max_port_bandwidth / worst

    flows: List[TrafficFlow] = []
    for (src, dst), weight in zip(pairs, weights):
        latency = round(rng.uniform(lo_lat, hi_lat), 1)
        bw = round(weight * scale, 1)
        flows.append(TrafficFlow(
            src=f"C{src}", dst=f"C{dst}", bandwidth=bw, latency=latency,
        ))
        if with_responses:
            flows.append(TrafficFlow(
                src=f"C{dst}", dst=f"C{src}",
                bandwidth=round(bw * rng.uniform(0.4, 0.9), 1),
                latency=latency,
                message_type=MessageType.RESPONSE,
            ))

    return build_benchmark(
        f"synthetic_{pattern}_{num_cores}c_{num_layers}l_s{seed}",
        cores,
        flows,
        num_layers=num_layers,
        description=f"synthetic {pattern} design ({num_cores} cores)",
        seed=seed,
        layer_strategy=layer_strategy,
        floorplan_moves=floorplan_moves,
        floorplan_restarts=floorplan_restarts,
        floorplan_jobs=floorplan_jobs,
    )


# --------------------------------------------------------------------------
# internals
# --------------------------------------------------------------------------

def _make_cores(num_cores: int, pattern: str, seed: int):
    """Role-tagged core dimensions: every other core a memory for the
    memory-centric patterns, mixed roles otherwise."""
    from repro.bench.suites import _sized

    cores = []
    for i in range(num_cores):
        if pattern in ("distributed", "bottleneck"):
            role = "mem" if i % 2 else "proc"
        elif pattern == "pipeline":
            role = "accel" if i % 3 else "mem"
        else:
            role = ("proc", "mem", "accel", "periph")[i % 4]
        cores.append(_sized(f"C{i}", role, seed))
    return cores


def _make_pairs(num_cores: int, pattern: str, rng) -> List[Tuple[int, int]]:
    pairs: List[Tuple[int, int]] = []
    seen = set()

    def add(src: int, dst: int) -> None:
        if src != dst and (src, dst) not in seen:
            seen.add((src, dst))
            pairs.append((src, dst))

    if pattern == "pipeline":
        for i in range(num_cores - 1):
            add(i, i + 1)
        # A few skip connections.
        for i in range(0, num_cores - 4, 5):
            add(i, i + 3)
    elif pattern == "distributed":
        procs = [i for i in range(num_cores) if i % 2 == 0]
        mems = [i for i in range(num_cores) if i % 2 == 1]
        flows_per_proc = max(2, min(4, len(mems) - 1))
        for p in procs:
            targets = rng.sample(mems, min(flows_per_proc, len(mems)))
            for m in targets:
                add(p, m)
    elif pattern == "bottleneck":
        procs = [i for i in range(num_cores) if i % 2 == 0]
        mems = [i for i in range(num_cores) if i % 2 == 1]
        shared = mems[: max(1, len(mems) // 5)]
        private = mems[len(shared):]
        for k, p in enumerate(procs):
            if k < len(private):
                add(p, private[k])
            for s in shared:
                add(p, s)
    else:  # random
        target_flows = max(num_cores, int(1.5 * num_cores))
        attempts = 0
        while len(pairs) < target_flows and attempts < 20 * target_flows:
            attempts += 1
            add(rng.randrange(num_cores), rng.randrange(num_cores))
    return pairs
