"""Deterministic random-number helpers.

Every stochastic routine in the library (simulated annealing, synthetic
benchmark generation, traffic injection) takes an explicit integer seed and
derives its generator through :func:`make_rng`, so that all experiments are
bit-for-bit reproducible run to run.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable


def make_rng(seed: int, *salt: object) -> random.Random:
    """Create a :class:`random.Random` from ``seed`` and optional salt values.

    The salt lets independent components derive decorrelated streams from a
    single experiment seed without sharing generator state::

        rng_a = make_rng(seed, "floorplan", layer)
        rng_b = make_rng(seed, "traffic", flow_id)

    Salts are mixed with a *stable* hash (md5), never the built-in ``hash``,
    whose per-process randomisation for strings would make results differ
    between runs.
    """
    if salt:
        key = repr((int(seed),) + tuple(str(s) for s in salt)).encode()
        digest = hashlib.md5(key).hexdigest()
        return random.Random(int(digest[:16], 16))
    return random.Random(int(seed))


def make_np_rng(seed: int, *salt: object):
    """A numpy ``RandomState`` twin of :func:`make_rng`: same seed and salt,
    bit-equal stream — ``make_np_rng(s).random_sample(n)`` replays
    ``[make_rng(s).random() for _ in range(n)]`` draw for draw.

    Both generators are MT19937 seeded through ``init_by_array`` from the
    little-endian 32-bit words of the integer key, and both produce doubles
    via the 53-bit ``((a >> 5) * 2^26 + (b >> 6)) / 2^53`` recipe, so the
    streams are identical. This is what lets the vectorized batch-schedule
    sampler (:mod:`repro.noc.batchengine`) draw whole arrival arrays at once
    while staying bit-identical to the scalar schedule builder — and why
    numpy generator construction stays in this one audited module.
    """
    import numpy as np  # deferred: keep repro.rng import-light

    if salt:
        key = repr((int(seed),) + tuple(str(s) for s in salt)).encode()
        n = int(hashlib.md5(key).hexdigest()[:16], 16)
    else:
        n = int(seed)
    words = []
    while n:
        words.append(n & 0xFFFFFFFF)
        n >>= 32
    return np.random.RandomState(words or [0])


def restart_rng(seed: int, salt: str, restart: int) -> random.Random:
    """The multi-start annealing stream contract, shared by every annealer.

    Restart 0 keeps the exact historical single-start stream
    (``make_rng(seed, salt)``), so ``restarts=1`` reproduces pre-multi-start
    trajectories bit for bit; restarts 1..K-1 derive decorrelated streams
    from the same experiment seed. Serial/parallel bit-identity of
    multi-start runs depends on every caller deriving restart streams
    through this one function.
    """
    if restart == 0:
        return make_rng(seed, salt)
    return make_rng(seed, salt, "restart", restart)


def stable_shuffle(items: Iterable, seed: int, *salt: object) -> list:
    """Return a deterministically shuffled copy of ``items``."""
    out = list(items)
    make_rng(seed, "shuffle", *salt).shuffle(out)
    return out
