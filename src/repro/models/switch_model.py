"""Parametric power/area/timing model of a NoC switch.

The model captures the three dependencies the synthesis algorithm exploits
(paper Secs. IV, V-C and VIII-A):

* **maximum frequency falls with port count** — "as the number of I/O ports
  of a switch increases, the maximum frequency of operation that can be
  supported by it reduces, as the combinational path inside the crossbar and
  arbiter increases with size";
* **power grows with port count** — clock tree, arbiter and crossbar scale
  with the radix, so many small switches can beat few large ones;
* **per-flit traversal energy grows with port count** — larger crossbars
  burn more energy per transported flit.

Power is decomposed as::

    P(ports, f, load) = P_static(ports)
                      + P_clock(ports) * f
                      + E_flit(ports) * load

with ``load`` the total flit rate through the switch in Mflits/s.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import mega_ops_energy_to_mw


@dataclass(frozen=True)
class SwitchModel:
    """Analytic switch model with 65 nm-flavoured default constants.

    Attributes:
        static_base_mw: Leakage floor of the smallest switch (mW).
        static_per_port_mw: Additional leakage per port (mW).
        clock_base_mw_per_mhz: Clock-tree/control power slope (mW per MHz).
        clock_per_port_mw_per_mhz: Clock power slope per port (mW per MHz).
        energy_base_pj: Energy per flit through the smallest crossbar (pJ).
        energy_per_port_pj: Additional per-flit energy per port (pJ).
        fmax_intercept_mhz: Max frequency of a (hypothetical) 0-port switch.
        fmax_slope_mhz_per_port: Frequency lost per added port.
        fmax_floor_mhz: Clamp so f_max never reaches zero.
        area_base_mm2: Area of the smallest switch (mm^2).
        area_per_port_mm2: Area added per port (mm^2).
        min_ports: Smallest meaningful switch radix (1 in + 1 out).
    """

    static_base_mw: float = 0.05
    static_per_port_mw: float = 0.010
    clock_base_mw_per_mhz: float = 0.002
    clock_per_port_mw_per_mhz: float = 0.0008
    energy_base_pj: float = 0.8
    energy_per_port_pj: float = 0.12
    fmax_intercept_mhz: float = 950.0
    fmax_slope_mhz_per_port: float = 50.0
    fmax_floor_mhz: float = 50.0
    area_base_mm2: float = 0.005
    area_per_port_mm2: float = 0.0035
    min_ports: int = 2

    def f_max(self, ports: int) -> float:
        """Maximum operating frequency (MHz) of a switch with ``ports`` ports.

        ``ports`` counts input and output ports together divided by two is not
        used; we follow the paper's convention of a single "switch size"
        number, the larger of input and output port counts.
        """
        self._check_ports(ports)
        f = self.fmax_intercept_mhz - self.fmax_slope_mhz_per_port * ports
        return max(f, self.fmax_floor_mhz)

    def max_switch_size(self, frequency_mhz: float) -> int:
        """Largest port count that still meets ``frequency_mhz``.

        This is ``max_sw_size`` of Algorithm 2 / pruning rule 1 (Sec. V-C).
        Returns at least ``min_ports``; raises ValueError if even the smallest
        switch cannot reach the requested frequency.
        """
        if frequency_mhz <= 0:
            raise ValueError(f"frequency must be positive, got {frequency_mhz}")
        if self.f_max(self.min_ports) < frequency_mhz:
            raise ValueError(
                f"no switch size supports {frequency_mhz} MHz "
                f"(smallest switch tops out at {self.f_max(self.min_ports)} MHz)"
            )
        ports = self.min_ports
        while self.f_max(ports + 1) >= frequency_mhz:
            ports += 1
        return ports

    def static_power_mw(self, ports: int) -> float:
        """Leakage power in mW."""
        self._check_ports(ports)
        return self.static_base_mw + self.static_per_port_mw * ports

    def clock_power_mw(self, ports: int, frequency_mhz: float) -> float:
        """Clock-tree and idle switching power in mW at ``frequency_mhz``."""
        self._check_ports(ports)
        slope = self.clock_base_mw_per_mhz + self.clock_per_port_mw_per_mhz * ports
        return slope * frequency_mhz

    def energy_per_flit_pj(self, ports: int) -> float:
        """Energy to move one flit input->output through the crossbar (pJ)."""
        self._check_ports(ports)
        return self.energy_base_pj + self.energy_per_port_pj * ports

    def traffic_power_mw(self, ports: int, load_mflits_per_s: float) -> float:
        """Dynamic power for a total traversal rate of ``load`` Mflits/s."""
        if load_mflits_per_s < 0:
            raise ValueError(f"load must be non-negative, got {load_mflits_per_s}")
        return mega_ops_energy_to_mw(load_mflits_per_s, self.energy_per_flit_pj(ports))

    def power_mw(
        self, ports: int, frequency_mhz: float, load_mflits_per_s: float
    ) -> float:
        """Total switch power (static + clock + traffic) in mW."""
        return (
            self.static_power_mw(ports)
            + self.clock_power_mw(ports, frequency_mhz)
            + self.traffic_power_mw(ports, load_mflits_per_s)
        )

    def area_mm2(self, ports: int) -> float:
        """Silicon area of the switch in mm^2 ("few thousand gates")."""
        self._check_ports(ports)
        return self.area_base_mm2 + self.area_per_port_mm2 * ports

    def delay_cycles(self) -> int:
        """Pipeline depth of a switch traversal in cycles (×pipesLite: 1)."""
        return 1

    def _check_ports(self, ports: int) -> None:
        if ports < self.min_ports:
            raise ValueError(
                f"switch must have at least {self.min_ports} ports, got {ports}"
            )
