"""The NoC component library: switch + link + TSV models bundled together.

The synthesis flow takes a single :class:`NocLibrary` object wherever the
paper says "the power, area, and timing models of the NoC switches and links
are also taken as inputs" (Sec. IV). :func:`default_library` returns the
65 nm-flavoured library used by all experiments; tests construct variants to
probe model sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.models.link_model import LinkModel
from repro.models.switch_model import SwitchModel
from repro.models.tsv_model import TsvModel


@dataclass(frozen=True)
class NocLibrary:
    """Bundle of the three component models plus shared parameters.

    Attributes:
        switch: Switch power/area/f_max model.
        link: Planar link power/delay model.
        tsv: Vertical link and TSV macro model.
        name: Human-readable library name (for reports).
    """

    switch: SwitchModel = field(default_factory=SwitchModel)
    link: LinkModel = field(default_factory=LinkModel)
    tsv: TsvModel = field(default_factory=TsvModel)
    name: str = "xpipes65-repro"

    def with_switch(self, **kwargs) -> "NocLibrary":
        """A copy with modified switch-model constants."""
        return replace(self, switch=replace(self.switch, **kwargs))

    def with_link(self, **kwargs) -> "NocLibrary":
        """A copy with modified link-model constants."""
        return replace(self, link=replace(self.link, **kwargs))

    def with_tsv(self, **kwargs) -> "NocLibrary":
        """A copy with modified TSV-model constants."""
        return replace(self, tsv=replace(self.tsv, **kwargs))


def default_library() -> NocLibrary:
    """The default 65 nm low-power-flavoured library (see DESIGN.md Sec. 3)."""
    return NocLibrary()
