"""Technology models: switch, planar link, TSV vertical link, yield.

The paper takes "the power, area, and timing models of the NoC switches and
links" as inputs (Sec. IV), using post-layout numbers of the ×pipesLite
library at 65 nm [35] and the vertical-link measurements of Loi et al. [34].
Those libraries are proprietary, so this package provides parametric analytic
models with constants calibrated to the figures the paper quotes:

* a single switch costs a few mW at 1 GHz and a few thousand gates;
* the maximum frequency of a switch falls as its port count grows;
* an unrepeated planar link at 65 nm spans at most 1.5 mm;
* a TSV vertical link has roughly an order of magnitude lower R and C than a
  moderate planar link (~17 ps delay), making inter-layer hops nearly free;
* yield stays flat up to a process-dependent TSV count and drops rapidly
  beyond it (Fig. 1, after Miyakawa [39]).

The synthesis algorithms consume only the model interfaces, so any other
NoC library can be plugged in (as the paper states).
"""

from repro.models.switch_model import SwitchModel
from repro.models.link_model import LinkModel
from repro.models.tsv_model import TsvModel, TsvProcess, yield_for_tsv_count, max_tsvs_for_yield
from repro.models.library import NocLibrary, default_library

__all__ = [
    "SwitchModel",
    "LinkModel",
    "TsvModel",
    "TsvProcess",
    "NocLibrary",
    "default_library",
    "yield_for_tsv_count",
    "max_tsvs_for_yield",
]
