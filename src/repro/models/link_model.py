"""Parametric power/delay model of planar (intra-layer) NoC links.

Links are the dominant power consumer in 2-D designs (Table I of the paper),
because global-wire energy grows linearly with length while switch energy is
length-independent. The model is::

    E(flit, length)  = e_planar_pj_per_mm * length          [pJ/flit]
    P_static(length) = static_mw_per_mm * length            [mW]  (repeaters)
    stages(length)   = ceil(length * wire_delay_ns_per_mm / cycle_ns)

Long links are pipelined to sustain full throughput at the NoC frequency
(Sec. VII: "we also pipeline long links to support full throughput"); each
pipeline stage costs one cycle of latency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.units import mega_ops_energy_to_mw


@dataclass(frozen=True)
class LinkModel:
    """Analytic planar-link model with 65 nm-flavoured default constants.

    Attributes:
        e_planar_pj_per_mm: Energy per flit per mm of wire (32-bit flit,
            repeated global wire; ~0.125 pJ/bit/mm).
        static_mw_per_mm: Repeater leakage per mm of 32-bit link.
        wire_delay_ns_per_mm: Propagation delay of a repeated wire.
        min_segment_mm: Shortest meaningful pipeline segment; also used as
            the resolution when estimating lengths before placement.
        ni_energy_pj: Energy per flit through a network interface (protocol
            conversion, clock-domain crossing).
        ni_area_mm2: Area of one network interface.
        ni_delay_cycles: Latency contribution of source + destination NI.
    """

    e_planar_pj_per_mm: float = 4.0
    static_mw_per_mm: float = 0.012
    wire_delay_ns_per_mm: float = 0.9
    min_segment_mm: float = 0.05
    ni_energy_pj: float = 0.6
    ni_area_mm2: float = 0.010
    ni_delay_cycles: int = 1

    def energy_per_flit_pj(self, length_mm: float) -> float:
        """Energy to move one flit across a planar link of ``length_mm``."""
        self._check_length(length_mm)
        return self.e_planar_pj_per_mm * length_mm

    def traffic_power_mw(self, length_mm: float, load_mflits_per_s: float) -> float:
        """Dynamic power of the link under ``load`` Mflits/s."""
        if load_mflits_per_s < 0:
            raise ValueError(f"load must be non-negative, got {load_mflits_per_s}")
        return mega_ops_energy_to_mw(
            load_mflits_per_s, self.energy_per_flit_pj(length_mm)
        )

    def static_power_mw(self, length_mm: float) -> float:
        """Repeater leakage of the link."""
        self._check_length(length_mm)
        return self.static_mw_per_mm * length_mm

    def power_mw(self, length_mm: float, load_mflits_per_s: float) -> float:
        """Total link power (static + dynamic)."""
        return self.static_power_mw(length_mm) + self.traffic_power_mw(
            length_mm, load_mflits_per_s
        )

    def pipeline_stages(self, length_mm: float, frequency_mhz: float) -> int:
        """Number of pipeline stages (>= 1) needed to clock the link at
        ``frequency_mhz`` while sustaining one flit per cycle.

        A link shorter than one cycle's wire reach needs a single stage; each
        additional cycle of propagation delay adds a register stage.
        """
        self._check_length(length_mm)
        if frequency_mhz <= 0:
            raise ValueError(f"frequency must be positive, got {frequency_mhz}")
        if length_mm == 0:
            return 1
        cycle_ns = 1000.0 / frequency_mhz
        wire_ns = length_mm * self.wire_delay_ns_per_mm
        return max(1, math.ceil(wire_ns / cycle_ns))

    def delay_cycles(self, length_mm: float, frequency_mhz: float) -> int:
        """Zero-load latency of the link in cycles (== pipeline stages)."""
        return self.pipeline_stages(length_mm, frequency_mhz)

    def max_single_cycle_length_mm(self, frequency_mhz: float) -> float:
        """Longest link traversable in a single cycle at ``frequency_mhz``."""
        if frequency_mhz <= 0:
            raise ValueError(f"frequency must be positive, got {frequency_mhz}")
        cycle_ns = 1000.0 / frequency_mhz
        return cycle_ns / self.wire_delay_ns_per_mm

    def _check_length(self, length_mm: float) -> None:
        if length_mm < 0:
            raise ValueError(f"length must be non-negative, got {length_mm}")
