"""TSV vertical-link model and the TSV-count yield model of Fig. 1.

Vertical links built from through-silicon vias have roughly an order of
magnitude lower resistance and capacitance than a moderate planar link
(paper Sec. VIII, after Loi et al. [34]: 16-18.5 ps delay for a 4 um-diameter,
8 um-pitch TSV). Consequently an inter-layer hop is nearly free in both power
and delay, which is the physical root of the 3-D advantage the paper reports.

The yield model reproduces the qualitative behaviour of Fig. 1 (after
Miyakawa [39]): yield is flat up to a process-dependent TSV count and decays
rapidly beyond it. From a target yield the model derives the TSV budget, and
from the budget and the per-link TSV count, the ``max_ill`` constraint the
synthesis algorithm consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.units import mega_ops_energy_to_mw


@dataclass(frozen=True)
class TsvProcess:
    """Yield parameters of one 3-D manufacturing process (one Fig. 1 curve).

    Yield is modelled as::

        yield(n) = base_yield                          for n <= knee_tsvs
        yield(n) = base_yield * exp(-(n - knee)/decay) for n >  knee_tsvs
    """

    name: str
    base_yield: float
    knee_tsvs: int
    decay_tsvs: float

    def yield_at(self, tsv_count: int) -> float:
        if tsv_count < 0:
            raise ValueError(f"TSV count must be non-negative, got {tsv_count}")
        if tsv_count <= self.knee_tsvs:
            return self.base_yield
        return self.base_yield * math.exp(
            -(tsv_count - self.knee_tsvs) / self.decay_tsvs
        )

    def max_tsvs(self, target_yield: float) -> int:
        """Largest TSV count whose yield still meets ``target_yield``."""
        if not 0 < target_yield <= 1:
            raise ValueError(f"target yield must be in (0, 1], got {target_yield}")
        if target_yield > self.base_yield:
            raise ValueError(
                f"process {self.name!r} cannot reach yield {target_yield} "
                f"(base yield {self.base_yield})"
            )
        if target_yield == self.base_yield:
            return self.knee_tsvs
        extra = -self.decay_tsvs * math.log(target_yield / self.base_yield)
        return self.knee_tsvs + int(extra)


#: Three representative processes, mimicking the three curves of Fig. 1
#: (an aggressive wafer-level process, a mainstream one, and an early one).
DEFAULT_PROCESSES: Dict[str, TsvProcess] = {
    "wafer-level-a": TsvProcess("wafer-level-a", base_yield=0.95, knee_tsvs=1600, decay_tsvs=900.0),
    "wafer-level-b": TsvProcess("wafer-level-b", base_yield=0.90, knee_tsvs=800, decay_tsvs=450.0),
    "die-to-wafer": TsvProcess("die-to-wafer", base_yield=0.85, knee_tsvs=400, decay_tsvs=250.0),
}


def yield_for_tsv_count(process: str, tsv_count: int) -> float:
    """Yield of ``process`` at ``tsv_count`` TSVs per adjacent layer pair."""
    return _lookup(process).yield_at(tsv_count)


def max_tsvs_for_yield(process: str, target_yield: float) -> int:
    """TSV budget of ``process`` to meet ``target_yield``."""
    return _lookup(process).max_tsvs(target_yield)


def _lookup(process: str) -> TsvProcess:
    try:
        return DEFAULT_PROCESSES[process]
    except KeyError:
        known = ", ".join(sorted(DEFAULT_PROCESSES))
        raise ValueError(f"unknown TSV process {process!r} (known: {known})")


@dataclass(frozen=True)
class TsvModel:
    """Electrical/geometric model of TSV-based vertical links.

    Attributes:
        e_tsv_pj_per_layer: Energy per flit per layer crossing. An order of
            magnitude below a ~1 mm planar link, per [34].
        delay_ps_per_layer: Propagation delay per crossing (16-18.5 ps in
            [34]; negligible against a 2.5 ns cycle at 400 MHz).
        static_mw_per_link: Leakage of one vertical link's drivers.
        tsv_pitch_um: TSV pitch (8 um in [34]).
        control_tsvs: Extra TSVs per link for flow control/valid signals.
        redundancy: Spare-TSV factor for fault tolerance (Sec. III, after
            Loi et al. [40]): 1.0 = no spares; 1.25 = 25% extra TSVs. "Adding
            redundant TSVs can be considered by reserving more area with the
            TSV macros and it is transparent for our tool."
    """

    e_tsv_pj_per_layer: float = 0.4
    delay_ps_per_layer: float = 17.0
    static_mw_per_link: float = 0.004
    tsv_pitch_um: float = 8.0
    control_tsvs: int = 8
    redundancy: float = 1.0

    def __post_init__(self) -> None:
        if self.redundancy < 1.0:
            raise ValueError(
                f"redundancy factor must be >= 1.0, got {self.redundancy}"
            )

    def tsvs_per_link(self, width_bits: int) -> int:
        """TSVs needed by one vertical link of ``width_bits`` data bits.

        Data wires plus flow-control wires, one TSV each, scaled up by the
        spare-TSV redundancy factor.
        """
        if width_bits <= 0:
            raise ValueError(f"width must be positive, got {width_bits}")
        import math

        return math.ceil((width_bits + self.control_tsvs) * self.redundancy)

    def macro_area_mm2(self, width_bits: int) -> float:
        """Area of the TSV macro reserving space for one link (Sec. III).

        Each TSV occupies a pitch x pitch square; the macro is the bounding
        area of the link's TSV bundle.
        """
        count = self.tsvs_per_link(width_bits)
        pitch_mm = self.tsv_pitch_um / 1000.0
        return count * pitch_mm * pitch_mm

    def energy_per_flit_pj(self, layers_crossed: int) -> float:
        """Energy for one flit to cross ``layers_crossed`` layer boundaries."""
        if layers_crossed < 0:
            raise ValueError(f"layers crossed must be >= 0, got {layers_crossed}")
        return self.e_tsv_pj_per_layer * layers_crossed

    def traffic_power_mw(
        self, layers_crossed: int, load_mflits_per_s: float
    ) -> float:
        """Dynamic power of the vertical portion of a link."""
        if load_mflits_per_s < 0:
            raise ValueError(f"load must be non-negative, got {load_mflits_per_s}")
        return mega_ops_energy_to_mw(
            load_mflits_per_s, self.energy_per_flit_pj(layers_crossed)
        )

    def delay_cycles(self, layers_crossed: int, frequency_mhz: float) -> int:
        """Extra cycles a vertical crossing adds (0 for realistic configs).

        17 ps/layer against a multi-ns cycle only matters above ~50 layers;
        the method still accounts for it exactly.
        """
        if frequency_mhz <= 0:
            raise ValueError(f"frequency must be positive, got {frequency_mhz}")
        if layers_crossed < 0:
            raise ValueError(f"layers crossed must be >= 0, got {layers_crossed}")
        cycle_ps = 1e6 / frequency_mhz
        return int(layers_crossed * self.delay_ps_per_layer // cycle_ps)

    def max_ill_for_budget(self, tsv_budget: int, width_bits: int) -> int:
        """Maximum inter-layer link count supported by ``tsv_budget`` TSVs.

        "For a particular link width, the maximum number of links can be
        directly determined from the TSV constraints" (Sec. IV).
        """
        if tsv_budget < 0:
            raise ValueError(f"TSV budget must be non-negative, got {tsv_budget}")
        return tsv_budget // self.tsvs_per_link(width_bits)
