"""Pickling-safe task descriptors for the parallel engine.

Two task granularities cross the ``ProcessPoolExecutor`` boundary:

* :class:`SynthesisTask` — one architectural point of the Fig. 3 outer
  loop: a (core spec, communication spec, configuration) triple plus an
  opaque ``key`` the caller uses to file the merged result. The worker
  runs the *whole* staged flow for that point.
* :class:`CandidateTask` — one connectivity candidate *inside* a synthesis
  run: the same value objects plus a pre-built
  :class:`~repro.core.assignment.Assignment` and the pipeline's stage
  sequence. ``synthesize(..., jobs=N)`` fans these out so a single run
  parallelises across its own switch-count sweep.
* :class:`FloorplanTask` / :class:`ConstrainedInsertTask` — one restart of
  a multi-start floorplan anneal (``anneal_floorplan(restarts=K, jobs=N)``
  and the constrained inserter's equivalent). Restarts are independently
  seeded, so the parent merges them deterministically by best cost.
* :class:`SimulationTask` — one wormhole-simulation run of a
  (seed × injection scale × traffic scenario) load-sweep campaign over an
  already-synthesized topology
  (``run_simulation_validation(..., jobs=N)``). Runs are deterministic in
  their parameters, so the merged campaign is bit-identical serial vs
  parallel.
* :class:`BatchSimulationTask` — K such replications of one traffic point
  batched onto the vectorised lockstep engine
  (:mod:`repro.noc.batchengine`); per-replication results and store
  fingerprints are identical to K solo :class:`SimulationTask`\\ s.

Tasks are plain frozen dataclasses built only from spec/config/library
value objects (and, for candidates, stateless stage instances), so they
pickle untouched — no open file handles, no RNG state, no references back
into the parent's topology objects.

Infeasible sweep points (a single flow exceeding link capacity) are marked
``skip=True`` at task-build time and short-circuit to an empty
:class:`~repro.core.design_point.SynthesisResult` without paying a worker
round-trip, mirroring the serial sweeps' behaviour.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

from repro.core.config import SynthesisConfig
from repro.models.library import NocLibrary
from repro.spec.comm_spec import CommSpec
from repro.spec.core_spec import CoreSpec


@dataclass(frozen=True)
class SynthesisTask:
    """One synthesis point of an architectural sweep.

    Attributes:
        key: Caller-chosen hashable identifier (e.g. ``("frequency", 400.0)``
            or a :class:`~repro.engine.grid.GridPoint`) used to merge results
            deterministically.
        core_spec: Core floorplan/layer specification.
        comm_spec: Traffic specification.
        config: Fully resolved configuration for this point (the sweep
            parameter already applied via ``SynthesisConfig.with_``).
        library: Component library; ``None`` selects the default library in
            the worker (cheaper to pickle).
        stages: Optional stage sequence (names or instances, see
            :func:`repro.core.pipeline.build_pipeline`) substituting the
            default pipeline in the worker.
        skip: Pre-determined infeasible point — the engine returns an empty
            result without running synthesis.
        skip_reason: Human-readable note for reports/logs.
        stage_cache_dir / stage_cache_salt: Optional per-stage memoization
            (see :mod:`repro.engine.stagecache`): the worker opens a
            :class:`~repro.engine.stagecache.StageCache` at this directory
            and serves/checkpoints individual pipeline stages. Excluded
            from the task fingerprint — results are bit-identical with or
            without it.
    """

    #: Results-invariant knobs: where stage results are memoised must not
    #: split the whole-task cache.
    __fingerprint_exclude__ = ("stage_cache_dir", "stage_cache_salt")

    key: Hashable
    core_spec: CoreSpec
    comm_spec: CommSpec
    config: SynthesisConfig
    library: Optional[NocLibrary] = None
    stages: Optional[Tuple] = None
    skip: bool = False
    skip_reason: str = ""
    stage_cache_dir: Optional[str] = None
    stage_cache_salt: Optional[str] = None


@dataclass(frozen=True)
class CandidateTask:
    """One candidate evaluation of a single synthesis run (``jobs=N``).

    The ``stages`` tuple carries the parent pipeline's stage instances so
    substituted stages survive the process boundary; stages must therefore
    be defined at module top level (see :class:`repro.core.pipeline.Stage`).
    """

    __fingerprint_exclude__ = ("stage_cache_dir", "stage_cache_salt")

    key: Hashable
    core_spec: CoreSpec
    comm_spec: CommSpec
    config: SynthesisConfig
    assignment: object
    library: Optional[NocLibrary] = None
    stages: Optional[Tuple] = None
    #: Parent-generated token identifying the run's FlowContext; candidate
    #: tasks sharing a token share the rebuilt context in the worker.
    context_token: Optional[str] = None
    #: Per-stage memoization spec (see :class:`SynthesisTask`); the worker
    #: memoises one cache handle per (dir, salt) across candidates.
    stage_cache_dir: Optional[str] = None
    stage_cache_salt: Optional[str] = None


@dataclass(frozen=True)
class FloorplanTask:
    """One restart of a multi-start floorplan anneal.

    ``nets``/``anchors`` are the net dicts' ``items()`` tuples — tuples
    pickle cheaply and preserve declaration order, which the incremental
    evaluator's fixed-order wirelength summation depends on. ``initial_sp``
    is shared across restarts so the grid seed pair is built once.
    """

    key: Hashable
    widths: Tuple[float, ...]
    heights: Tuple[float, ...]
    nets: Tuple = ()
    anchors: Tuple = ()
    wirelength_weight: float = 1.0
    seed: int = 0
    moves: int = 4000
    initial_temperature: float = 1.0
    cooling: float = 0.995
    initial_sp: Optional[object] = None
    restart: int = 0


@dataclass(frozen=True)
class ConstrainedInsertTask:
    """One restart of a multi-start constrained insertion (Sec. VIII-D).

    Carries the placed/new component dataclasses verbatim; the worker
    re-derives the (cheap) annealing problem and returns
    ``(best_cost, best_sequence_pair)`` so the parent packs the winner once.
    """

    key: Hashable
    existing: Tuple = ()
    new_components: Tuple = ()
    seed: int = 0
    moves: int = 3000
    displacement_weight: float = 1.0
    initial_temperature: float = 1.0
    cooling: float = 0.995
    restart: int = 0


@dataclass(frozen=True)
class SimulationTask:
    """One wormhole-simulation run of a traffic-sweep campaign.

    Carries the routed :class:`~repro.noc.topology.Topology` by value (plain
    dataclasses — pickles untouched) plus the simulation knobs; the worker
    rebuilds the simulator and runs the array-based engine. ``scenario`` is
    a :mod:`repro.noc.scenarios` spec (name, ``"name:arg"`` string or frozen
    scenario dataclass — all picklable).
    """

    key: Hashable
    topology: object
    library: Optional[NocLibrary] = None
    buffer_depth: int = 4
    packet_length_flits: int = 4
    seed: int = 0
    cycles: int = 20_000
    warmup: int = 2_000
    injection_scale: float = 1.0
    scenario: Optional[object] = None
    drain_limit: Optional[int] = None


@dataclass(frozen=True)
class BatchSimulationTask:
    """K lockstep replications of one traffic point, one worker round-trip.

    The same knobs as :class:`SimulationTask` with ``seeds`` (a tuple of K
    replication seeds) in place of ``seed``; the worker runs all K on the
    vectorised batch engine (:mod:`repro.noc.batchengine`) and returns a
    tuple of K :class:`~repro.noc.simulator.SimulationStats` in seed order,
    each bit-identical to a solo :class:`SimulationTask` at that seed.

    A batch has no store identity of its own: :meth:`expand_for_store`
    names its per-replication solo tasks and the executor fingerprints
    those individually, so a warm store serves a batched campaign from a
    solo-run cache (and vice versa), and a partially-cached batch is
    :meth:`narrow`\\ ed to just its missing replications. The chunking —
    which seeds share a batch, and the batch width itself — therefore never
    splits the cache.
    """

    key: Hashable
    topology: object
    seeds: Tuple[int, ...] = (0,)
    library: Optional[NocLibrary] = None
    buffer_depth: int = 4
    packet_length_flits: int = 4
    cycles: int = 20_000
    warmup: int = 2_000
    injection_scale: float = 1.0
    scenario: Optional[object] = None
    drain_limit: Optional[int] = None

    def expand_for_store(self) -> Tuple[SimulationTask, ...]:
        """The batch's store identity: one solo task per replication."""
        return tuple(
            SimulationTask(
                key=(self.key, seed),
                topology=self.topology,
                library=self.library,
                buffer_depth=self.buffer_depth,
                packet_length_flits=self.packet_length_flits,
                seed=seed,
                cycles=self.cycles,
                warmup=self.warmup,
                injection_scale=self.injection_scale,
                scenario=self.scenario,
                drain_limit=self.drain_limit,
            )
            for seed in self.seeds
        )

    def narrow(self, indices: Tuple[int, ...]) -> "BatchSimulationTask":
        """The sub-batch holding only the replications at ``indices``."""
        return dataclasses.replace(
            self, seeds=tuple(self.seeds[i] for i in indices)
        )


@dataclass
class TaskResult:
    """Outcome of one task: a result or a captured error, never both.

    ``result`` is a :class:`~repro.core.design_point.SynthesisResult` for a
    :class:`SynthesisTask` and a
    :class:`~repro.core.pipeline.CandidateOutcome` for a
    :class:`CandidateTask`.

    Workers never raise across the process boundary; errors are captured so
    the executor can re-raise them *deterministically* (first failing task
    in submission order, exactly like a serial loop) instead of in
    completion order.

    ``cached=True`` marks a result served from a
    :class:`~repro.engine.store.ResultStore` instead of computed; the
    payload is bit-identical to a fresh computation, only ``elapsed_s``
    (the fetch cost, effectively zero) differs.

    ``attempts`` counts executions of the task body (1 without retries);
    ``elapsed_s`` accumulates across attempts. ``traceback`` carries the
    worker-side formatted traceback of ``error`` — exceptions crossing the
    pickle boundary lose ``__traceback__``, so this string is the only
    record of *where* a remote failure happened.

    ``stage_cache`` carries the per-stage hit/miss/bytes counters of a
    stage-cached :class:`SynthesisTask` (a ``stats_dict()`` mapping, see
    :class:`~repro.engine.stagecache.StageCache`) so sweep summaries can
    aggregate them; it lives on the *result envelope*, never inside the
    cached payload, keeping warm and cold payloads bit-identical.
    """

    key: Hashable
    result: Optional[object] = None
    error: Optional[BaseException] = None
    elapsed_s: float = 0.0
    skipped: bool = False
    cached: bool = False
    attempts: int = 1
    traceback: Optional[str] = None
    stage_cache: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def run_task(task, retry=None) -> TaskResult:
    """Execute one engine task (worker entry point — must stay importable
    at module top level for pickling).

    ``retry`` is an optional :class:`~repro.engine.supervise.RetryPolicy`:
    a failed attempt whose error the policy accepts is re-run (same process,
    deterministic backoff) up to ``retry.max_retries`` extra times. The
    returned result records total ``attempts`` and accumulated ``elapsed_s``.
    """
    result = _attempt_task(task)
    if retry is None:
        return result
    for retry_number in range(1, retry.max_retries + 1):
        if result.error is None or result.skipped:
            break
        if not retry.should_retry(result.error):
            break
        retry.wait(retry_number)
        fresh = _attempt_task(task)
        fresh.elapsed_s += result.elapsed_s
        fresh.attempts = result.attempts + 1
        result = fresh
    return result


def run_chunk(chunk, retry=None):
    """Worker entry point for chunked submission (top level: picklable)."""
    return [run_task(task, retry) for task in chunk]


def _attempt_task(task) -> TaskResult:
    """One execution of a task body (no retry logic)."""
    activate = getattr(task, "activate_fault", None)
    if activate is not None:
        # A fault-injection wrapper (repro.engine.faults.FaultyTask): fire
        # the fault, then run the wrapped task under the *wrapper's* key —
        # the executor may have re-keyed the wrapper for store bookkeeping.
        fault_result = _timed_task(task.key, activate)
        if fault_result.error is not None:
            return fault_result
        inner_result = _attempt_task(task.inner)
        inner_result.key = task.key
        inner_result.elapsed_s += fault_result.elapsed_s
        return inner_result
    if isinstance(task, CandidateTask):
        return _run_candidate_task(task)
    if isinstance(task, FloorplanTask):
        return _run_floorplan_task(task)
    if isinstance(task, ConstrainedInsertTask):
        return _run_constrained_task(task)
    if isinstance(task, SimulationTask):
        return _run_simulation_task(task)
    if isinstance(task, BatchSimulationTask):
        return _run_batch_simulation_task(task)
    if task.skip:
        from repro.core.design_point import SynthesisResult

        return TaskResult(key=task.key, result=SynthesisResult(), skipped=True)

    stage_stats: dict = {}

    def body():
        from repro.core.pipeline import build_pipeline
        from repro.core.synthesis import synthesize

        pipeline = build_pipeline(task.stages) if task.stages else None
        # A fresh handle per task: its counters then *are* this point's
        # stage-cache stats (open cost is trivial next to a synthesis).
        stage_cache = _fresh_stage_cache(task)
        result = synthesize(
            task.core_spec, task.comm_spec, task.library, task.config,
            pipeline=pipeline, stage_cache=stage_cache,
        )
        if stage_cache is not None:
            stage_stats.update(stage_cache.stats_dict())
        return result

    task_result = _timed_task(task.key, body)
    if stage_stats:
        task_result.stage_cache = dict(stage_stats)
    return task_result


def _timed_task(key, fn) -> TaskResult:
    """Run one task body, capturing wall clock and any error (never raises
    across the process boundary — the executor re-raises deterministically).

    ``KeyboardInterrupt``/``SystemExit`` are cancellations, not task
    failures: they propagate, so an interrupted campaign tears down promptly
    instead of filing the interrupt as just another task error.
    """
    import time

    start = time.perf_counter()
    try:
        result = fn()
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException as exc:
        import traceback

        return TaskResult(
            key=key, error=exc, elapsed_s=time.perf_counter() - start,
            traceback=traceback.format_exc(),
        )
    return TaskResult(
        key=key, result=result, elapsed_s=time.perf_counter() - start
    )


def _run_floorplan_task(task: FloorplanTask) -> TaskResult:
    def body():
        from repro.floorplan.annealer import run_anneal_restart

        return run_anneal_restart(task)

    return _timed_task(task.key, body)


def _run_constrained_task(task: ConstrainedInsertTask) -> TaskResult:
    def body():
        from repro.floorplan.constrained import run_insertion_restart

        return run_insertion_restart(task)

    return _timed_task(task.key, body)


def _run_simulation_task(task: SimulationTask) -> TaskResult:
    def body():
        from repro.noc.simulator import WormholeSimulator

        sim = WormholeSimulator(
            task.topology, task.library,
            buffer_depth=task.buffer_depth,
            packet_length_flits=task.packet_length_flits,
            seed=task.seed,
        )
        return sim.run(
            cycles=task.cycles, warmup=task.warmup,
            injection_scale=task.injection_scale,
            scenario=task.scenario, drain_limit=task.drain_limit,
        )

    return _timed_task(task.key, body)


def _run_batch_simulation_task(task: BatchSimulationTask) -> TaskResult:
    def body():
        if not task.seeds:
            return ()
        from repro.noc.simulator import WormholeSimulator

        sim = WormholeSimulator(
            task.topology, task.library,
            buffer_depth=task.buffer_depth,
            packet_length_flits=task.packet_length_flits,
            seed=task.seeds[0],
        )
        return tuple(sim.run_batch(
            list(task.seeds),
            cycles=task.cycles, warmup=task.warmup,
            injection_scale=task.injection_scale,
            scenario=task.scenario, drain_limit=task.drain_limit,
        ))

    return _timed_task(task.key, body)


def _run_candidate_task(task: CandidateTask) -> TaskResult:
    def body():
        from repro.core.pipeline import build_pipeline

        ctx = _candidate_context(task)
        pipeline = build_pipeline(task.stages)
        return pipeline.evaluate(
            ctx, task.assignment, stage_cache=_shared_stage_cache(task)
        ).outcome()

    return _timed_task(task.key, body)


#: Per-process stage-cache handles, memoised by (directory, salt) so
#: consecutive candidate tasks of one run share a handle; a failed open is
#: memoised too (as None) so an unusable cache directory costs one attempt,
#: not one per candidate.
_STAGE_CACHE_HANDLES: dict = {}


def _fresh_stage_cache(task):
    """A new worker-side :class:`StageCache`, or ``None`` (no spec on the
    task, or an unusable directory — the task then runs uncached)."""
    cache_dir = getattr(task, "stage_cache_dir", None)
    if cache_dir is None:
        return None
    from repro.engine.stagecache import open_stage_cache
    from repro.errors import StoreError

    try:
        return open_stage_cache(
            cache_dir, salt=getattr(task, "stage_cache_salt", None)
        )
    except StoreError:
        return None


def _shared_stage_cache(task):
    cache_dir = getattr(task, "stage_cache_dir", None)
    if cache_dir is None:
        return None
    key = (cache_dir, getattr(task, "stage_cache_salt", None))
    if key not in _STAGE_CACHE_HANDLES:
        _STAGE_CACHE_HANDLES[key] = _fresh_stage_cache(task)
    return _STAGE_CACHE_HANDLES[key]


#: Single-slot per-process context cache: consecutive candidate tasks of one
#: run share the validated specs / comm graph instead of rebuilding them per
#: candidate. Keyed by the parent's unique ``context_token`` so the cache can
#: never serve a stale context to a different run.
_CTX_CACHE: dict = {}


def seed_context(token: str, ctx) -> None:
    """Pre-seed the candidate-context cache (parent side, before fan-out).

    Fork-context workers inherit the seeded slot, so no worker — nor the
    executor's in-process serial fallback — pays spec validation and comm
    graph construction again per candidate. Pair with
    :func:`release_context` once the batch is merged.
    """
    _CTX_CACHE.clear()
    _CTX_CACHE[token] = ctx


def release_context(token: str) -> None:
    """Drop a seeded context so the run's specs don't outlive the run."""
    _CTX_CACHE.pop(token, None)


def _candidate_context(task: CandidateTask):
    from repro.core.pipeline import FlowContext

    token = task.context_token
    if token is not None and token in _CTX_CACHE:
        return _CTX_CACHE[token]
    ctx = FlowContext.build(
        task.core_spec, task.comm_spec, task.library, task.config
    )
    if token is not None:
        _CTX_CACHE.clear()
        _CTX_CACHE[token] = ctx
    return ctx
