"""Pickling-safe task descriptors for the parallel sweep engine.

A :class:`SynthesisTask` is one architectural point of the Fig. 3 outer
loop: a (core spec, communication spec, configuration) triple plus an
opaque ``key`` the caller uses to file the merged result. Tasks are plain
frozen dataclasses built only from the spec/config/library value objects,
so they cross a ``ProcessPoolExecutor`` boundary untouched — no open file
handles, no RNG state, no references back into the parent's topology
objects.

Infeasible points (a single flow exceeding link capacity) are marked
``skip=True`` at task-build time and short-circuit to an empty
:class:`~repro.core.design_point.SynthesisResult` without paying a worker
round-trip, mirroring the serial sweeps' behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional

from repro.core.config import SynthesisConfig
from repro.core.design_point import SynthesisResult
from repro.models.library import NocLibrary
from repro.spec.comm_spec import CommSpec
from repro.spec.core_spec import CoreSpec


@dataclass(frozen=True)
class SynthesisTask:
    """One synthesis point of an architectural sweep.

    Attributes:
        key: Caller-chosen hashable identifier (e.g. ``("frequency", 400.0)``
            or a :class:`~repro.engine.grid.GridPoint`) used to merge results
            deterministically.
        core_spec: Core floorplan/layer specification.
        comm_spec: Traffic specification.
        config: Fully resolved configuration for this point (the sweep
            parameter already applied via ``SynthesisConfig.with_``).
        library: Component library; ``None`` selects the default library in
            the worker (cheaper to pickle).
        skip: Pre-determined infeasible point — the engine returns an empty
            result without running synthesis.
        skip_reason: Human-readable note for reports/logs.
    """

    key: Hashable
    core_spec: CoreSpec
    comm_spec: CommSpec
    config: SynthesisConfig
    library: Optional[NocLibrary] = None
    skip: bool = False
    skip_reason: str = ""


@dataclass
class TaskResult:
    """Outcome of one task: a result or a captured error, never both.

    Workers never raise across the process boundary; errors are captured so
    the executor can re-raise them *deterministically* (first failing task
    in submission order, exactly like a serial loop) instead of in
    completion order.
    """

    key: Hashable
    result: Optional[SynthesisResult] = None
    error: Optional[BaseException] = None
    elapsed_s: float = 0.0
    skipped: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


def run_task(task: SynthesisTask) -> TaskResult:
    """Execute one synthesis task (worker entry point — must stay
    importable at module top level for pickling)."""
    import time

    if task.skip:
        return TaskResult(key=task.key, result=SynthesisResult(), skipped=True)
    start = time.perf_counter()
    try:
        from repro.core.synthesis import SunFloor3D

        tool = SunFloor3D(
            task.core_spec, task.comm_spec, task.library, task.config
        )
        result = tool.synthesize()
    except BaseException as exc:  # re-raised in the parent, in task order
        return TaskResult(
            key=task.key, error=exc, elapsed_s=time.perf_counter() - start
        )
    return TaskResult(
        key=task.key, result=result, elapsed_s=time.perf_counter() - start
    )
