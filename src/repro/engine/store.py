"""Content-addressed on-disk result store: determinism turned into reuse.

Every engine task (synthesis point, floorplan restart, simulation run) is
deterministic in its inputs — PRs 1-4 asserted bit-identical results across
serial and parallel execution. This module makes that determinism pay off
across *process lifetimes*: results are filed on disk under a stable
fingerprint of (task type, task payload, code-version salt), so repeated
CLI invocations, benchmark reruns and interrupted campaigns fetch
already-computed points instead of recomputing them.

Design:

* **content addressing** — :func:`fingerprint_task` folds the task's value
  fields (specs, configs, topologies, scenario objects) into a SHA-256
  digest through a canonical type-tagged encoding; caller-chosen labels
  (``key``) and run-local handles (``context_token``) are excluded, so two
  campaigns asking for the same computation share entries regardless of how
  they label their points;
* **code-version salt** — the digest includes :data:`CODE_SALT` (overridable
  per store and via ``$REPRO_STORE_SALT``); bump it when a change makes old
  results stale, and every entry silently becomes a miss;
* **atomic writes** — entries are pickled to a temp file in the store
  directory and ``os.replace``'d into place, so a killed campaign never
  leaves a half-written entry under a valid name;
* **corruption-tolerant reads** — a truncated, unreadable or mismatched
  entry is treated as a miss (and counted), never an error;
  ``python -m repro.cli cache verify`` audits and optionally repairs;
* **bounded size** — an optional ``max_bytes`` budget evicts the
  least-recently-used entries (hits refresh an entry's mtime) after each
  write;
* **inter-process safety** — multi-file mutations (LRU eviction, ``clear``,
  ``verify(repair=True)``) run under an advisory
  :class:`~repro.engine.locks.FileLock` at ``<root>/.lock``, so serving
  workers, a resident campaign service and ad-hoc CLI runs can share one
  warm store without racing each other's walks; eviction additionally
  skips entries younger than ``evict_grace_s``, so a peer's *just-written*
  checkpoint can never be dropped by a concurrent evictor whose LRU scan
  predates it. The kernel releases the lock when a holder dies (SIGKILL
  included), and single-entry unlinks are atomic, so a crash mid-eviction
  leaves a smaller-but-consistent store and no stuck lock.

The executor integration lives in :func:`repro.engine.executor.run_tasks`
(``store=``): hits short-circuit the worker pool, misses are computed and
checkpointed incrementally as they complete, so a killed-then-resumed sweep
finishes from the store with merged results bit-identical to a cold run.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.engine.locks import FileLock, acquires_lock, requires_lock
from repro.errors import LockTimeoutError, StoreError

#: Bump when a code change invalidates previously stored results (routing,
#: floorplanning, simulation semantics). Overridable per store and via the
#: ``REPRO_STORE_SALT`` environment variable.
CODE_SALT = "repro-store-v1"

#: On-disk record format version; a mismatching record reads as a miss.
STORE_FORMAT = 1

#: Default store location for CLI/library callers that do not choose one;
#: ``$REPRO_CACHE_DIR`` overrides.
DEFAULT_STORE_DIR = ".repro-cache"

_ENTRY_SUFFIX = ".pkl"

#: Entries younger than this are never eviction candidates: a concurrent
#: writer's just-checkpointed result must survive a peer's LRU walk that
#: started before the write landed.
EVICT_GRACE_S = 5.0

#: How long a mutation waits for the store lock before giving up. Eviction
#: is optional hygiene — a busy peer means the budget is briefly
#: overshot, never that a campaign blocks.
_LOCK_WAIT_S = 10.0

#: Task fields that must not shape the fingerprint: ``key`` is a
#: caller-chosen merge label, ``context_token`` a run-local cache handle,
#: ``skip_reason`` a human note attached to pre-skipped tasks.
_NON_CONTENT_FIELDS = frozenset({"key", "context_token", "skip_reason"})


def default_store_dir() -> str:
    """The store directory used when the caller does not pick one."""
    return os.environ.get("REPRO_CACHE_DIR", DEFAULT_STORE_DIR)


def resolve_salt(salt: Optional[str] = None) -> str:
    """An explicit salt, else ``$REPRO_STORE_SALT``, else :data:`CODE_SALT`."""
    if salt is not None:
        return salt
    return os.environ.get("REPRO_STORE_SALT", CODE_SALT)


# --------------------------------------------------------------------------
# canonical fingerprinting
# --------------------------------------------------------------------------

def _feed(h, obj: Any) -> None:
    """Fold ``obj`` into digest ``h`` via a canonical type-tagged encoding.

    Every value is emitted as a type tag plus a length-prefixed payload, so
    distinct structures can never collide by concatenation (``("ab", "c")``
    vs ``("a", "bc")``). Dicts and sets are encoded in sorted-key order when
    their keys are orderable (falling back to insertion order), so logically
    equal containers built in different orders still fingerprint equal.
    """
    if obj is None:
        h.update(b"N;")
    elif obj is True:
        h.update(b"T;")
    elif obj is False:
        h.update(b"F;")
    elif isinstance(obj, enum.Enum):
        # Before the int branch: an IntEnum member must not fingerprint
        # as its plain integer value — same digest, different semantics.
        _feed_tagged(h, b"E", _type_tag(obj), obj.name)
    elif isinstance(obj, int):
        data = str(obj).encode()
        h.update(b"i%d:" % len(data) + data)
    elif isinstance(obj, float):
        data = repr(obj).encode()  # shortest round-trip repr: stable
        h.update(b"f%d:" % len(data) + data)
    elif isinstance(obj, str):
        data = obj.encode("utf-8")
        h.update(b"s%d:" % len(data) + data)
    elif isinstance(obj, bytes):
        h.update(b"b%d:" % len(obj) + obj)
    elif isinstance(obj, (tuple, list)):
        h.update(b"(%d:" % len(obj))
        for item in obj:
            _feed(h, item)
        h.update(b")")
    elif isinstance(obj, dict):
        h.update(b"{%d:" % len(obj))
        for key, value in _ordered(obj.items()):
            _feed(h, key)
            _feed(h, value)
        h.update(b"}")
    elif isinstance(obj, (set, frozenset)):
        h.update(b"<%d:" % len(obj))
        for item in _ordered_values(obj):
            _feed(h, item)
        h.update(b">")
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        h.update(b"D")
        _feed(h, _type_tag(obj))
        # A dataclass may declare results-invariant fields (parallelism
        # knobs etc.) in ``__fingerprint_exclude__``; they must not split
        # the cache for computations that are bit-identical regardless.
        exclude = getattr(type(obj), "__fingerprint_exclude__", ())
        for f in dataclasses.fields(obj):
            if f.name in exclude:
                continue
            _feed(h, f.name)
            _feed(h, getattr(obj, f.name))
        h.update(b";")
    elif _is_ndarray(obj):
        h.update(b"A")
        _feed(h, str(obj.dtype))
        _feed(h, tuple(obj.shape))
        data = obj.tobytes()
        h.update(b"%d:" % len(data) + data)
    elif hasattr(obj, "__dict__") and not callable(obj):
        # Plain value object (e.g. a stateless Stage instance): class
        # identity plus its instance attributes, sorted by name.
        h.update(b"O")
        _feed(h, _type_tag(obj))
        for name in sorted(vars(obj)):
            _feed(h, name)
            _feed(h, vars(obj)[name])
        h.update(b";")
    else:
        text = repr(obj)
        if " at 0x" in text:
            raise StoreError(
                f"cannot fingerprint {type(obj).__qualname__} instances "
                "(no stable representation)"
            )
        _feed_tagged(h, b"r", _type_tag(obj), text)


def _type_tag(obj: Any) -> str:
    """Module-qualified class identity: same-named value classes from
    different modules must never share a fingerprint."""
    cls = type(obj)
    return f"{cls.__module__}.{cls.__qualname__}"


def _feed_tagged(h, tag: bytes, *parts: str) -> None:
    h.update(tag)
    for part in parts:
        data = part.encode("utf-8")
        h.update(b"%d:" % len(data) + data)
    h.update(b";")


def _is_ndarray(obj: Any) -> bool:
    cls = type(obj)
    return cls.__module__ == "numpy" and cls.__name__ == "ndarray"


def _ordered(items):
    try:
        return sorted(items)
    except TypeError:
        return list(items)


def _ordered_values(values):
    try:
        return sorted(values)
    except TypeError:
        # Unorderable set members: order by their own encoding for a
        # construction-order-independent digest.
        def enc(value):
            h = hashlib.sha256()
            _feed(h, value)
            return h.digest()

        return sorted(values, key=enc)


def fingerprint_task(task: Any, *, salt: Optional[str] = None) -> str:
    """The content address of one engine task.

    Folds the task's type name, its value fields (minus caller labels and
    run-local handles) and the code-version ``salt`` into a SHA-256 hex
    digest. Raises :class:`~repro.errors.StoreError` when a field has no
    stable representation.

    A task class may declare ``__fingerprint_delegate__ = "<field>"`` to
    fingerprint as the task held in that field — fault-injection wrappers
    (:class:`~repro.engine.faults.FaultyTask`) use this so a chaos run
    shares content addresses with a clean one.
    """
    delegate = getattr(type(task), "__fingerprint_delegate__", None)
    if delegate is not None:
        return fingerprint_task(getattr(task, delegate), salt=salt)
    if not dataclasses.is_dataclass(task) or isinstance(task, type):
        raise StoreError(
            f"tasks must be dataclass instances, got {type(task).__qualname__}"
        )
    h = hashlib.sha256()
    _feed(h, resolve_salt(salt))
    _feed(h, type(task).__qualname__)
    exclude = _NON_CONTENT_FIELDS.union(
        getattr(type(task), "__fingerprint_exclude__", ())
    )
    for f in dataclasses.fields(task):
        if f.name in exclude:
            continue
        _feed(h, f.name)
        _feed(h, getattr(task, f.name))
    return h.hexdigest()


# --------------------------------------------------------------------------
# the store
# --------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class StoreEntry:
    """One cached result, as returned by :meth:`ResultStore.get`."""

    fingerprint: str
    task_type: str
    payload: Any
    elapsed_s: float
    created_s: float


@dataclasses.dataclass
class StoreStats:
    """Disk-level totals plus this instance's session counters."""

    root: str
    entries: int = 0
    total_bytes: int = 0
    by_task_type: Dict[str, int] = dataclasses.field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    corrupt_dropped: int = 0


@dataclasses.dataclass
class VerifyReport:
    """Outcome of a full-store audit (see :meth:`ResultStore.verify`)."""

    checked: int = 0
    ok: int = 0
    bad: List[Tuple[str, str]] = dataclasses.field(default_factory=list)
    removed: int = 0

    @property
    def clean(self) -> bool:
        return not self.bad


class ResultStore:
    """A content-addressed, size-bounded, corruption-tolerant result cache.

    Args:
        root: Store directory; created (with parents) if missing. An
            unwritable or invalid location raises
            :class:`~repro.errors.StoreError` immediately, with a clear
            message, rather than a traceback at first write.
        salt: Code-version salt folded into every fingerprint (default:
            ``$REPRO_STORE_SALT`` or :data:`CODE_SALT`).
        max_bytes: Optional size budget; after each write the
            least-recently-used entries are evicted until under budget.
        readonly: Open for inspection only (``cache stats`` / ``verify``):
            no directory creation, no write probe — a store on a read-only
            mount can still be audited, and asking for stats of a missing
            store does not create one as a side effect.
        evict_grace_s: Minimum entry age before it can be evicted; protects
            checkpoints a *concurrent process* wrote after this process's
            LRU walk began. 0 disables the window (single-process tests).
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        salt: Optional[str] = None,
        max_bytes: Optional[int] = None,
        readonly: bool = False,
        evict_grace_s: float = EVICT_GRACE_S,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise StoreError(f"max_bytes must be positive, got {max_bytes}")
        if evict_grace_s < 0:
            raise StoreError(
                f"evict_grace_s must be >= 0, got {evict_grace_s}"
            )
        self.root = Path(root)
        self.salt = resolve_salt(salt)
        self.max_bytes = max_bytes
        self.readonly = readonly
        self.evict_grace_s = evict_grace_s
        self.hits = 0
        self.misses = 0
        self.corrupt_dropped = 0
        self._objects = self.root / "objects"
        #: Running on-disk byte total, seeded by one scan on first need so
        #: budgeted puts stay O(1) instead of re-walking the store each
        #: time; None = unknown (rescanned lazily).
        self._approx_bytes: Optional[int] = None
        #: Entry paths this instance wrote: eviction may reclaim our own
        #: fresh writes (single-process budget semantics unchanged) but
        #: never a *peer's* entry younger than the grace window.
        self._own_paths: set = set()
        self._prepare_root()

    @acquires_lock("store")
    def _mutation_lock(self, *, wait: bool = True) -> Optional[FileLock]:
        """A held store-wide lock for a multi-file mutation, or ``None``
        when it could not be taken (busy peer / unwritable root): the
        caller then skips or proceeds best-effort — never blocks forever,
        never raises from a hygiene path. ``wait=False`` is a single
        non-blocking attempt (eviction: a busy peer is already doing the
        job, so don't queue behind it)."""
        lock = FileLock(
            self.root / ".lock",
            timeout_s=_LOCK_WAIT_S if wait else 0,
        )
        try:
            if lock.acquire():
                return lock
        except LockTimeoutError:
            pass
        return None

    # -- directory plumbing -------------------------------------------------

    def _prepare_root(self) -> None:
        if self.root.exists() and not self.root.is_dir():
            raise StoreError(
                f"cache directory {self.root} exists and is not a directory"
            )
        if self.readonly:
            return
        try:
            self._objects.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise StoreError(
                f"cannot create cache directory {self.root}: {exc}"
            ) from None
        # Probe writability now: a read-only store should fail loudly at
        # open time, not with a traceback mid-campaign.
        try:
            fd, probe = tempfile.mkstemp(prefix=".probe-", dir=self._objects)
            os.close(fd)
            os.unlink(probe)
        except OSError as exc:
            raise StoreError(
                f"cache directory {self.root} is not writable: {exc}"
            ) from None

    def _path(self, fingerprint: str) -> Path:
        return (
            self._objects / fingerprint[:2]
            / (fingerprint[2:] + _ENTRY_SUFFIX)
        )

    def _entry_paths(self) -> List[Path]:
        if not self._objects.is_dir():
            return []
        # pathlib's glob matches dotfiles, so in-flight ".tmp-*" writes
        # (and any orphaned ones from a killed process) must be filtered:
        # they are not entries, and evict/verify must never touch a temp
        # file a concurrent writer is about to os.replace into place.
        return sorted(
            path
            for path in self._objects.glob("??/*" + _ENTRY_SUFFIX)
            if not path.name.startswith(".")
        )

    # -- fingerprints -------------------------------------------------------

    def fingerprint(self, task: Any) -> Optional[str]:
        """The task's content address, or ``None`` when uncacheable.

        Pre-skipped tasks (``skip=True``) short-circuit to an empty result
        more cheaply than a disk read, and tasks whose payload has no
        stable representation simply run uncached — never an error.
        """
        if getattr(task, "skip", False):
            return None
        try:
            return fingerprint_task(task, salt=self.salt)
        except StoreError:
            return None

    # -- entry IO -----------------------------------------------------------

    def get(self, fingerprint: Optional[str]) -> Optional[StoreEntry]:
        """Fetch one entry; ``None`` on miss *or* unreadable entry."""
        if fingerprint is None:
            return None
        path = self._path(fingerprint)
        try:
            fh = open(path, "rb")
        except OSError:
            # Not found, or a *transient* open failure (EMFILE mid-campaign,
            # a flaky network mount): a plain miss. The entry — if any —
            # stays on disk; only proven-bad content is ever dropped.
            self.misses += 1
            return None
        try:
            with fh:
                header = pickle.load(fh)
                if not self._header_ok(header, fingerprint):
                    raise ValueError("stale or mismatched record")
                payload = pickle.load(fh)
        except OSError:
            self.misses += 1  # read-side transient failure: keep the entry
            return None
        except Exception:
            # Truncated write, foreign file, unpicklable class, stale
            # format/salt: a miss; drop the entry so it is not re-read.
            self.misses += 1
            self.corrupt_dropped += 1
            self._approx_bytes = None
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        try:
            os.utime(path)  # LRU recency for the eviction policy
        except OSError:
            pass
        return StoreEntry(
            fingerprint=fingerprint,
            task_type=str(header.get("task_type", "")),
            payload=payload,
            elapsed_s=float(header.get("elapsed_s", 0.0)),
            created_s=float(header.get("created_s", 0.0)),
        )

    def _header_ok(self, header: Any, fingerprint: str) -> bool:
        return (
            isinstance(header, dict)
            and header.get("format") == STORE_FORMAT
            and header.get("fingerprint") == fingerprint
            and header.get("salt") == self.salt
        )

    def put(
        self,
        fingerprint: Optional[str],
        payload: Any,
        *,
        task_type: str = "",
        elapsed_s: float = 0.0,
    ) -> int:
        """Write one entry atomically; returns the bytes written (0/False
        when nothing was stored, so the result still reads as a boolean).

        The record — a small metadata header frame followed by the payload
        frame, so ``stats``/``verify`` can read metadata without
        deserialising payloads — is pickled to a temp file in the entry's
        directory and renamed into place, so concurrent writers and killed
        processes can never expose a partial entry under a valid name.
        Unpicklable payloads are skipped (the campaign still completes —
        it just cannot resume through this point).
        """
        if fingerprint is None:
            return False
        header = {
            "format": STORE_FORMAT,
            "fingerprint": fingerprint,
            "salt": self.salt,
            "task_type": task_type,
            "elapsed_s": float(elapsed_s),
            "created_s": time.time(),  # repro: noqa[RPL202] -- bookkeeping clock; the header never enters a fingerprint
        }
        path = self._path(fingerprint)
        try:
            old_size = path.stat().st_size
        except OSError:
            old_size = 0
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=".tmp-", suffix=_ENTRY_SUFFIX, dir=path.parent
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(header, fh, protocol=pickle.HIGHEST_PROTOCOL)
                    pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
                new_size = os.path.getsize(tmp)
                os.replace(tmp, path)
                self._own_paths.add(str(path))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception:
            # Unpicklable payloads surface as TypeError/AttributeError (not
            # just PicklingError), and any disk failure must degrade to
            # "not cached", never abort the campaign mid-checkpoint.
            return False
        if self.max_bytes is not None:
            if self._approx_bytes is None:
                self._approx_bytes = self._scan_bytes()
            else:
                self._approx_bytes += new_size - old_size
            if self._approx_bytes > self.max_bytes:
                self.evict(protect=path)
        return new_size

    def contains(self, fingerprint: Optional[str]) -> bool:
        return fingerprint is not None and self._path(fingerprint).exists()

    def size_of(self, fingerprint: Optional[str]) -> int:
        """On-disk bytes of one entry; 0 when absent (or unstattable)."""
        if fingerprint is None:
            return 0
        try:
            return self._path(fingerprint).stat().st_size
        except OSError:
            return 0

    # -- maintenance --------------------------------------------------------

    def _scan_bytes(self) -> int:
        total = 0
        for path in self._entry_paths():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def evict(
        self, max_bytes: Optional[int] = None, *,
        protect: Optional[Path] = None,
    ) -> int:
        """Drop least-recently-used entries until under ``max_bytes``.

        Returns the number of entries removed; ``protect`` names an entry
        that must survive (``put`` passes the path it just wrote). With no
        budget configured (and none passed) this is a no-op. The full
        directory walk happens only here — budgeted ``put``\\ s track a
        running total and call this just when it crosses the budget.

        Cross-process safety: the walk-and-unlink runs under the store's
        advisory file lock (one evictor at a time; a busy or unlockable
        store skips eviction — the budget is hygiene, not an invariant),
        and entries younger than ``evict_grace_s`` are never candidates, so
        a checkpoint a *peer process* wrote moments ago survives even
        though this evictor's LRU ordering predates it. A process killed
        mid-eviction releases the lock automatically (kernel semantics) and
        leaves a smaller-but-consistent store.
        """
        budget = max_bytes if max_bytes is not None else self.max_bytes
        if budget is None:
            return 0
        lock = self._mutation_lock(wait=False)
        if lock is None:
            # A peer is already evicting (or the root is unlockable):
            # their pass enforces the budget; rescan on next need.
            self._approx_bytes = None
            return 0
        try:
            return self._evict_locked(budget, protect)
        finally:
            lock.release()

    @requires_lock("store")
    def _evict_locked(self, budget: int, protect: Optional[Path]) -> int:
        from repro.engine.faults import maybe_fire

        entries = []
        total = 0
        fresh_after = time.time() - self.evict_grace_s  # repro: noqa[RPL202] -- eviction grace clock, compared to mtimes only; never fingerprinted
        for path in self._entry_paths():
            try:
                st = path.stat()
            except OSError:
                continue
            entries.append((st.st_mtime, str(path), st.st_size, path))
            total += st.st_size
        removed = 0
        # Oldest first. The entry the caller just wrote (or, absent that,
        # whatever sorts newest) is never a candidate: when a single fresh
        # result alone exceeds the budget, evicting everything else cannot
        # help, and on coarse-mtime filesystems the just-checkpointed
        # entry could otherwise lose an mtime tie and be evicted by its
        # own put. Grace-period entries (a peer's just-written checkpoints)
        # are skipped the same way.
        ordered = sorted(entries)
        if protect is not None:
            candidates = [e for e in ordered if e[3] != protect]
        else:
            candidates = ordered[:-1]
        for mtime, name, size, path in candidates:
            if total <= budget:
                break
            if mtime > fresh_after and name not in self._own_paths:
                continue
            maybe_fire("store-evict")  # chaos hook: kill-during-eviction
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            removed += 1
        self._approx_bytes = total
        return removed

    def stats(self) -> StoreStats:
        """Disk totals (entries, bytes, per-task-type) + session counters."""
        stats = StoreStats(
            root=str(self.root),
            hits=self.hits,
            misses=self.misses,
            corrupt_dropped=self.corrupt_dropped,
        )
        for path in self._entry_paths():
            try:
                size = path.stat().st_size
            except OSError:
                continue
            stats.entries += 1
            stats.total_bytes += size
            task_type = _peek_task_type(path)
            stats.by_task_type[task_type] = (
                stats.by_task_type.get(task_type, 0) + 1
            )
        return stats

    def verify(self, *, repair: bool = False) -> VerifyReport:
        """Audit every entry: header readable and matching (format, salt,
        name vs content), payload deserialisable. ``repair=True`` deletes
        the entries that fail (under the store lock, so a repair sweep
        cannot race a peer's eviction walk)."""
        lock = self._mutation_lock() if repair else None
        try:
            return self._verify(repair=repair)
        finally:
            if lock is not None:
                lock.release()

    # requires the lock for its repair mode (unlinks race a peer's
    # eviction walk); the read-only path rides along under it.
    @requires_lock("store")
    def _verify(self, *, repair: bool) -> VerifyReport:
        report = VerifyReport()
        for path in self._entry_paths():
            report.checked += 1
            fingerprint = path.parent.name + path.name[: -len(_ENTRY_SUFFIX)]
            reason = None
            try:
                with open(path, "rb") as fh:
                    header = pickle.load(fh)
                    if not self._header_ok(header, fingerprint):
                        reason = "stale or mismatched record"
                    else:
                        pickle.load(fh)  # payload must deserialise too
            except Exception as exc:
                reason = f"unreadable ({type(exc).__name__})"
            if reason is None:
                report.ok += 1
                continue
            report.bad.append((str(path), reason))
            if repair:
                try:
                    path.unlink()
                    report.removed += 1
                    self._approx_bytes = None
                except OSError:
                    pass
        return report

    def clear(self) -> Tuple[int, int]:
        """Delete every entry (and any orphaned temp file left by a killed
        writer); returns ``(removed, failed)`` so callers can tell a clean
        sweep from unlinks an unwritable store silently refused. Runs
        under the store lock when one can be taken (best-effort: a
        read-only root cannot host a lock file but unlinks there fail
        anyway and are reported)."""
        lock = self._mutation_lock()
        try:
            return self._clear()
        finally:
            if lock is not None:
                lock.release()

    @requires_lock("store")
    def _clear(self) -> Tuple[int, int]:
        removed = 0
        failed = 0
        for path in self._entry_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:
                failed += 1
        for pattern in ("??/.tmp-*", ".probe-*"):
            for path in self._objects.glob(pattern):
                try:
                    path.unlink()
                except OSError:
                    pass
        self._approx_bytes = None
        return removed, failed


def _peek_task_type(path: Path) -> str:
    """The entry's task type from its header frame — payloads stay cold."""
    try:
        with open(path, "rb") as fh:
            header = pickle.load(fh)
        if isinstance(header, dict):
            return str(header.get("task_type", "?")) or "?"
    except Exception:
        pass
    return "?"


def open_store(
    cache_dir: Optional[Union[str, Path]] = None,
    *,
    salt: Optional[str] = None,
    max_bytes: Optional[int] = None,
    readonly: bool = False,
) -> ResultStore:
    """Open (creating if needed, unless ``readonly``) the store at
    ``cache_dir``.

    ``None`` falls back to ``$REPRO_CACHE_DIR`` or
    :data:`DEFAULT_STORE_DIR`. Raises :class:`~repro.errors.StoreError`
    with a clear message for unwritable/invalid locations.
    """
    return ResultStore(
        cache_dir if cache_dir is not None else default_store_dir(),
        salt=salt, max_bytes=max_bytes, readonly=readonly,
    )
