"""The parallel sweep executor: fan tasks across a supervised process pool.

The architectural sweep of Fig. 3 is embarrassingly parallel — every
(frequency, α, link width, switch-count range) point runs the full
synthesis flow independently — so the executor's job is plumbing, done
carefully:

* **fork-aware worker pool** — on platforms with ``fork`` the workers
  inherit the parent's imported modules and the task's specs via
  copy-on-write, so per-task pickling cost is just the small spec/config
  dataclasses;
* **deterministic merging** — results are returned in *submission order*
  regardless of completion order, and a failing task re-raises its error
  exactly where a serial loop would have (first failure in task order),
  with the worker-side traceback chained on for debuggability;
* **graceful serial fallback** — ``jobs=1``, single-task lists and pool
  creation failures (sandboxed environments without ``/dev/shm``, missing
  ``multiprocessing`` primitives) degrade to the plain in-process loop
  that produces identical results;
* **supervision** (:mod:`repro.engine.supervise`) — ``retry=`` applies a
  bounded, deterministic per-task :class:`~repro.engine.supervise
  .RetryPolicy` inside the worker; ``task_timeout_s=`` arms a watchdog
  that kills and regenerates a pool stuck past its deadline instead of
  blocking forever; a broken pool (worker OOM-killed, segfaulted) is
  recovered by *attributing* the crasher — each unfinished task re-runs
  alone in a fresh single-worker pool, the one that crashes it again is
  quarantined as a structured :class:`~repro.errors.TaskQuarantinedError`
  result — and restarting the pool (at most ``max_pool_restarts`` times),
  so the rest of the campaign completes. ``on_error`` decides whether
  supervision errors raise (``"raise"``, default) or stay inspectable in
  the results (``"quarantine"``);
* **progress callbacks** — ``progress(done, total, key)`` fires in the
  parent as points finish, for CLI spinners and logging;
* **persistent result reuse** — ``store=`` plugs in a content-addressed
  :class:`~repro.engine.store.ResultStore`: already-computed tasks are
  served from disk (``TaskResult.cached``), misses are computed as usual
  and *checkpointed incrementally* as they complete, so an interrupted
  campaign resumes from the store with merged results bit-identical to an
  uninterrupted cold run. Failed, timed-out and quarantined tasks are
  never cached.

``jobs`` resolution: ``None`` or ``0`` → ``$REPRO_ENGINE_JOBS`` if set,
else ``os.cpu_count()``; ``1`` → serial; ``n >= 2`` → pool of ``n``
workers. Negative values raise :class:`~repro.errors.EngineError`.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence, Tuple

from repro.engine.supervise import (
    RetryPolicy,
    Supervision,
    attach_remote_traceback,
    run_supervised_pool,
)
from repro.engine.tasks import SynthesisTask, TaskResult, run_task
from repro.errors import EngineError

#: Progress callback signature: (completed_count, total, key_just_done).
ProgressFn = Callable[[int, int, object], None]

_JOBS_ENV = "REPRO_ENGINE_JOBS"

_ON_ERROR_MODES = ("raise", "quarantine")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Resolve a ``jobs`` request to a concrete worker count (>= 1)."""
    if jobs is None or jobs == 0:
        env = os.environ.get(_JOBS_ENV)
        if env is not None:
            try:
                jobs = int(env)
            except ValueError:
                raise EngineError(
                    f"${_JOBS_ENV} must be an integer, got {env!r}"
                )
            if jobs <= 0:
                raise EngineError(
                    f"${_JOBS_ENV} must be positive, got {jobs}"
                )
            return jobs
        return os.cpu_count() or 1
    if jobs < 0:
        raise EngineError(f"jobs must be >= 0 (0 = auto), got {jobs}")
    return jobs


def run_tasks(
    tasks: Sequence[SynthesisTask],
    *,
    jobs: Optional[int] = 1,
    progress: Optional[ProgressFn] = None,
    chunk_size: int = 1,
    raise_errors: bool = True,
    store=None,
    retry: Optional[RetryPolicy] = None,
    task_timeout_s: Optional[float] = None,
    on_error: str = "raise",
    max_pool_restarts: int = 3,
) -> List[TaskResult]:
    """Run every task and return results in submission order.

    Args:
        tasks: Task descriptors (see :mod:`repro.engine.tasks`).
        jobs: Worker processes; ``1`` = serial (the default, so library
            callers opt in to parallelism), ``None``/``0`` = auto.
        progress: Optional callback fired after each completed point.
        chunk_size: Tasks per worker round-trip; raise above 1 when points
            are so fast that pickling dominates. Crash attribution and
            deadlines are per-chunk, so keep it at 1 when supervision
            precision matters.
        raise_errors: Re-raise the first (in task order) captured error.
            With ``False`` the caller inspects ``TaskResult.error`` itself.
        store: Optional :class:`~repro.engine.store.ResultStore`. Hits are
            served from disk without paying a worker; misses run normally
            and are written to the store *as they complete* (incremental
            checkpointing), errors and pre-skipped tasks excluded. Merged
            results are bit-identical with and without a store.
        retry: Optional :class:`~repro.engine.supervise.RetryPolicy` —
            failed attempts matching the policy re-run (in the worker,
            deterministic backoff) before the error is recorded.
        task_timeout_s: Per-task deadline (parallel runs only — the serial
            path cannot preempt a task in its own process). An in-flight
            chunk past ``task_timeout_s * len(chunk)`` has its pool killed
            and regenerated; its tasks become
            :class:`~repro.errors.TaskTimeoutError` results. Timed-out
            tasks are not retried.
        on_error: ``"raise"`` (default) lets supervision errors (timeouts,
            quarantines) surface through the ``raise_errors`` gate like any
            task error; ``"quarantine"`` keeps them as structured
            ``TaskResult.error`` rows so the campaign completes and the
            caller inspects the casualties.
        max_pool_restarts: Pool regenerations (crash or timeout recovery)
            allowed per call before remaining tasks are quarantined as
            budget-exhausted.
    """
    if chunk_size < 1:
        raise EngineError(f"chunk_size must be >= 1, got {chunk_size}")
    if on_error not in _ON_ERROR_MODES:
        raise EngineError(
            f"on_error must be one of {_ON_ERROR_MODES}, got {on_error!r}"
        )
    if task_timeout_s is not None and task_timeout_s <= 0:
        raise EngineError(
            f"task_timeout_s must be positive, got {task_timeout_s}"
        )
    if max_pool_restarts < 0:
        raise EngineError(
            f"max_pool_restarts must be >= 0, got {max_pool_restarts}"
        )
    sup = Supervision(
        retry=retry, task_timeout_s=task_timeout_s, on_error=on_error,
        max_pool_restarts=max_pool_restarts,
    )
    tasks = list(tasks)
    workers = resolve_jobs(jobs)
    if store is not None:
        return _run_with_store(
            tasks, store, workers, progress, chunk_size, raise_errors, sup
        )
    if workers <= 1 or len(tasks) <= 1:
        return _run_serial(tasks, progress, raise_errors, sup=sup)

    results = _run_parallel(tasks, workers, progress, chunk_size, sup=sup)
    if results is None:  # pool could not be created at all
        return _run_serial(tasks, progress, raise_errors, sup=sup)
    if raise_errors:
        _raise_first(results, sup)
    return results


# --------------------------------------------------------------------------
# internals
# --------------------------------------------------------------------------

#: Completion hook fired in the parent per finished task (store writes).
_OnResultFn = Callable[[TaskResult], None]

_DEFAULT_SUP = Supervision()


def _run_serial(
    tasks: Sequence[SynthesisTask],
    progress: Optional[ProgressFn],
    raise_errors: bool,
    on_result: Optional[_OnResultFn] = None,
    sup: Supervision = _DEFAULT_SUP,
) -> List[TaskResult]:
    results: List[TaskResult] = []
    total = len(tasks)
    for i, task in enumerate(tasks):
        result = run_task(task, sup.retry)
        # The completion hook runs before a failure is re-raised, so every
        # point finished *before* the failing one is already checkpointed.
        if on_result is not None:
            on_result(result)
        if (
            raise_errors
            and result.error is not None
            and sup.should_raise(result.error)
        ):
            raise result.error
        results.append(result)
        if progress is not None:
            progress(i + 1, total, task.key)
    return results


def _run_parallel(
    tasks: List[SynthesisTask],
    workers: int,
    progress: Optional[ProgressFn],
    chunk_size: int,
    on_result: Optional[_OnResultFn] = None,
    sup: Supervision = _DEFAULT_SUP,
) -> Optional[List[TaskResult]]:
    """Fan out over a supervised pool; None signals 'fall back to serial'."""
    total = len(tasks)
    done = 0

    def note(chunk_results: List[TaskResult]) -> None:
        nonlocal done
        # Checkpoint first: a progress callback may raise (deliberately, to
        # abort a campaign) and the finished work must already be on disk.
        if on_result is not None:
            for result in chunk_results:
                on_result(result)
        if progress is not None:
            for result in chunk_results:
                done += 1
                progress(done, total, result.key)
        else:
            done += len(chunk_results)

    return run_supervised_pool(tasks, workers, chunk_size, sup, note)


def _raise_first(
    results: Sequence[TaskResult], sup: Supervision = _DEFAULT_SUP
) -> None:
    for result in results:
        error = result.error
        if error is None:
            continue
        if not sup.should_raise(error):
            continue
        raise attach_remote_traceback(error, result.traceback)


def _run_with_store(
    tasks: List[SynthesisTask],
    store,
    workers: int,
    progress: Optional[ProgressFn],
    chunk_size: int,
    raise_errors: bool,
    sup: Supervision = _DEFAULT_SUP,
) -> List[TaskResult]:
    """Serve hits from the store, compute misses, checkpoint incrementally.

    Hits report progress first (in submission order), then misses as they
    complete; the merged result list is in submission order either way, and
    bit-identical to a run without a store.

    A task exposing ``expand_for_store()`` / ``narrow(indices)`` (e.g.
    :class:`~repro.engine.tasks.BatchSimulationTask`) is addressed as the
    *set* of its sub-tasks: each sub-task is fingerprinted individually,
    an all-hit batch is assembled from the per-sub payloads without paying
    a worker, a partial hit is narrowed to just its missing sub-tasks, and
    computed sub-payloads are checkpointed under the *sub-task*
    fingerprints — so warm caches and resume behave identically whether
    the campaign ran batched or solo.
    """
    total = len(tasks)
    slots: List[Optional[TaskResult]] = [None] * total
    fingerprints: List[Optional[object]] = [None] * total
    misses: List[Tuple[int, SynthesisTask]] = []
    # Partially-hit expandable tasks: per-sub payloads (None = miss) plus
    # the missing sub-indices, merged with the narrowed computation below.
    partials: dict = {}
    for i, task in enumerate(tasks):
        expand = getattr(task, "expand_for_store", None)
        if expand is not None:
            sub_fps = [store.fingerprint(sub) for sub in expand()]
            payloads: List[Optional[object]] = []
            missing: List[int] = []
            for j, sub_fp in enumerate(sub_fps):
                entry = store.get(sub_fp)
                if entry is None:
                    payloads.append(None)
                    missing.append(j)
                else:
                    payloads.append(entry.payload)
            if missing:
                misses.append((i, task.narrow(tuple(missing))))
                fingerprints[i] = [sub_fps[j] for j in missing]
                partials[i] = (payloads, missing)
            else:
                slots[i] = TaskResult(key=task.key, result=tuple(payloads),
                                      cached=True)
            continue
        fp = store.fingerprint(task)
        fingerprints[i] = fp
        entry = store.get(fp)
        if entry is not None:
            slots[i] = TaskResult(key=task.key, result=entry.payload,
                                  cached=True)
        else:
            misses.append((i, task))

    done = 0
    for i, cached in enumerate(slots):
        if cached is not None:
            done += 1
            if progress is not None:
                progress(done, total, tasks[i].key)

    if misses:
        base_done = done

        def miss_progress(miss_done: int, _miss_total: int, key) -> None:
            # Miss keys arrive wrapped as (miss_index, original_key) — see
            # _run_store_misses — and are unwrapped before the user sees them.
            if progress is not None:
                progress(base_done + miss_done, total, key[1])

        computed = _run_store_misses(
            misses, fingerprints, workers,
            miss_progress if progress else None, chunk_size, raise_errors,
            store, sup,
        )
        for (i, _task), result in zip(misses, computed):
            if i in partials and result.error is None and not result.skipped:
                # Seed-order merge: cached sub-payloads keep their slots,
                # the narrowed computation fills the gaps.
                payloads, missing = partials[i]
                merged = list(payloads)
                for j, payload in zip(missing, result.result):
                    merged[j] = payload
                result.result = tuple(merged)
            slots[i] = result

    results = [r for r in slots if r is not None]
    if raise_errors:
        _raise_first(results, sup)
    return results


def _run_store_misses(
    misses: List[Tuple[int, SynthesisTask]],
    fingerprints: List[Optional[str]],
    workers: int,
    progress: Optional[ProgressFn],
    chunk_size: int,
    raise_errors: bool,
    store,
    sup: Supervision = _DEFAULT_SUP,
) -> List[TaskResult]:
    """Compute the store misses, writing each result as it completes.

    Caller-chosen ``key``\\ s need not be unique, and parallel chunks
    complete out of order, so each miss is tracked by temporarily wrapping
    its key as ``(miss_index, key)``; the wrapper is stripped from results
    and progress callbacks before anything reaches the caller.
    """
    import dataclasses

    indexed = [
        dataclasses.replace(task, key=(idx, task.key))
        for idx, (_i, task) in enumerate(misses)
    ]
    fp_by_idx = [fingerprints[i] for i, _task in misses]
    type_by_idx = [_store_task_type(task) for _i, task in misses]

    def checkpoint(result: TaskResult) -> None:
        if result.error is not None or result.skipped:
            return
        idx, _original_key = result.key
        fp = fp_by_idx[idx]
        if isinstance(fp, list):
            # Expandable task: per-sub payloads under per-sub fingerprints,
            # each entry indistinguishable from a solo run's checkpoint.
            elapsed = result.elapsed_s / max(1, len(fp))
            for sub_fp, payload in zip(fp, result.result):
                store.put(
                    sub_fp, payload,
                    task_type=type_by_idx[idx], elapsed_s=elapsed,
                )
            return
        store.put(
            fp, result.result,
            task_type=type_by_idx[idx], elapsed_s=result.elapsed_s,
        )

    if workers <= 1 or len(indexed) <= 1:
        results = _run_serial(
            indexed, progress, raise_errors, checkpoint, sup
        )
    else:
        results = _run_parallel(
            indexed, workers, progress, chunk_size, checkpoint, sup
        )
        if results is None:
            results = _run_serial(
                indexed, progress, raise_errors, checkpoint, sup
            )
    for result in results:
        result.key = result.key[1]
    return results


def _store_task_type(task) -> str:
    """The ``task_type`` a result is filed under. An expandable task's
    payloads are stored per sub-task, so they carry the *sub-task's* type —
    the store must not tell batched and solo entries apart."""
    expand = getattr(task, "expand_for_store", None)
    if expand is not None:
        subs = expand()
        if subs:
            return type(subs[0]).__name__
    from repro.engine.faults import unwrap_task

    return type(unwrap_task(task)).__name__
