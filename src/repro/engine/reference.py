"""Frozen pre-optimisation routing: the naive Algorithm 3 baseline.

This module preserves, verbatim, the routing hot path as it existed before
the :class:`~repro.core.paths._RoutingContext` overhaul: a Dijkstra that
re-evaluates the full Algorithm 3 edge cost (library model calls included)
on every relaxation, and the rebuild-the-adjacency channel-dependency-graph
cycle check. It exists for two reasons:

* **regression** — tests assert the optimised :func:`repro.core.paths.compute_paths`
  produces *identical* routes, link loads and port counts;
* **benchmarking** — ``BENCH_engine.json`` reports the optimised/naive
  speedup, and the claim only means something against the genuine old code.

The unchanged helpers (:func:`~repro.core.paths._edge_cost`,
:func:`~repro.core.paths._make_cost_model`,
:func:`~repro.core.paths._estimate_latency`, the ban-edge picker and the
indirect-switch inserter) are shared with :mod:`repro.core.paths` — they
were not touched by the optimisation, so sharing keeps the baseline honest
without duplicating them.

Do not "optimise" this module.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.config import SynthesisConfig
from repro.core.paths import (
    INF,
    _CostModel,
    _edge_cost,
    _estimate_latency,
    _make_cost_model,
    _pick_ban_edge,
    _try_add_indirect_switch,
)
from repro.errors import PathComputationError
from repro.graphs.comm_graph import CommGraph
from repro.models.library import NocLibrary
from repro.noc.topology import Topology, switch_ep
from repro.units import flits_per_second


class LegacyChannelDependencyGraph:
    """The pre-index CDG: tentative checks copy the whole adjacency."""

    def __init__(self) -> None:
        self._succ: Dict[Hashable, Dict[int, Set[int]]] = {}

    @staticmethod
    def _path_edges(link_ids: Sequence[int]) -> List[Tuple[int, int]]:
        return [(a, b) for a, b in zip(link_ids, link_ids[1:])]

    def add_path(self, link_ids: Sequence[int], message_class: Hashable) -> None:
        adj = self._succ.setdefault(message_class, {})
        for u, v in self._path_edges(link_ids):
            adj.setdefault(u, set()).add(v)

    def creates_cycle(
        self, link_ids: Sequence[int], message_class: Hashable
    ) -> bool:
        new_edges = self._path_edges(link_ids)
        if not new_edges:
            return False
        adj = self._succ.get(message_class, {})
        combined: Dict[int, Set[int]] = {u: set(vs) for u, vs in adj.items()}
        for u, v in new_edges:
            combined.setdefault(u, set()).add(v)
        start_nodes = {u for u, _ in new_edges}
        return _legacy_has_cycle(combined, start_nodes)


def _legacy_has_cycle(
    adj: Dict[int, Set[int]], start_nodes: Iterable[int]
) -> bool:
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[int, int] = {}
    for start in sorted(start_nodes):
        if color.get(start, WHITE) != WHITE:
            continue
        stack: List[Tuple[int, Iterable[int]]] = [
            (start, iter(sorted(adj.get(start, ()))))
        ]
        color[start] = GRAY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                state = color.get(nxt, WHITE)
                if state == GRAY:
                    return True
                if state == WHITE:
                    color[nxt] = GRAY
                    stack.append((nxt, iter(sorted(adj.get(nxt, ())))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return False


def naive_dijkstra(
    topology: Topology,
    library: NocLibrary,
    config: SynthesisConfig,
    model: _CostModel,
    src_sw: int,
    dst_sw: int,
    bandwidth: float,
    rate: float,
    banned: Set[Tuple[int, int]],
    min_hop: bool = False,
) -> Optional[List[int]]:
    """Min-cost (or min-hop) path, recomputing every edge cost in full."""
    n = len(topology.switches)
    dist = {src_sw: 0.0}
    prev: Dict[int, int] = {}
    heap: List[Tuple[float, int]] = [(0.0, src_sw)]
    done: Set[int] = set()

    while heap:
        d, u = heapq.heappop(heap)
        if u in done:
            continue
        if u == dst_sw:
            break
        done.add(u)
        for v in range(n):
            if v == u or v in done or (u, v) in banned:
                continue
            cost, _ = _edge_cost(
                topology, library, config, model, u, v, bandwidth, rate
            )
            if cost == INF:
                continue
            step = (1.0 + cost * 1e-9) if min_hop else cost
            nd = d + step
            if nd < dist.get(v, INF):
                dist[v] = nd
                prev[v] = u
                heapq.heappush(heap, (nd, v))

    if dst_sw not in dist:
        return None
    path = [dst_sw]
    while path[-1] != src_sw:
        path.append(prev[path[-1]])
    path.reverse()
    return path


def _naive_route_flow(
    topology: Topology,
    graph: CommGraph,
    library: NocLibrary,
    config: SynthesisConfig,
    model: _CostModel,
    cdg: LegacyChannelDependencyGraph,
    src: int,
    dst: int,
    flow,
    core_centers: Mapping[int, Tuple[float, float]],
) -> bool:
    src_sw = topology.core_to_switch[src]
    dst_sw = topology.core_to_switch[dst]
    bandwidth = flow.bandwidth
    rate = flits_per_second(bandwidth, topology.width_bits)

    inj = topology.injection_link(src)
    ej = topology.ejection_link(dst)
    if inj.load_mbps + bandwidth > model.capacity + 1e-9:
        return False
    if ej.load_mbps + bandwidth > model.capacity + 1e-9:
        return False

    banned: Set[Tuple[int, int]] = set()
    for _ in range(max(1, config.deadlock_retries)):
        if src_sw == dst_sw:
            path_switches: Optional[List[int]] = [src_sw]
        else:
            path_switches = naive_dijkstra(
                topology, library, config, model, src_sw, dst_sw,
                bandwidth, rate, banned,
            )
        if path_switches is None:
            return False

        if (
            _estimate_latency(
                topology, library, path_switches, src, dst, core_centers
            )
            > flow.latency + 1e-9
        ):
            alt = (
                naive_dijkstra(
                    topology, library, config, model, src_sw, dst_sw,
                    bandwidth, rate, banned, min_hop=True,
                )
                if src_sw != dst_sw
                else [src_sw]
            )
            if alt is None:
                return False
            if (
                _estimate_latency(topology, library, alt, src, dst, core_centers)
                > flow.latency + 1e-9
            ):
                return False
            path_switches = alt

        plan: List[Tuple[int, int, Optional[int]]] = []
        tentative_ids: List[int] = [inj.id]
        next_fake = -1
        for u, v in zip(path_switches, path_switches[1:]):
            chosen = None
            for link in topology.links_between(switch_ep(u), switch_ep(v)):
                if link.load_mbps + bandwidth <= model.capacity + 1e-9:
                    if chosen is None or link.load_mbps < chosen.load_mbps:
                        chosen = link
            if chosen is not None:
                plan.append((u, v, chosen.id))
                tentative_ids.append(chosen.id)
            else:
                plan.append((u, v, None))
                tentative_ids.append(next_fake)
                next_fake -= 1
        tentative_ids.append(ej.id)

        if cdg.creates_cycle(tentative_ids, flow.message_type):
            edge_to_ban = _pick_ban_edge(path_switches, banned)
            if edge_to_ban is None:
                return False
            banned.add(edge_to_ban)
            continue

        real_ids: List[int] = [inj.id]
        for u, v, link_id in plan:
            if link_id is None:
                link = topology.add_switch_link(u, v)
                real_ids.append(link.id)
            else:
                real_ids.append(link_id)
        real_ids.append(ej.id)
        topology.record_route((src, dst), real_ids, list(path_switches), bandwidth)
        cdg.add_path(real_ids, flow.message_type)
        return True

    return False


def naive_compute_paths(
    topology: Topology,
    graph: CommGraph,
    library: NocLibrary,
    config: SynthesisConfig,
    core_centers: Mapping[int, Tuple[float, float]],
) -> None:
    """Route every flow with the pre-optimisation hot path (reference)."""
    model = _make_cost_model(topology, graph, library, config)
    cdg = LegacyChannelDependencyGraph()

    if config.flow_order == "bandwidth_desc":
        flows = sorted(
            graph.edges.items(), key=lambda kv: (-kv[1].bandwidth, kv[0])
        )
    elif config.flow_order == "bandwidth_asc":
        flows = sorted(
            graph.edges.items(), key=lambda kv: (kv[1].bandwidth, kv[0])
        )
    else:
        flows = sorted(graph.edges.items(), key=lambda kv: kv[0])
    indirect_layers: Set[int] = set()

    for (src, dst), flow in flows:
        if flow.bandwidth > model.capacity:
            raise PathComputationError(
                f"flow {src}->{dst} demands {flow.bandwidth} MB/s, above link "
                f"capacity {model.capacity:.1f} MB/s"
            )
        routed = _naive_route_flow(
            topology, graph, library, config, model, cdg,
            src, dst, flow, core_centers,
        )
        while not routed:
            added = _try_add_indirect_switch(
                topology, config, library, src, dst, indirect_layers
            )
            if not added:
                raise PathComputationError(
                    f"no valid path for flow {src}->{dst} "
                    f"(bw {flow.bandwidth} MB/s, lat <= {flow.latency} cycles)"
                )
            routed = _naive_route_flow(
                topology, graph, library, config, model, cdg,
                src, dst, flow, core_centers,
            )

    topology.validate_routes()
    over = topology.check_capacity(config.utilisation_cap)
    if over:
        raise PathComputationError(f"links over capacity after routing: {over}")
