"""Inter-process file locking for shared on-disk state.

The result store (PR 5) and the campaign service share one directory tree
across *processes*: serving workers, ad-hoc CLI campaigns and a resident
``cli serve`` loop may all mutate the same store concurrently. Atomic
``os.replace`` writes already make individual entries safe; what needs a
lock is the *multi-file* mutations — LRU eviction walking and unlinking
entries while another process writes, journal ownership, repair sweeps.

:class:`FileLock` wraps ``fcntl.flock`` (the POSIX advisory lock):

* **crash-safe by construction** — the kernel releases the lock when the
  holding process dies, however it dies (SIGKILL included), so a process
  killed mid-eviction can never deadlock the store; the next locker simply
  proceeds over the partially-evicted (but entry-wise consistent) tree;
* **bounded waits** — ``acquire`` polls with a deadline and raises a
  structured :class:`~repro.errors.LockTimeoutError` instead of blocking a
  campaign forever behind a stuck peer; callers that prefer to skip the
  protected work (eviction is optional hygiene) pass ``timeout_s=0`` and
  branch on the ``False`` return;
* **degrades to a no-op** where ``fcntl`` does not exist (non-POSIX
  platforms): single-process behaviour is unchanged and the store stays
  usable, just without cross-process exclusion.

Locks are *advisory*: every writer of the shared tree must go through the
same lock path. Within this repo those writers are
:meth:`repro.engine.store.ResultStore.evict` / ``clear`` / ``verify
(repair=True)`` and the campaign journal's single-writer guard.

Because advisory locks only work if every call site cooperates, the
discipline itself is lint-enforced (``make lint``, checker
``lock-discipline``, code RPL401). Three zero-runtime-cost markers
declare each function's role in the protocol:

* :func:`requires_lock` — the function **assumes** the named lock is held
  by its caller (the ``_locked`` internals);
* :func:`acquires_lock` — calling the function takes, or returns a holder
  of, the named lock (``ResultStore._mutation_lock``);
* :func:`asserts_lock` — the function verifies ownership and raises when
  it is absent (``JobJournal._require_writer``).

The linter then proves every call to a ``requires_lock`` function happens
in a context that holds the lock. The markers attach attributes and
return the function unchanged — no wrapper frame, no runtime dependency
on the analysis package.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Optional, Union

from repro.errors import LockTimeoutError

try:  # POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

#: How often a blocked ``acquire`` re-tries the non-blocking flock.
_POLL_S = 0.01


def requires_lock(name: str):
    """Mark a function as assuming the named lock is already held.

    The ``lock-discipline`` checker (RPL401) proves every call site of a
    function carrying this marker holds ``name`` — by being marked
    itself, by a lexically-earlier call to an :func:`acquires_lock` /
    :func:`asserts_lock` function, or by a ``with FileLock(...)``.
    """

    def mark(fn):
        fn.__requires_lock__ = name
        return fn

    return mark


def acquires_lock(name: str):
    """Mark a function as taking (or returning a holder of) the lock."""

    def mark(fn):
        fn.__acquires_lock__ = name
        return fn

    return mark


def asserts_lock(name: str):
    """Mark a function as verifying lock ownership, raising when absent."""

    def mark(fn):
        fn.__asserts_lock__ = name
        return fn

    return mark


class FileLock:
    """An advisory, crash-released, inter-process exclusive lock.

    Args:
        path: Lock file location; created (with parents) on first acquire.
            The file itself carries no data — only its kernel lock state
            matters — so a stale file left by a killed process is harmless.
        timeout_s: Default acquisition deadline (overridable per call).

    Not thread-reentrant and not shared between threads: one instance per
    acquiring context. Use as a context manager for the common case::

        with FileLock(store_root / ".lock"):
            ...mutate multiple files...
    """

    def __init__(
        self, path: Union[str, Path], *, timeout_s: float = 30.0
    ) -> None:
        self.path = Path(path)
        self.timeout_s = timeout_s
        self._fd: Optional[int] = None

    @property
    def locked(self) -> bool:
        return self._fd is not None

    def acquire(self, timeout_s: Optional[float] = None) -> bool:
        """Take the lock; ``True`` on success.

        ``timeout_s=0`` is a single non-blocking attempt returning
        ``False`` when the lock is held elsewhere; a positive timeout polls
        until the deadline, then raises
        :class:`~repro.errors.LockTimeoutError`. Re-acquiring a lock this
        instance already holds is an error (no reentrancy to mask bugs).
        """
        if self._fd is not None:
            raise LockTimeoutError(
                f"lock {self.path} is already held by this instance",
                path=str(self.path),
            )
        deadline_s = self.timeout_s if timeout_s is None else timeout_s
        fd = self._open()
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            self._fd = fd
            return True
        deadline = time.monotonic() + deadline_s
        while True:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                if time.monotonic() >= deadline:
                    os.close(fd)
                    if deadline_s <= 0:
                        return False
                    raise LockTimeoutError(
                        f"could not acquire lock {self.path} within "
                        f"{deadline_s:g}s (held by another process)",
                        path=str(self.path), timeout_s=deadline_s,
                    ) from None
                time.sleep(_POLL_S)
            else:
                self._fd = fd
                return True

    def release(self) -> None:
        """Drop the lock (idempotent)."""
        fd, self._fd = self._fd, None
        if fd is None:
            return
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    def _open(self) -> int:
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            return os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        except OSError as exc:
            raise LockTimeoutError(
                f"cannot open lock file {self.path}: {exc}",
                path=str(self.path),
            ) from None

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *_exc) -> None:
        self.release()

    def __del__(self) -> None:  # belt and braces; the kernel also releases
        try:
            self.release()
        except Exception:
            pass
