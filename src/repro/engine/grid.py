"""Architectural parameter grids: the design space of the Fig. 3 outer loop.

"The NoC architectural parameters, such as frequency of operation, are
varied and the topology design process is repeated for each architectural
point" (Sec. IV). A :class:`ParameterGrid` names the swept dimensions —
frequency, the PG weight α of Def. 3, link width, and the switch-count
range — and expands to the cross product of :class:`GridPoint`\\ s; empty
dimensions inherit the base configuration's value.

Validation happens *up front* for every value of every dimension, so an
invalid parameter aborts before any synthesis point has been paid for —
not halfway through a sweep.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.config import SynthesisConfig
from repro.engine.tasks import SynthesisTask
from repro.errors import SynthesisError
from repro.models.library import NocLibrary
from repro.spec.comm_spec import CommSpec
from repro.spec.core_spec import CoreSpec
from repro.units import link_capacity_mbps


@dataclass(frozen=True)
class GridPoint:
    """One point of the architectural design space.

    ``None`` fields keep the base configuration's value, so a pure
    frequency sweep produces points like ``GridPoint(frequency_mhz=400.0)``.
    """

    frequency_mhz: Optional[float] = None
    alpha: Optional[float] = None
    link_width_bits: Optional[int] = None
    switch_count_range: Optional[Tuple[int, int]] = None

    def apply(self, base: SynthesisConfig) -> SynthesisConfig:
        """The base configuration with this point's overrides applied."""
        overrides = {}
        if self.frequency_mhz is not None:
            overrides["frequency_mhz"] = float(self.frequency_mhz)
        if self.alpha is not None:
            overrides["alpha"] = float(self.alpha)
        if self.link_width_bits is not None:
            overrides["link_width_bits"] = int(self.link_width_bits)
        if self.switch_count_range is not None:
            overrides["switch_count_range"] = tuple(self.switch_count_range)
        return base.with_(**overrides) if overrides else base

    def label(self) -> str:
        parts = []
        if self.frequency_mhz is not None:
            parts.append(f"f={self.frequency_mhz:g}MHz")
        if self.alpha is not None:
            parts.append(f"alpha={self.alpha:g}")
        if self.link_width_bits is not None:
            parts.append(f"w={self.link_width_bits}b")
        if self.switch_count_range is not None:
            lo, hi = self.switch_count_range
            parts.append(f"sw={lo}:{hi}")
        return " ".join(parts) if parts else "base"


@dataclass(frozen=True)
class ParameterGrid:
    """Cross product of swept architectural parameters.

    Empty dimensions are not swept (the base config value is used), so the
    classic frequency sweep is ``ParameterGrid(frequencies_mhz=(200, 400))``
    and a frequency × α exploration adds ``alphas=(0.3, 0.7)``.
    """

    frequencies_mhz: Tuple[float, ...] = ()
    alphas: Tuple[float, ...] = ()
    link_widths_bits: Tuple[int, ...] = ()
    switch_count_ranges: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        # Normalise sequences to tuples so grids hash and pickle cleanly.
        object.__setattr__(
            self, "frequencies_mhz", tuple(self.frequencies_mhz)
        )
        object.__setattr__(self, "alphas", tuple(self.alphas))
        object.__setattr__(
            self, "link_widths_bits", tuple(self.link_widths_bits)
        )
        object.__setattr__(
            self,
            "switch_count_ranges",
            tuple(tuple(r) for r in self.switch_count_ranges),
        )

    @property
    def size(self) -> int:
        n = 1
        for dim in (
            self.frequencies_mhz,
            self.alphas,
            self.link_widths_bits,
            self.switch_count_ranges,
        ):
            n *= max(1, len(dim))
        return n

    def validate(self) -> None:
        """Check every value of every dimension before any synthesis runs."""
        bad: List[str] = []
        for freq in self.frequencies_mhz:
            if freq <= 0:
                bad.append(f"frequency must be positive, got {freq}")
        for alpha in self.alphas:
            if not 0.0 <= alpha <= 1.0:
                bad.append(f"alpha must be in [0, 1], got {alpha}")
        for width in self.link_widths_bits:
            if width <= 0:
                bad.append(f"link width must be positive, got {width}")
        for rng in self.switch_count_ranges:
            lo, hi = rng
            if lo < 1 or hi < lo:
                bad.append(f"invalid switch_count_range {rng}")
        if bad:
            raise SynthesisError(
                "invalid sweep grid: " + "; ".join(bad)
            )

    def points(self) -> List[GridPoint]:
        """All grid points, in deterministic row-major order."""
        self.validate()
        freqs: Sequence = self.frequencies_mhz or (None,)
        alphas: Sequence = self.alphas or (None,)
        widths: Sequence = self.link_widths_bits or (None,)
        ranges: Sequence = self.switch_count_ranges or (None,)
        return [
            GridPoint(
                frequency_mhz=f, alpha=a, link_width_bits=w,
                switch_count_range=r,
            )
            for f, a, w, r in itertools.product(freqs, alphas, widths, ranges)
        ]


def build_tasks(
    core_spec: CoreSpec,
    comm_spec: CommSpec,
    grid: ParameterGrid,
    base_config: Optional[SynthesisConfig] = None,
    library: Optional[NocLibrary] = None,
    *,
    skip_infeasible: bool = True,
    stage_cache_dir: Optional[str] = None,
    stage_cache_salt: Optional[str] = None,
) -> List[SynthesisTask]:
    """Expand a grid into engine tasks for one design.

    With ``skip_infeasible`` (the default, matching the serial sweeps'
    behaviour) a point whose link capacity cannot carry the largest single
    flow is marked ``skip`` and merges as an empty result instead of
    burning a worker on a guaranteed-unroutable design.

    ``stage_cache_dir``/``stage_cache_salt`` arm per-stage memoization
    (:mod:`repro.engine.stagecache`) in the workers: stages whose inputs
    repeat across neighbouring grid points are served from disk. Results
    stay bit-identical; only wall clock changes.
    """
    base = base_config if base_config is not None else SynthesisConfig()
    tasks: List[SynthesisTask] = []
    for point in grid.points():
        config = point.apply(base)
        skip = False
        reason = ""
        if skip_infeasible:
            capacity = link_capacity_mbps(
                config.link_width_bits, config.frequency_mhz
            )
            if comm_spec.max_bandwidth > capacity:
                skip = True
                reason = (
                    f"largest flow ({comm_spec.max_bandwidth} MB/s) exceeds "
                    f"link capacity ({capacity:.1f} MB/s)"
                )
        tasks.append(
            SynthesisTask(
                key=point,
                core_spec=core_spec,
                comm_spec=comm_spec,
                config=config,
                library=library,
                skip=skip,
                skip_reason=reason,
                stage_cache_dir=stage_cache_dir,
                stage_cache_salt=stage_cache_salt,
            )
        )
    return tasks
