"""Per-stage memoization over the content-addressed result store.

PR 5's :class:`~repro.engine.store.ResultStore` caches whole engine tasks:
a sweep point either hits entirely or recomputes entirely. This layer
pushes the same content addressing down to the seven-stage granularity of
:mod:`repro.core.pipeline` — each :class:`~repro.core.pipeline.Stage`
declares the exact subset of context/config/state fields it reads plus a
code-version salt, and :class:`StageCache` fingerprints those inputs
(through the store's canonical encoder) to file the stage's *outputs* on
disk. A stage result computed at one sweep point is then served at every
neighbouring point whose inputs hash identically: a frequency sweep
re-runs only the frequency-sensitive stages, and a ``--floorplan-restarts``
bump reuses every upstream stage verbatim.

Invalidation model (see ``docs/pipeline.md`` for the full policy):

* a stage's fingerprint covers its declared **context/config inputs by
  value**, its **state inputs by provenance** (the fingerprint of the
  upstream stage that produced each field — equal producers imply equal
  values, without re-hashing a routed topology per candidate), its own
  **signature** (class identity, salt, declared field names) and the
  **signature chain** of every upstream stage in the pipeline — so editing
  a stage's salt or declarations invalidates exactly that stage *and its
  downstream dependents*, never its upstream;
* deterministic :class:`~repro.core.pipeline.StageFailure` rejections are
  cached and replayed like successes (an expensive routing rejection is
  exactly as deterministic as a success); hard errors, quarantined and
  timed-out work never produce records, matching the PR 6 executor
  semantics;
* anything unfingerprintable (a custom stage holding a live handle) makes
  the stage — and, through the chain, its downstream — run uncached,
  never an error.

Records share the store directory and salt with whole-task caching and are
filed under ``task_type="stage:<name>"``, so ``cache stats`` / ``verify``
audit them like any other entry and a ``REPRO_STORE_SALT`` bump retires
both layers at once.
"""

from __future__ import annotations

import dataclasses
import hashlib
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.engine.store import ResultStore, _feed, open_store
from repro.errors import StoreError

#: Record-format tag folded into every stage fingerprint; bump when the
#: :class:`StageRecord` layout, the fingerprint composition or the replay
#: semantics change. v2: state inputs hash by producer fingerprint
#: (provenance) instead of by value.
STAGE_RECORD_SALT = "stage-record-v2"


@dataclasses.dataclass
class StageRecord:
    """The replayable outcome of one stage execution."""

    #: The stage's registry name — doubles as a payload sanity check.
    stage: str
    #: ``{state field: value}`` snapshot of the stage's declared outputs.
    outputs: Dict[str, Any]
    #: Whether the stage rejected the candidate (a StageFailure).
    failed: bool = False
    failure_reason: str = ""

    def apply(self, state) -> None:
        """Replay this record onto a :class:`CandidateState`."""
        for name, value in self.outputs.items():
            setattr(state, name, value)
        if self.failed:
            state.failed_stage = self.stage
            state.failure_reason = self.failure_reason


@dataclasses.dataclass
class StageCounter:
    """Session counters for one stage (hits/misses/bytes)."""

    hits: int = 0
    misses: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }


def _stage_signature(stage) -> Tuple[Any, ...]:
    """What identifies a stage's *code* to the fingerprint: the instance
    itself (class identity + any instance configuration, via the canonical
    encoder), its salt and its declared field names."""
    return (
        stage.name,
        getattr(stage, "salt", ""),
        stage,
        tuple(getattr(stage, "context_inputs", ())),
        tuple(getattr(stage, "config_inputs", ()))
        if not isinstance(getattr(stage, "config_inputs", ()), str)
        else getattr(stage, "config_inputs"),
        tuple(getattr(stage, "state_inputs", ())),
        tuple(getattr(stage, "state_outputs", ())),
    )


class StageCache:
    """Memoises pipeline stage outputs in a :class:`ResultStore`.

    One instance is threaded through
    :meth:`repro.core.pipeline.Pipeline.evaluate`; it keeps per-stage
    session counters (in pipeline execution order) and exposes ``spec()``
    so the parallel candidate fan-out can reopen an equivalent cache
    inside worker processes.
    """

    #: Cap on the memoised per-(stage, context) fingerprint prefixes; the
    #: memo holds strong references (so ``id()`` keys stay valid), and the
    #: cap bounds how many contexts a long-lived cache keeps alive.
    _PREFIX_MEMO_MAX = 64

    def __init__(self, store: ResultStore) -> None:
        self.store = store
        self.counters: Dict[str, StageCounter] = {}
        self._prefixes: Dict[Tuple[int, int], Tuple[Any, ...]] = {}

    # -- plumbing -----------------------------------------------------------

    def spec(self) -> Tuple[str, str]:
        """``(directory, salt)`` — enough to reopen this cache elsewhere."""
        return str(self.store.root), self.store.salt

    def _counter(self, name: str) -> StageCounter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = StageCounter()
        return counter

    # -- fingerprints -------------------------------------------------------

    def signature(self, stage) -> Tuple[Any, ...]:
        """The stage's chain element (see :func:`_stage_signature`)."""
        return _stage_signature(stage)

    def _prefix(self, stage, chain: Tuple[Any, ...], ctx):
        """A sha256 primed with everything candidates at one sweep point
        share: salts, the upstream signature chain, the stage's own
        signature and the declared context/config input *values*. Computed
        once per (stage, context) pair and ``copy()``-ed per candidate —
        re-hashing the communication graph and component library for every
        candidate is what made fingerprinting dominate warm sweeps."""
        key = (id(stage), id(ctx))
        memo = self._prefixes.get(key)
        if (
            memo is not None
            and memo[0] is stage
            and memo[1] is ctx
            and memo[2] == chain
        ):
            return memo[3]
        h = hashlib.sha256()
        _feed(h, self.store.salt)
        _feed(h, STAGE_RECORD_SALT)
        _feed(h, chain)
        _feed(h, _stage_signature(stage))
        for name in stage.context_inputs:
            _feed(h, name)
            _feed(h, getattr(ctx, name))
        if stage.config_inputs == "*":
            _feed(h, ctx.config)
        else:
            for name in stage.config_inputs:
                _feed(h, name)
                _feed(h, getattr(ctx.config, name))
        if len(self._prefixes) >= self._PREFIX_MEMO_MAX:
            self._prefixes.clear()
        self._prefixes[key] = (stage, ctx, chain, h)
        return h

    def fingerprint(
        self,
        stage,
        chain: Sequence[Any],
        ctx,
        state,
        provenance: Optional[Mapping[str, str]] = None,
    ) -> Optional[str]:
        """The content address of ``stage``'s output at this point.

        ``chain`` holds the signatures of every upstream stage, so a salt
        or declaration edit anywhere upstream changes this fingerprint
        too. State inputs fold in by **provenance** where available: the
        fingerprint of the stage that produced a field stands in for the
        field's value — the producer is deterministic, so equal producer
        fingerprints imply equal values, and the (large) routed topology
        never needs re-hashing per candidate. Fields with no recorded
        producer (the initial assignment; anything touched by an uncached
        stage) hash by value. Returns ``None`` — run uncached — for stages
        that did not opt in (``cacheable=False``) or whose inputs have no
        stable representation.
        """
        if not getattr(stage, "cacheable", False):
            return None
        try:
            h = self._prefix(stage, tuple(chain), ctx).copy()
            for name in stage.state_inputs:
                _feed(h, name)
                producer = None if provenance is None else provenance.get(name)
                if producer is not None:
                    _feed(h, ("produced-by", producer))
                else:
                    _feed(h, getattr(state, name))
            return h.hexdigest()
        except (StoreError, AttributeError):
            return None

    # -- record IO ----------------------------------------------------------

    def load(self, stage, fingerprint: str) -> Optional[Tuple[StageRecord, float]]:
        """Fetch ``(record, original elapsed seconds)``; ``None`` on miss."""
        counter = self._counter(stage.name)
        entry = self.store.get(fingerprint)
        if (
            entry is None
            or not isinstance(entry.payload, StageRecord)
            or entry.payload.stage != stage.name
        ):
            counter.misses += 1
            return None
        counter.hits += 1
        counter.bytes_read += self.store.size_of(fingerprint)
        return entry.payload, entry.elapsed_s

    def save(self, stage, fingerprint: str, state, elapsed_s: float) -> None:
        """Checkpoint the stage's declared outputs (pickled immediately, so
        later in-place mutation by downstream stages cannot leak in)."""
        failed = state.failed_stage == stage.name
        record = StageRecord(
            stage=stage.name,
            outputs={
                name: getattr(state, name) for name in stage.state_outputs
            },
            failed=failed,
            failure_reason=state.failure_reason if failed else "",
        )
        written = self.store.put(
            fingerprint,
            record,
            task_type=f"stage:{stage.name}",
            elapsed_s=elapsed_s,
        )
        self._counter(stage.name).bytes_written += int(written)

    # -- stats --------------------------------------------------------------

    def note_remote(self, outcome) -> None:
        """Fold one worker-evaluated candidate outcome into the counters.

        Workers open their own cache handles; the parent reconstructs
        hit/miss counts from each outcome's ``cached_stages`` (bytes stay
        worker-local and are reported as 0 here).
        """
        cached = set(getattr(outcome, "cached_stages", ()) or ())
        for name in getattr(outcome, "stage_seconds", None) or ():
            counter = self._counter(name)
            if name in cached:
                counter.hits += 1
            else:
                counter.misses += 1

    def stats_dict(self) -> Dict[str, Dict[str, int]]:
        """``{stage: {hits, misses, bytes_read, bytes_written}}`` in first-
        touch (pipeline) order."""
        return {
            name: counter.as_dict() for name, counter in self.counters.items()
        }


def merge_stage_stats(
    into: Dict[str, Dict[str, int]],
    stats: Optional[Mapping[str, Mapping[str, int]]],
) -> Dict[str, Dict[str, int]]:
    """Accumulate one ``stats_dict()``-shaped mapping into ``into``."""
    for name, row in (stats or {}).items():
        merged = into.setdefault(
            name, {"hits": 0, "misses": 0, "bytes_read": 0, "bytes_written": 0}
        )
        for key, value in row.items():
            merged[key] = merged.get(key, 0) + int(value)
    return into


def format_stage_cache_summary(
    stats: Mapping[str, Mapping[str, int]], *, indent: str = "  "
) -> str:
    """An aligned per-stage hit/miss/bytes table for CLI summaries."""
    rows = [("stage", "hits", "misses", "read", "written")]
    totals = {"hits": 0, "misses": 0, "bytes_read": 0, "bytes_written": 0}
    for name, row in stats.items():
        for key in totals:
            totals[key] += int(row.get(key, 0))
        rows.append((
            name,
            str(row.get("hits", 0)),
            str(row.get("misses", 0)),
            _human_bytes(row.get("bytes_read", 0)),
            _human_bytes(row.get("bytes_written", 0)),
        ))
    rows.append((
        "total",
        str(totals["hits"]),
        str(totals["misses"]),
        _human_bytes(totals["bytes_read"]),
        _human_bytes(totals["bytes_written"]),
    ))
    widths = [max(len(r[c]) for r in rows) for c in range(5)]
    lines = []
    for i, row in enumerate(rows):
        lines.append(
            indent + row[0].ljust(widths[0]) + "  "
            + "  ".join(row[c].rjust(widths[c]) for c in range(1, 5))
        )
        if i == 0:
            lines.append(indent + "  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _human_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024.0
    return f"{int(n)}B"


def open_stage_cache(
    cache_dir: Optional[Union[str, Path]] = None,
    *,
    salt: Optional[str] = None,
    max_bytes: Optional[int] = None,
) -> StageCache:
    """Open a stage cache over the store at ``cache_dir`` (see
    :func:`repro.engine.store.open_store` for the fallbacks)."""
    return StageCache(open_store(cache_dir, salt=salt, max_bytes=max_bytes))
