"""The engine scaling benchmark: sweep parallelism + hot paths.

Measures the claims this subsystem makes and writes them to
``BENCH_engine.json`` so the perf trajectory is tracked PR over PR:

* **sweep scaling** — a frequency × α grid over a D_26-style synthetic
  design, run serially and on a worker pool; reports wall-clock per
  synthesis point and the sweep-level speedup, and checks the merged
  design points are identical (order-normalised);
* **result-store reuse** — the same sweep run cold (computing + writing a
  fresh :class:`~repro.engine.store.ResultStore`) and warm (served entirely
  from disk); reports the warm-over-cold speedup and checks the merged
  points are identical to the storeless baseline;
* **per-stage memoization** — a *warm-adjacent* sweep over a populated
  stage cache (:mod:`repro.engine.stagecache`): the metrics objective is
  flipped so only the metrics stage is invalidated, every upstream stage is
  served from disk; reports the speedup over the uncached sweep at the same
  config, checks only the delta stage missed, and that the merged points
  are identical to the uncached reference;
* **routing hot path** — ``compute_paths`` (optimised) versus the frozen
  naive baseline of :mod:`repro.engine.reference` on the same design,
  single-threaded; reports the speedup and checks route identity;
* **floorplan annealing hot path** — the incremental
  :mod:`repro.floorplan.engine` evaluator versus the frozen naive baseline
  of :mod:`repro.floorplan.reference` on the same design's 2-D
  floorplanning problem, single-threaded moves/sec plus the multi-start
  serial/parallel leg, with bit-identity checks;
* **wormhole simulator hot path** — the array-based
  :mod:`repro.noc.simengine` core versus the frozen naive baseline of
  :mod:`repro.noc.reference` on the same design's synthesized topology,
  single-threaded cycles/sec at validation load (with a saturation point
  recorded too) plus the parallel traffic-campaign leg, with bit-identity
  checks;
* **supervision overhead & recovery** — the same parallel sweep with the
  :mod:`repro.engine.supervise` knobs armed (retries + per-task deadline)
  versus plain, fault-free (the overhead claim), and with one injected
  worker crash under ``on_error="quarantine"`` (wall-clock to complete the
  campaign with the poison task quarantined and every survivor identical
  to the fault-free merge);
* **campaign service** — three campaigns through the durable
  :mod:`repro.campaign` service: sequential versus round-robin concurrent
  submission (gated on zero lost / duplicated jobs and identical result
  digests) and an interrupted-then-resumed run (gated on journal-replay
  overhead <= 5% over the uninterrupted wall time).

Shared by ``python -m repro.cli bench``,
``benchmarks/bench_engine_scaling.py``,
``benchmarks/bench_floorplan_anneal.py`` and
``benchmarks/bench_simulator.py``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.bench.synthetic import synthetic_benchmark
from repro.core.config import SynthesisConfig
from repro.core.paths import build_topology_skeleton, compute_paths
from repro.core.phase1 import phase1_candidate
from repro.engine.executor import resolve_jobs, run_tasks
from repro.engine.grid import ParameterGrid, build_tasks
from repro.engine.profile import ProfileRecorder
from repro.engine.reference import naive_compute_paths
from repro.errors import PathComputationError
from repro.noc.export import design_point_to_dict, topology_to_dict

#: Default output file, tracked at the repo root.
DEFAULT_OUTPUT = "BENCH_engine.json"

#: The D_26-style synthetic design both measurements run on.
_DESIGN_CORES = 26
_DESIGN_PATTERN = "distributed"
_DESIGN_LAYERS = 3
_DESIGN_SEED = 3


def _design():
    return synthetic_benchmark(
        _DESIGN_CORES, _DESIGN_PATTERN, num_layers=_DESIGN_LAYERS,
        seed=_DESIGN_SEED, floorplan_moves=800,
    )


def _sweep_grid(quick: bool) -> ParameterGrid:
    if quick:
        return ParameterGrid(
            frequencies_mhz=(400.0, 500.0, 600.0, 700.0),
            alphas=(0.5, 0.9),
        )
    return ParameterGrid(
        frequencies_mhz=(300.0, 400.0, 500.0, 600.0, 700.0, 800.0),
        alphas=(0.3, 0.6, 0.9),
    )


def _canonical(results) -> List[Dict]:
    """Order-normalised serialisation of a merged sweep for comparison."""
    out = []
    for task_result in results:
        points = sorted(
            (design_point_to_dict(p) for p in task_result.result.points),
            key=lambda d: (d["switch_count"], d["metrics"]["total_power_mw"]),
        )
        out.append({"key": str(task_result.key), "points": points})
    return out


def run_engine_benchmark(
    *,
    quick: bool = True,
    jobs: Optional[int] = None,
    output: Optional[str] = DEFAULT_OUTPUT,
    log: Optional[Callable[[str], None]] = None,
) -> Dict:
    """Run both measurements; returns (and optionally writes) the report."""
    say = log if log is not None else (lambda _msg: None)
    recorder = ProfileRecorder()
    # Honour an explicit worker count even above the visible CPU count (the
    # sweep-scaling claim is about a 4-worker pool); keep >= 2 so the
    # parallel leg actually exercises the pool.
    workers = max(2, resolve_jobs(jobs))

    bench = _design()
    base = SynthesisConfig(max_ill=16, switch_count_range=(2, 8))
    grid = _sweep_grid(quick)
    tasks = build_tasks(bench.core_spec_3d, bench.comm_spec, grid, base)
    say(f"sweep: {len(tasks)} synthesis points on {bench.name}")

    # Warm lazy imports (scipy LP backend etc.) so the serial baseline's
    # first point is not inflated against the parallel leg.
    run_tasks(tasks[:1], jobs=1)
    with recorder.time("sweep_serial", points=len(tasks)):
        serial = run_tasks(tasks, jobs=1)
    with recorder.time("sweep_parallel", jobs=workers):
        parallel = run_tasks(tasks, jobs=workers)
    serial_s = recorder.best_s("sweep_serial")
    parallel_s = recorder.best_s("sweep_parallel")
    identical = _canonical(serial) == _canonical(parallel)
    sweep_speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    say(
        f"sweep: serial {serial_s:.2f}s, parallel({workers}) {parallel_s:.2f}s "
        f"-> {sweep_speedup:.2f}x (identical points: {identical})"
    )

    cache_report = _bench_cache(tasks, serial, recorder, say)
    stage_cache_report = _bench_stage_cache(bench, base, grid, recorder, say)
    paths_report = _bench_compute_paths(bench, recorder, say)
    floorplan_report = _bench_floorplan(bench, recorder, say, workers, quick)
    simulator_report = _bench_simulator(bench, recorder, say, workers, quick)
    supervision_report = _bench_supervision(tasks, serial, recorder, say,
                                            workers)
    service_report = _bench_service(recorder, say)

    report = {
        "benchmark": "engine-scaling",
        "design": bench.name,
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "sweep": {
            "grid_points": len(tasks),
            "jobs": workers,
            "serial_s": round(serial_s, 4),
            "parallel_s": round(parallel_s, 4),
            "serial_per_point_s": [
                round(r.elapsed_s, 4) for r in serial
            ],
            "speedup": round(sweep_speedup, 3),
            "identical_points": identical,
            "valid_points": sum(len(r.result.points) for r in serial),
        },
        "cache": cache_report,
        "stage_cache": stage_cache_report,
        "compute_paths": paths_report,
        "floorplan": floorplan_report,
        "simulator": simulator_report,
        "supervision": supervision_report,
        "service": service_report,
    }
    if output:
        recorder.write_json(output, extra=report)
        say(f"wrote {output}")
    return report


def run_floorplan_benchmark(
    *,
    quick: bool = True,
    jobs: Optional[int] = None,
    log: Optional[Callable[[str], None]] = None,
) -> Dict:
    """Run only the floorplan-annealing measurement (no sweep, no routing).

    Used by ``benchmarks/bench_floorplan_anneal.py`` for a focused gate;
    ``run_engine_benchmark`` embeds the same section in
    ``BENCH_engine.json``.
    """
    say = log if log is not None else (lambda _msg: None)
    recorder = ProfileRecorder()
    workers = max(2, resolve_jobs(jobs))
    bench = _design()
    report = _bench_floorplan(bench, recorder, say, workers, quick)
    report["cpu_count"] = os.cpu_count()
    return report


def run_simulator_benchmark(
    *,
    quick: bool = True,
    jobs: Optional[int] = None,
    log: Optional[Callable[[str], None]] = None,
) -> Dict:
    """Run only the wormhole-simulator measurement (no sweep, no routing).

    Used by ``benchmarks/bench_simulator.py`` for a focused gate;
    ``run_engine_benchmark`` embeds the same section in
    ``BENCH_engine.json``.
    """
    say = log if log is not None else (lambda _msg: None)
    recorder = ProfileRecorder()
    workers = max(2, resolve_jobs(jobs))
    bench = _design()
    report = _bench_simulator(bench, recorder, say, workers, quick)
    report["cpu_count"] = os.cpu_count()
    return report


def _bench_cache(
    tasks, serial_results, recorder: ProfileRecorder,
    say: Callable[[str], None],
) -> Dict:
    """Cold vs warm store-backed sweep: the result-reuse claim.

    The cold leg recomputes every point while writing the store; the warm
    leg serves the whole sweep from disk. Both must merge bit-identically
    to the plain serial baseline.
    """
    import shutil
    import tempfile

    from repro.engine.store import ResultStore

    tmp = tempfile.mkdtemp(prefix="repro-bench-store-")
    try:
        store = ResultStore(tmp)
        with recorder.time("sweep_cold_store", points=len(tasks)):
            cold = run_tasks(tasks, jobs=1, store=store)
        with recorder.time("sweep_warm_store", points=len(tasks)):
            warm = run_tasks(tasks, jobs=1, store=store)
        stats = store.stats()
        entries, total_bytes = stats.entries, stats.total_bytes
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    cold_s = recorder.best_s("sweep_cold_store")
    warm_s = recorder.best_s("sweep_warm_store")
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    identical = (
        _canonical(cold) == _canonical(warm) == _canonical(serial_results)
    )
    warm_hits = sum(1 for r in warm if r.cached)
    say(
        f"cache: cold {cold_s:.2f}s, warm {warm_s:.3f}s -> {speedup:.1f}x "
        f"({warm_hits}/{len(tasks)} hits, {entries} entries, "
        f"identical merge: {identical})"
    )
    return {
        "grid_points": len(tasks),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 5),
        "speedup": round(speedup, 3),
        "warm_hits": warm_hits,
        "entries": entries,
        "store_bytes": total_bytes,
        "identical_results": identical,
    }


def _bench_stage_cache(
    bench, base, grid, recorder: ProfileRecorder,
    say: Callable[[str], None],
) -> Dict:
    """Warm-adjacent sweep over a stage cache: the delta-stages claim.

    Runs on the constrained-annealer floorplanner (``base`` with
    ``floorplanner="constrained"``) so that stage work — the part
    memoization removes — dominates the irreducible serial candidate
    *generation* that every leg pays; on the default cheap floorplanner
    the ratio would mostly measure graph partitioning. Four serial legs
    (so the numbers are CPU-count independent):

    1. *reference* — a plain uncached sweep at the *adjacent* config (the
       heavy base with the metrics objective flipped): what re-exploring a
       neighbouring design point costs without stage memoization;
    2. *plain* — the heavy base config uncached, the identity reference
       for the cold leg;
    3. *cold* — the heavy-base sweep writing a fresh stage cache; its
       merged points must be identical to the plain sweep (stage caching
       never changes results, only wall clock);
    4. *warm-adjacent* — the adjacent-config sweep over that populated
       cache. The objective only enters the metrics stage's fingerprint,
       so every upstream stage (skeleton, routing, LP, floorplan, verify)
       is served from disk and only metrics executes.

    Gated claims: the warm-adjacent merge is canonically identical to the
    uncached reference, only the delta stage missed, and the speedup
    (reference over warm-adjacent) clears the floor in
    ``benchmarks/bench_engine_scaling.py``.
    """
    import shutil
    import tempfile

    from repro.engine.stagecache import merge_stage_stats

    heavy = base.with_(floorplanner="constrained")
    adjacent = heavy.with_(
        objective="latency" if heavy.objective == "power" else "power"
    )
    core_spec, comm_spec = bench.core_spec_3d, bench.comm_spec
    ref_tasks = build_tasks(core_spec, comm_spec, grid, adjacent)
    with recorder.time("stage_cache_reference", points=len(ref_tasks)):
        reference = run_tasks(ref_tasks, jobs=1)
    with recorder.time("stage_cache_plain", points=len(ref_tasks)):
        plain = run_tasks(
            build_tasks(core_spec, comm_spec, grid, heavy), jobs=1
        )

    tmp = tempfile.mkdtemp(prefix="repro-bench-stagecache-")
    try:
        cold_tasks = build_tasks(
            core_spec, comm_spec, grid, heavy, stage_cache_dir=tmp,
        )
        with recorder.time("stage_cache_cold", points=len(cold_tasks)):
            cold = run_tasks(cold_tasks, jobs=1)
        warm_tasks = build_tasks(
            core_spec, comm_spec, grid, adjacent, stage_cache_dir=tmp,
        )
        with recorder.time(
            "stage_cache_warm_adjacent", points=len(warm_tasks)
        ):
            warm = run_tasks(warm_tasks, jobs=1)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    ref_s = recorder.best_s("stage_cache_reference")
    cold_s = recorder.best_s("stage_cache_cold")
    warm_s = recorder.best_s("stage_cache_warm_adjacent")
    speedup = ref_s / warm_s if warm_s > 0 else float("inf")

    stats: Dict = {}
    for task_result in warm:
        if task_result.stage_cache:
            merge_stage_stats(stats, task_result.stage_cache)
    missed = sorted(n for n, c in stats.items() if c.get("misses"))
    delta_only = missed == ["metrics"]
    identical = _canonical(warm) == _canonical(reference)
    cold_identical = _canonical(cold) == _canonical(plain)
    say(
        f"stage cache: reference {ref_s:.2f}s, cold {cold_s:.2f}s, "
        f"warm-adjacent {warm_s:.2f}s -> {speedup:.1f}x "
        f"(missed stages: {missed}, identical merge: {identical})"
    )
    return {
        "grid_points": len(ref_tasks),
        "reference_s": round(ref_s, 4),
        "plain_s": round(recorder.best_s("stage_cache_plain"), 4),
        "cold_s": round(cold_s, 4),
        "warm_adjacent_s": round(warm_s, 4),
        "speedup": round(speedup, 3),
        "missed_stages": missed,
        "delta_stages_only": delta_only,
        "identical_results": identical,
        "cold_identical_results": cold_identical,
        "stages": stats,
    }


def _bench_compute_paths(
    bench, recorder: ProfileRecorder, say: Callable[[str], None]
) -> Dict:
    """Single-threaded optimised vs naive routing on the synthetic design."""
    config = SynthesisConfig(max_ill=16)
    from repro.core.synthesis import SunFloor3D

    tool = SunFloor3D(bench.core_spec_3d, bench.comm_spec, config=config)
    graph, library = tool.graph, tool.library
    centers = tool._core_centers
    counts = range(3, 11)
    assignments = [phase1_candidate(graph, config, c) for c in counts]

    def route_all(router) -> List[Dict]:
        topologies = []
        for assignment in assignments:
            try:
                topo = build_topology_skeleton(
                    assignment, graph, library, config, centers
                )
                router(topo, graph, library, config, centers)
                topologies.append(topology_to_dict(topo))
            except PathComputationError:
                topologies.append(None)
        return topologies

    route_all(compute_paths)  # warm both code paths and the benchmark caches
    repeats = 5
    optimized = naive = None
    for _ in range(repeats):
        with recorder.time("paths_optimized", candidates=len(assignments)):
            optimized = route_all(compute_paths)
        with recorder.time("paths_naive", candidates=len(assignments)):
            naive = route_all(naive_compute_paths)
    optimized_s = recorder.best_s("paths_optimized")
    naive_s = recorder.best_s("paths_naive")
    speedup = naive_s / optimized_s if optimized_s > 0 else float("inf")
    identical = optimized == naive
    say(
        f"compute_paths: naive {naive_s * 1e3:.1f}ms, optimized "
        f"{optimized_s * 1e3:.1f}ms -> {speedup:.2f}x "
        f"(identical routes: {identical})"
    )
    return {
        "flows": len(graph.edges),
        "switch_candidates": len(assignments),
        "naive_s": round(naive_s, 5),
        "optimized_s": round(optimized_s, 5),
        "speedup": round(speedup, 3),
        "routes_identical": identical,
    }


#: Multi-start restart count of the floorplan benchmark's parallel leg.
_FLOORPLAN_RESTARTS = 4


def _bench_floorplan(
    bench, recorder: ProfileRecorder, say: Callable[[str], None],
    workers: int, quick: bool,
) -> Dict:
    """Incremental vs naive annealing moves/sec + multi-start scaling.

    Both anneals run the same problem — the benchmark design's 2-D
    floorplan (blocks + bandwidth-weighted nets) — with identical seeds;
    results must be bit-identical, so the speedup is pure evaluation cost.
    """
    from repro.bench.floorplans import _bandwidth_nets
    from repro.floorplan.annealer import anneal_floorplan
    from repro.floorplan.reference import naive_anneal_floorplan
    from repro.graphs.comm_graph import build_comm_graph

    core_spec = bench.core_spec_2d
    graph = build_comm_graph(core_spec, bench.comm_spec)
    widths = [c.width for c in core_spec]
    heights = [c.height for c in core_spec]
    nets = _bandwidth_nets(graph, list(range(len(core_spec))))
    moves = 1500 if quick else 4000
    kwargs = dict(wirelength_weight=1.0, seed=7, moves=moves)

    # Warm both code paths (numpy import, rng digest) off the clock.
    anneal_floorplan(widths, heights, nets, **{**kwargs, "moves": 50})
    naive_anneal_floorplan(widths, heights, nets, **{**kwargs, "moves": 50})

    incremental = naive = None
    for _ in range(3):
        with recorder.time("floorplan_incremental", moves=moves):
            incremental = anneal_floorplan(widths, heights, nets, **kwargs)
        with recorder.time("floorplan_naive", moves=moves):
            naive = naive_anneal_floorplan(widths, heights, nets, **kwargs)
    incremental_s = recorder.best_s("floorplan_incremental")
    naive_s = recorder.best_s("floorplan_naive")
    identical = incremental == naive
    speedup = naive_s / incremental_s if incremental_s > 0 else float("inf")
    say(
        f"floorplan: naive {moves / naive_s:,.0f} moves/s, incremental "
        f"{moves / incremental_s:,.0f} moves/s -> {speedup:.2f}x "
        f"(identical results: {identical})"
    )

    # Multi-start leg: K restarts serial vs fanned across the pool.
    # Best-of-3 like the single-thread leg, so one scheduler stall (or the
    # pool creation inside the timed region) cannot flip the scaling gate.
    multi_kwargs = dict(kwargs, restarts=_FLOORPLAN_RESTARTS)
    anneal_floorplan(  # warm the pool code path
        widths, heights, nets, **{**multi_kwargs, "moves": 50}, jobs=workers
    )
    serial = parallel = None
    for _ in range(3):
        with recorder.time("floorplan_multistart_serial"):
            serial = anneal_floorplan(
                widths, heights, nets, **multi_kwargs, jobs=1
            )
        with recorder.time("floorplan_multistart_parallel", jobs=workers):
            parallel = anneal_floorplan(
                widths, heights, nets, **multi_kwargs, jobs=workers
            )
    serial_s = recorder.best_s("floorplan_multistart_serial")
    parallel_s = recorder.best_s("floorplan_multistart_parallel")
    multi_identical = serial == parallel
    multi_speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    say(
        f"floorplan multi-start: serial {serial_s:.2f}s, parallel({workers}) "
        f"{parallel_s:.2f}s -> {multi_speedup:.2f}x "
        f"(identical merge: {multi_identical}, "
        f"winner restart {serial.restart_index})"
    )

    return {
        "blocks": len(widths),
        "nets": len(nets),
        "moves": moves,
        "naive_s": round(naive_s, 5),
        "incremental_s": round(incremental_s, 5),
        "naive_moves_per_s": round(moves / naive_s, 1),
        "incremental_moves_per_s": round(moves / incremental_s, 1),
        "speedup": round(speedup, 3),
        "identical_results": identical,
        "multistart": {
            "restarts": _FLOORPLAN_RESTARTS,
            "jobs": workers,
            "serial_s": round(serial_s, 4),
            "parallel_s": round(parallel_s, 4),
            "speedup": round(multi_speedup, 3),
            "identical_results": multi_identical,
            "winner_restart": serial.restart_index,
        },
    }


def _bench_supervision(
    tasks, serial_results, recorder: ProfileRecorder,
    say: Callable[[str], None], workers: int,
) -> Dict:
    """Fault-free supervision overhead + crash-recovery wall time.

    The overhead leg runs the parallel sweep plain and with the supervision
    knobs armed (retries + a generous per-task deadline that never fires),
    best-of-3 interleaved so a scheduler stall cannot flip the comparison.
    The recovery leg injects one worker crash mid-campaign and measures the
    wall-clock for the supervised pool to attribute the crasher, quarantine
    it, regenerate the pool and finish every surviving point.
    """
    import shutil
    import tempfile

    from repro.engine.faults import FaultPlan, FaultSpec, inject_faults
    from repro.engine.supervise import RetryPolicy

    retry = RetryPolicy(max_retries=2)
    deadline_s = 300.0  # generous: never fires fault-free
    plain = armed = None
    for _ in range(3):
        with recorder.time("supervision_plain", jobs=workers):
            plain = run_tasks(tasks, jobs=workers)
        with recorder.time("supervision_armed", jobs=workers):
            armed = run_tasks(
                tasks, jobs=workers, retry=retry,
                task_timeout_s=deadline_s, on_error="quarantine",
            )
    plain_s = recorder.best_s("supervision_plain")
    armed_s = recorder.best_s("supervision_armed")
    overhead_pct = (
        (armed_s - plain_s) / plain_s * 100.0 if plain_s > 0 else 0.0
    )
    identical = (
        _canonical(armed) == _canonical(plain) == _canonical(serial_results)
    )
    say(
        f"supervision: plain {plain_s:.2f}s, armed {armed_s:.2f}s -> "
        f"{overhead_pct:+.1f}% overhead (identical points: {identical})"
    )

    # Recovery: crash one task's worker mid-campaign; the supervised pool
    # must quarantine exactly that task and finish the rest.
    crash_index = len(tasks) // 2
    tmp = tempfile.mkdtemp(prefix="repro-bench-faults-")
    try:
        # times > 1: a genuine poison task crashes its worker every attempt
        # (a once-only crash would be acquitted by the solo re-run).
        plan = FaultPlan(tmp, {crash_index: FaultSpec("crash", times=100)})
        faulty = inject_faults(tasks, plan)
        with recorder.time("supervision_recovery", jobs=workers):
            recovered = run_tasks(
                faulty, jobs=workers, task_timeout_s=deadline_s,
                on_error="quarantine",
            )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    recovery_s = recorder.best_s("supervision_recovery")
    quarantined = [r for r in recovered if r.error is not None]
    poison_attributed = (
        len(quarantined) == 1
        and quarantined[0].key == tasks[crash_index].key
    )
    survivors_identical = _canonical(
        [r for r in recovered if r.error is None]
    ) == _canonical(
        [r for i, r in enumerate(serial_results) if i != crash_index]
    )
    say(
        f"supervision recovery: {recovery_s:.2f}s with 1 injected crash "
        f"(poison attributed: {poison_attributed}, survivors identical: "
        f"{survivors_identical})"
    )
    return {
        "grid_points": len(tasks),
        "jobs": workers,
        "plain_s": round(plain_s, 4),
        "armed_s": round(armed_s, 4),
        "overhead_pct": round(overhead_pct, 2),
        "identical_results": identical,
        "recovery": {
            "injected_crashes": 1,
            "recovery_s": round(recovery_s, 4),
            "quarantined": len(quarantined),
            "poison_attributed": poison_attributed,
            "attempts": quarantined[0].attempts if quarantined else 0,
            "survivors_identical": survivors_identical,
        },
    }


#: The campaign-service benchmark workload: three small real campaigns
#: (d26_media, tiny switch range) totalling 12 synthesis tasks — enough
#: work that the fixed costs of journal replay and store hits are a small
#: fraction, small enough for the quick CI gate.
_SERVICE_SPECS = (
    {
        "name": "svc-a", "kind": "sweep", "benchmark": "d26_media",
        "grid": {"frequencies_mhz": [400, 500, 600, 700]},
        "config": {"switch_count_range": [3, 4]},
    },
    {
        "name": "svc-b", "kind": "sweep", "benchmark": "d26_media",
        "grid": {"frequencies_mhz": [450, 550, 650, 750]},
        "config": {"switch_count_range": [3, 4]},
    },
    {
        "name": "svc-c", "kind": "sweep", "benchmark": "d26_media",
        "grid": {"frequencies_mhz": [420, 520, 620, 720]},
        "config": {"switch_count_range": [3, 4]},
    },
)


def _bench_service(
    recorder: ProfileRecorder, say: Callable[[str], None],
) -> Dict:
    """Campaign-service throughput and durability cost.

    Three legs over the same three campaigns:

    * **sequential** — each job drained before the next is submitted
      (batch = whole job): the no-scheduler baseline;
    * **concurrent** — all three queued at once, round-robin with
      ``batch_size=1``: the service's fairness mode. Gated on zero
      lost / duplicated jobs and result digests identical to the
      sequential leg — on one CPU concurrency buys fairness, not speed,
      so only *identity* is gated, and the relative wall time is
      recorded for the trajectory;
    * **interrupted** — the concurrent run stopped after half the task
      batches, then finished by a second, ``resume=True`` service. The
      extra cost over the uninterrupted concurrent leg — journal replay,
      spec recompilation, store hits for already-done tasks — is the
      **replay overhead**, gated at <= 5%.
    """
    import shutil
    import tempfile

    from repro.campaign import CampaignService
    from repro.campaign.journal import JobJournal
    from repro.campaign.spec import CampaignSpec

    specs = [CampaignSpec.from_dict(d) for d in _SERVICE_SPECS]
    total_tasks = sum(s.task_count for s in specs)
    whole_job = max(s.task_count for s in specs)

    def digests(root) -> Dict[str, str]:
        state = CampaignService.status(root)
        return {
            job.spec["name"]: job.digest for job in state.jobs.values()
        }

    def done_counts(root) -> Dict[str, int]:
        journal = JobJournal(Path(root) / "journal.jsonl", writer=False)
        counts: Dict[str, int] = {}
        for record in journal.iter_records():
            if record["event"] == "done":
                counts[record["job"]] = counts.get(record["job"], 0) + 1
        return counts

    root = Path(tempfile.mkdtemp(prefix="repro-bench-service-"))
    try:
        with recorder.time("service_sequential", jobs=1):
            with CampaignService(
                root / "sequential", batch_size=whole_job,
            ) as svc:
                for spec in specs:
                    svc.submit(spec)
                    svc.run_until_idle(poll_inbox=False)
        sequential_s = recorder.best_s("service_sequential")

        with recorder.time("service_concurrent", jobs=1):
            with CampaignService(root / "concurrent", batch_size=1) as svc:
                for spec in specs:
                    svc.submit(spec)
                svc.run_until_idle(poll_inbox=False)
        concurrent_s = recorder.best_s("service_concurrent")

        with recorder.time("service_interrupted", jobs=1):
            with CampaignService(
                root / "interrupted", batch_size=1,
            ) as svc:
                for spec in specs:
                    svc.submit(spec)
                for _ in range(total_tasks // 2):
                    svc.step()
            # A second service finishes what the first left: journal
            # replay, recompile, store hits for every completed batch.
            with CampaignService(
                root / "interrupted", batch_size=1, resume=True,
            ) as svc:
                svc.run_until_idle(poll_inbox=False)
        interrupted_s = recorder.best_s("service_interrupted")

        sequential_digests = digests(root / "sequential")
        concurrent_digests = digests(root / "concurrent")
        interrupted_digests = digests(root / "interrupted")
        counts = done_counts(root / "concurrent")
        lost = len(specs) - len(counts)
        duplicated = sum(1 for n in counts.values() if n > 1)
    finally:
        shutil.rmtree(root, ignore_errors=True)

    digests_identical = (
        sequential_digests == concurrent_digests == interrupted_digests
        and all(sequential_digests.values())
    )
    concurrent_vs_sequential_pct = (
        (concurrent_s - sequential_s) / sequential_s * 100.0
        if sequential_s > 0 else 0.0
    )
    replay_overhead_pct = (
        (interrupted_s - concurrent_s) / concurrent_s * 100.0
        if concurrent_s > 0 else 0.0
    )
    say(
        f"service: sequential {sequential_s:.2f}s, concurrent "
        f"{concurrent_s:.2f}s ({concurrent_vs_sequential_pct:+.1f}%), "
        f"interrupted+resumed {interrupted_s:.2f}s "
        f"(replay overhead {replay_overhead_pct:+.1f}%; lost {lost}, "
        f"duplicated {duplicated}, digests identical: {digests_identical})"
    )
    return {
        "jobs_submitted": len(specs),
        "tasks_total": total_tasks,
        "sequential_s": round(sequential_s, 4),
        "concurrent_s": round(concurrent_s, 4),
        "concurrent_vs_sequential_pct": round(
            concurrent_vs_sequential_pct, 2
        ),
        "interrupted_s": round(interrupted_s, 4),
        "replay_overhead_pct": round(replay_overhead_pct, 2),
        "lost_jobs": lost,
        "duplicated_jobs": duplicated,
        "digests_identical": digests_identical,
    }


#: Load points of the simulator benchmark: the gated validation load and a
#: recorded (ungated) saturation point.
_SIM_GATE_SCALE = 0.3
_SIM_SATURATION_SCALE = 1.0
_SIM_SEED = 5
#: The parallel traffic-campaign leg: seeds × injection scales.
_SIM_CAMPAIGN_SEEDS = (0, 1)
_SIM_CAMPAIGN_SCALES = (0.3, 0.8)
#: Replications in the vectorised batch leg (trimmed in full mode where
#: the 3x longer horizon already amortises the schedule build).
_SIM_BATCH_K_QUICK = 512
_SIM_BATCH_K_FULL = 256
#: Replications in the batch leg's trajectory-identity check (traces on).
_SIM_BATCH_IDENTITY_K = 4


def _bench_simulator(
    bench, recorder: ProfileRecorder, say: Callable[[str], None],
    workers: int, quick: bool,
) -> Dict:
    """Array-based engine vs naive wormhole simulator + campaign scaling.

    Both simulators run the same synthesized topology with identical seeds
    and scenarios; the stats must be bit-identical, so the speedup is pure
    simulation-machinery cost. The single-thread claim is gated at the
    validation load (``_SIM_GATE_SCALE``); a saturation point is recorded
    for the trajectory without being gated (under full load the event-driven
    advantage shrinks by design — the network is genuinely busy). The
    ``batch`` sub-report (:func:`_bench_sim_batch`) measures the vectorised
    K-replication engine against per-process solo runs, per core.
    """
    from repro.core.synthesis import synthesize
    from repro.engine.tasks import SimulationTask
    from repro.noc.reference import ReferenceWormholeSimulator
    from repro.noc.simulator import WormholeSimulator

    config = SynthesisConfig(max_ill=16, switch_count_range=(4, 6))
    point = synthesize(
        bench.core_spec_3d, bench.comm_spec, config=config
    ).best_power()
    topo = point.topology
    cycles = 4_000 if quick else 12_000
    warmup = cycles // 10

    def measure(scale: float, stage: str) -> Dict:
        # Warm both code paths (imports, schedule building) off the clock.
        WormholeSimulator(topo, seed=_SIM_SEED).run(
            cycles=200, warmup=0, injection_scale=scale
        )
        ReferenceWormholeSimulator(topo, seed=_SIM_SEED).run(
            cycles=200, warmup=0, injection_scale=scale
        )
        engine_stats = naive_stats = None
        for _ in range(3):
            with recorder.time(f"sim_engine_{stage}", cycles=cycles):
                engine_stats = WormholeSimulator(topo, seed=_SIM_SEED).run(
                    cycles=cycles, warmup=warmup, injection_scale=scale
                )
            with recorder.time(f"sim_naive_{stage}", cycles=cycles):
                naive_stats = ReferenceWormholeSimulator(
                    topo, seed=_SIM_SEED
                ).run(cycles=cycles, warmup=warmup, injection_scale=scale)
        engine_s = recorder.best_s(f"sim_engine_{stage}")
        naive_s = recorder.best_s(f"sim_naive_{stage}")
        total_cycles = cycles + engine_stats.drain_cycles
        speedup = naive_s / engine_s if engine_s > 0 else float("inf")
        identical = engine_stats == naive_stats
        say(
            f"simulator @ scale {scale}: naive "
            f"{total_cycles / naive_s:,.0f} cyc/s, engine "
            f"{total_cycles / engine_s:,.0f} cyc/s -> {speedup:.2f}x "
            f"(identical stats: {identical})"
        )
        return {
            "injection_scale": scale,
            "simulated_cycles": total_cycles,
            "naive_s": round(naive_s, 5),
            "engine_s": round(engine_s, 5),
            "naive_cycles_per_s": round(total_cycles / naive_s, 1),
            "engine_cycles_per_s": round(total_cycles / engine_s, 1),
            "speedup": round(speedup, 3),
            "identical_results": identical,
        }

    gate = measure(_SIM_GATE_SCALE, "gate")
    saturation = measure(_SIM_SATURATION_SCALE, "saturation")

    # Parallel traffic-campaign leg: (seed × scale) sweep, serial vs pool.
    tasks = [
        SimulationTask(
            key=(seed, scale), topology=topo, seed=seed,
            cycles=cycles, warmup=warmup, injection_scale=scale,
        )
        for seed in _SIM_CAMPAIGN_SEEDS
        for scale in _SIM_CAMPAIGN_SCALES
    ]
    run_tasks(tasks[:1], jobs=1)  # warm the serial path
    run_tasks(tasks, jobs=workers)  # warm the pool code path
    serial = parallel = None
    for _ in range(3):
        with recorder.time("sim_campaign_serial", tasks=len(tasks)):
            serial = run_tasks(tasks, jobs=1)
        with recorder.time("sim_campaign_parallel", jobs=workers):
            parallel = run_tasks(tasks, jobs=workers)
    serial_s = recorder.best_s("sim_campaign_serial")
    parallel_s = recorder.best_s("sim_campaign_parallel")
    campaign_identical = (
        [r.result for r in serial] == [r.result for r in parallel]
    )
    campaign_speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    say(
        f"simulator campaign: serial {serial_s:.2f}s, parallel({workers}) "
        f"{parallel_s:.2f}s -> {campaign_speedup:.2f}x "
        f"(identical merge: {campaign_identical})"
    )

    batch_report = _bench_sim_batch(topo, recorder, say, cycles, warmup,
                                    quick)

    report = dict(gate)
    report.update({
        "design_links": len(topo.links),
        "design_flows": len(topo.routes),
        "saturation": saturation,
        "campaign": {
            "tasks": len(tasks),
            "jobs": workers,
            "serial_s": round(serial_s, 4),
            "parallel_s": round(parallel_s, 4),
            "speedup": round(campaign_speedup, 3),
            "identical_results": campaign_identical,
        },
        "batch": batch_report,
    })
    return report


def _bench_sim_batch(
    topo, recorder: ProfileRecorder, say: Callable[[str], None],
    cycles: int, warmup: int, quick: bool,
) -> Dict:
    """The vectorised K-replication batch engine: campaign reps/sec per core.

    The gated claim is the ROADMAP's cumulative campaign-throughput target:
    K lockstep replications on one core deliver >= 10x the replications/sec
    of the pre-vectorisation per-process campaign loop — solo runs of the
    frozen :mod:`repro.noc.reference` simulator, one replication at a time
    (the same baseline the single-thread ``speedup`` gate measures, so the
    two floors compose: the array engine bought ~4x per run, batching takes
    the same comparison past 10x). The further ratio over the solo *array
    engine* is recorded ungated. Everything here is single-process on one
    core, so the numbers are CPU-count independent by construction.

    Before anything is timed, a small batch (traces on) is checked
    bit-identical to solo :mod:`~repro.noc.simengine` runs *and* the frozen
    reference, replication by replication.
    """
    from repro.noc.reference import ReferenceWormholeSimulator
    from repro.noc.simulator import WormholeSimulator

    scale = _SIM_GATE_SCALE
    sim = WormholeSimulator(topo, seed=_SIM_SEED)

    # Trajectory identity, off the clock: batch vs solo vs frozen reference.
    id_cycles = min(cycles, 1_500)
    id_warmup = id_cycles // 10
    id_seeds = list(range(_SIM_BATCH_IDENTITY_K))
    batch_traces: list = [[] for _ in id_seeds]
    batch_stats = sim.run_batch(
        id_seeds, cycles=id_cycles, warmup=id_warmup,
        injection_scale=scale, traces=batch_traces,
    )
    identical = True
    for i, seed in enumerate(id_seeds):
        solo_trace: list = []
        solo_stats = WormholeSimulator(topo, seed=seed).run(
            cycles=id_cycles, warmup=id_warmup, injection_scale=scale,
            trace=solo_trace,
        )
        ref_trace: list = []
        ref_stats = ReferenceWormholeSimulator(topo, seed=seed).run(
            cycles=id_cycles, warmup=id_warmup, injection_scale=scale,
            trace=ref_trace,
        )
        identical = identical and (
            batch_stats[i] == solo_stats == ref_stats
            and batch_traces[i] == solo_trace == ref_trace
        )
    say(
        f"simulator batch: {len(id_seeds)}-replication trajectory identity "
        f"(batch vs solo vs reference, traces on): {identical}"
    )

    # Batch throughput: K replications in lockstep on one core.
    k = _SIM_BATCH_K_QUICK if quick else _SIM_BATCH_K_FULL
    batch_seeds = list(range(k))
    sim.run_batch(batch_seeds[:8], cycles=200, warmup=0,
                  injection_scale=scale)  # warm the vectorised path
    for _ in range(3):
        with recorder.time("sim_batch_engine", replications=k):
            sim.run_batch(batch_seeds, cycles=cycles, warmup=warmup,
                          injection_scale=scale)
    batch_s = recorder.best_s("sim_batch_engine")
    batch_rate = k / batch_s

    # Per-process solo baselines, one replication at a time on the same
    # core. ``measure(_SIM_GATE_SCALE, "gate")`` already timed both solo
    # loops (best of 3) at identical cycles/scale/seed — reuse them.
    solo_engine_s = recorder.best_s("sim_engine_gate")
    reference_s = recorder.best_s("sim_naive_gate")
    solo_engine_rate = 1.0 / solo_engine_s if solo_engine_s > 0 else 0.0
    reference_rate = 1.0 / reference_s if reference_s > 0 else 0.0
    vs_reference = (
        batch_rate / reference_rate if reference_rate > 0 else float("inf")
    )
    vs_solo_engine = (
        batch_rate / solo_engine_rate if solo_engine_rate > 0
        else float("inf")
    )
    say(
        f"simulator batch: K={k} lockstep {batch_rate:,.1f} reps/s on one "
        f"core vs {reference_rate:,.1f} reps/s per-process reference "
        f"({vs_reference:.2f}x, gated) and {solo_engine_rate:,.1f} reps/s "
        f"solo engine ({vs_solo_engine:.2f}x, recorded)"
    )
    return {
        "replications": k,
        "injection_scale": scale,
        "batch_s": round(batch_s, 4),
        "batch_reps_per_s": round(batch_rate, 2),
        "reference_reps_per_s": round(reference_rate, 2),
        "solo_engine_reps_per_s": round(solo_engine_rate, 2),
        "speedup_vs_reference": round(vs_reference, 3),
        "speedup_vs_solo_engine": round(vs_solo_engine, 3),
        "identity_replications": len(id_seeds),
        "identical_trajectories": identical,
    }
