"""Deterministic fault injection for the engine: the chaos harness.

The supervision layer (:mod:`repro.engine.supervise`) claims to survive
transient failures, worker crashes and hangs. Claims about recovery paths
rot unless they are *executed*, so this module makes faults a first-class,
reproducible input: a :class:`FaultPlan` decides — deterministically, from
a seed or an explicit index map — which tasks misbehave and how, and
:func:`inject_faults` wraps those tasks so the fault fires inside the
worker exactly where a real failure would.

Three fault kinds cover the recovery matrix:

* ``"transient"`` — raise :class:`TransientFaultError` on the first
  ``times`` activations, then succeed: exercises :class:`RetryPolicy`.
* ``"crash"`` — hard-exit the worker process (``os._exit``): exercises
  pool-break attribution and poison-task quarantine. In the main process
  (serial path) it raises :class:`WorkerCrashError` instead — a fault
  harness must never kill the test runner.
* ``"delay"`` — sleep ``delay_s`` before running: exercises per-task
  deadlines and the pool watchdog.

Fault state (how many times each fault has fired) lives in small counter
files under ``state_dir``, because activations happen in *worker
processes*: memory is forked away, but the filesystem is shared, so
"fail twice then succeed" works across retries, pool restarts and even a
killed-and-resumed campaign.

Store integration: :class:`FaultyTask` declares
``__fingerprint_delegate__ = "inner"``, so a fault-wrapped task has the
*same* content address as the clean task. A campaign that survived
injected faults therefore shares its checkpoints with — and must merge
bit-identically to — a fault-free run.

**Service-level fault sites.** Task wrapping covers worker-side failures;
the campaign service (PR 8) also has *orchestrator*-side failure points:
the journal write, store eviction, the gap between jobs. Those are chaos-
tested through named **fault sites**: code at a failure point calls
:func:`maybe_fire` with its site name — a no-op unless the
``$REPRO_FAULT_SITES`` environment variable points at a directory armed by
:func:`arm_sites`. Arming is explicit and per-process-tree (tests pass the
env to the subprocess they intend to kill), activation counts live in the
same O_APPEND counter files, so "crash once, then pass" survives the very
process death it causes — which is exactly what a ``serve --resume`` chaos
test needs. Site kinds reuse :class:`FaultSpec`; ``"crash"`` at a site
hard-exits the *current* process even from ``MainProcess`` (the armed
process is the designated victim — never arm sites in a process you cannot
afford to lose).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import ClassVar, Hashable, List, Optional, Sequence, Tuple

from repro.errors import EngineError
from repro.rng import make_rng

_VALID_KINDS = ("transient", "crash", "delay", "noop")


class TransientFaultError(EngineError):
    """An injected recoverable failure (a retry should absorb it)."""


class WorkerCrashError(EngineError):
    """An injected worker crash running where a hard exit is not allowed
    (the main process — i.e. the serial path)."""


@dataclass(frozen=True)
class FaultSpec:
    """How one fault misbehaves.

    Attributes:
        kind: ``"transient"`` / ``"crash"`` / ``"delay"``; ``"noop"``
            counts activations without misbehaving (used by tests to
            assert no-task-runs-twice).
        times: Fire on the first N activations only (``-1`` = every time).
            A ``times=2`` transient fault fails twice, then succeeds.
        delay_s: Sleep length for ``"delay"`` faults.
        exit_code: Worker exit status for ``"crash"`` faults.
        skip: Let the first ``skip`` activations pass before the fault
            window opens — ``skip=3, times=1`` fires on activation 4 only.
            This is what lets chaos tests kill a service at an *arbitrary*
            point: the k-th journal write, the k-th batch.
    """

    kind: str
    times: int = 1
    delay_s: float = 0.0
    exit_code: int = 32
    skip: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise EngineError(
                f"fault kind must be one of {_VALID_KINDS}, got {self.kind!r}"
            )
        if self.times < -1:
            raise EngineError(f"times must be >= -1, got {self.times}")
        if self.delay_s < 0:
            raise EngineError(f"delay_s must be >= 0, got {self.delay_s}")
        if self.skip < 0:
            raise EngineError(f"skip must be >= 0, got {self.skip}")


@dataclass(frozen=True)
class FaultyTask:
    """An engine task wrapped with an injected fault.

    The engine runs the fault first (:meth:`activate_fault`, duck-typed by
    ``repro.engine.tasks``), then the wrapped ``inner`` task. ``key``
    mirrors ``inner.key`` so merged results are indistinguishable from an
    unwrapped run.
    """

    key: Hashable
    inner: object
    spec: FaultSpec
    state_dir: str
    fault_id: str

    #: Store fingerprinting resolves the wrapper to the wrapped task: a
    #: fault-injected campaign shares content addresses with a clean one.
    __fingerprint_delegate__: ClassVar[str] = "inner"

    def activations(self) -> int:
        """How many times this fault has fired so far."""
        return _count(self._counter_path())

    def activate_fault(self) -> None:
        """Fire the fault (worker side). Raises/sleeps/exits per the spec."""
        count = _bump(self._counter_path())
        spec = self.spec
        if spec.kind == "noop":
            return
        if count <= spec.skip:
            return  # fault window not open yet
        if spec.times >= 0 and count - spec.skip > spec.times:
            return
        if spec.kind == "delay":
            time.sleep(spec.delay_s)
            return
        if spec.kind == "transient":
            raise TransientFaultError(
                f"injected transient fault on task {self.key!r} "
                f"(activation {count})"
            )
        # kind == "crash": hard-exit the worker so the pool breaks exactly
        # like a real OOM kill / segfault. Never exit the main process.
        import multiprocessing

        if multiprocessing.current_process().name == "MainProcess":
            raise WorkerCrashError(
                f"injected crash on task {self.key!r} (activation {count}; "
                "raised, not exited: running in the main process)"
            )
        os._exit(spec.exit_code)

    def _counter_path(self) -> Path:
        return Path(self.state_dir) / f"{self.fault_id}.count"


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic assignment of faults to task indices.

    Build one explicitly (``FaultPlan(state_dir, faults={2: spec})``) or
    from a seed (:meth:`seeded`), then :meth:`wrap` a task list. The plan
    owns the counter directory, so :meth:`activations` /:meth:`reset` can
    inspect and rearm fault state between runs.
    """

    state_dir: str
    faults: Tuple[Tuple[int, FaultSpec], ...] = ()
    #: Wrap *every* task (unfaulted ones with a ``"noop"`` counter) so
    #: tests can assert exact per-task execution counts.
    count_all: bool = False

    def __init__(
        self,
        state_dir,
        faults=(),
        count_all: bool = False,
    ) -> None:
        if isinstance(faults, dict):
            items = tuple(sorted(faults.items()))
        else:
            items = tuple(faults)
        for index, spec in items:
            if index < 0:
                raise EngineError(f"fault index must be >= 0, got {index}")
            if not isinstance(spec, FaultSpec):
                raise EngineError(
                    f"fault for index {index} must be a FaultSpec, "
                    f"got {type(spec).__name__}"
                )
        object.__setattr__(self, "state_dir", str(state_dir))
        object.__setattr__(self, "faults", items)
        object.__setattr__(self, "count_all", bool(count_all))
        Path(self.state_dir).mkdir(parents=True, exist_ok=True)

    @classmethod
    def seeded(
        cls,
        state_dir,
        n_tasks: int,
        seed: int,
        *,
        rate: float = 0.25,
        kinds: Sequence[str] = ("transient", "crash", "delay"),
        times: int = 1,
        delay_s: float = 0.05,
        count_all: bool = False,
    ) -> "FaultPlan":
        """A reproducible random plan: each task index draws a fault with
        probability ``rate``; kind is drawn uniformly from ``kinds``."""
        if not 0 <= rate <= 1:
            raise EngineError(f"rate must be in [0, 1], got {rate}")
        rng = make_rng(seed, "fault-plan", n_tasks, rate, tuple(kinds))
        faults = {}
        for index in range(n_tasks):
            if rng.random() < rate:
                kind = kinds[rng.randrange(len(kinds))]
                faults[index] = FaultSpec(
                    kind=kind, times=times, delay_s=delay_s
                )
        return cls(state_dir, faults, count_all=count_all)

    def spec_for(self, index: int) -> Optional[FaultSpec]:
        for fault_index, spec in self.faults:
            if fault_index == index:
                return spec
        return None

    def wrap(self, tasks: Sequence) -> List:
        """Return ``tasks`` with the planned faults attached."""
        wrapped: List = []
        for index, task in enumerate(tasks):
            spec = self.spec_for(index)
            if spec is None and self.count_all:
                spec = FaultSpec(kind="noop", times=-1)
            if spec is None:
                wrapped.append(task)
            else:
                wrapped.append(FaultyTask(
                    key=task.key, inner=task, spec=spec,
                    state_dir=self.state_dir, fault_id=f"fault-{index}",
                ))
        return wrapped

    def activations(self, index: int) -> int:
        """Execution count of task ``index`` (0 if never activated)."""
        return _count(Path(self.state_dir) / f"fault-{index}.count")

    def reset(self) -> None:
        """Forget all activation counts (rearm every fault)."""
        for path in Path(self.state_dir).glob("fault-*.count"):
            try:
                path.unlink()
            except OSError:
                pass


def inject_faults(tasks: Sequence, plan: FaultPlan) -> List:
    """Convenience alias for ``plan.wrap(tasks)``."""
    return plan.wrap(tasks)


def unwrap_task(task):
    """The task behind a possible fault wrapper (identity otherwise)."""
    return getattr(task, "inner", task)


# --------------------------------------------------------------------------
# named fault sites (service-level chaos)
# --------------------------------------------------------------------------

#: Environment variable naming the armed fault-site directory. Unset (the
#: overwhelmingly common case) makes every :func:`maybe_fire` a single
#: dict lookup + env read — cheap enough for hot paths like journal writes.
SITES_ENV = "REPRO_FAULT_SITES"

#: Site names wired into the production code paths (for discoverability;
#: :func:`maybe_fire` accepts any name).
KNOWN_SITES = (
    "journal-write",      # JobJournal.append, before the record is written
    "store-evict",        # ResultStore.evict, between candidate unlinks
    "service-batch",      # CampaignService, before each task batch
    "service-between-jobs",  # CampaignService, after a job completes
)


def arm_sites(state_dir, sites) -> dict:
    """Write arming files for ``sites`` (name -> :class:`FaultSpec`) under
    ``state_dir`` and return the environment mapping that activates them.

    Pass the returned dict into the *victim* process's environment
    (``subprocess.Popen(env={**os.environ, **arm_sites(...)})``). Arming
    the current process (``os.environ.update``) is possible but means a
    ``"crash"`` site will genuinely ``os._exit`` it.
    """
    root = Path(state_dir)
    root.mkdir(parents=True, exist_ok=True)
    for name, spec in dict(sites).items():
        if not isinstance(spec, FaultSpec):
            raise EngineError(
                f"site {name!r} must map to a FaultSpec, "
                f"got {type(spec).__name__}"
            )
        payload = (
            f"{spec.kind}\n{spec.times}\n{spec.delay_s}\n{spec.exit_code}\n"
            f"{spec.skip}\n"
        )
        tmp = root / f".{name}.site.tmp"
        tmp.write_text(payload)
        os.replace(tmp, root / f"{name}.site")
    return {SITES_ENV: str(root)}


def site_activations(state_dir, site: str) -> int:
    """How many times ``site`` has fired (across every armed process)."""
    return _count(Path(state_dir) / f"site-{site}.count")


def reset_sites(state_dir) -> None:
    """Disarm every site and forget its activation counts."""
    root = Path(state_dir)
    for pattern in ("*.site", "site-*.count"):
        for path in root.glob(pattern):
            try:
                path.unlink()
            except OSError:
                pass


def maybe_fire(site: str) -> None:
    """Fire the named fault site if one is armed for this process tree.

    No-op unless ``$REPRO_FAULT_SITES`` names a directory containing
    ``<site>.site``. Counters persist on disk, so ``times=N`` means the
    site misbehaves on its first N activations *ever* — surviving the
    process kill it causes, which is what lets a restarted service run
    straight through the same code path.
    """
    root = os.environ.get(SITES_ENV)
    if not root:
        return
    try:
        lines = (Path(root) / f"{site}.site").read_text().splitlines()
        kind, times_s, delay_s, exit_code_s, skip_s = lines[:5]
        spec = FaultSpec(
            kind=kind, times=int(times_s), delay_s=float(delay_s),
            exit_code=int(exit_code_s), skip=int(skip_s),
        )
    except (OSError, ValueError, IndexError):
        return  # not armed (or torn arming file): never fault by accident
    count = _bump(Path(root) / f"site-{site}.count")
    if spec.kind == "noop":
        return
    if count <= spec.skip:
        return  # fault window not open yet
    if spec.times >= 0 and count - spec.skip > spec.times:
        return
    if spec.kind == "delay":
        time.sleep(spec.delay_s)
        return
    if spec.kind == "transient":
        raise TransientFaultError(
            f"injected transient fault at site {site!r} (activation {count})"
        )
    # kind == "crash": the armed process is the designated victim — exit
    # hard, exactly like a SIGKILL at this instruction.
    os._exit(spec.exit_code)


def _bump(path: Path) -> int:
    """Append one byte to a counter file; return the new count.

    ``O_APPEND`` single-byte writes are atomic, so concurrent workers each
    observe a distinct count.
    """
    with open(path, "ab") as fh:
        fh.write(b"x")
        fh.flush()
        return fh.tell()


def _count(path: Path) -> int:
    try:
        return path.stat().st_size
    except OSError:
        return 0
