"""Supervised pool execution: retries, deadlines and poison-task quarantine.

The executor's historical recovery story — on ``BrokenProcessPool`` re-run
every missing chunk in the *main* process — is exactly wrong for the
campaign service the roadmap is heading towards: a task that OOM-kills or
segfaults a worker would be re-executed where it can kill the whole
campaign, and a hung worker would be waited on forever. This module
replaces it with a supervision layer:

* :class:`RetryPolicy` — bounded per-task retries with deterministic
  backoff and an injectable ``sleep`` (tests pass a recorder; campaigns
  get real waits). Applied *inside* the worker, so a transient failure
  never pays a pool round-trip.
* **per-task deadlines** — ``run_tasks(..., task_timeout_s=...)`` arms a
  watchdog: in-flight chunks carry a deadline of ``task_timeout_s ×
  len(chunk)`` from submission; when it expires the pool is killed (a
  ``ProcessPoolExecutor`` cannot cancel running work), the expired tasks
  are filed as :class:`~repro.errors.TaskTimeoutError` results, innocent
  in-flight chunks are requeued, and a fresh pool continues the campaign.
  Deadlines need a pool — the serial path (``jobs=1``) runs tasks in the
  caller's process and cannot preempt them. Timed-out tasks are *not*
  retried: a deadline expiry is a budget decision, not a transient fault.
* **poison-task quarantine** — when the pool breaks, each unfinished
  in-flight task is re-run alone in a fresh single-worker pool to
  *attribute* the crasher. A task that kills its private pool too is
  quarantined as a structured :class:`~repro.errors.TaskQuarantinedError`
  result; innocent bystanders keep their solo result. The main pool is
  then regenerated — at most ``max_pool_restarts`` times per campaign —
  and the rest of the campaign completes.

Nothing here raises supervision errors directly: they are *returned* as
``TaskResult.error`` and the executor's ``on_error`` knob decides whether
they surface as exceptions (``"raise"``, the default) or as inspectable
quarantined rows (``"quarantine"``).
"""

from __future__ import annotations

import time as _time
from collections import deque
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Type

from repro.engine.tasks import TaskResult, run_chunk
from repro.errors import (
    EngineError,
    SupervisionError,
    TaskQuarantinedError,
    TaskTimeoutError,
)

#: Completion hook: the executor's merge/progress/checkpoint callback,
#: fired in the parent once per finished chunk (in completion order).
NoteFn = Callable[[List[TaskResult]], None]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded per-task retries with deterministic exponential backoff.

    Attributes:
        max_retries: Extra attempts after the first (0 disables retrying).
        backoff_s: Delay before the first retry; 0 retries immediately.
        backoff_factor: Multiplier applied per further retry.
        max_backoff_s: Ceiling on any single delay.
        retry_on: Exception classes worth retrying. Defaults to every
            ``Exception``; narrow it to e.g. transient I/O classes when
            task errors are usually deterministic.
        sleep: Injectable wait function (must be picklable — a module-level
            function — to cross the worker boundary). ``None`` uses
            ``time.sleep``.

    The schedule is a pure function of the attempt number — no jitter —
    so a retried campaign is exactly reproducible.
    """

    max_retries: int = 2
    backoff_s: float = 0.0
    backoff_factor: float = 2.0
    max_backoff_s: float = 30.0
    retry_on: Tuple[Type[BaseException], ...] = (Exception,)
    sleep: Optional[Callable[[float], None]] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise EngineError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_s < 0:
            raise EngineError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.backoff_factor < 1.0:
            raise EngineError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_backoff_s < 0:
            raise EngineError(
                f"max_backoff_s must be >= 0, got {self.max_backoff_s}"
            )

    def delay_s(self, retry_number: int) -> float:
        """Deterministic delay before retry ``retry_number`` (1-based)."""
        if self.backoff_s <= 0:
            return 0.0
        delay = self.backoff_s * self.backoff_factor ** (retry_number - 1)
        return min(delay, self.max_backoff_s)

    def should_retry(self, error: BaseException) -> bool:
        """Whether ``error`` is worth another attempt (class check only;
        the attempt budget is the caller's loop)."""
        if isinstance(error, SupervisionError):
            return False
        return isinstance(error, self.retry_on)

    def wait(self, retry_number: int) -> None:
        """Sleep out the backoff before retry ``retry_number``."""
        delay = self.delay_s(retry_number)
        if delay > 0:
            (self.sleep or _time.sleep)(delay)


@dataclass(frozen=True)
class Supervision:
    """The resolved supervision configuration of one ``run_tasks`` call."""

    retry: Optional[RetryPolicy] = None
    task_timeout_s: Optional[float] = None
    on_error: str = "raise"
    max_pool_restarts: int = 3

    def should_raise(self, error: BaseException) -> bool:
        """Whether the ``raise_errors`` gate applies to ``error``: under
        ``on_error="quarantine"`` supervision errors stay in the results."""
        if self.on_error == "quarantine" and isinstance(
            error, SupervisionError
        ):
            return False
        return True


class _RemoteTraceback(Exception):
    """Carrier for a worker-side formatted traceback, chained as the
    ``__cause__`` of a re-raised remote error so the original raise site
    shows up in the parent's traceback."""

    def __init__(self, text: str) -> None:
        super().__init__(text)
        self.text = text

    def __str__(self) -> str:
        return self.text


def attach_remote_traceback(error: BaseException, text: Optional[str]):
    """Chain the worker-side traceback onto an unpickled error, once.

    Only errors that actually crossed the pickle boundary (their
    ``__traceback__`` was stripped) are annotated; locally raised errors
    keep their live traceback untouched.
    """
    if text and error.__traceback__ is None and error.__cause__ is None:
        error.__cause__ = _RemoteTraceback(f"\n{text}")
    return error


def pool_context():
    """A fork multiprocessing context when available (cheap workers), else
    the platform default."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


def _hard_stop(pool) -> None:
    """Terminate a pool without waiting on possibly-hung workers."""
    procs = list((getattr(pool, "_processes", None) or {}).values())
    for proc in procs:
        try:
            proc.kill()
        except Exception:
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    for proc in procs:
        try:
            proc.join(timeout=1.0)
        except Exception:
            pass


def _timeout_result(task, timeout_s: float) -> TaskResult:
    error = TaskTimeoutError(
        f"task {task.key!r} exceeded its {timeout_s:g}s deadline; "
        "the worker pool was regenerated",
        key=task.key, timeout_s=timeout_s,
    )
    return TaskResult(key=task.key, error=error, elapsed_s=timeout_s)


def _quarantined_result(task, *, attempts: int, reason: str) -> TaskResult:
    error = TaskQuarantinedError(
        f"task {task.key!r} quarantined ({reason}) after "
        f"{attempts} attempt{'s' if attempts != 1 else ''}",
        key=task.key, attempts=attempts, reason=reason,
    )
    return TaskResult(key=task.key, error=error, attempts=attempts)


def _solo_run(task, retry, timeout_s, pool_cls) -> TaskResult:
    """Attribution run: execute one crash suspect in its own single-worker
    pool. A crash there convicts the task (quarantine); a normal result or
    captured error acquits it and *is* its final result — the task is not
    run a third time."""
    from concurrent.futures.process import BrokenProcessPool

    try:
        pool = pool_cls(max_workers=1, mp_context=pool_context())
    except (OSError, PermissionError):
        # No isolation available: never re-run a crash suspect in the
        # parent process — quarantine it outright.
        return _quarantined_result(
            task, attempts=1, reason="crash (no isolation available)"
        )
    try:
        future = pool.submit(run_chunk, [task], retry)
        try:
            results = future.result(timeout=timeout_s)
        except BrokenProcessPool:
            return _quarantined_result(task, attempts=2, reason="crash")
        except TimeoutError:
            return _timeout_result(task, timeout_s)
        result = results[0]
        result.attempts += 1  # count the crashed pool attempt
        return result
    finally:
        _hard_stop(pool)


def run_supervised_pool(
    tasks: Sequence,
    workers: int,
    chunk_size: int,
    sup: Supervision,
    note: NoteFn,
) -> Optional[List[TaskResult]]:
    """Fan tasks over a supervised process pool; ``None`` = fall back serial.

    Results come back in submission order. ``note`` fires in the parent per
    finished chunk in *completion* order (checkpointing + progress); it may
    raise to abort the campaign, and any ``BaseException`` — including a
    ``KeyboardInterrupt`` — hard-stops the pool before propagating, so an
    interrupt never leaves a hung pool or a half-written checkpoint behind.

    ``None`` is returned only when no pool could be created at all (nothing
    has run); mid-campaign failures never fall back to the serial path,
    which would re-run already-completed tasks.
    """
    try:
        from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
        from concurrent.futures import wait as futures_wait
        from concurrent.futures.process import BrokenProcessPool
    except ImportError:
        return None

    chunks = [
        list(tasks[i:i + chunk_size])
        for i in range(0, len(tasks), chunk_size)
    ]
    slots: List[Optional[List[TaskResult]]] = [None] * len(chunks)
    pending = deque(range(len(chunks)))
    inflight: dict = {}  # future -> (chunk_idx, deadline | None)
    restarts_left = sup.max_pool_restarts
    max_workers = min(workers, len(chunks))

    def make_pool():
        return ProcessPoolExecutor(
            max_workers=max_workers, mp_context=pool_context()
        )

    def chunk_deadline(idx: int) -> Optional[float]:
        if sup.task_timeout_s is None:
            return None
        return _time.monotonic() + sup.task_timeout_s * len(chunks[idx])

    def fill(pool) -> None:
        # Cap in-flight submissions at the worker count so a submitted
        # chunk starts (almost) immediately — its submission-time deadline
        # then approximates a start-time deadline.
        while pending and len(inflight) < max_workers:
            idx = pending.popleft()
            future = pool.submit(run_chunk, chunks[idx], sup.retry)
            inflight[future] = (idx, chunk_deadline(idx))

    def drain_broken() -> List[int]:
        """Harvest completed in-flight futures of a broken pool; return the
        unfinished chunk indices (the crash suspects) in submission order."""
        suspects: List[int] = []
        for future, (idx, _deadline) in sorted(
            inflight.items(), key=lambda item: item[1][0]
        ):
            try:
                chunk_results = future.result(timeout=0)
            except BaseException:
                suspects.append(idx)
            else:
                slots[idx] = chunk_results
                note(chunk_results)
        inflight.clear()
        return suspects

    def exhaust_budget(reason: str) -> None:
        """No pool left: quarantine everything still pending."""
        while pending:
            idx = pending.popleft()
            results = [
                _quarantined_result(task, attempts=0, reason=reason)
                for task in chunks[idx]
            ]
            slots[idx] = results
            note(results)

    try:
        pool = make_pool()
    except (OSError, PermissionError):
        return None

    try:
        while pending or inflight:
            try:
                fill(pool)
                timeout = None
                if sup.task_timeout_s is not None:
                    earliest = min(
                        deadline for _i, deadline in inflight.values()
                    )
                    timeout = max(0.0, earliest - _time.monotonic())
                done, _not_done = futures_wait(
                    set(inflight), timeout=timeout,
                    return_when=FIRST_COMPLETED,
                )
                if done:
                    for future in done:
                        idx, _deadline = inflight[future]
                        chunk_results = future.result()  # may raise Broken
                        del inflight[future]
                        slots[idx] = chunk_results
                        note(chunk_results)
                    continue
                # --- deadline expiry ------------------------------------
                now = _time.monotonic()
                expired = sorted(
                    idx for _f, (idx, deadline) in inflight.items()
                    if deadline <= now
                )
                if not expired:
                    continue  # spurious wakeup; recompute the timeout
                # Running work cannot be cancelled: kill the pool, file the
                # expired chunks as timeouts, requeue the innocents.
                innocents = sorted(
                    idx for _f, (idx, deadline) in inflight.items()
                    if deadline > now
                )
                inflight.clear()
                _hard_stop(pool)
                for idx in expired:
                    results = [
                        _timeout_result(task, sup.task_timeout_s)
                        for task in chunks[idx]
                    ]
                    slots[idx] = results
                    note(results)
                for idx in reversed(innocents):
                    pending.appendleft(idx)
                if not pending:
                    break
                if restarts_left <= 0:
                    exhaust_budget("pool restart budget exhausted")
                    break
                restarts_left -= 1
                try:
                    pool = make_pool()
                except (OSError, PermissionError):
                    exhaust_budget("pool regeneration failed")
                    break
            except BrokenProcessPool:
                # A worker died (OOM kill, segfault, hard exit). Attribute
                # the crasher: every unfinished in-flight task re-runs
                # alone in a fresh single-worker pool.
                suspects = drain_broken()
                _hard_stop(pool)
                for idx in suspects:
                    results = [
                        _solo_run(
                            task, sup.retry, sup.task_timeout_s,
                            ProcessPoolExecutor,
                        )
                        for task in chunks[idx]
                    ]
                    slots[idx] = results
                    note(results)
                if not pending:
                    break
                if restarts_left <= 0:
                    exhaust_budget("pool restart budget exhausted")
                    break
                restarts_left -= 1
                try:
                    pool = make_pool()
                except (OSError, PermissionError):
                    exhaust_budget("pool regeneration failed")
                    break
    except BaseException:
        # Includes KeyboardInterrupt and deliberate aborts raised by the
        # note() callback: kill the pool *now* so the process can exit
        # promptly — completed checkpoints are already on disk.
        _hard_stop(pool)
        raise
    else:
        pool.shutdown(wait=True)

    merged: List[TaskResult] = []
    for chunk_results in slots:
        assert chunk_results is not None
        merged.extend(chunk_results)
    return merged
