"""``repro.engine`` — the parallel design-space exploration engine.

The outer loop of Fig. 3 sweeps architectural parameters (frequency, the
PG weight α, link width, switch-count range) and re-runs the full
synthesis flow at every point. Those points are independent, so this
package fans them across a process pool:

* :mod:`repro.engine.tasks` — pickling-safe task descriptors and the
  worker entry point;
* :mod:`repro.engine.executor` — the pool executor: fork-aware, with
  deterministic result merging, progress callbacks and a graceful serial
  fallback;
* :mod:`repro.engine.grid` — :class:`ParameterGrid` /
  :class:`GridPoint`, the design-space cross product with up-front
  validation;
* :mod:`repro.engine.store` — the content-addressed on-disk result store:
  ``run_tasks(..., store=ResultStore(dir))`` serves already-computed points
  from disk and checkpoints new ones incrementally, making campaigns
  resumable;
* :mod:`repro.engine.stagecache` — per-stage memoization over the store:
  each pipeline stage declares its input signature, so a sweep re-runs
  only the stages a parameter change actually invalidates
  (``build_tasks(..., stage_cache_dir=...)`` /
  ``synthesize(stage_cache=...)``);
* :mod:`repro.engine.supervise` — fault tolerance: per-task
  :class:`RetryPolicy` retries, deadline watchdog, poison-task quarantine
  with bounded pool restarts (``run_tasks(..., retry=, task_timeout_s=,
  on_error=)``);
* :mod:`repro.engine.faults` — the deterministic fault-injection harness
  (seeded :class:`FaultPlan`; transient/crash/delay faults) that proves
  the recovery paths in the tier-1 suite, plus named fault *sites*
  (:func:`arm_sites` / :func:`maybe_fire`) for orchestrator-side chaos:
  crash a designated process at an exact journal write, store eviction
  or scheduling turn;
* :mod:`repro.engine.locks` — :class:`FileLock`, the advisory
  inter-process lock (kernel-released on process death) guarding the
  store's mutations and the campaign journal's single-writer rule;
* :mod:`repro.engine.profile` — wall-clock timers backing
  ``BENCH_engine.json``;
* :mod:`repro.engine.reference` — the frozen pre-optimisation routing
  baseline (regression + benchmarks);
* :mod:`repro.engine.benchmark` — the scaling benchmark shared by the CLI
  and the ``benchmarks/`` harness (imported lazily; not re-exported here).

Quickstart::

    from repro.engine import ParameterGrid, build_tasks, run_tasks

    grid = ParameterGrid(frequencies_mhz=(300, 400, 500), alphas=(0.4, 0.7))
    tasks = build_tasks(core_spec, comm_spec, grid, SynthesisConfig())
    results = run_tasks(tasks, jobs=0)   # 0/None = one worker per CPU
    best = min(
        (p for r in results for p in r.result.points),
        key=lambda p: p.total_power_mw,
    )

The higher-level sweeps (:func:`repro.core.frequency_sweep.sweep_frequencies`
and friends) run on this engine and expose the same ``jobs`` / ``progress``
knobs.
"""

from repro.engine.executor import ProgressFn, resolve_jobs, run_tasks
from repro.engine.faults import (
    FaultPlan,
    FaultSpec,
    FaultyTask,
    arm_sites,
    inject_faults,
    maybe_fire,
    reset_sites,
    site_activations,
)
from repro.engine.grid import GridPoint, ParameterGrid, build_tasks
from repro.engine.locks import FileLock, LockTimeoutError
from repro.engine.profile import ProfileRecorder, Timer
from repro.engine.stagecache import (
    StageCache,
    StageRecord,
    merge_stage_stats,
    open_stage_cache,
)
from repro.engine.store import ResultStore, fingerprint_task, open_store
from repro.engine.supervise import RetryPolicy
from repro.engine.tasks import (
    BatchSimulationTask,
    CandidateTask,
    SimulationTask,
    SynthesisTask,
    TaskResult,
    run_task,
)
from repro.errors import (
    SupervisionError,
    TaskQuarantinedError,
    TaskTimeoutError,
)

__all__ = [
    "BatchSimulationTask",
    "CandidateTask",
    "FaultPlan",
    "FaultSpec",
    "FaultyTask",
    "FileLock",
    "GridPoint",
    "LockTimeoutError",
    "ParameterGrid",
    "ProfileRecorder",
    "ProgressFn",
    "ResultStore",
    "RetryPolicy",
    "SimulationTask",
    "StageCache",
    "StageRecord",
    "SupervisionError",
    "SynthesisTask",
    "TaskQuarantinedError",
    "TaskResult",
    "TaskTimeoutError",
    "Timer",
    "arm_sites",
    "build_tasks",
    "fingerprint_task",
    "inject_faults",
    "maybe_fire",
    "reset_sites",
    "site_activations",
    "merge_stage_stats",
    "open_stage_cache",
    "open_store",
    "resolve_jobs",
    "run_task",
    "run_tasks",
]
