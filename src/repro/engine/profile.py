"""Lightweight wall-clock instrumentation for the engine and benchmarks.

The perf acceptance gates of this repo (``BENCH_engine.json``) need
consistent timing plumbing: a :class:`Timer` context manager for one-shot
measurements and a :class:`ProfileRecorder` that accumulates named stages
(with repeat counts and metadata) and serialises them to JSON. Everything
uses ``time.perf_counter`` — wall clock, because the parallel speedup *is*
a wall-clock claim.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union


class Timer:
    """Context-manager stopwatch.

    >>> with Timer() as t:
    ...     work()
    >>> t.elapsed_s  # doctest: +SKIP
    0.42
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed_s: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._start is not None
        self.elapsed_s = time.perf_counter() - self._start

    def restart(self) -> None:
        self._start = time.perf_counter()
        self.elapsed_s = 0.0


@dataclass
class StageRecord:
    """Accumulated timings of one named stage."""

    name: str
    times_s: List[float] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def total_s(self) -> float:
        return sum(self.times_s)

    @property
    def best_s(self) -> float:
        return min(self.times_s) if self.times_s else 0.0

    @property
    def count(self) -> int:
        return len(self.times_s)

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "total_s": round(self.total_s, 6),
            "best_s": round(self.best_s, 6),
            "count": self.count,
        }
        if self.meta:
            out["meta"] = self.meta
        return out


class ProfileRecorder:
    """Accumulates named wall-clock stages and serialises them to JSON."""

    def __init__(self) -> None:
        self._stages: Dict[str, StageRecord] = {}

    def record(self, name: str, seconds: float, **meta: Any) -> None:
        stage = self._stages.setdefault(name, StageRecord(name))
        stage.times_s.append(seconds)
        if meta:
            stage.meta.update(meta)

    def time(self, name: str, **meta: Any) -> "_StageTimer":
        """Context manager measuring one execution of ``name``."""
        return _StageTimer(self, name, meta)

    def stage(self, name: str) -> Optional[StageRecord]:
        return self._stages.get(name)

    def best_s(self, name: str) -> float:
        stage = self._stages.get(name)
        return stage.best_s if stage else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {name: s.as_dict() for name, s in sorted(self._stages.items())}

    def write_json(
        self, path: Union[str, Path], extra: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """Write ``{**extra, "stages": ...}`` to ``path``; returns the doc."""
        doc: Dict[str, Any] = dict(extra or {})
        doc["stages"] = self.as_dict()
        Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        return doc


class _StageTimer:
    def __init__(
        self, recorder: ProfileRecorder, name: str, meta: Dict[str, Any]
    ) -> None:
        self._recorder = recorder
        self._name = name
        self._meta = meta
        self._timer = Timer()

    def __enter__(self) -> Timer:
        return self._timer.__enter__()

    def __exit__(self, *exc_info) -> None:
        self._timer.__exit__(*exc_info)
        self._recorder.record(self._name, self._timer.elapsed_s, **self._meta)
