"""Placed-component containers: the output side of floorplanning.

A :class:`ChipFloorplan` holds every placed component (cores, switches, TSV
macros) across all 3-D layers and answers the geometric queries the metrics
code needs: component centres, per-layer bounding boxes, and the die area
(the maximum layer bounding-box area — all dies in a wafer-to-wafer stack
share one outline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import FloorplanError
from repro.floorplan.geometry import Rect, bounding_box, rects_overlap

#: Component kinds understood by the floorplan code.
KINDS = ("core", "switch", "tsv")


@dataclass(frozen=True)
class PlacedComponent:
    """A named rectangle on a specific 3-D layer."""

    name: str
    kind: str
    rect: Rect
    layer: int

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise FloorplanError(f"unknown component kind {self.kind!r}")
        if self.layer < 0:
            raise FloorplanError(f"layer must be >= 0, got {self.layer}")

    @property
    def center(self) -> Tuple[float, float]:
        return self.rect.center


@dataclass
class ChipFloorplan:
    """All placed components of a (possibly multi-layer) chip."""

    components: List[PlacedComponent] = field(default_factory=list)

    def __iter__(self) -> Iterator[PlacedComponent]:
        return iter(self.components)

    def __len__(self) -> int:
        return len(self.components)

    def add(self, component: PlacedComponent) -> None:
        self.components.append(component)

    def by_name(self, name: str) -> PlacedComponent:
        for c in self.components:
            if c.name == name:
                return c
        raise FloorplanError(f"no component named {name!r}")

    def has(self, name: str) -> bool:
        return any(c.name == name for c in self.components)

    def in_layer(self, layer: int) -> List[PlacedComponent]:
        return [c for c in self.components if c.layer == layer]

    def of_kind(self, kind: str) -> List[PlacedComponent]:
        return [c for c in self.components if c.kind == kind]

    @property
    def num_layers(self) -> int:
        if not self.components:
            return 0
        return max(c.layer for c in self.components) + 1

    def layer_bbox(self, layer: int) -> Optional[Rect]:
        return bounding_box(c.rect for c in self.in_layer(layer))

    def die_area_mm2(self) -> float:
        """Area of the die outline: the largest layer bounding box.

        In a wafer-to-wafer stack every layer shares the same outline, so the
        chip die area is determined by the most spread-out layer.
        """
        areas = []
        for layer in range(self.num_layers):
            bbox = self.layer_bbox(layer)
            if bbox is not None:
                areas.append(bbox.area)
        return max(areas) if areas else 0.0

    def total_component_area_mm2(self, kind: Optional[str] = None) -> float:
        comps = self.components if kind is None else self.of_kind(kind)
        return sum(c.rect.area for c in comps)

    def overlaps(self) -> List[Tuple[str, str]]:
        """All pairs of overlapping components within any layer."""
        bad: List[Tuple[str, str]] = []
        layers: Dict[int, List[PlacedComponent]] = {}
        for c in self.components:
            layers.setdefault(c.layer, []).append(c)
        for comps in layers.values():
            for i in range(len(comps)):
                for j in range(i + 1, len(comps)):
                    if rects_overlap(comps[i].rect, comps[j].rect):
                        bad.append((comps[i].name, comps[j].name))
        return bad

    def is_legal(self) -> bool:
        """True if no two components on the same layer overlap."""
        return not self.overlaps()

    def center_of(self, name: str) -> Tuple[float, float]:
        return self.by_name(name).center
