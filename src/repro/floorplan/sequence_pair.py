"""Sequence-pair floorplan representation.

A sequence pair (Gamma+, Gamma-) encodes the relative positions of n blocks:
block ``a`` is left of ``b`` iff ``a`` precedes ``b`` in both sequences, and
below ``b`` iff ``a`` follows ``b`` in Gamma+ but precedes it in Gamma-.
Packing to coordinates is a pair of longest-path computations, O(n^2) here
(amply fast for the block counts in this domain).

This is the representation Parquet [38] uses; our annealer and constrained
inserter both operate on it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class SequencePair:
    """A pair of permutations of block indices ``0..n-1``."""

    positive: Tuple[int, ...]
    negative: Tuple[int, ...]

    def __post_init__(self) -> None:
        n = len(self.positive)
        if sorted(self.positive) != list(range(n)):
            raise ValueError("positive sequence is not a permutation of 0..n-1")
        if sorted(self.negative) != list(range(n)):
            raise ValueError("negative sequence is not a permutation of 0..n-1")

    @property
    def n(self) -> int:
        return len(self.positive)

    @staticmethod
    def identity(n: int) -> "SequencePair":
        """The trivial sequence pair placing blocks in a diagonal row."""
        seq = tuple(range(n))
        return SequencePair(positive=seq, negative=seq)

    @staticmethod
    def grid(n: int) -> "SequencePair":
        """A sequence pair packing blocks roughly into a square grid.

        Blocks fill a ceil(sqrt(n))-wide grid row-major; within a row blocks
        go left to right, rows stack bottom to top. This is the annealer's
        starting point — the identity pair degenerates into a single row,
        which simulated annealing cannot repair for large n.
        """
        side = max(1, int(math.ceil(math.sqrt(n))))
        cells = [(i // side, i % side) for i in range(n)]  # (row, col)
        # b left-of c  <=> same row, smaller col  (earlier in both sequences)
        # b below c    <=> later in positive, earlier in negative.
        positive = tuple(
            sorted(range(n), key=lambda i: (-cells[i][0], cells[i][1]))
        )
        negative = tuple(
            sorted(range(n), key=lambda i: (cells[i][0], cells[i][1]))
        )
        return SequencePair(positive=positive, negative=negative)

    def with_swap_positive(self, i: int, j: int) -> "SequencePair":
        pos = list(self.positive)
        pos[i], pos[j] = pos[j], pos[i]
        return SequencePair(positive=tuple(pos), negative=self.negative)

    def with_swap_negative(self, i: int, j: int) -> "SequencePair":
        neg = list(self.negative)
        neg[i], neg[j] = neg[j], neg[i]
        return SequencePair(positive=self.positive, negative=tuple(neg))

    def with_swap_both(self, i: int, j: int) -> "SequencePair":
        """Swap the blocks at positions i and j in both sequences."""
        pos = list(self.positive)
        pos[i], pos[j] = pos[j], pos[i]
        neg = list(self.negative)
        ni = neg.index(self.positive[j])
        nj = neg.index(self.positive[i])
        neg[ni], neg[nj] = neg[nj], neg[ni]
        return SequencePair(positive=tuple(pos), negative=tuple(neg))


def seqpair_to_positions(
    sp: SequencePair,
    widths: Sequence[float],
    heights: Sequence[float],
) -> List[Tuple[float, float]]:
    """Pack the sequence pair into lower-left block coordinates.

    Returns one (x, y) per block index. The packing is the classic
    longest-path evaluation: x of a block is the max right edge of all blocks
    that must lie to its left; y symmetric. The inner maxima are vectorised
    with numpy. (The annealers no longer call this per move — they run on
    the incremental :mod:`repro.floorplan.engine` evaluator, which produces
    bit-identical coordinates.)
    """
    n = sp.n
    if len(widths) != n or len(heights) != n:
        raise ValueError(
            f"need {n} widths/heights, got {len(widths)}/{len(heights)}"
        )

    pos_rank = np.empty(n, dtype=np.int64)
    for r, b in enumerate(sp.positive):
        pos_rank[b] = r

    w = np.asarray(widths, dtype=float)
    h = np.asarray(heights, dtype=float)
    xs = np.zeros(n)
    ys = np.zeros(n)

    # Process blocks in Gamma- order: everything already processed has a
    # smaller Gamma- rank. Among those, smaller Gamma+ rank => left-of
    # (constrains x); larger Gamma+ rank => below (constrains y).
    done = np.zeros(n, dtype=bool)
    for b in sp.negative:
        if done.any():
            rb = pos_rank[b]
            left = done & (pos_rank < rb)
            below = done & (pos_rank > rb)
            if left.any():
                xs[b] = np.max(xs[left] + w[left])
            if below.any():
                ys[b] = np.max(ys[below] + h[below])
        done[b] = True

    return list(zip(xs.tolist(), ys.tolist()))


def positions_to_seqpair(
    positions: Sequence[Tuple[float, float]],
    widths: Sequence[float],
    heights: Sequence[float],
) -> SequencePair:
    """Derive a sequence pair consistent with existing block positions.

    Used to seed the constrained inserter from an already-placed floorplan:
    the returned pair packs to a placement preserving the relative order of
    the blocks. Blocks are ordered by the classic mapping: Gamma+ sorts by
    (x - y) dominance diagonal, Gamma- by (x + y) anti-diagonal, using block
    centres.
    """
    n = len(positions)
    if len(widths) != n or len(heights) != n:
        raise ValueError("positions/widths/heights length mismatch")
    centers = [
        (positions[i][0] + widths[i] / 2.0, positions[i][1] + heights[i] / 2.0)
        for i in range(n)
    ]
    positive = tuple(
        sorted(range(n), key=lambda i: (centers[i][0] - centers[i][1], i))
    )
    negative = tuple(
        sorted(range(n), key=lambda i: (centers[i][0] + centers[i][1], i))
    )
    return SequencePair(positive=positive, negative=negative)
