"""TSV macro placement (Sec. III).

A vertical link from layer ``lo`` up to layer ``hi`` is routed on the metal
layers of the bottom die and drilled through every die above it. Area must be
reserved wherever silicon is pierced:

* on the **top layer** (``hi``) the TSV macro is *embedded* in the port of
  the switch/NI the link lands on — no explicit floorplan rectangle, but the
  area is accounted to that component;
* on every **intermediate layer** (``lo < l < hi``) an *explicit* TSV macro
  must be placed in the floorplan, ideally aligned with the top component so
  the vertical segment stays straight.

"The TSV macros are placed automatically by our tool" — this module does so
using the same custom insertion routine as the switches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.floorplan.inserter import InsertionReport, NewComponent, insert_components
from repro.floorplan.placement import ChipFloorplan, PlacedComponent
from repro.models.tsv_model import TsvModel


@dataclass(frozen=True)
class VerticalLinkSpec:
    """Description of one vertical link for macro placement.

    Attributes:
        name: Unique link name (used to name the macros).
        lo_layer / hi_layer: Bottom and top layer indices (lo < hi).
        top_center: (x, y) of the component the link lands on in the top
            layer; intermediate macros are ideally aligned with it.
    """

    name: str
    lo_layer: int
    hi_layer: int
    top_center: Tuple[float, float]

    def __post_init__(self) -> None:
        if self.lo_layer >= self.hi_layer:
            raise ValueError(
                f"vertical link {self.name!r}: lo_layer {self.lo_layer} must be "
                f"below hi_layer {self.hi_layer}"
            )

    @property
    def intermediate_layers(self) -> List[int]:
        return list(range(self.lo_layer + 1, self.hi_layer))


def place_tsv_macros(
    floorplan: ChipFloorplan,
    links: Sequence[VerticalLinkSpec],
    tsv_model: TsvModel,
    width_bits: int,
    *,
    search_radius: float = 1.5,
    grid_step: float = 0.1,
    report: InsertionReport = None,
) -> ChipFloorplan:
    """Place explicit TSV macros for every multi-layer vertical link.

    Returns a new :class:`ChipFloorplan` with the macros inserted (existing
    components may be displaced by the insertion routine). Adjacent-layer
    links need no explicit macros (the area is embedded in the top component,
    accounted for by the metrics code), so they contribute nothing here.
    """
    area = tsv_model.macro_area_mm2(width_bits)
    side = math.sqrt(area)

    per_layer: Dict[int, List[NewComponent]] = {}
    for link in links:
        for layer in link.intermediate_layers:
            macros = per_layer.setdefault(layer, [])
            macros.append(
                NewComponent(
                    name=f"tsv:{link.name}:L{layer}",
                    kind="tsv",
                    width=side,
                    height=side,
                    ideal_center=link.top_center,
                )
            )

    out = ChipFloorplan()
    num_layers = max(
        floorplan.num_layers,
        max((l.hi_layer + 1 for l in links), default=0),
    )
    for layer in range(num_layers):
        comps = floorplan.in_layer(layer)
        if layer in per_layer:
            comps = insert_components(
                comps,
                per_layer[layer],
                search_radius=search_radius,
                grid_step=grid_step,
                report=report,
            )
        for c in comps:
            out.add(c)
    return out


def count_explicit_macros(links: Sequence[VerticalLinkSpec]) -> int:
    """Number of explicit (intermediate-layer) macros the links require."""
    return sum(len(l.intermediate_layers) for l in links)
