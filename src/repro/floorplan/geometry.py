"""Rectangle geometry shared by all floorplanning code.

Coordinates follow the core-spec convention: lower-left origin, x to the
right, y up, units in millimetres.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Optional, Tuple

_EPS = 1e-9


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle with a lower-left anchor."""

    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width < 0 or self.height < 0:
            raise ValueError(
                f"rectangle dimensions must be non-negative, got "
                f"{self.width} x {self.height}"
            )

    @property
    def x2(self) -> float:
        return self.x + self.width

    @property
    def y2(self) -> float:
        return self.y + self.height

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    def moved_to(self, x: float, y: float) -> "Rect":
        return replace(self, x=x, y=y)

    def translated(self, dx: float, dy: float) -> "Rect":
        return replace(self, x=self.x + dx, y=self.y + dy)

    def contains_point(self, px: float, py: float) -> bool:
        return self.x - _EPS <= px <= self.x2 + _EPS and (
            self.y - _EPS <= py <= self.y2 + _EPS
        )


def rects_overlap(a: Rect, b: Rect, eps: float = _EPS) -> bool:
    """Strict interior overlap (shared edges do not count)."""
    return (
        a.x + eps < b.x2
        and b.x + eps < a.x2
        and a.y + eps < b.y2
        and b.y + eps < a.y2
    )


def overlap_area(a: Rect, b: Rect) -> float:
    """Area of the intersection of two rectangles (0 if disjoint)."""
    w = min(a.x2, b.x2) - max(a.x, b.x)
    h = min(a.y2, b.y2) - max(a.y, b.y)
    if w <= 0 or h <= 0:
        return 0.0
    return w * h


def bounding_box(rects: Iterable[Rect]) -> Optional[Rect]:
    """Smallest rectangle containing all ``rects`` (None for empty input).

    The bounding box is anchored at the origin-side extremes of the content,
    i.e. it spans [min x, max x2] x [min y, max y2].
    """
    rects = list(rects)
    if not rects:
        return None
    x1 = min(r.x for r in rects)
    y1 = min(r.y for r in rects)
    x2 = max(r.x2 for r in rects)
    y2 = max(r.y2 for r in rects)
    return Rect(x=x1, y=y1, width=x2 - x1, height=y2 - y1)


def manhattan(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    """Manhattan distance between two points."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])
