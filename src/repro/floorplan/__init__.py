"""Floorplanning substrate.

Three roles (paper Secs. VII and VIII-D):

* :mod:`repro.floorplan.annealer` — a sequence-pair simulated-annealing
  floorplanner (our stand-in for Parquet [38]); used to *generate* the input
  core floorplans of the benchmarks.
* :mod:`repro.floorplan.inserter` — the paper's custom NoC-insertion routine:
  place each switch / TSV macro as close as possible to its ideal position,
  searching nearby free space first and cascading block displacements when
  none exists.
* :mod:`repro.floorplan.constrained` — the "constrained standard
  floorplanner" baseline: the SA floorplanner restricted to never change the
  relative order of the cores while inserting the network components.

:mod:`repro.floorplan.tsv_macros` places the TSV area-reservation macros of
Sec. III for every vertical link.

Both annealing loops run on the incremental evaluation engine of
:mod:`repro.floorplan.engine` (in-place moves with undo, allocation-free
packing, delta wirelength) and support deterministic multi-start
(``restarts=K, jobs=N`` over the :mod:`repro.engine` pool). The frozen
pre-optimisation baselines live in :mod:`repro.floorplan.reference` — see
``docs/floorplan.md``.
"""

from repro.floorplan.geometry import Rect, bounding_box, rects_overlap
from repro.floorplan.placement import ChipFloorplan, PlacedComponent
from repro.floorplan.sequence_pair import SequencePair, seqpair_to_positions
from repro.floorplan.annealer import FloorplanResult, anneal_floorplan
from repro.floorplan.inserter import insert_components
from repro.floorplan.constrained import constrained_insert
from repro.floorplan.tsv_macros import place_tsv_macros

__all__ = [
    "Rect",
    "bounding_box",
    "rects_overlap",
    "ChipFloorplan",
    "PlacedComponent",
    "SequencePair",
    "seqpair_to_positions",
    "FloorplanResult",
    "anneal_floorplan",
    "insert_components",
    "constrained_insert",
    "place_tsv_macros",
]
