"""The "constrained standard floorplanner" baseline (Sec. VIII-D).

The paper compares its custom insertion routine against Parquet [38]
"modified in order to constrain it from swapping blocks, so that the relative
positions of the input cores remain the same after the NoC insertion". We
reproduce that baseline with our sequence-pair annealer: the cores' relative
order in both sequences is frozen; annealing moves only relocate the network
components within the sequences. The cost minimised is packed area plus the
displacement of the network components from their LP-ideal positions.

Because the sequence-pair packing re-compacts all blocks, core *absolute*
positions shift even though their relative order is preserved — exactly the
behaviour the paper describes as unpredictable and often poor.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.errors import FloorplanError
from repro.floorplan.inserter import NewComponent
from repro.floorplan.placement import PlacedComponent
from repro.floorplan.sequence_pair import (
    SequencePair,
    positions_to_seqpair,
    seqpair_to_positions,
)
from repro.rng import make_rng


def constrained_insert(
    existing: Sequence[PlacedComponent],
    new_components: Sequence[NewComponent],
    *,
    seed: int = 0,
    moves: int = 3000,
    displacement_weight: float = 1.0,
    initial_temperature: float = 1.0,
    cooling: float = 0.995,
) -> List[PlacedComponent]:
    """Insert network components with the constrained-annealer baseline.

    Args/returns mirror :func:`repro.floorplan.inserter.insert_components`.
    """
    layers = {c.layer for c in existing}
    if len(layers) > 1:
        raise FloorplanError(
            f"constrained_insert works on a single layer, got {sorted(layers)}"
        )
    layer = layers.pop() if layers else 0

    n_cores = len(existing)
    n_new = len(new_components)
    if n_new == 0:
        return list(existing)

    widths = [c.rect.width for c in existing] + [c.width for c in new_components]
    heights = [c.rect.height for c in existing] + [c.height for c in new_components]
    positions = [(c.rect.x, c.rect.y) for c in existing] + [
        (
            max(0.0, c.ideal_center[0] - c.width / 2.0),
            max(0.0, c.ideal_center[1] - c.height / 2.0),
        )
        for c in new_components
    ]
    ideals = [c.ideal_center for c in new_components]

    sp = positions_to_seqpair(positions, widths, heights)
    new_ids = set(range(n_cores, n_cores + n_new))

    core_anchors = [
        (c.rect.x + c.rect.width / 2.0, c.rect.y + c.rect.height / 2.0)
        for c in existing
    ]

    def evaluate(sp_: SequencePair) -> Tuple[float, float]:
        pos = seqpair_to_positions(sp_, widths, heights)
        area = max(p[0] + widths[i] for i, p in enumerate(pos)) * max(
            p[1] + heights[i] for i, p in enumerate(pos)
        )
        disp = 0.0
        for j, bid in enumerate(range(n_cores, n_cores + n_new)):
            cx = pos[bid][0] + widths[bid] / 2.0
            cy = pos[bid][1] + heights[bid] / 2.0
            disp += abs(cx - ideals[j][0]) + abs(cy - ideals[j][1])
        # "keep the cores close to their initial placement" (Sec. VIII-D):
        # the constrained standard floorplanner must also pay for moving
        # the cores away from the input floorplan.
        for i in range(n_cores):
            cx = pos[i][0] + widths[i] / 2.0
            cy = pos[i][1] + heights[i] / 2.0
            disp += abs(cx - core_anchors[i][0]) + abs(cy - core_anchors[i][1])
        return area, disp

    area0, disp0 = evaluate(sp)
    area_scale = area0 if area0 > 0 else 1.0
    # Normalise displacement by one die diagonal per block, so the penalty
    # stays comparable to the area term regardless of the initial packing.
    diag = max(c.rect.x2 for c in existing) + max(c.rect.y2 for c in existing) \
        if existing else 1.0
    disp_scale = max(diag * max(1, n_cores + n_new) * 0.25, 1e-9)

    def cost(area: float, disp: float) -> float:
        return area / area_scale + displacement_weight * disp / disp_scale

    rng = make_rng(seed, "constrained-insert")
    current = cost(area0, disp0)
    best_sp, best_cost = sp, current
    temperature = initial_temperature

    for _ in range(moves):
        candidate = _relocate_new_block(sp, new_ids, rng)
        if candidate is None:
            break
        area, disp = evaluate(candidate)
        cand = cost(area, disp)
        if cand <= current or (
            temperature > 1e-12
            and rng.random() < math.exp((current - cand) / temperature)
        ):
            sp, current = candidate, cand
            if cand < best_cost:
                best_sp, best_cost = candidate, cand
        temperature *= cooling

    final_positions = seqpair_to_positions(best_sp, widths, heights)
    out: List[PlacedComponent] = []
    for i, comp in enumerate(existing):
        x, y = final_positions[i]
        out.append(
            PlacedComponent(
                name=comp.name, kind=comp.kind,
                rect=comp.rect.moved_to(x, y), layer=layer,
            )
        )
    for j, comp in enumerate(new_components):
        x, y = final_positions[n_cores + j]
        from repro.floorplan.geometry import Rect

        out.append(
            PlacedComponent(
                name=comp.name, kind=comp.kind,
                rect=Rect(x, y, comp.width, comp.height), layer=layer,
            )
        )
    return out


def _relocate_new_block(
    sp: SequencePair, new_ids: set, rng
) -> Optional[SequencePair]:
    """Move one network-component entry to a new slot in one/both sequences.

    Core relative order is untouched because only new-component entries are
    extracted and reinserted.
    """
    if not new_ids:
        return None
    block = rng.choice(sorted(new_ids))
    which = rng.randrange(3)  # 0: positive, 1: negative, 2: both

    positive = list(sp.positive)
    negative = list(sp.negative)
    if which in (0, 2):
        positive.remove(block)
        positive.insert(rng.randrange(len(positive) + 1), block)
    if which in (1, 2):
        negative.remove(block)
        negative.insert(rng.randrange(len(negative) + 1), block)
    return SequencePair(positive=tuple(positive), negative=tuple(negative))
