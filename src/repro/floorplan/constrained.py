"""The "constrained standard floorplanner" baseline (Sec. VIII-D).

The paper compares its custom insertion routine against Parquet [38]
"modified in order to constrain it from swapping blocks, so that the relative
positions of the input cores remain the same after the NoC insertion". We
reproduce that baseline with our sequence-pair annealer: the cores' relative
order in both sequences is frozen; annealing moves only relocate the network
components within the sequences. The cost minimised is packed area plus the
displacement of the network components from their LP-ideal positions.

Because the sequence-pair packing re-compacts all blocks, core *absolute*
positions shift even though their relative order is preserved — exactly the
behaviour the paper describes as unpredictable and often poor.

The annealing loop runs on the incremental
:class:`~repro.floorplan.engine._AnnealState` evaluator: the displacement
penalty is expressed as unit-weight anchor nets (one per network component
towards its LP-ideal centre, one per core towards its input position), so a
relocation move only recomputes the terms of blocks whose packed position
actually changed. The loop is bit-identical to the frozen
:func:`repro.floorplan.reference.naive_constrained_insert` baseline.
``restarts``/``jobs`` mirror :func:`repro.floorplan.annealer
.anneal_floorplan`'s multi-start knobs.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import FloorplanError
from repro.floorplan.engine import _AnnealState
from repro.floorplan.geometry import Rect
from repro.floorplan.inserter import NewComponent
from repro.floorplan.placement import PlacedComponent
from repro.floorplan.sequence_pair import (
    SequencePair,
    positions_to_seqpair,
    seqpair_to_positions,
)
from repro.rng import restart_rng


def constrained_insert(
    existing: Sequence[PlacedComponent],
    new_components: Sequence[NewComponent],
    *,
    seed: int = 0,
    moves: int = 3000,
    displacement_weight: float = 1.0,
    initial_temperature: float = 1.0,
    cooling: float = 0.995,
    restarts: int = 1,
    jobs: Optional[int] = 1,
    store=None,
    retry=None,
    task_timeout_s: Optional[float] = None,
    on_error: str = "raise",
) -> List[PlacedComponent]:
    """Insert network components with the constrained-annealer baseline.

    Args/returns mirror :func:`repro.floorplan.inserter.insert_components`;
    ``restarts``/``jobs`` run K independently seeded anneals (best cost
    wins, ties to the lowest restart) optionally fanned across the
    :mod:`repro.engine` pool — serial and parallel runs are identical.
    ``store`` plugs a :class:`~repro.engine.store.ResultStore` into that
    fan-out so finished restarts are reused across invocations.
    ``retry``/``task_timeout_s``/``on_error`` are the engine's supervision
    knobs; under ``on_error="quarantine"`` a lost restart is excluded from
    the best-cost merge (at least one must survive).
    """
    layers = {c.layer for c in existing}
    if len(layers) > 1:
        raise FloorplanError(
            f"constrained_insert works on a single layer, got {sorted(layers)}"
        )
    layer = layers.pop() if layers else 0

    n_cores = len(existing)
    n_new = len(new_components)
    if n_new == 0:
        return list(existing)
    if restarts < 1:
        raise ValueError(f"restarts must be >= 1, got {restarts}")

    if restarts == 1:
        _, best_sp = _insertion_restart(
            existing, new_components, seed=seed, moves=moves,
            displacement_weight=displacement_weight,
            initial_temperature=initial_temperature, cooling=cooling,
            restart=0,
        )
    else:
        # Lazy import: repro.engine depends on repro.floorplan, not vice versa.
        from repro.engine.executor import run_tasks
        from repro.engine.tasks import ConstrainedInsertTask

        tasks = [
            ConstrainedInsertTask(
                key=restart,
                existing=tuple(existing),
                new_components=tuple(new_components),
                seed=seed,
                moves=moves,
                displacement_weight=displacement_weight,
                initial_temperature=initial_temperature,
                cooling=cooling,
                restart=restart,
            )
            for restart in range(restarts)
        ]
        results = run_tasks(
            tasks, jobs=jobs, store=store,
            retry=retry, task_timeout_s=task_timeout_s, on_error=on_error,
        )
        best_cost = None
        best_sp = None
        for task_result in results:
            if task_result.error is not None:
                continue  # quarantined restart: excluded from the merge
            cost, sp = task_result.result
            if best_cost is None or cost < best_cost:
                best_cost, best_sp = cost, sp
        if best_sp is None:
            raise FloorplanError(
                f"all {restarts} insertion restarts were quarantined"
            )

    widths = [c.rect.width for c in existing] + [c.width for c in new_components]
    heights = [c.rect.height for c in existing] + [c.height for c in new_components]
    final_positions = seqpair_to_positions(best_sp, widths, heights)
    out: List[PlacedComponent] = []
    for i, comp in enumerate(existing):
        x, y = final_positions[i]
        out.append(
            PlacedComponent(
                name=comp.name, kind=comp.kind,
                rect=comp.rect.moved_to(x, y), layer=layer,
            )
        )
    for j, comp in enumerate(new_components):
        x, y = final_positions[n_cores + j]
        out.append(
            PlacedComponent(
                name=comp.name, kind=comp.kind,
                rect=Rect(x, y, comp.width, comp.height), layer=layer,
            )
        )
    return out


def run_insertion_restart(task) -> Tuple[float, SequencePair]:
    """Worker entry point for one
    :class:`~repro.engine.tasks.ConstrainedInsertTask`."""
    return _insertion_restart(
        task.existing, task.new_components, seed=task.seed, moves=task.moves,
        displacement_weight=task.displacement_weight,
        initial_temperature=task.initial_temperature, cooling=task.cooling,
        restart=task.restart,
    )


def _insertion_restart(
    existing: Sequence[PlacedComponent],
    new_components: Sequence[NewComponent],
    *,
    seed: int,
    moves: int,
    displacement_weight: float,
    initial_temperature: float,
    cooling: float,
    restart: int,
) -> Tuple[float, SequencePair]:
    """One constrained annealing run; returns (best cost, best sequence pair).

    RNG draw order, cost expression and acceptance test mirror the frozen
    :func:`repro.floorplan.reference.naive_constrained_insert` exactly.
    """
    n_cores = len(existing)
    n_new = len(new_components)
    n = n_cores + n_new

    widths = [c.rect.width for c in existing] + [c.width for c in new_components]
    heights = [c.rect.height for c in existing] + [c.height for c in new_components]
    positions = [(c.rect.x, c.rect.y) for c in existing] + [
        (
            max(0.0, c.ideal_center[0] - c.width / 2.0),
            max(0.0, c.ideal_center[1] - c.height / 2.0),
        )
        for c in new_components
    ]
    ideals = [c.ideal_center for c in new_components]

    sp0 = positions_to_seqpair(positions, widths, heights)

    # Displacement as unit-weight anchor nets, in the naive evaluator's sum
    # order: network components towards their ideals first, then "keep the
    # cores close to their initial placement" (Sec. VIII-D).
    anchors: Dict[Tuple[int, Tuple[float, float]], float] = {}
    for j, bid in enumerate(range(n_cores, n_cores + n_new)):
        anchors[(bid, (ideals[j][0], ideals[j][1]))] = 1.0
    for i, c in enumerate(existing):
        anchors[(i, (c.rect.x + c.rect.width / 2.0,
                     c.rect.y + c.rect.height / 2.0))] = 1.0

    state = _AnnealState(sp0, widths, heights, None, anchors)
    area0, disp0 = state.area, state.wirelength
    area_scale = area0 if area0 > 0 else 1.0
    # Normalise displacement by one die diagonal per block, so the penalty
    # stays comparable to the area term regardless of the initial packing.
    diag = max(c.rect.x2 for c in existing) + max(c.rect.y2 for c in existing) \
        if existing else 1.0
    disp_scale = max(diag * max(1, n_cores + n_new) * 0.25, 1e-9)

    def cost(area: float, disp: float) -> float:
        return area / area_scale + displacement_weight * disp / disp_scale

    rng = restart_rng(seed, "constrained-insert", restart)
    current = cost(area0, disp0)
    best_cost = current
    best_sequences = state.sequences()
    temperature = initial_temperature

    new_ids_sorted = sorted(range(n_cores, n_cores + n_new))
    randrange = rng.randrange
    random = rng.random
    exp = math.exp
    for _ in range(moves):
        block = rng.choice(new_ids_sorted)
        which = randrange(3)  # 0: positive, 1: negative, 2: both
        state.begin_move()
        if which == 0 or which == 2:
            state.relocate_positive(block, randrange(n))
        if which == 1 or which == 2:
            state.relocate_negative(block, randrange(n))
        area, disp = state.evaluate()
        cand = cost(area, disp)
        if cand <= current or (
            temperature > 1e-12
            and random() < exp((current - cand) / temperature)
        ):
            state.commit()
            current = cand
            if cand < best_cost:
                best_cost = cand
                best_sequences = state.sequences()
        else:
            state.revert()
        temperature *= cooling

    return best_cost, SequencePair(
        positive=best_sequences[0], negative=best_sequences[1]
    )
