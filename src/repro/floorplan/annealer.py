"""Sequence-pair simulated-annealing floorplanner (Parquet stand-in).

Used to generate the *input* core floorplans of the benchmarks — the paper
obtains those "using existing tools [38]" with area and wire-length as the
objectives — and, through :mod:`repro.floorplan.constrained`, as the standard
floorplanner baseline of Sec. VIII-D.

Cost is ``area + wirelength_weight * HPWL-like bandwidth-weighted Manhattan
wirelength``; both terms are normalised by their initial values so the weight
is dimensionless. Moves are the three classic sequence-pair perturbations
(swap in Gamma+, swap in Gamma-, swap in both). Rotation moves are omitted:
core aspect ratios are part of the benchmark inputs.

The annealing loop runs on the incremental
:class:`~repro.floorplan.engine._AnnealState` evaluator — in-place moves
with undo, allocation-free packing and delta wirelength — and reproduces
the frozen naive baseline of :mod:`repro.floorplan.reference` bit for bit
(asserted by the regression suite). ``restarts=K`` runs K independently
seeded anneals and keeps the best; ``jobs=N`` fans the restarts across the
:mod:`repro.engine` process pool with a deterministic best-cost /
lowest-restart merge, so serial and parallel multi-start runs are
identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.floorplan.engine import _AnnealState
from repro.floorplan.sequence_pair import SequencePair
from repro.rng import restart_rng

#: Wirelength "nets": ((block_i, block_j) -> weight); external attractors are
#: ((block_i, (x, y)) -> weight) entries keyed by index and a fixed point.
PairNets = Mapping[Tuple[int, int], float]
AnchorNets = Mapping[Tuple[int, Tuple[float, float]], float]


@dataclass
class FloorplanResult:
    """Output of :func:`anneal_floorplan`.

    For multi-start runs ``moves_evaluated`` counts moves across *all*
    restarts, and ``restart_index`` identifies the winning restart.
    """

    positions: List[Tuple[float, float]]
    sequence_pair: SequencePair
    area: float
    wirelength: float
    cost: float
    moves_evaluated: int
    restart_index: int = 0


def anneal_floorplan(
    widths: Sequence[float],
    heights: Sequence[float],
    nets: Optional[PairNets] = None,
    anchors: Optional[AnchorNets] = None,
    *,
    wirelength_weight: float = 1.0,
    seed: int = 0,
    moves: int = 4000,
    initial_temperature: float = 1.0,
    cooling: float = 0.995,
    initial_sp: Optional[SequencePair] = None,
    restarts: int = 1,
    jobs: Optional[int] = 1,
    store=None,
    retry=None,
    task_timeout_s: Optional[float] = None,
    on_error: str = "raise",
) -> FloorplanResult:
    """Floorplan ``n`` blocks minimising area + weighted wirelength.

    Args:
        widths/heights: Block dimensions (mm), indexed 0..n-1.
        nets: Bandwidth-weighted two-pin nets between blocks; wirelength is
            the weighted Manhattan distance between block centres.
        anchors: Nets from a block to a fixed external point — used to pull
            cores towards the positions of their vertical neighbours when
            floorplanning a 3-D stack layer by layer.
        wirelength_weight: Relative weight of wirelength vs. area (both are
            normalised by the initial solution's values).
        seed: RNG seed; the run is fully deterministic (restart 0 uses the
            exact pre-multi-start stream, so ``restarts=1`` reproduces the
            historical single-start trajectory).
        moves: Number of annealing moves *per restart*.
        initial_temperature / cooling: Geometric schedule in normalised-cost
            units.
        initial_sp: Optional starting sequence pair (default: grid).
        restarts: Independent annealing runs; the lowest-cost result wins,
            ties broken by the lowest restart index.
        jobs: Worker processes for the restarts — ``1`` (default) serial,
            ``None``/``0`` one per CPU, ``n >= 2`` a pool of n. Results are
            identical regardless of ``jobs``.
        store: Optional :class:`~repro.engine.store.ResultStore` serving
            already-annealed restarts from disk and checkpointing fresh
            ones (multi-start runs only — a single-start anneal stays on
            the zero-overhead direct path).
        retry / task_timeout_s / on_error: The engine's supervision knobs
            (see :func:`repro.engine.run_tasks`). Under
            ``on_error="quarantine"`` a crashed or timed-out restart is
            excluded from the best-cost merge; at least one restart must
            survive or :class:`~repro.errors.FloorplanError` is raised.

    Returns:
        The best found :class:`FloorplanResult` (not merely the final one).
    """
    n = len(widths)
    if n == 0:
        raise ValueError("cannot floorplan zero blocks")
    if len(heights) != n:
        raise ValueError("widths and heights must have equal length")
    if restarts < 1:
        raise ValueError(f"restarts must be >= 1, got {restarts}")
    nets = dict(nets or {})
    anchors = dict(anchors or {})

    sp = initial_sp if initial_sp is not None else SequencePair.grid(n)
    if sp.n != n:
        raise ValueError(f"initial sequence pair has {sp.n} blocks, expected {n}")

    if restarts == 1:
        return _anneal_restart(
            widths, heights, nets, anchors,
            wirelength_weight=wirelength_weight, seed=seed, moves=moves,
            initial_temperature=initial_temperature, cooling=cooling,
            initial_sp=sp, restart=0,
        )

    # Multi-start: fan the restarts across the engine pool (lazy import —
    # repro.engine depends on repro.floorplan, not vice versa).
    from repro.engine.executor import run_tasks
    from repro.engine.tasks import FloorplanTask

    tasks = [
        FloorplanTask(
            key=restart,
            widths=tuple(float(w) for w in widths),
            heights=tuple(float(h) for h in heights),
            nets=tuple(nets.items()),
            anchors=tuple(anchors.items()),
            wirelength_weight=wirelength_weight,
            seed=seed,
            moves=moves,
            initial_temperature=initial_temperature,
            cooling=cooling,
            initial_sp=sp,
            restart=restart,
        )
        for restart in range(restarts)
    ]
    results = run_tasks(
        tasks, jobs=jobs, store=store,
        retry=retry, task_timeout_s=task_timeout_s, on_error=on_error,
    )
    best: Optional[FloorplanResult] = None
    total_evaluated = 0
    for task_result in results:
        if task_result.error is not None:
            continue  # quarantined restart: excluded from the merge
        candidate = task_result.result
        total_evaluated += candidate.moves_evaluated
        if best is None or candidate.cost < best.cost:
            best = candidate
    if best is None:
        from repro.errors import FloorplanError

        raise FloorplanError(
            f"all {restarts} floorplan restarts were quarantined"
        )
    return replace(best, moves_evaluated=total_evaluated)


def run_anneal_restart(task) -> FloorplanResult:
    """Worker entry point for one :class:`~repro.engine.tasks.FloorplanTask`."""
    return _anneal_restart(
        list(task.widths), list(task.heights),
        dict(task.nets), dict(task.anchors),
        wirelength_weight=task.wirelength_weight, seed=task.seed,
        moves=task.moves, initial_temperature=task.initial_temperature,
        cooling=task.cooling, initial_sp=task.initial_sp,
        restart=task.restart,
    )


def _anneal_restart(
    widths: Sequence[float],
    heights: Sequence[float],
    nets: Dict[Tuple[int, int], float],
    anchors: Dict[Tuple[int, Tuple[float, float]], float],
    *,
    wirelength_weight: float,
    seed: int,
    moves: int,
    initial_temperature: float,
    cooling: float,
    initial_sp: SequencePair,
    restart: int,
) -> FloorplanResult:
    """One annealing run on the incremental evaluator.

    The move/acceptance structure — RNG draw order, cost expression,
    acceptance test — mirrors :func:`repro.floorplan.reference
    .naive_anneal_floorplan` exactly; only the evaluation is incremental.
    """
    n = len(widths)
    rng = restart_rng(seed, "floorplan-anneal", restart)
    state = _AnnealState(initial_sp, widths, heights, nets, anchors)

    area0, wl0 = state.area, state.wirelength
    area_scale = area0 if area0 > 0 else 1.0
    wl_scale = wl0 if wl0 > 0 else 1.0

    def cost_of(area: float, wl: float) -> float:
        return area / area_scale + wirelength_weight * wl / wl_scale

    current_cost = cost_of(area0, wl0)
    best_cost = current_cost
    best_area, best_wl = area0, wl0
    best_positions = state.positions()
    best_sequences = state.sequences()

    temperature = initial_temperature
    evaluated = 0
    if n > 1:
        randrange = rng.randrange
        random = rng.random
        exp = math.exp
        for _ in range(moves):
            i, j = randrange(n), randrange(n)
            while j == i:
                j = randrange(n)
            move = randrange(3)
            state.begin_move()
            if move == 0:
                state.swap_positive(i, j)
            elif move == 1:
                state.swap_negative(i, j)
            else:
                state.swap_both(i, j)
            area, wl = state.evaluate()
            cand_cost = cost_of(area, wl)
            evaluated += 1
            if cand_cost <= current_cost or (
                temperature > 1e-12
                and random() < exp((current_cost - cand_cost) / temperature)
            ):
                state.commit()
                current_cost = cand_cost
                if cand_cost < best_cost:
                    best_cost = cand_cost
                    best_area, best_wl = area, wl
                    best_positions = state.positions()
                    best_sequences = state.sequences()
            else:
                state.revert()
            temperature *= cooling

    return FloorplanResult(
        positions=best_positions,
        sequence_pair=SequencePair(
            positive=best_sequences[0], negative=best_sequences[1]
        ),
        area=best_area,
        wirelength=best_wl,
        cost=best_cost,
        moves_evaluated=evaluated,
        restart_index=restart,
    )
