"""Sequence-pair simulated-annealing floorplanner (Parquet stand-in).

Used to generate the *input* core floorplans of the benchmarks — the paper
obtains those "using existing tools [38]" with area and wire-length as the
objectives — and, through :mod:`repro.floorplan.constrained`, as the standard
floorplanner baseline of Sec. VIII-D.

Cost is ``area + wirelength_weight * HPWL-like bandwidth-weighted Manhattan
wirelength``; both terms are normalised by their initial values so the weight
is dimensionless. Moves are the three classic sequence-pair perturbations
(swap in Gamma+, swap in Gamma-, swap in both). Rotation moves are omitted:
core aspect ratios are part of the benchmark inputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.floorplan.sequence_pair import SequencePair, seqpair_to_positions
from repro.rng import make_rng

#: Wirelength "nets": ((block_i, block_j) -> weight); external attractors are
#: ((block_i, (x, y)) -> weight) entries keyed by index and a fixed point.
PairNets = Mapping[Tuple[int, int], float]
AnchorNets = Mapping[Tuple[int, Tuple[float, float]], float]


@dataclass
class FloorplanResult:
    """Output of :func:`anneal_floorplan`."""

    positions: List[Tuple[float, float]]
    sequence_pair: SequencePair
    area: float
    wirelength: float
    cost: float
    moves_evaluated: int


def anneal_floorplan(
    widths: Sequence[float],
    heights: Sequence[float],
    nets: Optional[PairNets] = None,
    anchors: Optional[AnchorNets] = None,
    *,
    wirelength_weight: float = 1.0,
    seed: int = 0,
    moves: int = 4000,
    initial_temperature: float = 1.0,
    cooling: float = 0.995,
    initial_sp: Optional[SequencePair] = None,
) -> FloorplanResult:
    """Floorplan ``n`` blocks minimising area + weighted wirelength.

    Args:
        widths/heights: Block dimensions (mm), indexed 0..n-1.
        nets: Bandwidth-weighted two-pin nets between blocks; wirelength is
            the weighted Manhattan distance between block centres.
        anchors: Nets from a block to a fixed external point — used to pull
            cores towards the positions of their vertical neighbours when
            floorplanning a 3-D stack layer by layer.
        wirelength_weight: Relative weight of wirelength vs. area (both are
            normalised by the initial solution's values).
        seed: RNG seed; the run is fully deterministic.
        moves: Number of annealing moves.
        initial_temperature / cooling: Geometric schedule in normalised-cost
            units.
        initial_sp: Optional starting sequence pair (default: identity).

    Returns:
        The best found :class:`FloorplanResult` (not merely the final one).
    """
    n = len(widths)
    if n == 0:
        raise ValueError("cannot floorplan zero blocks")
    if len(heights) != n:
        raise ValueError("widths and heights must have equal length")
    nets = dict(nets or {})
    anchors = dict(anchors or {})

    rng = make_rng(seed, "floorplan-anneal")
    sp = initial_sp if initial_sp is not None else SequencePair.grid(n)
    if sp.n != n:
        raise ValueError(f"initial sequence pair has {sp.n} blocks, expected {n}")

    def evaluate(sp_: SequencePair) -> Tuple[float, float, List[Tuple[float, float]]]:
        pos = seqpair_to_positions(sp_, widths, heights)
        area = _packed_area(pos, widths, heights)
        wl = _wirelength(pos, widths, heights, nets, anchors)
        return area, wl, pos

    area0, wl0, pos0 = evaluate(sp)
    area_scale = area0 if area0 > 0 else 1.0
    wl_scale = wl0 if wl0 > 0 else 1.0

    def cost_of(area: float, wl: float) -> float:
        return area / area_scale + wirelength_weight * wl / wl_scale

    current_cost = cost_of(area0, wl0)
    best = FloorplanResult(
        positions=pos0, sequence_pair=sp, area=area0, wirelength=wl0,
        cost=current_cost, moves_evaluated=0,
    )

    temperature = initial_temperature
    evaluated = 0
    for _ in range(moves):
        if n == 1:
            break
        candidate = _perturb(sp, rng)
        area, wl, pos = evaluate(candidate)
        cand_cost = cost_of(area, wl)
        evaluated += 1
        accept = cand_cost <= current_cost or (
            temperature > 1e-12
            and rng.random() < math.exp((current_cost - cand_cost) / temperature)
        )
        if accept:
            sp = candidate
            current_cost = cand_cost
            if cand_cost < best.cost:
                best = FloorplanResult(
                    positions=pos, sequence_pair=sp, area=area, wirelength=wl,
                    cost=cand_cost, moves_evaluated=evaluated,
                )
        temperature *= cooling

    best.moves_evaluated = evaluated
    return best


def _perturb(sp: SequencePair, rng) -> SequencePair:
    n = sp.n
    i, j = rng.randrange(n), rng.randrange(n)
    while j == i:
        j = rng.randrange(n)
    move = rng.randrange(3)
    if move == 0:
        return sp.with_swap_positive(i, j)
    if move == 1:
        return sp.with_swap_negative(i, j)
    return sp.with_swap_both(i, j)


def _packed_area(
    positions: Sequence[Tuple[float, float]],
    widths: Sequence[float],
    heights: Sequence[float],
) -> float:
    w = max(x + widths[i] for i, (x, _) in enumerate(positions))
    h = max(y + heights[i] for i, (_, y) in enumerate(positions))
    return w * h


def _wirelength(
    positions: Sequence[Tuple[float, float]],
    widths: Sequence[float],
    heights: Sequence[float],
    nets: Dict[Tuple[int, int], float],
    anchors: Dict[Tuple[int, Tuple[float, float]], float],
) -> float:
    def center(i: int) -> Tuple[float, float]:
        x, y = positions[i]
        return (x + widths[i] / 2.0, y + heights[i] / 2.0)

    total = 0.0
    for (a, b), weight in nets.items():
        ca, cb = center(a), center(b)
        total += weight * (abs(ca[0] - cb[0]) + abs(ca[1] - cb[1]))
    for (a, point), weight in anchors.items():
        ca = center(a)
        total += weight * (abs(ca[0] - point[0]) + abs(ca[1] - point[1]))
    return total
