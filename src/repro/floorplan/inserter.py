"""The paper's custom NoC-insertion floorplanning routine (Sec. VII).

"We consider one switch or TSV macro at a time. We try to find a free space
near its ideal location to place it. [...] If no space is available, we
displace the already placed blocks from their positions in the x or y
direction by the size of the component, creating space. Moving a block to
create space for the new component can cause overlap with other already
placed blocks. We iteratively move the necessary blocks in the same
direction as the first block, until we remove all overlaps."

The routine operates on a single layer; callers loop over layers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import FloorplanError
from repro.floorplan.geometry import Rect, rects_overlap
from repro.floorplan.placement import PlacedComponent


@dataclass(frozen=True)
class NewComponent:
    """A component to insert: name, kind, size and ideal centre position."""

    name: str
    kind: str
    width: float
    height: float
    ideal_center: Tuple[float, float]


@dataclass
class InsertionReport:
    """Statistics of one insertion run (used by tests and experiments)."""

    placed_free: int = 0
    placed_by_displacement: int = 0
    total_displacement: float = 0.0


def insert_components(
    existing: Sequence[PlacedComponent],
    new_components: Sequence[NewComponent],
    *,
    search_radius: float = 1.5,
    grid_step: float = 0.1,
    report: Optional[InsertionReport] = None,
) -> List[PlacedComponent]:
    """Insert ``new_components`` into a placed layer, removing all overlap.

    Args:
        existing: Already-placed components of one layer (all same layer).
        new_components: Components to add, in insertion order. As in the
            paper, earlier insertions may create gaps that later ones reuse.
        search_radius: Radius (mm) of the free-space search around the ideal
            position — "the area in which we look for free space is the same
            for all of the switches, as it is given as a constant".
        grid_step: Resolution of the candidate-position search.
        report: Optional statistics accumulator.

    Returns:
        A new component list: every input component (possibly displaced)
        plus the new ones, overlap-free.
    """
    layers = {c.layer for c in existing}
    if len(layers) > 1:
        raise FloorplanError(
            f"insert_components works on a single layer, got layers {sorted(layers)}"
        )
    layer = layers.pop() if layers else 0
    if report is None:
        report = InsertionReport()

    names = [c.name for c in existing]
    kinds = [c.kind for c in existing]
    rects = [c.rect for c in existing]
    original = {c.name: c.rect for c in existing}

    for comp in new_components:
        ideal_x = max(0.0, comp.ideal_center[0] - comp.width / 2.0)
        ideal_y = max(0.0, comp.ideal_center[1] - comp.height / 2.0)
        target = Rect(ideal_x, ideal_y, comp.width, comp.height)

        spot = _find_free_spot(target, rects, search_radius, grid_step)
        if spot is not None:
            rects.append(spot)
            report.placed_free += 1
        else:
            rects.append(target)
            _displace(rects, len(rects) - 1)
            report.placed_by_displacement += 1
        names.append(comp.name)
        kinds.append(comp.kind)

    for name, rect in zip(names, rects):
        if name in original:
            old = original[name]
            report.total_displacement += abs(rect.x - old.x) + abs(rect.y - old.y)

    return [
        PlacedComponent(name=n, kind=k, rect=r, layer=layer)
        for n, k, r in zip(names, kinds, rects)
    ]


# --------------------------------------------------------------------------
# internals
# --------------------------------------------------------------------------

def _find_free_spot(
    target: Rect,
    placed: Sequence[Rect],
    search_radius: float,
    grid_step: float,
) -> Optional[Rect]:
    """Nearest overlap-free position for ``target`` within the search radius.

    Candidate offsets form a grid of pitch ``grid_step`` over the search
    square, visited in increasing Manhattan distance from the ideal position,
    so the first hit is the closest free spot at that resolution. The grid
    (rather than a sparse ring scan) matters in tightly packed floorplans,
    where the only free space is thin slivers between cores.
    """
    if not _overlaps_any(target, placed):
        return target

    steps = max(1, int(math.ceil(search_radius / grid_step)))
    offsets = []
    for i in range(-steps, steps + 1):
        for j in range(-steps, steps + 1):
            if i == 0 and j == 0:
                continue
            dx, dy = i * grid_step, j * grid_step
            offsets.append((abs(dx) + abs(dy), dx, dy))
    offsets.sort()
    for _dist, dx, dy in offsets:
        x = target.x + dx
        y = target.y + dy
        if x < 0 or y < 0:
            continue
        candidate = target.moved_to(x, y)
        if not _overlaps_any(candidate, placed):
            return candidate
    return None


def _overlaps_any(rect: Rect, placed: Sequence[Rect]) -> bool:
    return any(rects_overlap(rect, other) for other in placed)


def _displace(rects: List[Rect], new_index: int) -> None:
    """Resolve overlaps with ``rects[new_index]`` by cascading pushes.

    Tries pushing in +x and +y, keeps the direction with the smaller total
    displacement (the paper displaces "in the x or y direction").
    """
    for_x = _cascade(rects, new_index, axis=0)
    for_y = _cascade(rects, new_index, axis=1)
    chosen = for_x if for_x[0] <= for_y[0] else for_y
    _, moved = chosen
    for idx, rect in moved.items():
        rects[idx] = rect


def _cascade(
    rects: Sequence[Rect], new_index: int, axis: int
) -> Tuple[float, dict]:
    """Simulate pushing all conflicting blocks along ``axis`` (0=x, 1=y).

    Returns (total displacement, {index: new rect}). The new component at
    ``new_index`` never moves. Pushes strictly increase the pushed
    coordinate, so the cascade terminates.
    """
    working = {i: r for i, r in enumerate(rects)}
    total = 0.0
    # Worklist of blocks that may overlap something and must be checked
    # against all others; start from the inserted block.
    frontier = [new_index]
    guard = 0
    while frontier:
        guard += 1
        if guard > 10_000:
            raise FloorplanError("displacement cascade failed to converge")
        pusher = frontier.pop(0)
        pr = working[pusher]
        for idx in sorted(working):
            if idx == pusher or idx == new_index:
                continue
            r = working[idx]
            if rects_overlap(pr, r):
                if axis == 0:
                    shift = pr.x2 - r.x
                    moved = r.translated(shift, 0.0)
                else:
                    shift = pr.y2 - r.y
                    moved = r.translated(0.0, shift)
                working[idx] = moved
                total += shift
                frontier.append(idx)
    changed = {
        i: r for i, r in working.items() if r is not rects[i] and i != new_index
    }
    return total, changed
