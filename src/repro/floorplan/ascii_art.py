"""ASCII rendering of floorplans (terminal-friendly Figs. 15/16).

The paper's floorplan figures are drawings; for a terminal tool, an ASCII
raster is the closest equivalent. Each layer becomes a character grid:
cores print the first letter(s) of their name, switches ``#``, TSV macros
``+``, empty silicon ``.``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.floorplan.placement import ChipFloorplan


def render_layer(
    floorplan: ChipFloorplan,
    layer: int,
    width_chars: int = 64,
) -> str:
    """Render one layer of the floorplan as an ASCII grid."""
    comps = floorplan.in_layer(layer)
    if not comps:
        return f"(layer {layer}: empty)"
    bbox = floorplan.layer_bbox(layer)
    if bbox.width <= 0 or bbox.height <= 0:
        return f"(layer {layer}: degenerate bbox)"

    scale = width_chars / bbox.width
    height_chars = max(3, int(round(bbox.height * scale * 0.5)))  # 2:1 aspect
    grid: List[List[str]] = [
        ["." for _ in range(width_chars)] for _ in range(height_chars)
    ]
    labels: Dict[str, str] = {}

    def to_col(x: float) -> int:
        return min(width_chars - 1, max(0, int((x - bbox.x) * scale)))

    def to_row(y: float) -> int:
        # Row 0 is the TOP of the drawing.
        frac = (y - bbox.y) / bbox.height
        return min(height_chars - 1, max(0, height_chars - 1 - int(frac * height_chars)))

    # Draw big components first so small ones stay visible on top.
    for comp in sorted(comps, key=lambda c: -c.rect.area):
        c0, c1 = to_col(comp.rect.x), to_col(comp.rect.x2 - 1e-9)
        r1, r0 = to_row(comp.rect.y), to_row(comp.rect.y2 - 1e-9)
        if comp.kind == "switch":
            fill = "#"
        elif comp.kind == "tsv":
            fill = "+"
        else:
            fill = comp.name[0].upper()
        for r in range(min(r0, r1), max(r0, r1) + 1):
            for c in range(c0, c1 + 1):
                grid[r][c] = fill
        # Stamp a short label inside cores when there is room.
        if comp.kind == "core" and c1 - c0 >= len(comp.name):
            rmid = (r0 + r1) // 2
            for k, ch in enumerate(comp.name[: c1 - c0]):
                grid[rmid][c0 + 1 + k] = ch
        labels[comp.name] = fill

    lines = [f"layer {layer}  ({bbox.width:.2f} x {bbox.height:.2f} mm)"]
    lines.extend("".join(row) for row in grid)
    return "\n".join(lines)


def render_floorplan(floorplan: ChipFloorplan, width_chars: int = 64) -> str:
    """Render every layer, bottom to top."""
    parts = []
    for layer in range(floorplan.num_layers):
        parts.append(render_layer(floorplan, layer, width_chars))
    legend = "legend: letters = cores, # = switch, + = TSV macro, . = free"
    return ("\n\n".join(parts)) + "\n" + legend
