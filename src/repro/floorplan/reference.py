"""Frozen pre-optimisation floorplan annealing: the naive baselines.

This module preserves, verbatim, the two annealing loops as they existed
before the :class:`~repro.floorplan.engine._AnnealState` overhaul: every
move rebuilds a validated :class:`SequencePair`, reruns the full numpy
longest-path packing via :func:`seqpair_to_positions` and re-sums every
net. It exists for two reasons (the :mod:`repro.engine.reference` pattern):

* **regression** — tests assert the incremental
  :func:`repro.floorplan.annealer.anneal_floorplan` and
  :func:`repro.floorplan.constrained.constrained_insert` produce
  *bit-identical* accepted-move trajectories and final floorplans;
* **benchmarking** — ``BENCH_engine.json``'s ``floorplan`` section reports
  the incremental/naive moves-per-second speedup, and the claim only means
  something against the genuine old code.

The unchanged substrate (:class:`SequencePair`, :func:`seqpair_to_positions`,
:func:`positions_to_seqpair`) is shared with the optimised modules — it was
kept as the frozen public API, so sharing keeps the baseline honest.

Do not "optimise" this module.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import FloorplanError
from repro.floorplan.annealer import AnchorNets, FloorplanResult, PairNets
from repro.floorplan.geometry import Rect
from repro.floorplan.inserter import NewComponent
from repro.floorplan.placement import PlacedComponent
from repro.floorplan.sequence_pair import (
    SequencePair,
    positions_to_seqpair,
    seqpair_to_positions,
)
from repro.rng import make_rng


# --------------------------------------------------------------------------
# the naive per-move evaluation (shared by both loops and the tests)
# --------------------------------------------------------------------------

def naive_evaluate_floorplan(
    sp: SequencePair,
    widths: Sequence[float],
    heights: Sequence[float],
    nets: Optional[PairNets] = None,
    anchors: Optional[AnchorNets] = None,
) -> Tuple[float, float, List[Tuple[float, float]]]:
    """One full from-scratch evaluation: pack, area, wirelength."""
    pos = seqpair_to_positions(sp, widths, heights)
    area = _packed_area(pos, widths, heights)
    wl = _wirelength(pos, widths, heights, dict(nets or {}), dict(anchors or {}))
    return area, wl, pos


def _packed_area(
    positions: Sequence[Tuple[float, float]],
    widths: Sequence[float],
    heights: Sequence[float],
) -> float:
    w = max(x + widths[i] for i, (x, _) in enumerate(positions))
    h = max(y + heights[i] for i, (_, y) in enumerate(positions))
    return w * h


def _wirelength(
    positions: Sequence[Tuple[float, float]],
    widths: Sequence[float],
    heights: Sequence[float],
    nets: Dict[Tuple[int, int], float],
    anchors: Dict[Tuple[int, Tuple[float, float]], float],
) -> float:
    def center(i: int) -> Tuple[float, float]:
        x, y = positions[i]
        return (x + widths[i] / 2.0, y + heights[i] / 2.0)

    total = 0.0
    for (a, b), weight in nets.items():
        ca, cb = center(a), center(b)
        total += weight * (abs(ca[0] - cb[0]) + abs(ca[1] - cb[1]))
    for (a, point), weight in anchors.items():
        ca = center(a)
        total += weight * (abs(ca[0] - point[0]) + abs(ca[1] - point[1]))
    return total


def _perturb(sp: SequencePair, rng) -> SequencePair:
    n = sp.n
    i, j = rng.randrange(n), rng.randrange(n)
    while j == i:
        j = rng.randrange(n)
    move = rng.randrange(3)
    if move == 0:
        return sp.with_swap_positive(i, j)
    if move == 1:
        return sp.with_swap_negative(i, j)
    return sp.with_swap_both(i, j)


# --------------------------------------------------------------------------
# the naive annealer (pre-incremental anneal_floorplan, verbatim)
# --------------------------------------------------------------------------

def naive_anneal_floorplan(
    widths: Sequence[float],
    heights: Sequence[float],
    nets: Optional[PairNets] = None,
    anchors: Optional[AnchorNets] = None,
    *,
    wirelength_weight: float = 1.0,
    seed: int = 0,
    moves: int = 4000,
    initial_temperature: float = 1.0,
    cooling: float = 0.995,
    initial_sp: Optional[SequencePair] = None,
) -> FloorplanResult:
    """Floorplan with the pre-incremental hot path (reference)."""
    n = len(widths)
    if n == 0:
        raise ValueError("cannot floorplan zero blocks")
    if len(heights) != n:
        raise ValueError("widths and heights must have equal length")
    nets = dict(nets or {})
    anchors = dict(anchors or {})

    rng = make_rng(seed, "floorplan-anneal")
    sp = initial_sp if initial_sp is not None else SequencePair.grid(n)
    if sp.n != n:
        raise ValueError(f"initial sequence pair has {sp.n} blocks, expected {n}")

    def evaluate(sp_: SequencePair) -> Tuple[float, float, List[Tuple[float, float]]]:
        pos = seqpair_to_positions(sp_, widths, heights)
        area = _packed_area(pos, widths, heights)
        wl = _wirelength(pos, widths, heights, nets, anchors)
        return area, wl, pos

    area0, wl0, pos0 = evaluate(sp)
    area_scale = area0 if area0 > 0 else 1.0
    wl_scale = wl0 if wl0 > 0 else 1.0

    def cost_of(area: float, wl: float) -> float:
        return area / area_scale + wirelength_weight * wl / wl_scale

    current_cost = cost_of(area0, wl0)
    best = FloorplanResult(
        positions=pos0, sequence_pair=sp, area=area0, wirelength=wl0,
        cost=current_cost, moves_evaluated=0,
    )

    temperature = initial_temperature
    evaluated = 0
    for _ in range(moves):
        if n == 1:
            break
        candidate = _perturb(sp, rng)
        area, wl, pos = evaluate(candidate)
        cand_cost = cost_of(area, wl)
        evaluated += 1
        accept = cand_cost <= current_cost or (
            temperature > 1e-12
            and rng.random() < math.exp((current_cost - cand_cost) / temperature)
        )
        if accept:
            sp = candidate
            current_cost = cand_cost
            if cand_cost < best.cost:
                best = FloorplanResult(
                    positions=pos, sequence_pair=sp, area=area, wirelength=wl,
                    cost=cand_cost, moves_evaluated=evaluated,
                )
        temperature *= cooling

    best.moves_evaluated = evaluated
    return best


# --------------------------------------------------------------------------
# the naive constrained inserter (pre-incremental constrained_insert)
# --------------------------------------------------------------------------

def naive_constrained_insert(
    existing: Sequence[PlacedComponent],
    new_components: Sequence[NewComponent],
    *,
    seed: int = 0,
    moves: int = 3000,
    displacement_weight: float = 1.0,
    initial_temperature: float = 1.0,
    cooling: float = 0.995,
) -> List[PlacedComponent]:
    """Constrained insertion with the pre-incremental hot path (reference)."""
    layers = {c.layer for c in existing}
    if len(layers) > 1:
        raise FloorplanError(
            f"constrained_insert works on a single layer, got {sorted(layers)}"
        )
    layer = layers.pop() if layers else 0

    n_cores = len(existing)
    n_new = len(new_components)
    if n_new == 0:
        return list(existing)

    widths = [c.rect.width for c in existing] + [c.width for c in new_components]
    heights = [c.rect.height for c in existing] + [c.height for c in new_components]
    positions = [(c.rect.x, c.rect.y) for c in existing] + [
        (
            max(0.0, c.ideal_center[0] - c.width / 2.0),
            max(0.0, c.ideal_center[1] - c.height / 2.0),
        )
        for c in new_components
    ]
    ideals = [c.ideal_center for c in new_components]

    sp = positions_to_seqpair(positions, widths, heights)
    new_ids = set(range(n_cores, n_cores + n_new))

    core_anchors = [
        (c.rect.x + c.rect.width / 2.0, c.rect.y + c.rect.height / 2.0)
        for c in existing
    ]

    def evaluate(sp_: SequencePair) -> Tuple[float, float]:
        pos = seqpair_to_positions(sp_, widths, heights)
        area = max(p[0] + widths[i] for i, p in enumerate(pos)) * max(
            p[1] + heights[i] for i, p in enumerate(pos)
        )
        disp = 0.0
        for j, bid in enumerate(range(n_cores, n_cores + n_new)):
            cx = pos[bid][0] + widths[bid] / 2.0
            cy = pos[bid][1] + heights[bid] / 2.0
            disp += abs(cx - ideals[j][0]) + abs(cy - ideals[j][1])
        for i in range(n_cores):
            cx = pos[i][0] + widths[i] / 2.0
            cy = pos[i][1] + heights[i] / 2.0
            disp += abs(cx - core_anchors[i][0]) + abs(cy - core_anchors[i][1])
        return area, disp

    area0, disp0 = evaluate(sp)
    area_scale = area0 if area0 > 0 else 1.0
    diag = max(c.rect.x2 for c in existing) + max(c.rect.y2 for c in existing) \
        if existing else 1.0
    disp_scale = max(diag * max(1, n_cores + n_new) * 0.25, 1e-9)

    def cost(area: float, disp: float) -> float:
        return area / area_scale + displacement_weight * disp / disp_scale

    rng = make_rng(seed, "constrained-insert")
    current = cost(area0, disp0)
    best_sp, best_cost = sp, current
    temperature = initial_temperature

    for _ in range(moves):
        candidate = _relocate_new_block(sp, new_ids, rng)
        if candidate is None:
            break
        area, disp = evaluate(candidate)
        cand = cost(area, disp)
        if cand <= current or (
            temperature > 1e-12
            and rng.random() < math.exp((current - cand) / temperature)
        ):
            sp, current = candidate, cand
            if cand < best_cost:
                best_sp, best_cost = candidate, cand
        temperature *= cooling

    final_positions = seqpair_to_positions(best_sp, widths, heights)
    out: List[PlacedComponent] = []
    for i, comp in enumerate(existing):
        x, y = final_positions[i]
        out.append(
            PlacedComponent(
                name=comp.name, kind=comp.kind,
                rect=comp.rect.moved_to(x, y), layer=layer,
            )
        )
    for j, comp in enumerate(new_components):
        x, y = final_positions[n_cores + j]
        out.append(
            PlacedComponent(
                name=comp.name, kind=comp.kind,
                rect=Rect(x, y, comp.width, comp.height), layer=layer,
            )
        )
    return out


def _relocate_new_block(
    sp: SequencePair, new_ids: Set[int], rng
) -> Optional[SequencePair]:
    """Move one network-component entry to a new slot in one/both sequences."""
    if not new_ids:
        return None
    block = rng.choice(sorted(new_ids))
    which = rng.randrange(3)  # 0: positive, 1: negative, 2: both

    positive = list(sp.positive)
    negative = list(sp.negative)
    if which in (0, 2):
        positive.remove(block)
        positive.insert(rng.randrange(len(positive) + 1), block)
    if which in (1, 2):
        negative.remove(block)
        negative.insert(rng.randrange(len(negative) + 1), block)
    return SequencePair(positive=tuple(positive), negative=tuple(negative))
