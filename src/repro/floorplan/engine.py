"""Incremental sequence-pair annealing evaluation engine.

The pre-optimisation annealers rebuilt a validated :class:`SequencePair`,
re-imported numpy, reallocated arrays, reran the full longest-path packing
and re-summed every net on *every* move — several hundred microseconds per
move dominated by small-array numpy overhead and permutation re-validation.
:class:`_AnnealState` replaces all of that with a mutable, array-based state
that persists across moves:

* **in-place moves with undo** — the two permutations live in plain lists
  with rank (inverse-permutation) arrays kept alongside; swaps are O(1),
  relocations O(shift range), and every mutation appends its inverse to a
  journal so a rejected move is undone without any recomputation;
* **allocation-free packing** — the classic longest-path evaluation runs in
  preallocated buffers with cached ``x + width`` / ``y + height`` partial
  sums, no numpy round-trips and no per-move allocation;
* **delta wirelength** — every net is a *term*; per-block adjacency lists
  map a moved block to the terms it touches, so a move only recomputes the
  incident terms and the total is re-accumulated from cached values in a
  fixed order.

Bit-exactness
-------------

The regression suite asserts the incremental engine reproduces the frozen
naive baselines of :mod:`repro.floorplan.reference` *bit for bit* — same
accepted-move trajectory, same final floorplan. That guarantee rests on
three observations:

1. IEEE-754 double addition is the same operation in numpy and in pure
   Python, so ``x + w`` produces identical bits either way, and ``max`` over
   the same set of doubles is order-independent;
2. the packing therefore yields identical coordinates, and a cached term
   value equals a fresh recomputation whenever its endpoint coordinates are
   unchanged — which is exactly the condition under which we skip it;
3. the wirelength total is accumulated left-to-right over the terms in net
   declaration order — the same order (nets, then anchors) and the same
   float-addition sequence as the naive evaluator's loop.

The state never normalises, reassociates or fuses any floating-point
expression the naive evaluators compute; it only skips recomputing values
that are provably identical.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

from repro.floorplan.sequence_pair import SequencePair

#: Undo-journal entry codes (index 0 of each entry).
_SWAP = 0
_RELOC = 1


class _AnnealState:
    """Mutable incremental evaluator for sequence-pair annealing.

    Move protocol (one move at a time)::

        state.begin_move()
        state.swap_both(i, j)            # or any other move op(s)
        area, wl = state.evaluate()
        if accepted:
            state.commit()
        else:
            state.revert()               # restores sequences *and* terms

    ``area`` / ``wirelength`` attributes hold the *initial* evaluation (for
    cost normalisation); after that the caller tracks costs itself.
    """

    __slots__ = (
        "n", "widths", "heights", "positive", "negative", "prank", "nrank",
        "cur_x", "cur_y", "cand_x", "cand_y", "area", "wirelength",
        "_xw", "_yh", "_hw", "_hh",
        "_ta", "_tb", "_tw", "_tpx", "_tpy", "_adj", "terms",
        "_stamp", "_epoch", "_journal", "_term_undo",
    )

    def __init__(
        self,
        sp: SequencePair,
        widths: Sequence[float],
        heights: Sequence[float],
        nets: Optional[Mapping[Tuple[int, int], float]] = None,
        anchors: Optional[Mapping[Tuple[int, Tuple[float, float]], float]] = None,
    ) -> None:
        n = sp.n
        if len(widths) != n or len(heights) != n:
            raise ValueError(
                f"need {n} widths/heights, got {len(widths)}/{len(heights)}"
            )
        self.n = n
        self.widths = [float(w) for w in widths]
        self.heights = [float(h) for h in heights]
        self._hw = [w / 2.0 for w in self.widths]
        self._hh = [h / 2.0 for h in self.heights]

        self.positive: List[int] = list(sp.positive)
        self.negative: List[int] = list(sp.negative)
        self.prank = [0] * n
        self.nrank = [0] * n
        for r, b in enumerate(self.positive):
            self.prank[b] = r
        for r, b in enumerate(self.negative):
            self.nrank[b] = r

        self.cur_x = [0.0] * n
        self.cur_y = [0.0] * n
        self.cand_x = [0.0] * n
        self.cand_y = [0.0] * n
        self._xw = [0.0] * n
        self._yh = [0.0] * n

        # Terms: nets first, then anchors — the naive evaluator's sum order.
        self._ta: List[int] = []
        self._tb: List[int] = []
        self._tw: List[float] = []
        self._tpx: List[float] = []
        self._tpy: List[float] = []
        self._adj: List[List[int]] = [[] for _ in range(n)]
        for (a, b), weight in (nets or {}).items():
            ti = len(self._ta)
            self._ta.append(a)
            self._tb.append(b)
            self._tw.append(weight)
            self._tpx.append(0.0)
            self._tpy.append(0.0)
            self._adj[a].append(ti)
            self._adj[b].append(ti)
        for (a, point), weight in (anchors or {}).items():
            ti = len(self._ta)
            self._ta.append(a)
            self._tb.append(-1)
            self._tw.append(weight)
            self._tpx.append(point[0])
            self._tpy.append(point[1])
            self._adj[a].append(ti)

        self.terms = [0.0] * len(self._ta)
        self._stamp = [0] * len(self._ta)
        self._epoch = 0
        self._journal: List[tuple] = []
        self._term_undo: List[Tuple[int, float]] = []

        # Initial full evaluation into the current buffers.
        self.area = self._pack()
        self.cur_x, self.cand_x = self.cand_x, self.cur_x
        self.cur_y, self.cand_y = self.cand_y, self.cur_y
        terms = self.terms
        for ti in range(len(terms)):
            terms[ti] = self._term_value(ti, self.cur_x, self.cur_y)
        wl = 0.0
        for value in terms:
            wl += value
        self.wirelength = wl

    # -- move application ---------------------------------------------------

    def begin_move(self) -> None:
        """Start a fresh move (clears the undo journals)."""
        self._journal.clear()
        self._term_undo.clear()

    def swap_positive(self, i: int, j: int) -> None:
        """Swap the entries at positions ``i`` and ``j`` of Gamma+."""
        self._swap(self.positive, self.prank, i, j)

    def swap_negative(self, i: int, j: int) -> None:
        """Swap the entries at positions ``i`` and ``j`` of Gamma-."""
        self._swap(self.negative, self.nrank, i, j)

    def swap_both(self, i: int, j: int) -> None:
        """Swap the blocks at Gamma+ positions ``i``/``j`` in both sequences
        (the exact semantics of :meth:`SequencePair.with_swap_both`)."""
        pos = self.positive
        u, v = pos[i], pos[j]
        self._swap(pos, self.prank, i, j)
        nrank = self.nrank
        self._swap(self.negative, nrank, nrank[v], nrank[u])

    def relocate_positive(self, block: int, slot: int) -> None:
        """Remove ``block`` from Gamma+ and re-insert it at ``slot``."""
        self._relocate(self.positive, self.prank, block, slot)

    def relocate_negative(self, block: int, slot: int) -> None:
        """Remove ``block`` from Gamma- and re-insert it at ``slot``."""
        self._relocate(self.negative, self.nrank, block, slot)

    def _swap(self, seq: List[int], rank: List[int], i: int, j: int) -> None:
        a, b = seq[i], seq[j]
        seq[i] = b
        seq[j] = a
        rank[a] = j
        rank[b] = i
        self._journal.append((_SWAP, seq, rank, i, j))

    def _relocate(
        self, seq: List[int], rank: List[int], block: int, slot: int
    ) -> None:
        r = rank[block]
        if slot != r:
            del seq[r]
            seq.insert(slot, block)
            lo, hi = (slot, r) if slot < r else (r, slot)
            for k in range(lo, hi + 1):
                rank[seq[k]] = k
        self._journal.append((_RELOC, seq, rank, block, r, slot))

    # -- evaluation ---------------------------------------------------------

    def _pack(self) -> float:
        """Longest-path packing into the candidate buffers; returns area.

        Identical values to ``seqpair_to_positions`` + ``_packed_area``: the
        maxima range over the same ``x + width`` / ``y + height`` doubles.
        """
        n = self.n
        neg = self.negative
        prank = self.prank
        xs = self.cand_x
        ys = self.cand_y
        xw = self._xw
        yh = self._yh
        widths = self.widths
        heights = self.heights
        max_w = 0.0
        max_h = 0.0
        for k in range(n):
            b = neg[k]
            rb = prank[b]
            bx = 0.0
            by = 0.0
            for t in range(k):
                a = neg[t]
                if prank[a] < rb:
                    v = xw[a]
                    if v > bx:
                        bx = v
                else:
                    v = yh[a]
                    if v > by:
                        by = v
            xs[b] = bx
            ys[b] = by
            v = bx + widths[b]
            xw[b] = v
            if v > max_w:
                max_w = v
            v = by + heights[b]
            yh[b] = v
            if v > max_h:
                max_h = v
        return max_w * max_h

    def _term_value(self, ti: int, xs: List[float], ys: List[float]) -> float:
        a = self._ta[ti]
        cax = xs[a] + self._hw[a]
        cay = ys[a] + self._hh[a]
        b = self._tb[ti]
        if b >= 0:
            cbx = xs[b] + self._hw[b]
            cby = ys[b] + self._hh[b]
            return self._tw[ti] * (abs(cax - cbx) + abs(cay - cby))
        return self._tw[ti] * (abs(cax - self._tpx[ti]) + abs(cay - self._tpy[ti]))

    def evaluate(self) -> Tuple[float, float]:
        """Pack the current sequences and return ``(area, wirelength)``.

        Only terms incident to blocks whose packed position changed are
        recomputed; old values are journalled for :meth:`revert`.
        """
        area = self._pack()
        n = self.n
        cur_x = self.cur_x
        cur_y = self.cur_y
        cand_x = self.cand_x
        cand_y = self.cand_y
        adj = self._adj
        terms = self.terms
        stamp = self._stamp
        self._epoch += 1
        epoch = self._epoch
        undo = self._term_undo
        for b in range(n):
            if cand_x[b] != cur_x[b] or cand_y[b] != cur_y[b]:
                for ti in adj[b]:
                    if stamp[ti] != epoch:
                        stamp[ti] = epoch
                        undo.append((ti, terms[ti]))
                        terms[ti] = self._term_value(ti, cand_x, cand_y)
        wl = 0.0
        for value in terms:
            wl += value
        return area, wl

    # -- accept / reject ----------------------------------------------------

    def commit(self) -> None:
        """Accept the evaluated move: candidate buffers become current."""
        self.cur_x, self.cand_x = self.cand_x, self.cur_x
        self.cur_y, self.cand_y = self.cand_y, self.cur_y
        self._journal.clear()
        self._term_undo.clear()

    def revert(self) -> None:
        """Reject the move: undo sequence mutations and term updates."""
        for entry in reversed(self._journal):
            if entry[0] == _SWAP:
                _, seq, rank, i, j = entry
                a, b = seq[i], seq[j]
                seq[i] = b
                seq[j] = a
                rank[a] = j
                rank[b] = i
            else:
                _, seq, rank, block, r, slot = entry
                if slot != r:
                    del seq[slot]
                    seq.insert(r, block)
                    lo, hi = (slot, r) if slot < r else (r, slot)
                    for k in range(lo, hi + 1):
                        rank[seq[k]] = k
        self._journal.clear()
        terms = self.terms
        for ti, old in reversed(self._term_undo):
            terms[ti] = old
        self._term_undo.clear()

    # -- snapshots ----------------------------------------------------------

    def positions(self) -> List[Tuple[float, float]]:
        """Current accepted lower-left block positions (fresh list)."""
        return list(zip(self.cur_x, self.cur_y))

    def sequences(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Cheap immutable snapshot of (Gamma+, Gamma-)."""
        return tuple(self.positive), tuple(self.negative)
