"""Communication specification: traffic flows between cores.

Mirrors the paper's *communication specification file* (Sec. IV): "the
bandwidth of communication across different cores, latency constraints and
message type (request/response) of the different traffic flows".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import SpecError


class MessageType(enum.Enum):
    """Message class of a flow, used for message-dependent deadlock removal.

    Request and response flows are routed on channel-dependency graphs kept
    separate per class (after Hansson et al. [14] / Murali et al. [16]), so a
    response can never wait behind a request of the same transaction.
    """

    REQUEST = "request"
    RESPONSE = "response"

    @classmethod
    def parse(cls, text: str) -> "MessageType":
        try:
            return cls(text.strip().lower())
        except ValueError as exc:
            raise SpecError(
                f"unknown message type {text!r} (expected 'request' or 'response')"
            ) from exc


@dataclass(frozen=True)
class TrafficFlow:
    """A directed communication flow between two cores.

    Attributes:
        src: Source core name.
        dst: Destination core name.
        bandwidth: Average bandwidth demand in MB/s (``bw_{i,j}`` in Def. 2).
        latency: Latency constraint in NoC cycles (``lat_{i,j}`` in Def. 2).
        message_type: Request or response, for deadlock-class separation.
    """

    src: str
    dst: str
    bandwidth: float
    latency: float
    message_type: MessageType = MessageType.REQUEST

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise SpecError(f"flow {self.src!r} -> {self.dst!r}: self loops not allowed")
        if self.bandwidth <= 0:
            raise SpecError(
                f"flow {self.src!r} -> {self.dst!r}: bandwidth must be positive, "
                f"got {self.bandwidth}"
            )
        if self.latency <= 0:
            raise SpecError(
                f"flow {self.src!r} -> {self.dst!r}: latency constraint must be "
                f"positive, got {self.latency}"
            )

    @property
    def endpoints(self) -> Tuple[str, str]:
        return (self.src, self.dst)

    def scaled(self, factor: float) -> "TrafficFlow":
        """A copy with bandwidth scaled by ``factor``."""
        return replace(self, bandwidth=self.bandwidth * factor)


@dataclass
class CommSpec:
    """The full communication specification: a list of directed flows.

    At most one flow may exist per ordered (src, dst) pair; merge duplicate
    demands before constructing the spec.
    """

    flows: List[TrafficFlow] = field(default_factory=list)

    def __post_init__(self) -> None:
        seen = set()
        for flow in self.flows:
            key = (flow.src, flow.dst)
            if key in seen:
                raise SpecError(f"duplicate flow {flow.src!r} -> {flow.dst!r}")
            seen.add(key)

    def __len__(self) -> int:
        return len(self.flows)

    def __iter__(self) -> Iterator[TrafficFlow]:
        return iter(self.flows)

    def __getitem__(self, index: int) -> TrafficFlow:
        return self.flows[index]

    @property
    def core_names(self) -> List[str]:
        """All core names referenced by any flow, in first-seen order."""
        seen: Dict[str, None] = {}
        for flow in self.flows:
            seen.setdefault(flow.src)
            seen.setdefault(flow.dst)
        return list(seen)

    @property
    def max_bandwidth(self) -> float:
        """``max_bw`` of Def. 3: the largest bandwidth over all flows."""
        if not self.flows:
            raise SpecError("communication spec has no flows")
        return max(f.bandwidth for f in self.flows)

    @property
    def min_latency(self) -> float:
        """``min_lat`` of Def. 3: the tightest latency constraint."""
        if not self.flows:
            raise SpecError("communication spec has no flows")
        return min(f.latency for f in self.flows)

    @property
    def total_bandwidth(self) -> float:
        return sum(f.bandwidth for f in self.flows)

    def flow_between(self, src: str, dst: str) -> Optional[TrafficFlow]:
        for flow in self.flows:
            if flow.src == src and flow.dst == dst:
                return flow
        return None

    def flows_from(self, src: str) -> List[TrafficFlow]:
        return [f for f in self.flows if f.src == src]

    def flows_to(self, dst: str) -> List[TrafficFlow]:
        return [f for f in self.flows if f.dst == dst]

    def scaled(self, factor: float) -> "CommSpec":
        """A copy of the spec with every bandwidth scaled by ``factor``."""
        if factor <= 0:
            raise SpecError(f"scale factor must be positive, got {factor}")
        return CommSpec(flows=[f.scaled(factor) for f in self.flows])

    def sorted_by_bandwidth(self) -> List[TrafficFlow]:
        """Flows in decreasing bandwidth order (path-computation order).

        Ties are broken by (src, dst) names so the order is deterministic.
        """
        return sorted(
            self.flows, key=lambda f: (-f.bandwidth, f.src, f.dst)
        )
