"""Core specification: cores, their geometry and 3-D layer assignment.

Mirrors the paper's *core specification file* (Sec. IV): "the name of the
different cores, the sizes, and positions are given as inputs. The assignment
of the cores to the different layers in 3-D is also specified."
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import SpecError


@dataclass(frozen=True)
class Core:
    """A single IP core.

    Attributes:
        name: Unique identifier (e.g. ``"ARM"``, ``"MEM3"``).
        width: Core width in mm.
        height: Core height in mm.
        x: Lower-left x coordinate in mm (within its layer's floorplan).
        y: Lower-left y coordinate in mm.
        layer: 3-D layer index, 0 = bottom die.
    """

    name: str
    width: float
    height: float
    x: float = 0.0
    y: float = 0.0
    layer: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("core name must be non-empty")
        if self.width <= 0 or self.height <= 0:
            raise SpecError(
                f"core {self.name!r}: width/height must be positive "
                f"(got {self.width} x {self.height})"
            )
        if self.layer < 0:
            raise SpecError(f"core {self.name!r}: layer must be >= 0, got {self.layer}")

    @property
    def area(self) -> float:
        """Core area in mm^2."""
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        """(x, y) of the core centre, the point links attach to."""
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    def moved_to(self, x: float, y: float) -> "Core":
        """A copy of this core at a new lower-left position."""
        return replace(self, x=x, y=y)

    def on_layer(self, layer: int) -> "Core":
        """A copy of this core assigned to a different 3-D layer."""
        return replace(self, layer=layer)


@dataclass
class CoreSpec:
    """The full core specification: an ordered collection of :class:`Core`.

    Core order is significant: graph algorithms index cores by their position
    in this list, so the spec also provides name <-> index lookup.
    """

    cores: List[Core] = field(default_factory=list)

    def __post_init__(self) -> None:
        seen = set()
        for core in self.cores:
            if core.name in seen:
                raise SpecError(f"duplicate core name {core.name!r}")
            seen.add(core.name)

    def __len__(self) -> int:
        return len(self.cores)

    def __iter__(self) -> Iterator[Core]:
        return iter(self.cores)

    def __getitem__(self, index: int) -> Core:
        return self.cores[index]

    @property
    def names(self) -> List[str]:
        return [c.name for c in self.cores]

    def index_of(self, name: str) -> int:
        """Index of the core called ``name`` (raises SpecError if absent)."""
        for i, core in enumerate(self.cores):
            if core.name == name:
                return i
        raise SpecError(f"unknown core {name!r}")

    def by_name(self, name: str) -> Core:
        return self.cores[self.index_of(name)]

    @property
    def num_layers(self) -> int:
        """Number of 3-D layers spanned (max layer index + 1)."""
        if not self.cores:
            return 0
        return max(c.layer for c in self.cores) + 1

    def cores_in_layer(self, layer: int) -> List[Core]:
        return [c for c in self.cores if c.layer == layer]

    def indices_in_layer(self, layer: int) -> List[int]:
        return [i for i, c in enumerate(self.cores) if c.layer == layer]

    def layer_of(self, index: int) -> int:
        return self.cores[index].layer

    @property
    def layers(self) -> Dict[int, List[int]]:
        """Mapping layer -> list of core indices, for every populated layer."""
        out: Dict[int, List[int]] = {}
        for i, core in enumerate(self.cores):
            out.setdefault(core.layer, []).append(i)
        return out

    def total_core_area(self, layer: Optional[int] = None) -> float:
        """Sum of core areas, optionally restricted to one layer."""
        cores = self.cores if layer is None else self.cores_in_layer(layer)
        return sum(c.area for c in cores)

    def with_positions(
        self, positions: Sequence[Tuple[float, float]]
    ) -> "CoreSpec":
        """A copy with new lower-left positions, one (x, y) per core."""
        if len(positions) != len(self.cores):
            raise SpecError(
                f"expected {len(self.cores)} positions, got {len(positions)}"
            )
        return CoreSpec(
            cores=[c.moved_to(px, py) for c, (px, py) in zip(self.cores, positions)]
        )

    def with_layers(self, layers: Sequence[int]) -> "CoreSpec":
        """A copy with a new layer assignment, one layer index per core."""
        if len(layers) != len(self.cores):
            raise SpecError(f"expected {len(self.cores)} layers, got {len(layers)}")
        return CoreSpec(cores=[c.on_layer(l) for c, l in zip(self.cores, layers)])

    def flattened_to_2d(self) -> "CoreSpec":
        """All cores moved to layer 0 (positions untouched).

        Used as a starting point when deriving the 2-D implementation of a 3-D
        benchmark; the 2-D flow then re-floorplans the single die.
        """
        return self.with_layers([0] * len(self.cores))
