"""Input specifications for SunFloor 3D.

The design flow (paper Sec. IV) takes two inputs:

* the **core specification** — core names, sizes, x/y positions and the 3-D
  layer each core is assigned to (:class:`~repro.spec.core_spec.CoreSpec`);
* the **communication specification** — the bandwidth, latency constraint
  and message type of every traffic flow
  (:class:`~repro.spec.comm_spec.CommSpec`).

Both can be read from / written to JSON and a simple line-oriented text
format (:mod:`repro.spec.io`).
"""

from repro.spec.core_spec import Core, CoreSpec
from repro.spec.comm_spec import CommSpec, MessageType, TrafficFlow
from repro.spec.io import (
    load_comm_spec_json,
    load_core_spec_json,
    load_comm_spec_text,
    load_core_spec_text,
    save_comm_spec_json,
    save_core_spec_json,
    save_comm_spec_text,
    save_core_spec_text,
)
from repro.spec.validate import validate_specs

__all__ = [
    "Core",
    "CoreSpec",
    "CommSpec",
    "MessageType",
    "TrafficFlow",
    "load_comm_spec_json",
    "load_core_spec_json",
    "load_comm_spec_text",
    "load_core_spec_text",
    "save_comm_spec_json",
    "save_core_spec_json",
    "save_comm_spec_text",
    "save_core_spec_text",
    "validate_specs",
]
