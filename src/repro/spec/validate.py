"""Cross-validation of core and communication specifications.

A (CoreSpec, CommSpec) pair is the unit of input to the synthesis flow;
:func:`validate_specs` checks the pair for the consistency conditions every
later stage relies on.
"""

from __future__ import annotations

from typing import List

from repro.errors import SpecError
from repro.spec.comm_spec import CommSpec
from repro.spec.core_spec import CoreSpec


def validate_specs(core_spec: CoreSpec, comm_spec: CommSpec) -> None:
    """Raise :class:`SpecError` if the pair of specs is inconsistent.

    Checks:
      * the specs are non-empty,
      * every flow endpoint names a core in the core spec,
      * layer indices are contiguous starting at 0 (no empty layers, which
        would make layer-adjacency constraints meaningless),
      * cores within a layer do not overlap (positions are a legal floorplan).
    """
    if len(core_spec) == 0:
        raise SpecError("core specification is empty")
    if len(comm_spec) == 0:
        raise SpecError("communication specification is empty")

    names = set(core_spec.names)
    for flow in comm_spec:
        if flow.src not in names:
            raise SpecError(f"flow source {flow.src!r} is not a declared core")
        if flow.dst not in names:
            raise SpecError(f"flow destination {flow.dst!r} is not a declared core")

    layers = sorted({c.layer for c in core_spec})
    expected = list(range(len(layers)))
    if layers != expected:
        raise SpecError(
            f"layer indices must be contiguous from 0; populated layers: {layers}"
        )

    for layer in layers:
        cores = core_spec.cores_in_layer(layer)
        overlaps = _find_overlaps(cores)
        if overlaps:
            a, b = overlaps[0]
            raise SpecError(
                f"cores {a!r} and {b!r} overlap in layer {layer}; "
                "input positions must form a legal floorplan"
            )


def _find_overlaps(cores) -> List[tuple]:
    """All pairs of cores whose rectangles strictly overlap."""
    bad = []
    for i in range(len(cores)):
        for j in range(i + 1, len(cores)):
            a, b = cores[i], cores[j]
            if _rects_overlap(
                a.x, a.y, a.width, a.height, b.x, b.y, b.width, b.height
            ):
                bad.append((a.name, b.name))
    return bad


def _rects_overlap(
    ax: float, ay: float, aw: float, ah: float,
    bx: float, by: float, bw: float, bh: float,
    eps: float = 1e-9,
) -> bool:
    """Strict overlap test with a small tolerance for shared edges."""
    return (
        ax + aw > bx + eps
        and bx + bw > ax + eps
        and ay + ah > by + eps
        and by + bh > ay + eps
    )
