"""Readers and writers for the specification files.

Two on-disk formats are supported:

* **JSON** — the canonical machine format.
* **Text** — a simple line-oriented format close to what EDA tools of the
  paper's era consumed, convenient for hand-editing::

      # core spec:      name width height x y layer
      core ARM 1.2 1.0 0.0 0.0 0
      # comm spec:      src dst bandwidth_mbps latency_cycles type
      flow ARM MEM0 400 6 request
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import SpecError
from repro.spec.comm_spec import CommSpec, MessageType, TrafficFlow
from repro.spec.core_spec import Core, CoreSpec

PathLike = Union[str, Path]


# --------------------------------------------------------------------------
# JSON format
# --------------------------------------------------------------------------

def core_spec_to_dict(spec: CoreSpec) -> dict:
    return {
        "cores": [
            {
                "name": c.name,
                "width": c.width,
                "height": c.height,
                "x": c.x,
                "y": c.y,
                "layer": c.layer,
            }
            for c in spec
        ]
    }


def core_spec_from_dict(data: dict) -> CoreSpec:
    if "cores" not in data:
        raise SpecError("core spec JSON must contain a 'cores' list")
    cores = []
    for entry in data["cores"]:
        try:
            cores.append(
                Core(
                    name=str(entry["name"]),
                    width=float(entry["width"]),
                    height=float(entry["height"]),
                    x=float(entry.get("x", 0.0)),
                    y=float(entry.get("y", 0.0)),
                    layer=int(entry.get("layer", 0)),
                )
            )
        except KeyError as exc:
            raise SpecError(f"core entry missing field {exc}") from exc
    return CoreSpec(cores=cores)


def comm_spec_to_dict(spec: CommSpec) -> dict:
    return {
        "flows": [
            {
                "src": f.src,
                "dst": f.dst,
                "bandwidth": f.bandwidth,
                "latency": f.latency,
                "message_type": f.message_type.value,
            }
            for f in spec
        ]
    }


def comm_spec_from_dict(data: dict) -> CommSpec:
    if "flows" not in data:
        raise SpecError("communication spec JSON must contain a 'flows' list")
    flows = []
    for entry in data["flows"]:
        try:
            flows.append(
                TrafficFlow(
                    src=str(entry["src"]),
                    dst=str(entry["dst"]),
                    bandwidth=float(entry["bandwidth"]),
                    latency=float(entry["latency"]),
                    message_type=MessageType.parse(
                        entry.get("message_type", "request")
                    ),
                )
            )
        except KeyError as exc:
            raise SpecError(f"flow entry missing field {exc}") from exc
    return CommSpec(flows=flows)


def save_core_spec_json(spec: CoreSpec, path: PathLike) -> None:
    Path(path).write_text(json.dumps(core_spec_to_dict(spec), indent=2))


def load_core_spec_json(path: PathLike) -> CoreSpec:
    return core_spec_from_dict(json.loads(Path(path).read_text()))


def save_comm_spec_json(spec: CommSpec, path: PathLike) -> None:
    Path(path).write_text(json.dumps(comm_spec_to_dict(spec), indent=2))


def load_comm_spec_json(path: PathLike) -> CommSpec:
    return comm_spec_from_dict(json.loads(Path(path).read_text()))


# --------------------------------------------------------------------------
# Text format
# --------------------------------------------------------------------------

def save_core_spec_text(spec: CoreSpec, path: PathLike) -> None:
    lines = ["# name width height x y layer"]
    for c in spec:
        lines.append(f"core {c.name} {c.width:g} {c.height:g} {c.x:g} {c.y:g} {c.layer}")
    Path(path).write_text("\n".join(lines) + "\n")


def load_core_spec_text(path: PathLike) -> CoreSpec:
    cores = []
    for lineno, raw in enumerate(Path(path).read_text().splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if parts[0] != "core" or len(parts) != 7:
            raise SpecError(f"{path}:{lineno}: expected 'core name w h x y layer'")
        try:
            cores.append(
                Core(
                    name=parts[1],
                    width=float(parts[2]),
                    height=float(parts[3]),
                    x=float(parts[4]),
                    y=float(parts[5]),
                    layer=int(parts[6]),
                )
            )
        except ValueError as exc:
            raise SpecError(f"{path}:{lineno}: {exc}") from exc
    return CoreSpec(cores=cores)


def save_comm_spec_text(spec: CommSpec, path: PathLike) -> None:
    lines = ["# src dst bandwidth_mbps latency_cycles message_type"]
    for f in spec:
        lines.append(
            f"flow {f.src} {f.dst} {f.bandwidth:g} {f.latency:g} {f.message_type.value}"
        )
    Path(path).write_text("\n".join(lines) + "\n")


def load_comm_spec_text(path: PathLike) -> CommSpec:
    flows = []
    for lineno, raw in enumerate(Path(path).read_text().splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if parts[0] != "flow" or len(parts) not in (5, 6):
            raise SpecError(
                f"{path}:{lineno}: expected 'flow src dst bw lat [type]'"
            )
        try:
            flows.append(
                TrafficFlow(
                    src=parts[1],
                    dst=parts[2],
                    bandwidth=float(parts[3]),
                    latency=float(parts[4]),
                    message_type=(
                        MessageType.parse(parts[5])
                        if len(parts) == 6
                        else MessageType.REQUEST
                    ),
                )
            )
        except ValueError as exc:
            raise SpecError(f"{path}:{lineno}: {exc}") from exc
    return CommSpec(flows=flows)
