"""Wormhole simulator — array-based engine + parallel campaign gate.

Not a paper figure: this is the repo's own perf-trajectory gate for the
:mod:`repro.noc.simengine` overhaul. It runs
:func:`repro.engine.benchmark.run_simulator_benchmark` (the same routine
whose numbers ``python -m repro.cli bench`` embeds in the ``simulator``
section of ``BENCH_engine.json``), echoes the numbers, and asserts

* the array-based engine and the frozen naive baseline of
  :mod:`repro.noc.reference` produce *bit-identical* simulation statistics
  (packets, latencies, per-flow breakdowns, drain length) at every
  measured load;
* the engine beats the naive baseline by >= 3x single-threaded cycles/sec
  at the validation load (a same-core claim, asserted everywhere; the
  saturation-load speedup is recorded without a floor — under full load
  the event-driven advantage shrinks by design);
* the (seed × injection scale) traffic campaign merges identically serial
  vs parallel, and — only when the machine actually has >= 4 CPUs — the
  parallel leg beats the serial one by >= 2x wall-clock. On smaller boxes
  (CI containers pinned to one core) the speedup is recorded but not
  asserted, since a CPU-bound speedup beyond the core count is physically
  impossible;
* the vectorised K-replication batch engine (:mod:`repro.noc.batchengine`)
  delivers >= 10x the replications/sec of the pre-vectorisation
  per-process campaign loop — solo frozen-reference runs, one replication
  per process, the same baseline as the single-thread gate, so the floors
  compose (the array engine bought ~4x per run; batching takes the same
  comparison past 10x). Both sides run single-process on one core, so the
  floor is CPU-count independent. The further batch-vs-solo-array-engine
  ratio is recorded ungated, and a traced small batch is asserted
  bit-identical — stats and per-cycle trajectories — to solo engine runs
  and the frozen reference, replication by replication.
"""

import pytest

from repro.engine.benchmark import run_simulator_benchmark

CAMPAIGN_JOBS = 4
SINGLE_THREAD_SPEEDUP_FLOOR = 3.0
CAMPAIGN_SPEEDUP_FLOOR = 2.0
BATCH_PER_CORE_SPEEDUP_FLOOR = 10.0


def _run():
    return run_simulator_benchmark(quick=True, jobs=CAMPAIGN_JOBS, log=print)


def test_simulator_engine_speedup(benchmark):
    report = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(f"cpu_count={report['cpu_count']} "
          f"single-thread={report['speedup']}x "
          f"({report['engine_cycles_per_s']:,.0f} cycles/s) "
          f"saturation={report['saturation']['speedup']}x "
          f"campaign={report['campaign']['speedup']}x "
          f"batch={report['batch']['speedup_vs_reference']}x/core")

    # Bit-identity is the contract that makes the speedup meaningful.
    assert report["identical_results"]
    assert report["saturation"]["identical_results"]
    assert report["campaign"]["identical_results"]
    assert report["batch"]["identical_trajectories"]

    # Single-threaded cycles/sec at validation load: same core, so the
    # floor holds everywhere.
    assert report["speedup"] >= SINGLE_THREAD_SPEEDUP_FLOOR, (
        f"simulator engine speedup {report['speedup']}x below "
        f"{SINGLE_THREAD_SPEEDUP_FLOOR}x"
    )

    # Batch engine: replications/sec on one core vs the per-process
    # reference loop on the same core — single-process on both sides, so
    # the floor is CPU-count independent.
    batch = report["batch"]
    assert batch["speedup_vs_reference"] >= BATCH_PER_CORE_SPEEDUP_FLOOR, (
        f"batch engine {batch['speedup_vs_reference']}x per core (K="
        f"{batch['replications']}, {batch['batch_reps_per_s']} reps/s vs "
        f"{batch['reference_reps_per_s']} reps/s per-process reference) "
        f"below {BATCH_PER_CORE_SPEEDUP_FLOOR}x"
    )

    # Campaign scaling: only meaningful with cores to run on.
    cpus = report["cpu_count"] or 1
    campaign = report["campaign"]
    if cpus >= CAMPAIGN_JOBS:
        assert campaign["speedup"] >= CAMPAIGN_SPEEDUP_FLOOR, (
            f"campaign speedup {campaign['speedup']}x on {campaign['jobs']} "
            f"worker(s) ({cpus} CPUs) below {CAMPAIGN_SPEEDUP_FLOOR}x"
        )
    else:
        pytest.skip(
            f"only {cpus} CPU(s) visible: recorded campaign speedup "
            f"{campaign['speedup']}x without asserting the "
            f"{CAMPAIGN_SPEEDUP_FLOOR}x floor (needs >= {CAMPAIGN_JOBS} "
            "CPUs)"
        )
