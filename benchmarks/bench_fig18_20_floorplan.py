"""Figs. 18-20 — custom insertion routine vs. constrained standard floorplanner.

Paper: the custom routine yields ~20% less die area and ~7.5% less power on
average, and the constrained standard floorplanner is "unpredictable".

Reproduction note (see EXPERIMENTS.md): our re-implemented constrained
baseline — a clean sequence-pair annealer with core-order and displacement
constraints — is a *stronger* floorplanner than the constrained 2003-era
Parquet the paper fought against, and our benchmark input floorplans retain
some whitespace it can legally reclaim. The paper's 20%/7.5% margin therefore
does not reproduce; what does reproduce is the custom routine's core
guarantees: it never disturbs the input floorplan beyond a small bound, its
area tracks the input die closely and predictably across switch counts, and
it stays competitive with the strong baseline.
"""

from conftest import echo

from repro.bench.registry import get_benchmark
from repro.experiments.floorplan_comparison import (
    run_area_vs_switches,
    run_best_point_comparison,
)

BENCHMARKS = ("d26_media", "d36_4", "d35_bot")


def _input_die_area(name: str) -> float:
    bench = get_benchmark(name)
    spec = bench.core_spec_3d
    areas = []
    for layer in range(spec.num_layers):
        cores = spec.cores_in_layer(layer)
        w = max(c.x + c.width for c in cores)
        h = max(c.y + c.height for c in cores)
        areas.append(w * h)
    return max(areas)


def test_fig18_area_vs_switch_count(benchmark, paper_config):
    table = benchmark(run_area_vs_switches, "d26_media", paper_config)
    echo(table)
    rows = [r for r in table.rows if r["custom_mm2"] is not None]
    assert len(rows) >= 3
    input_area = _input_die_area("d26_media")
    # The custom routine "minimally changes the input floorplan": its die
    # area stays within a tight band of the input area for EVERY count.
    for r in rows:
        assert r["custom_mm2"] <= input_area * 1.30, r
    # And it is predictable: small spread across the sweep.
    areas = [r["custom_mm2"] for r in rows]
    assert max(areas) / min(areas) < 1.35


def test_fig19_20_best_points(benchmark, paper_config):
    table = benchmark(run_best_point_comparison, BENCHMARKS, paper_config)
    echo(table)
    for row in table.rows:
        assert row.get("custom_area_mm2") is not None, row["benchmark"]
        # Custom stays competitive with the strong baseline on both axes
        # (the paper's direction — custom ahead by 20%/7.5% — relied on the
        # much weaker constrained Parquet; see module docstring).
        assert row["custom_area_mm2"] <= row["constrained_area_mm2"] * 1.25
        assert row["custom_power_mw"] <= row["constrained_power_mw"] * 1.25
