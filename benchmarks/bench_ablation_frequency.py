"""Ablation — operating-frequency sweep (the Fig. 3 outer loop).

"The frequency for which the topologies are generated has to be given as an
input. A range of frequencies can also be swept by the tool ... the best
power points are obtained for topologies designed at the lowest possible
operating frequency, which was found by the tool to be 400 MHz" for
D_26_media (Sec. VIII-A). Higher frequencies cost clock power and shrink
the maximum switch size.
"""

from conftest import echo

from repro.bench.registry import get_benchmark
from repro.core.config import SynthesisConfig
from repro.core.frequency_sweep import sweep_frequencies
from repro.experiments.common import ExperimentResult

FREQUENCIES = (300.0, 400.0, 550.0, 700.0)


def _run():
    bench = get_benchmark("d26_media")
    cfg = SynthesisConfig(max_ill=25, switch_count_range=(3, 12))
    sweep = sweep_frequencies(
        bench.core_spec_3d, bench.comm_spec, FREQUENCIES, config=cfg
    )
    table = ExperimentResult(
        name="Ablation: operating frequency sweep, d26_media 3-D",
        columns=["frequency_mhz", "valid_points", "best_power_mw",
                 "best_latency_cyc", "max_switch_size"],
    )
    for freq in sweep.frequencies:
        result = sweep.per_frequency[freq]
        best = result.best_power() if result.points else None
        from repro.models.library import default_library

        table.add(
            frequency_mhz=freq,
            valid_points=len(result.points),
            best_power_mw=best.total_power_mw if best else None,
            best_latency_cyc=best.avg_latency_cycles if best else None,
            max_switch_size=default_library().switch.max_switch_size(freq),
        )
    return table


def test_ablation_frequency_sweep(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    echo(table)
    rows = [r for r in table.rows if r["best_power_mw"] is not None]
    assert len(rows) >= 2
    # The lowest feasible frequency gives the best power point (the paper's
    # observation for this benchmark).
    best_row = min(rows, key=lambda r: r["best_power_mw"])
    assert best_row["frequency_mhz"] == min(r["frequency_mhz"] for r in rows)
    # Higher frequency shrinks the admissible switch size.
    sizes = [r["max_switch_size"] for r in table.rows]
    assert sizes == sorted(sizes, reverse=True)
