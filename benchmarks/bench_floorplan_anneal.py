"""Floorplan annealing — incremental evaluator + multi-start scaling gate.

Not a paper figure: this is the repo's own perf-trajectory gate for the
:mod:`repro.floorplan.engine` overhaul. It runs
:func:`repro.engine.benchmark.run_floorplan_benchmark` (the same routine
whose numbers ``python -m repro.cli bench`` embeds in the ``floorplan``
section of ``BENCH_engine.json``), echoes the numbers, and asserts

* the incremental annealer and the frozen naive baseline of
  :mod:`repro.floorplan.reference` produce *bit-identical* floorplans
  (positions, sequence pair, area, wirelength, cost, move counts);
* the incremental evaluator beats the naive baseline by >= 3x
  single-threaded moves/sec (a same-core claim, asserted everywhere);
* the K-restart multi-start merge is identical serial vs parallel, and —
  only when the machine actually has >= 4 CPUs — the parallel leg beats
  the serial one by >= 2x wall-clock. On smaller boxes (CI containers
  pinned to one core) the speedup is recorded but not asserted, since a
  CPU-bound speedup beyond the core count is physically impossible.
"""

import pytest

from repro.engine.benchmark import run_floorplan_benchmark

MULTISTART_JOBS = 4
SINGLE_THREAD_SPEEDUP_FLOOR = 3.0
MULTISTART_SPEEDUP_FLOOR = 2.0


def _run():
    return run_floorplan_benchmark(quick=True, jobs=MULTISTART_JOBS, log=print)


def test_floorplan_anneal_speedup(benchmark):
    report = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(f"cpu_count={report['cpu_count']} "
          f"single-thread={report['speedup']}x "
          f"({report['incremental_moves_per_s']:,.0f} moves/s) "
          f"multi-start={report['multistart']['speedup']}x")

    # Bit-identity is the contract that makes the speedup meaningful.
    assert report["identical_results"]
    assert report["multistart"]["identical_results"]

    # Single-threaded moves/sec: same core, so the floor holds everywhere.
    assert report["speedup"] >= SINGLE_THREAD_SPEEDUP_FLOOR, (
        f"incremental annealer speedup {report['speedup']}x below "
        f"{SINGLE_THREAD_SPEEDUP_FLOOR}x"
    )

    # Multi-start scaling: only meaningful with cores to run on.
    cpus = report["cpu_count"] or 1
    multi = report["multistart"]
    if cpus >= MULTISTART_JOBS:
        assert multi["speedup"] >= MULTISTART_SPEEDUP_FLOOR, (
            f"multi-start speedup {multi['speedup']}x on {multi['jobs']} "
            f"worker(s) ({cpus} CPUs) below {MULTISTART_SPEEDUP_FLOOR}x"
        )
    else:
        pytest.skip(
            f"only {cpus} CPU(s) visible: recorded multi-start speedup "
            f"{multi['speedup']}x without asserting the "
            f"{MULTISTART_SPEEDUP_FLOOR}x floor (needs >= {MULTISTART_JOBS} "
            "CPUs)"
        )
