"""Ablation — switch layer assignment: mean-of-layers vs majority layer.

Sec. V-A Step 7 computes a switch's layer as the average of its cores'
layers, noting "alternatively, the switch could also be assigned to the
layer containing the most number of cores connected to it". Both are
implemented (``switch_layer_mode``); this ablation compares the best power
point under each.
"""

from conftest import echo

from repro.experiments.common import ExperimentResult, synthesize_cached


def _run(paper_config):
    table = ExperimentResult(
        name="Ablation: switch layer mode (mean vs majority)",
        columns=["benchmark", "mode", "power_mw", "latency_cyc", "vlinks"],
    )
    for name in ("d26_media", "d36_4"):
        for mode in ("mean", "majority"):
            cfg = paper_config.with_(switch_layer_mode=mode)
            point = synthesize_cached(name, "3d", cfg).best_power()
            table.add(
                benchmark=name, mode=mode,
                power_mw=point.total_power_mw,
                latency_cyc=point.avg_latency_cycles,
                vlinks=point.metrics.num_vertical_links,
            )
    return table


def test_ablation_switch_layer_mode(benchmark, paper_config):
    table = benchmark(_run, paper_config)
    echo(table)
    by_key = {(r["benchmark"], r["mode"]): r for r in table.rows}
    for name in ("d26_media", "d36_4"):
        mean_p = by_key[(name, "mean")]["power_mw"]
        maj_p = by_key[(name, "majority")]["power_mw"]
        # Both modes must produce valid, same-ballpark designs (the paper
        # presents them as interchangeable alternatives).
        assert 0.5 < mean_p / maj_p < 2.0
