"""Fig. 23 — custom synthesized topologies vs. power-optimised mesh.

Paper: 51% average power reduction and 21% latency reduction for the custom
topologies against an optimised mesh with unused links removed.
"""

from conftest import echo

from repro.bench.registry import TABLE1_BENCHMARKS
from repro.experiments.mesh_comparison import run_mesh_comparison


def test_fig23_custom_vs_mesh(benchmark):
    table = benchmark(
        run_mesh_comparison, TABLE1_BENCHMARKS + ("d26_media",), None
    )
    echo(table)
    rows = [r for r in table.rows if r.get("power_saving_pct") is not None]
    assert len(rows) == len(TABLE1_BENCHMARKS) + 1

    for row in rows:
        # The custom topology wins on power on every benchmark.
        assert row["power_saving_pct"] > 0, row["benchmark"]
        # And never loses on latency.
        assert row["latency_saving_pct"] > -5.0, row["benchmark"]

    avg_power = sum(r["power_saving_pct"] for r in rows) / len(rows)
    avg_latency = sum(r["latency_saving_pct"] for r in rows) / len(rows)
    # Paper: 51% / 21%. Check for the same order of magnitude.
    assert 30.0 < avg_power < 75.0
    assert avg_latency > 10.0
